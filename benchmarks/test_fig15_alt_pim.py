"""Fig 15: PIMnet benefit with alternative PIM compute throughput."""

from repro.experiments import fig15_alt_pim

from .conftest import run_once


def test_fig15(benchmark, report):
    result = run_once(benchmark, fig15_alt_pim.run)
    report(fig15_alt_pim.format_table(result))
    assert result.gain("MLP") > 5
