"""Fig 3: motivation — collective scalability of PIM implementations."""

from repro.collectives import Collective
from repro.experiments import fig03_motivation

from .conftest import run_once


def test_fig03a_allreduce(benchmark, report):
    result = run_once(benchmark, fig03_motivation.run, Collective.ALL_REDUCE)
    report(fig03_motivation.format_table(result))
    rel = result.normalized_throughput()
    assert rel["P"][-1] > rel["S"][-1] > rel["B"][-1]


def test_fig03b_alltoall(benchmark, report):
    result = run_once(benchmark, fig03_motivation.run, Collective.ALL_TO_ALL)
    report(fig03_motivation.format_table(result))
    assert result.normalized_throughput()["P"][-1] > 1
