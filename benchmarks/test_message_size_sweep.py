"""Supplementary: collective time vs message size across backends."""

from repro.collectives import Collective
from repro.experiments import message_size_sweep

from .conftest import run_once


def test_size_sweep_allreduce(benchmark, report):
    result = run_once(benchmark, message_size_sweep.run, Collective.ALL_REDUCE)
    report(message_size_sweep.format_table(result))
    assert all(s > 1 for s in result.speedup_series()["P"])


def test_size_sweep_alltoall(benchmark, report):
    result = run_once(benchmark, message_size_sweep.run, Collective.ALL_TO_ALL)
    report(message_size_sweep.format_table(result))
