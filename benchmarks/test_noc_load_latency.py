"""Supplementary: NoC load-latency curve under credit flow control."""

from repro.experiments import noc_load_latency

from .conftest import run_once


def test_noc_load_latency(benchmark, report):
    result = run_once(benchmark, noc_load_latency.run)
    report(noc_load_latency.format_table(result))
    assert result.saturation_visible()
