"""Ablations: PIMnet design choices vs their alternatives."""

from repro.experiments import ablations

from .conftest import run_once


def test_ablations(benchmark, report):
    results = run_once(benchmark, ablations.run)
    report(ablations.format_table(results))
    by_name = {r.name: r for r in results}
    # the hierarchy is the load-bearing choice
    assert by_name["hierarchical vs flat ring"].benefit > 3
    # the unidirectional repartition genuinely wins for pure AllReduce
    assert (
        by_name["bidirectional 4x16b vs unidirectional 2x32b"].benefit < 1
    )
