"""Fig 10: application performance across B/S/N/D/P."""

from repro.experiments import fig10_applications

from .conftest import run_once


def test_fig10(benchmark, report):
    result = run_once(benchmark, fig10_applications.run)
    report(fig10_applications.format_table(result))
    best, value = result.max_speedup()
    assert value > 8  # paper: up to 11.8x
