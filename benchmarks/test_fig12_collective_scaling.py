"""Fig 12: collective scalability normalized to the baseline."""

from repro.collectives import Collective
from repro.experiments import fig12_collective_scaling

from .conftest import run_once


def test_fig12a_allreduce(benchmark, report):
    result = run_once(
        benchmark, fig12_collective_scaling.run, Collective.ALL_REDUCE
    )
    report(fig12_collective_scaling.format_table(result))
    assert result.speedups["P"][-1] > 20


def test_fig12b_alltoall(benchmark, report):
    result = run_once(
        benchmark, fig12_collective_scaling.run, Collective.ALL_TO_ALL
    )
    report(fig12_collective_scaling.format_table(result))
    assert result.speedups["P"][-1] > result.speedups["S"][-1]
