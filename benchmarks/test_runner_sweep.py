"""Full-registry sweep through the parallel runner, cold vs warm cache.

The cold pass times every registered experiment end to end (this is the
number the ``--runner-jobs`` flag shrinks); the warm pass times the same
sweep served entirely from the content-addressed cache and proves the
replayed tables are identical.
"""

from __future__ import annotations

from repro.config import RunnerConfig, pimnet_sim_system
from repro.runner import REGISTRY, run_experiments

from .conftest import run_once


def _config(runner_jobs, tmp_path, **kwargs):
    return RunnerConfig(
        jobs=runner_jobs, cache_dir=str(tmp_path / "cache"), **kwargs
    )


def _summary(tag, runs):
    points = sum(r.points for r in runs)
    hits = sum(r.cache_hits for r in runs)
    elapsed = sum(r.elapsed_s for r in runs)
    return (
        f"runner sweep [{tag}]: {len(runs)} experiments, {points} points, "
        f"{hits} cache hit(s), {elapsed:.2f}s"
    )


def test_cold_sweep(benchmark, report, runner_jobs, tmp_path):
    machine = pimnet_sim_system()
    runner = _config(runner_jobs, tmp_path)
    runs = run_once(
        benchmark, run_experiments, REGISTRY.ids(), machine, runner
    )
    report(_summary("cold", runs))
    assert len(runs) == len(REGISTRY.ids())
    assert all(r.cache_hits == 0 for r in runs)
    assert all(r.cache_misses == r.points for r in runs)


def test_warm_sweep_replays_identically(
    benchmark, report, runner_jobs, tmp_path
):
    machine = pimnet_sim_system()
    runner = _config(runner_jobs, tmp_path)
    cold = run_experiments(REGISTRY.ids(), machine, runner)  # seed, untimed
    warm = run_once(
        benchmark, run_experiments, REGISTRY.ids(), machine, runner
    )
    report(_summary("warm", warm))
    assert all(r.cache_hits == r.points for r in warm)
    assert all(r.cache_misses == 0 for r in warm)
    assert [r.tables for r in warm] == [r.tables for r in cold]
