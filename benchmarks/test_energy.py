"""Extension: communication energy, host path vs PIMnet."""

import numpy as np

from repro.analysis import energy_comparison
from repro.collectives import Collective, CollectiveRequest
from repro.experiments.common import ExperimentTable

from .conftest import run_once


def _run():
    rows = []
    for pattern in (Collective.ALL_REDUCE, Collective.ALL_TO_ALL):
        est = energy_comparison(
            CollectiveRequest(pattern, 32 * 1024, dtype=np.dtype(np.int64))
        )
        rows.append(
            (
                pattern.value,
                f"{est['B'].total_j * 1e6:.1f}",
                f"{est['P'].total_j * 1e6:.1f}",
                f"{est['B'].total_j / est['P'].total_j:.1f}x",
            )
        )
    return rows


def test_energy_comparison(benchmark, report):
    rows = run_once(benchmark, _run)
    table = ExperimentTable(
        "Energy (ext.)",
        "Per-collective energy, 32 KB/DPU at 256 DPUs",
        ("pattern", "Baseline uJ", "PIMnet uJ", "savings"),
        tuple(rows),
        notes="extension beyond the paper: pJ/bit tier model",
    )
    report(table.format())
    assert all(float(r[3][:-1]) > 1 for r in rows)
