"""Fig 13: credit-based flow control vs PIM-controlled scheduling.

The cycle-level NoC simulation is the slowest benchmark in the suite;
it runs a 64-DPU single-rank scope (the tier whose crossbar contention
the paper analyzes) with modest payloads.
"""

from repro.experiments import fig13_flow_control

from .conftest import run_once


def test_fig13(benchmark, report):
    result = run_once(
        benchmark,
        fig13_flow_control.run,
        banks=4,
        chips=4,
        ranks=1,
        elements_per_dpu=256,
    )
    report(fig13_flow_control.format_table(result))
    # paper: AR within ~1%; A2A 18.7% reduction under scheduling
    assert abs(result.reduction_percent("allreduce")) < 15
    assert result.reduction_percent("alltoall") > 0
