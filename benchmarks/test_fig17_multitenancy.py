"""Fig 17: multi-tenancy bandwidth isolation."""

from repro.experiments import fig17_multitenancy

from .conftest import run_once


def test_fig17(benchmark, report):
    result = run_once(benchmark, fig17_multitenancy.run)
    report(fig17_multitenancy.format_table(result))
    assert result.isolation_benefit() > 1.2
