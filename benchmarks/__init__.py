"""Benchmark harness: one module per paper figure/table."""
