"""Table IV: PIMnet tier comparison and derived bandwidth figures."""

from repro.experiments import table04_tiers

from .conftest import run_once


def test_table04(benchmark, report):
    result = run_once(benchmark, table04_tiers.run)
    report(table04_tiers.format_table(result))
    assert abs(result.rank_aggregate_gbs - 179.2) < 1e-6
