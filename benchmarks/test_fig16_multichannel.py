"""Fig 16: embedding lookup with memory-channel scaling."""

from repro.experiments import fig16_multichannel

from .conftest import run_once


def test_fig16(benchmark, report):
    result = run_once(benchmark, fig16_multichannel.run)
    report(fig16_multichannel.format_table(result))
    speedups = result.speedups()
    assert speedups[-1] > speedups[0]
