"""Table V: collective primitives and their PIMnet tier algorithms."""

from repro.experiments import table05_algorithms

from .conftest import run_once


def test_table05(benchmark, report):
    result = run_once(benchmark, table05_algorithms.run)
    report(table05_algorithms.format_table(result))
    assert len(result) == 5
