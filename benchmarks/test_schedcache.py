"""Schedule-compilation cache: warm replay vs cold recompilation.

Times the two paired bench scenarios — ``schedcache_cold`` recompiles
the AllReduce schedule for every payload of a sweep, ``schedcache_warm``
replays the same sweep from one cached timing profile — and enforces
the hit-path speedup floor the cache exists to provide, plus the
bit-exactness that makes the replay safe to substitute.
"""

from __future__ import annotations

from repro.bench.harness import run_scenario
from repro.bench.scenarios import (
    _SCHEDCACHE_PAYLOADS,
    _schedcache_args,
    get_scenario,
)
from repro.core.schedule import build_schedule, schedule_timing
from repro.schedcache import ScheduleCache

from .conftest import run_once

#: The cache must beat recompilation by at least this factor on the hit
#: path (measured ~100x; 2x keeps the gate robust on loaded CI boxes).
MIN_SPEEDUP = 2.0


def _p50(result) -> float:
    return result.summary["p50"]


def test_warm_replay_beats_cold_compilation(benchmark, report):
    cold = run_scenario(get_scenario("schedcache_cold"), repeats=5, warmup=1)
    warm = run_once(
        benchmark,
        run_scenario,
        get_scenario("schedcache_warm"),
        repeats=5,
        warmup=1,
    )
    speedup = _p50(cold) / _p50(warm)
    report(
        f"schedcache: cold p50 {_p50(cold) * 1e3:.2f} ms, "
        f"warm p50 {_p50(warm) * 1e3:.2f} ms, {speedup:.0f}x speedup"
    )
    assert speedup >= MIN_SPEEDUP


def test_warm_replay_is_bit_exact(report):
    collective, shape, network = _schedcache_args()
    cache = ScheduleCache()
    cache.profile(collective, shape, network)
    for num_elements in _SCHEDCACHE_PAYLOADS:
        fresh = schedule_timing(
            build_schedule(collective, shape, num_elements), network
        )
        assert cache.timing(collective, shape, num_elements, network) == fresh
    assert cache.counters.timing_replays == len(_SCHEDCACHE_PAYLOADS)
    report(
        f"schedcache: {len(_SCHEDCACHE_PAYLOADS)} payload replays "
        "bit-identical to fresh compilation"
    )
