"""Micro-benchmark: event-driven cycle loop vs the naive reference loop.

Times both loops on the saturating high-load point of the load-latency
sweep (the regime the event-driven rewrite targets: heavy crossbar/bus
contention, most ring links idle) and reports the wall-clock speedup.
The two runs must also agree on every semantic statistic — the speedup
is only worth reporting if the loops are equivalent.
"""

from __future__ import annotations

import time

from repro.experiments.noc_load_latency import high_load_workload
from repro.noc import NocSimulator

from .conftest import run_once


def _time_loop(runner) -> tuple[float, object]:
    start = time.perf_counter()
    stats = runner()
    return time.perf_counter() - start, stats


def test_event_loop_speedup(benchmark, report):
    network, messages = high_load_workload()

    def compare():
        naive_sim = NocSimulator(network, messages)
        naive_s, naive_stats = _time_loop(naive_sim._run_reference)
        event_sim = NocSimulator(network, messages)
        event_s, event_stats = _time_loop(event_sim.run)
        return naive_s, naive_stats, event_s, event_stats

    naive_s, naive_stats, event_s, event_stats = run_once(benchmark, compare)

    assert event_stats.cycles == naive_stats.cycles
    assert event_stats.flits_delivered == naive_stats.flits_delivered
    assert event_stats.per_message_latency == naive_stats.per_message_latency
    assert event_stats.arbitration_conflicts == (
        naive_stats.arbitration_conflicts
    )

    speedup = naive_s / event_s
    report(
        "NoC cycle loop, high-load point "
        f"({len(messages)} messages, {naive_stats.cycles} cycles):\n"
        f"  naive reference loop : {naive_s * 1e3:8.1f} ms "
        f"({naive_stats.events_processed} cycles stepped)\n"
        f"  event-driven loop    : {event_s * 1e3:8.1f} ms "
        f"({event_stats.events_processed} events, "
        f"{event_stats.idle_cycles_skipped} idle cycles skipped)\n"
        f"  speedup              : {speedup:8.2f}x"
    )
    # Locally ~4x; the floor is set below the target to tolerate noisy
    # shared CI runners without letting a real regression through.
    assert speedup >= 2.0
