"""Microbenchmarks: collective latency models across backends/sizes.

Not a paper figure, but the primitive numbers every figure is built
from; useful for regression-tracking the timing models themselves.
"""

import numpy as np
import pytest

from repro import pimnet_sim_system, registry
from repro.collectives import Collective, CollectiveRequest


MACHINE = pimnet_sim_system()


@pytest.mark.parametrize("key", ["B", "S", "D", "P"])
@pytest.mark.parametrize("kib", [8, 32, 128])
def test_allreduce_model(benchmark, key, kib):
    backend = registry.create(key, MACHINE)
    request = CollectiveRequest(
        Collective.ALL_REDUCE, kib * 1024, dtype=np.dtype(np.int64)
    )
    breakdown = benchmark(backend.timing, request)
    assert breakdown.total_s > 0


@pytest.mark.parametrize("key", ["B", "S", "N", "D", "P"])
def test_alltoall_model(benchmark, key):
    backend = registry.create(key, MACHINE)
    request = CollectiveRequest(
        Collective.ALL_TO_ALL, 32 * 1024, dtype=np.dtype(np.int64)
    )
    breakdown = benchmark(backend.timing, request)
    assert breakdown.total_s > 0


def test_schedule_generation(benchmark):
    """Static-schedule compilation cost for the full 256-DPU scope."""
    from repro.core import Shape, allreduce_schedule

    shape = Shape(8, 8, 4)
    sched = benchmark(allreduce_schedule, shape, shape.num_dpus * 8)
    assert sched.num_transfers > 0
