"""Benchmark-suite helpers.

Each benchmark regenerates one paper figure/table: it times the
experiment driver with pytest-benchmark and prints the paper-shaped
rows straight to the terminal (bypassing capture) so that

    pytest benchmarks/ --benchmark-only

shows every reproduced series.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runner-jobs",
        type=int,
        default=1,
        help="worker processes for the runner-sweep benchmarks "
        "(mirrors `repro run --jobs N`)",
    )


@pytest.fixture
def runner_jobs(request: pytest.FixtureRequest) -> int:
    return request.config.getoption("--runner-jobs")


@pytest.fixture
def report(capsys):
    """Print experiment tables to the real terminal."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment with a single round (they are minutes-scale
    deterministic model evaluations, not microbenchmarks)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
