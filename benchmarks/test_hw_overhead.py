"""Section VI-B: hardware overhead of PIMnet."""

from repro.experiments import hw_overhead

from .conftest import run_once


def test_hw_overhead(benchmark, report):
    result = run_once(benchmark, hw_overhead.run)
    report(hw_overhead.format_table(result))
    assert result.router_to_stop_area_ratio > 60
