"""Fig 11: PIM communication breakdown and comm-only speedups."""

from repro.experiments import fig11_comm_breakdown

from .conftest import run_once


def test_fig11(benchmark, report):
    result = run_once(benchmark, fig11_comm_breakdown.run)
    report(fig11_comm_breakdown.format_table(result))
    assert all(e.comm_speedup > 1 for e in result.entries)
