"""Host-link characterization curves (Section III context)."""

from repro.experiments import characterization

from .conftest import run_once


def test_characterization(benchmark, report):
    result = run_once(benchmark, characterization.run)
    report(characterization.format_table(result))
    assert result.gather_gbs[-1] > result.gather_gbs[0]
