"""Fig 14: PIMnet AllReduce over channel-bandwidth sweeps."""

from repro.experiments import fig14_bandwidth_sweep

from .conftest import run_once


def test_fig14(benchmark, report):
    result = run_once(benchmark, fig14_bandwidth_sweep.run)
    report(fig14_bandwidth_sweep.format_table(result))
    assert result.min_interbank_speedup() >= 2.5  # paper: >= 3x at 0.1 GB/s
