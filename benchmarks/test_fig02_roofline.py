"""Fig 2: roofline models (classic + communication intensity)."""

from repro.experiments import fig02_roofline

from .conftest import run_once


def test_fig02_roofline(benchmark, report):
    result = run_once(benchmark, fig02_roofline.run)
    report(fig02_roofline.format_table(result))
    assert 5 <= result.ceiling_ratio() <= 12  # paper: ~8x
