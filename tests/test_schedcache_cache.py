"""ScheduleCache mechanics: LRU, disk store, metrics, fork guard, NoC.

Complements ``test_schedcache_keys.py`` (what addresses an entry) and
``test_schedcache_profile.py`` (what a replay returns) with the cache
container itself: eviction order, the optional content-addressed disk
tier, counter mirroring into ``schedcache.*`` metrics, the post-fork
reset, and the calibrated NoC estimate with its conformance-band
fallback.
"""

from __future__ import annotations

import json

import pytest

from repro.collectives.patterns import Collective
from repro.config.conformance import ConformanceConfig
from repro.config.network import PimnetNetworkConfig
from repro.core.schedule import Shape
from repro.errors import SchedCacheError
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.runner import ResultCache
from repro.schedcache import (
    NocCalibration,
    ScheduleCache,
    StructureKey,
    active_schedule_cache,
    cached_build_schedule,
    simulate_noc_cycles,
    use_schedule_cache,
)

NETWORK = PimnetNetworkConfig()
SHAPE = Shape(banks=2, chips=2, ranks=1)
AR = Collective.ALL_REDUCE


class TestScheduleLRU:
    def test_repeat_build_hits(self):
        cache = ScheduleCache()
        first = cache.build(AR, SHAPE, 64)
        assert cache.build(AR, SHAPE, 64) is first
        assert cache.counters.schedule_hits == 1
        assert cache.counters.schedule_misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = ScheduleCache(max_schedules=2)
        cache.build(AR, SHAPE, 64)   # A
        cache.build(AR, SHAPE, 128)  # B
        cache.build(AR, SHAPE, 64)   # touch A -> B is now LRU
        cache.build(AR, SHAPE, 256)  # C evicts B
        assert cache.counters.schedule_evictions == 1
        cache.build(AR, SHAPE, 64)   # A survived
        assert cache.counters.schedule_hits == 2
        cache.build(AR, SHAPE, 128)  # B did not
        assert cache.counters.schedule_misses == 4

    def test_profile_eviction(self):
        cache = ScheduleCache(max_profiles=1)
        cache.profile(AR, SHAPE, NETWORK)
        cache.profile(Collective.ALL_TO_ALL, SHAPE, NETWORK)
        assert cache.counters.profile_evictions == 1
        cache.profile(AR, SHAPE, NETWORK)  # recompiled, not remembered
        assert cache.counters.profile_misses == 3

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_schedules": 0}, {"max_profiles": -1}],
        ids=["schedules", "profiles"],
    )
    def test_invalid_capacity_rejected(self, kwargs):
        with pytest.raises(SchedCacheError):
            ScheduleCache(**kwargs)


class TestDiskStore:
    def _store(self, tmp_path):
        return ResultCache(tmp_path / "cache")

    def test_profile_round_trips_through_disk(self, tmp_path):
        writer = ScheduleCache(store=self._store(tmp_path))
        writer.profile(AR, SHAPE, NETWORK)
        assert writer.counters.profile_stores == 1

        reader = ScheduleCache(store=self._store(tmp_path))
        times = reader.timing(AR, SHAPE, 4096, NETWORK)
        assert reader.counters.profile_disk_hits == 1
        assert reader.counters.timing_replays == 1
        # The disk hit made compilation unnecessary altogether.
        assert reader.counters.schedule_misses == 0
        assert times == writer.timing(AR, SHAPE, 4096, NETWORK)

    def test_corrupt_stored_profile_is_a_miss_not_an_error(self, tmp_path):
        writer = ScheduleCache(store=self._store(tmp_path))
        writer.profile(AR, SHAPE, NETWORK)
        (entry_path,) = (tmp_path / "cache" / "schedcache").glob("*.json")
        entry = json.loads(entry_path.read_text())
        entry["value"] = {"profile_version": 999}
        entry_path.write_text(json.dumps(entry))

        reader = ScheduleCache(store=self._store(tmp_path))
        reader.profile(AR, SHAPE, NETWORK)
        assert reader.counters.profile_disk_hits == 0
        assert reader.counters.profile_misses == 1
        assert reader.counters.profile_stores == 1  # re-stored, repaired

    def test_memory_tier_shields_the_disk(self, tmp_path):
        cache = ScheduleCache(store=self._store(tmp_path))
        cache.profile(AR, SHAPE, NETWORK)
        cache.profile(AR, SHAPE, NETWORK)
        assert cache.counters.profile_hits == 1
        assert cache.counters.profile_disk_hits == 0


class TestCountersAndMetrics:
    def test_counters_mirror_into_metrics(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            cache = ScheduleCache()
            cache.timing(AR, SHAPE, 64, NETWORK)
            cache.timing(AR, SHAPE, 128, NETWORK)
        snapshot = registry.snapshot()
        assert snapshot["schedcache.profile.misses"]["value"] == 1
        assert snapshot["schedcache.timing.replays"]["value"] == 1
        assert snapshot["schedcache.schedule.misses"]["value"] == 1

    def test_clear_resets_counters_and_contents(self):
        cache = ScheduleCache()
        cache.timing(AR, SHAPE, 64, NETWORK)
        cache.clear()
        stats = cache.stats()
        assert stats["schedules"] == 0
        assert stats["profiles"] == 0
        assert all(v == 0 for v in stats["counters"].values())

    def test_stats_shape(self):
        cache = ScheduleCache()
        cache.profile(AR, SHAPE, NETWORK)
        stats = cache.stats()
        assert stats["profiles"] == 1
        (entry,) = stats["profile_entries"]
        assert entry["structure"].startswith("all_reduce@2x2x1")
        assert entry["base_elements"] == SHAPE.num_dpus
        assert entry["steps"] >= 1


class TestActiveCache:
    def test_use_schedule_cache_overrides_and_restores(self):
        default = active_schedule_cache()
        override = ScheduleCache()
        with use_schedule_cache(override) as cache:
            assert cache is override
            assert active_schedule_cache() is override
            cached_build_schedule(AR, SHAPE, 64)
        assert active_schedule_cache() is default
        assert override.counters.schedule_misses == 1

    def test_fork_guard_empties_an_inherited_cache(self):
        cache = ScheduleCache()
        cache.timing(AR, SHAPE, 64, NETWORK)
        assert not cache.reset_if_forked()  # owning process: no-op
        cache._pid = cache._pid - 1  # simulate a fork-inherited copy
        assert cache.reset_if_forked()
        stats = cache.stats()
        assert stats["schedules"] == 0 and stats["profiles"] == 0
        assert all(v == 0 for v in stats["counters"].values())


class TestNocEstimates:
    def _seed_calibration(self, cache, ratio):
        key = StructureKey.for_structure(
            AR, SHAPE, NETWORK, root=0, itemsize=ConformanceConfig().itemsize
        )
        cache._calibrations[key] = NocCalibration(
            base_elements=SHAPE.num_dpus,
            base_analytic_cycles=100.0,
            base_noc_cycles=100.0 * ratio,
        )

    def test_in_band_calibration_serves_an_estimate(self):
        cache = ScheduleCache()
        self._seed_calibration(cache, ratio=1.0)
        cycles, estimated = cache.noc_cycles(AR, SHAPE, 64, NETWORK)
        assert estimated
        assert cycles > 0
        assert cache.counters.noc_estimates == 1

    def test_out_of_band_calibration_falls_back_to_simulation(self):
        cache = ScheduleCache()
        self._seed_calibration(cache, ratio=1e6)
        cycles, estimated = cache.noc_cycles(AR, SHAPE, 64, NETWORK)
        assert not estimated
        assert cache.counters.noc_fallbacks == 1
        schedule = cache.build(AR, SHAPE, 64)
        assert cycles == float(
            simulate_noc_cycles(
                schedule, NETWORK, itemsize=ConformanceConfig().itemsize
            )
        )

    def test_calibration_is_memoized(self):
        cache = ScheduleCache()
        first = cache.calibration(AR, SHAPE, NETWORK)
        assert cache.calibration(AR, SHAPE, NETWORK) is first
        assert first.base_noc_cycles > 0
