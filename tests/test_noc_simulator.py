"""Cycle-level NoC simulator behaviour."""

import pytest

from repro.core import Shape
from repro.errors import SimulationError
from repro.noc import Message, NocNetwork, NocSimulator


@pytest.fixture
def net() -> NocNetwork:
    return NocNetwork(Shape(4, 2, 1))


class TestSingleMessage:
    def test_delivery_completes(self, net):
        msg = Message(msg_id=0, src=0, dst=net.shape.dpu(0, 0, 1), num_flits=4)
        stats = NocSimulator(net, [msg]).run()
        assert msg.delivered
        assert stats.messages_delivered == 1
        assert stats.flits_delivered == 4

    def test_latency_scales_with_flits(self, net):
        dst = net.shape.dpu(0, 0, 1)
        short = Message(msg_id=0, src=0, dst=dst, num_flits=2)
        NocSimulator(net, [short]).run()
        long = Message(msg_id=0, src=0, dst=dst, num_flits=32)
        NocSimulator(net, [long]).run()
        assert long.complete_cycle > short.complete_cycle

    def test_ready_cycle_delays_injection(self, net):
        dst = net.shape.dpu(0, 0, 1)
        msg = Message(msg_id=0, src=0, dst=dst, num_flits=1, ready_cycle=500)
        NocSimulator(net, [msg]).run()
        assert msg.inject_start_cycle == 500

    def test_cross_chip_slower_than_neighbor(self, net):
        neighbor = Message(
            msg_id=0, src=0, dst=net.shape.dpu(0, 0, 1), num_flits=8
        )
        NocSimulator(net, [neighbor]).run()
        remote = Message(
            msg_id=0, src=0, dst=net.shape.dpu(0, 1, 1), num_flits=8
        )
        NocSimulator(net, [remote]).run()
        assert remote.complete_cycle > neighbor.complete_cycle


class TestDependencies:
    def test_dep_serializes_messages(self, net):
        a = Message(msg_id=0, src=0, dst=net.shape.dpu(0, 0, 1), num_flits=8)
        b = Message(
            msg_id=1,
            src=net.shape.dpu(0, 0, 1),
            dst=net.shape.dpu(0, 0, 2),
            num_flits=8,
            deps=(0,),
        )
        NocSimulator(net, [a, b]).run()
        assert b.inject_start_cycle > a.complete_cycle - 1

    def test_duplicate_ids_rejected(self, net):
        msgs = [
            Message(msg_id=0, src=0, dst=1, num_flits=1),
            Message(msg_id=0, src=1, dst=2, num_flits=1),
        ]
        with pytest.raises(SimulationError):
            NocSimulator(net, msgs)


class TestBarriers:
    def test_barrier_orders_generations(self, net):
        d1 = net.shape.dpu(0, 0, 1)
        d2 = net.shape.dpu(0, 0, 2)
        first = Message(msg_id=0, src=0, dst=d1, num_flits=8)
        second = Message(msg_id=1, src=d1, dst=d2, num_flits=8)
        sim = NocSimulator(net, [first, second])
        sim.set_barriers({0: 0, 1: 1})
        sim.run()
        assert second.inject_start_cycle >= first.complete_cycle

    def test_barrier_for_unknown_message_rejected(self, net):
        sim = NocSimulator(
            net, [Message(msg_id=0, src=0, dst=1, num_flits=1)]
        )
        with pytest.raises(SimulationError):
            sim.set_barriers({5: 0})


class TestContention:
    def test_two_senders_one_receiver_serialize(self, net):
        dst = net.shape.dpu(0, 0, 2)
        left = Message(
            msg_id=0, src=net.shape.dpu(0, 0, 1), dst=dst, num_flits=16
        )
        right = Message(
            msg_id=1, src=net.shape.dpu(0, 0, 3), dst=dst, num_flits=16
        )
        both = NocSimulator(net, [left, right]).run()
        solo_msg = Message(
            msg_id=0, src=net.shape.dpu(0, 0, 1), dst=dst, num_flits=16
        )
        NocSimulator(net, [solo_msg]).run()
        # Two opposite-direction senders land on different ring links, so
        # they need not serialize; but total time is at least the solo time.
        assert both.cycles >= solo_msg.complete_cycle

    def test_crossbar_conflict_counted(self, net):
        """Two chips sending to the same chip contend at its DQ link."""
        dst_a = net.shape.dpu(0, 1, 0)
        dst_b = net.shape.dpu(0, 1, 2)
        msgs = [
            Message(msg_id=0, src=net.shape.dpu(0, 0, 0), dst=dst_a, num_flits=32),
            Message(msg_id=1, src=net.shape.dpu(0, 0, 1), dst=dst_b, num_flits=32),
        ]
        stats = NocSimulator(net, msgs).run()
        assert stats.arbitration_conflicts > 0

    def test_deadlock_guard_raises(self, net):
        msg = Message(msg_id=0, src=0, dst=1, num_flits=1, ready_cycle=10**9)
        with pytest.raises(SimulationError):
            NocSimulator(net, [msg]).run(max_cycles=1000)


class TestStats:
    def test_mean_latency_computed(self, net):
        msgs = [
            Message(msg_id=i, src=0, dst=net.shape.dpu(0, 0, 1), num_flits=2)
            for i in range(3)
        ]
        stats = NocSimulator(net, msgs).run()
        assert stats.mean_message_latency > 0
        assert len(stats.per_message_latency) == 3

    def test_empty_stats_latency_zero(self):
        from repro.noc.flit import SimStats

        assert SimStats().mean_message_latency == 0.0
