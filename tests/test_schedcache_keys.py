"""Schedule-cache key sensitivity: structure misses, payload hits.

The cache's contract (satellite of ``docs/SCHEDCACHE.md``): a
:class:`~repro.schedcache.StructureKey` must change whenever the
collective, any shape axis, the root, the element size, or *any* leaf
field of the network config changes — and must NOT change when only the
payload does, because the whole point of the profile tier is that one
compiled structure serves every payload.  Mirrors the leaf-perturbation
sweep of ``tests/test_runner_cache.py`` at the network-config level.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.patterns import Collective
from repro.config.network import PimnetNetworkConfig
from repro.core.schedule import Shape
from repro.errors import ReproError
from repro.schedcache import (
    ScheduleCache,
    ScheduleKey,
    StructureKey,
    network_fingerprint,
)

NETWORK = PimnetNetworkConfig()
SHAPE = Shape(banks=4, chips=2, ranks=2)
COLLECTIVES = list(Collective)


def _leaf_paths(value, prefix=()):
    """Every (path, leaf) of numeric/str/bool fields in a dataclass tree."""
    out = []
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for f in dataclasses.fields(value):
            out.extend(
                _leaf_paths(getattr(value, f.name), prefix + (f.name,))
            )
    elif isinstance(value, (bool, int, float, str)):
        out.append((prefix, value))
    return out


def _replace_at(value, path, new_leaf):
    """A copy of the dataclass tree with the leaf at ``path`` replaced."""
    if not path:
        return new_leaf
    field_name = path[0]
    return dataclasses.replace(
        value,
        **{
            field_name: _replace_at(
                getattr(value, field_name), path[1:], new_leaf
            )
        },
    )


LEAF_PATHS = [path for path, _ in _leaf_paths(NETWORK)]


def _candidates(leaf, delta=1):
    if isinstance(leaf, bool):
        return [not leaf]
    if isinstance(leaf, int):
        return [leaf * 2, leaf + delta, leaf // 2, leaf - delta]
    if isinstance(leaf, float):
        return [leaf / 2, leaf * 2, leaf + delta, leaf / (1 + delta)]
    return [leaf + "x" * delta]


def _mutated_network(path, leaf, delta=1):
    for candidate in _candidates(leaf, delta):
        if candidate == leaf:
            continue
        try:
            return _replace_at(NETWORK, path, candidate)
        except ReproError:
            continue
    return None


def _structure_key(
    pattern=Collective.ALL_REDUCE,
    shape=SHAPE,
    network=NETWORK,
    root=0,
    itemsize=8,
):
    return StructureKey.for_structure(
        pattern, shape, network, root=root, itemsize=itemsize
    )


class TestStructureKeyMisses:
    """Anything that changes timing must change the key."""

    def test_every_network_leaf_field_is_load_bearing(self):
        base = _structure_key()
        tested = 0
        for path, leaf in _leaf_paths(NETWORK):
            network = _mutated_network(path, leaf)
            if network is None:
                continue
            tested += 1
            assert _structure_key(network=network) != base, path
        assert tested >= 0.8 * len(LEAF_PATHS)

    @given(
        index=st.integers(min_value=0, max_value=len(LEAF_PATHS) - 1),
        delta=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_network_leaf_perturbations_change_fingerprint(
        self, index, delta
    ):
        path, base_leaf = _leaf_paths(NETWORK)[index]
        network = _mutated_network(path, base_leaf, delta)
        if network is None:
            return  # no valid perturbation for this (field, delta)
        assert network_fingerprint(network) != network_fingerprint(NETWORK)

    @pytest.mark.parametrize("pattern", COLLECTIVES)
    def test_collective_changes_key(self, pattern):
        keys = {_structure_key(pattern=other) for other in COLLECTIVES}
        assert len(keys) == len(COLLECTIVES)
        assert _structure_key(pattern=pattern) in keys

    @pytest.mark.parametrize(
        "shape",
        [
            Shape(banks=8, chips=2, ranks=2),
            Shape(banks=4, chips=4, ranks=2),
            Shape(banks=4, chips=2, ranks=1),
        ],
        ids=["banks", "chips", "ranks"],
    )
    def test_any_shape_axis_changes_key(self, shape):
        assert _structure_key(shape=shape) != _structure_key()

    def test_root_and_itemsize_change_key(self):
        base = _structure_key()
        assert _structure_key(root=1) != base
        assert _structure_key(itemsize=4) != base


class TestStructureKeyHits:
    """Payload-only changes must land on the same structure."""

    @given(
        a=st.integers(min_value=1, max_value=2**40),
        b=st.integers(min_value=1, max_value=2**40),
    )
    @settings(max_examples=100, deadline=None)
    def test_payload_never_enters_the_structure_key(self, a, b):
        # StructureKey has no payload field at all; the property pins
        # that this stays true for every way of constructing one.
        key_a = _structure_key()
        key_b = _structure_key()
        assert key_a == key_b
        assert ScheduleKey.for_build(
            Collective.ALL_REDUCE, SHAPE, a
        ) != ScheduleKey.for_build(
            Collective.ALL_REDUCE, SHAPE, b
        ) or (a == b)

    def test_equal_network_copies_share_a_fingerprint(self):
        copy = dataclasses.replace(NETWORK)
        assert copy is not NETWORK
        assert network_fingerprint(copy) == network_fingerprint(NETWORK)

    @given(multipliers=st.lists(
        st.integers(min_value=1, max_value=512), min_size=2, max_size=6
    ))
    @settings(max_examples=25, deadline=None)
    def test_payload_only_sweep_compiles_once(self, multipliers):
        """Through the cache: first payload compiles, the rest replay."""
        cache = ScheduleCache()
        for k in multipliers:
            cache.timing(
                Collective.ALL_REDUCE,
                SHAPE,
                SHAPE.num_dpus * k,
                NETWORK,
            )
        counters = cache.counters
        assert counters.profile_misses == 1
        assert counters.timing_replays == len(multipliers) - 1
        assert counters.timing_fallbacks == 0

    def test_structure_change_misses_through_the_cache(self):
        cache = ScheduleCache()
        cache.timing(Collective.ALL_REDUCE, SHAPE, 64, NETWORK)
        mutated = _replace_at(
            NETWORK,
            ("inter_rank", "hop_latency_s"),
            NETWORK.inter_rank.hop_latency_s * 2,
        )
        cache.timing(Collective.ALL_REDUCE, SHAPE, 64, mutated)
        assert cache.counters.profile_misses == 2
        assert cache.counters.timing_replays == 0
