"""The fleet router: rendezvous assignment, retry routing, conservation.

The hypothesis block pins the assignment contract the fleet leans on:
the ranking is a stable balanced partition that is identical across
processes (SHA-256, not salted ``hash``), and removing a shard never
reorders the survivors — which is exactly why failover targets are as
stable as the primary assignment.
"""

import asyncio
import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.patterns import Collective, CollectiveRequest
from repro.config import small_test_system
from repro.config.fleet import (
    FleetConfig,
    ShardOutageConfig,
    default_fleet_config,
    kill_shard_outage,
)
from repro.config.service import (
    ServiceConfig,
    TenantQuotaConfig,
    TimeSlotConfig,
)
from repro.errors import ConfigurationError, FleetError
from repro.fleet import (
    FleetOutcome,
    FleetRouter,
    ShardHealth,
    fleet_assignment,
    home_shard,
    shard_ranking,
)

pytestmark = pytest.mark.fleet

TINY = small_test_system()  # 2x2x2 = 8 DPUs
TINY_DPUS = 8


def ar(elements_per_dpu: int = 8) -> CollectiveRequest:
    return CollectiveRequest(
        Collective.ALL_REDUCE,
        payload_bytes=8 * TINY_DPUS * elements_per_dpu,
    )


def service_config(queue_limit: int = 64) -> ServiceConfig:
    return ServiceConfig(
        slots=(
            TimeSlotConfig(
                "all_reduce", ("all_reduce",),
                time_window_s=500e-6, max_multiplexing=2,
            ),
        ),
        switch_time_s=20e-6,
        queue_limit=queue_limit,
        default_quota=TenantQuotaConfig(max_queued=8, max_per_slot=4),
    )


def fleet_config(shards: int = 3, **kwargs) -> FleetConfig:
    return FleetConfig(shards=shards, service=service_config(), **kwargs)


def run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------------
# Rendezvous assignment properties.
# --------------------------------------------------------------------------

tenants_st = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=16,
)


class TestRanking:
    @given(tenant=tenants_st, shards=st.integers(1, 8), key=st.text(max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_ranking_is_a_permutation(self, tenant, shards, key):
        ranking = shard_ranking(tenant, shards, key)
        assert sorted(ranking) == list(range(shards))

    @given(tenant=tenants_st, shards=st.integers(2, 8))
    @settings(max_examples=200, deadline=None)
    def test_removing_a_shard_never_reorders_survivors(self, tenant, shards):
        # The defining HRW property: shrinking the fleet by one shard
        # drops that shard from every ranking without reordering it.
        full = shard_ranking(tenant, shards)
        smaller = shard_ranking(tenant, shards - 1)
        assert smaller == tuple(s for s in full if s != shards - 1)

    @given(tenant=tenants_st, shards=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_home_is_the_top_of_the_ranking(self, tenant, shards):
        assert home_shard(tenant, shards) == shard_ranking(tenant, shards)[0]

    @given(tenant=tenants_st, shards=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_ranking_is_stable_within_a_process(self, tenant, shards):
        assert shard_ranking(tenant, shards) == shard_ranking(tenant, shards)

    def test_assignment_is_balanced(self):
        # 2000 tenants over 5 shards: SHA-256 uniformity puts each
        # shard's load within a few sigma of 400; 300..500 is > 5 sigma.
        names = [f"tenant-{i}" for i in range(2000)]
        assignment = fleet_assignment(names, 5)
        loads = [0] * 5
        for home in assignment.values():
            loads[home] += 1
        assert sum(loads) == 2000
        assert all(300 <= load <= 500 for load in loads), loads

    def test_assignment_survives_interpreter_restarts(self):
        # Python's salted str hash would shift the partition between
        # processes; SHA-256 must not.  Compare against a subprocess
        # launched with a different, explicit PYTHONHASHSEED.
        names = [f"tenant-{i}" for i in range(32)]
        local = fleet_assignment(names, 4)
        code = (
            "import json, sys\n"
            "from repro.fleet import fleet_assignment\n"
            "names = [f'tenant-{i}' for i in range(32)]\n"
            "print(json.dumps(fleet_assignment(names, 4)))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(out.stdout) == local

    def test_bad_inputs_raise(self):
        with pytest.raises(FleetError):
            shard_ranking("a", 0)
        with pytest.raises(FleetError):
            shard_ranking("", 3)


# --------------------------------------------------------------------------
# Config validation.
# --------------------------------------------------------------------------

class TestFleetConfig:
    def test_round_trips_through_json(self):
        config = fleet_config(outages=(kill_shard_outage(1, 10, 5, seed=7),))
        data = json.loads(json.dumps(config.as_dict()))
        assert FleetConfig.from_dict(data) == config

    def test_outage_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(shards=2, outages=(kill_shard_outage(2, 10),))

    def test_duplicate_outage_shard_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(
                shards=3,
                outages=(kill_shard_outage(1, 5), kill_shard_outage(1, 9)),
            )

    def test_revive_at(self):
        assert kill_shard_outage(0, 10).revive_at is None
        assert kill_shard_outage(0, 10, 6).revive_at == 16

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(shards=0)


# --------------------------------------------------------------------------
# Routing end-to-end on a tiny machine.
# --------------------------------------------------------------------------

class TestRouting:
    def test_clean_submit_is_admitted_on_home(self):
        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                response = await fleet.submit("a", ar())
                await fleet.drain()
                return response, fleet.stats()

        response, stats = run(go())
        assert response.outcome is FleetOutcome.ADMITTED
        assert response.shard == response.home == home_shard("a", 3)
        assert response.attempts == (response.home,)
        assert response.latency_s is not None and response.latency_s > 0
        assert stats["admitted"] == 1 and stats["reroutes"] == 0

    def test_killed_home_reroutes_to_next_in_ranking(self):
        tenant = "a"
        home = home_shard(tenant, 3)
        backup = shard_ranking(tenant, 3)[1]

        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                await fleet.inject_outage(kill_shard_outage(home, 0))
                response = await fleet.submit(tenant, ar())
                await fleet.drain()
                return response, fleet.health.state(home)

        response, state = run(go())
        assert state is ShardHealth.DOWN
        assert response.outcome is FleetOutcome.REROUTED
        assert response.home == home
        assert response.shard == backup
        assert response.admitted

    def test_revive_restores_the_home_shard(self):
        tenant = "a"
        home = home_shard(tenant, 3)

        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                await fleet.inject_outage(kill_shard_outage(home, 0))
                rerouted = await fleet.submit(tenant, ar())
                await fleet.revive_shard(home)
                restored = await fleet.submit(tenant, ar())
                await fleet.drain()
                generation = fleet.shards[home].generation
                return rerouted, restored, generation

        rerouted, restored, generation = run(go())
        assert rerouted.outcome is FleetOutcome.REROUTED
        assert restored.outcome is FleetOutcome.ADMITTED
        assert restored.shard == home
        assert generation == 1  # fresh service after the kill

    def test_all_shards_down_fails_explicitly(self):
        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                for shard in range(3):
                    await fleet.inject_outage(kill_shard_outage(shard, 0))
                response = await fleet.submit("a", ar())
                fleet.check_conservation()
                return response

        response = run(go())
        assert response.outcome is FleetOutcome.FAILED
        assert response.shard is None
        assert response.attempts == ()
        assert "no serving shard" in response.reason

    def test_invalid_request_rejected_at_the_fleet_edge(self):
        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                # A root beyond the machine is invalid on every
                # identical shard, so no retry is burned.
                return await fleet.submit(
                    "a",
                    CollectiveRequest(
                        Collective.ALL_REDUCE, payload_bytes=64, root=99
                    ),
                )

        response = run(go())
        assert response.outcome is FleetOutcome.REJECTED
        assert response.attempts == ()

    def test_unserved_pattern_rejected_at_the_fleet_edge(self):
        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                return await fleet.submit(
                    "a",
                    CollectiveRequest(
                        Collective.BROADCAST, payload_bytes=64
                    ),
                )

        response = run(go())
        assert response.outcome is FleetOutcome.REJECTED
        assert "broadcast" in response.reason

    def test_scheduled_outage_triggers_on_submission_count(self):
        tenant = "a"
        home = home_shard(tenant, 3)
        config = fleet_config(
            outages=(kill_shard_outage(home, 3, 3),)
        )

        async def go():
            async with FleetRouter(config, TINY) as fleet:
                outcomes = []
                for _ in range(9):
                    outcomes.append((await fleet.submit(tenant, ar())).outcome)
                await fleet.drain()
                return outcomes, fleet.stats()

        outcomes, stats = run(go())
        # The kill fires during the submit that brings the fleet
        # counter to 3 (submission index 2); the revive three later.
        assert outcomes[:2] == [FleetOutcome.ADMITTED] * 2
        assert outcomes[2:5] == [FleetOutcome.REROUTED] * 3
        assert outcomes[5:] == [FleetOutcome.ADMITTED] * 4
        transitions = stats["transitions"]
        assert [t["new"] for t in transitions] == ["down", "healthy"]
        assert [t["at_submission"] for t in transitions] == [3, 6]

    def test_submit_before_start_raises(self):
        fleet = FleetRouter(fleet_config(), TINY)
        with pytest.raises(FleetError):
            run(fleet.submit("a", ar()))

    def test_conservation_accounts_for_every_outcome(self):
        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                await fleet.submit("a", ar())
                await fleet.submit(
                    "a",
                    CollectiveRequest(
                        Collective.ALL_REDUCE, payload_bytes=64, root=99
                    ),
                )
                await fleet.drain()
                stats = fleet.stats()  # calls check_conservation
                return stats

        stats = run(go())
        assert stats["submitted"] == 2
        assert (
            stats["admitted"] + stats["rerouted"]
            + stats["rejected"] + stats["failed"]
        ) == 2

    def test_merged_metrics_fold_fleet_and_shard_families(self):
        async def go():
            async with FleetRouter(fleet_config(), TINY) as fleet:
                for _ in range(4):
                    await fleet.submit("a", ar())
                await fleet.drain()
                return fleet.merged_metrics()

        merged = run(go())
        assert merged.counter("fleet.submitted").value == 4
        assert merged.counter("fleet.admitted").value == 4
        label = {"shard": f"shard-{home_shard('a', 3)}"}
        assert merged.counter("fleet.shard.admitted", label).value == 4


# --------------------------------------------------------------------------
# FIFO preservation under rerouting.
# --------------------------------------------------------------------------

class TestTenantFifo:
    @given(
        seed=st.integers(0, 2**16),
        kill_after=st.integers(0, 12),
        duration=st.integers(0, 8),
    )
    @settings(max_examples=8, deadline=None)
    def test_reroute_never_reorders_a_tenant_stream(
        self, seed, kill_after, duration
    ):
        # One tenant submits sequentially while its home shard dies and
        # (maybe) revives mid-stream.  Per shard *generation* (a revive
        # restarts the simulated clock), the tenant's admitted requests
        # must start service in submission order — rerouting moves the
        # stream, it never shuffles it.
        tenant = "fifo-tenant"
        home = home_shard(tenant, 3)
        config = fleet_config(
            outages=(
                ShardOutageConfig(
                    shard=home,
                    after_submissions=kill_after,
                    duration_submissions=duration,
                    seed=seed,
                ),
            )
        )

        async def go():
            async with FleetRouter(config, TINY) as fleet:
                responses = []
                for _ in range(16):
                    responses.append(await fleet.submit(tenant, ar(4)))
                await fleet.drain()
                fleet.check_conservation()
                return responses

        responses = run(go())
        assert [r.sequence for r in responses] == sorted(
            r.sequence for r in responses
        )
        assert all(r.outcome in FleetOutcome for r in responses)
        per_shard: dict[tuple[int, int], list[float]] = {}
        for response in responses:
            if not response.admitted:
                continue
            group = (response.shard, response.generation)
            per_shard.setdefault(group, []).append(
                response.response.start_s
            )
        for group, starts in per_shard.items():
            assert starts == sorted(starts), f"shard {group} reordered"


class TestDefaults:
    def test_default_fleet_config_shape(self):
        config = default_fleet_config()
        assert config.shards == 3
        assert config.max_reroutes == 2
        assert config.outages == ()
