"""Static schedules: functional correctness against the reference."""

import numpy as np
import pytest

from repro.collectives import Collective, CollectiveRequest, ReduceOp, functional
from repro.core import (
    Shape,
    allreduce_schedule,
    alltoall_schedule,
    broadcast_schedule,
    build_schedule,
    execute_schedule,
    owned_range,
    reduce_scatter_schedule,
)
from repro.errors import ScheduleError

from .conftest import make_buffers

SHAPES = [
    Shape(2, 2, 2),
    Shape(4, 2, 2),
    Shape(2, 4, 2),
    Shape(2, 2, 4),
    Shape(8, 1, 1),
    Shape(1, 8, 1),
    Shape(1, 1, 4),
    Shape(4, 4, 1),
    Shape(3, 2, 2),  # non-power-of-two banks
    Shape(2, 3, 2),  # non-power-of-two chips
]


def reference(pattern, buffers, op=ReduceOp.SUM, root=0):
    e = buffers[0].size
    return functional.execute(
        CollectiveRequest(
            pattern, e * 8, dtype=np.dtype(np.int64), op=op, root=root
        ),
        buffers,
    )


class TestShape:
    def test_dpu_coords_round_trip(self):
        shape = Shape(4, 3, 2)
        for d in range(shape.num_dpus):
            r, c, b = shape.coords(d)
            assert shape.dpu(r, c, b) == d

    def test_rank_is_fastest_axis(self):
        shape = Shape(2, 2, 2)
        assert shape.coords(0) == (0, 0, 0)
        assert shape.coords(1) == (1, 0, 0)
        assert shape.coords(2) == (0, 1, 0)
        assert shape.coords(4) == (0, 0, 1)

    def test_invalid_coords_rejected(self):
        with pytest.raises(ScheduleError):
            Shape(2, 2, 2).dpu(2, 0, 0)
        with pytest.raises(ScheduleError):
            Shape(2, 2, 2).coords(8)

    def test_zero_dimension_rejected(self):
        with pytest.raises(ScheduleError):
            Shape(0, 1, 1)


class TestOwnedRange:
    def test_shards_tile_the_vector(self):
        shape = Shape(2, 2, 2)
        e = 64
        covered = []
        for d in range(shape.num_dpus):
            off, length = owned_range(shape, e, d)
            assert off == d * length
            covered.extend(range(off, off + length))
        assert covered == list(range(e))

    def test_indivisible_rejected(self):
        with pytest.raises(ScheduleError):
            owned_range(Shape(2, 2, 2), 30, 0)


class TestAllReduceSchedule:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_matches_reference(self, shape, rng):
        e = shape.num_dpus * 4
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(allreduce_schedule(shape, e), buffers)
        ref = reference(Collective.ALL_REDUCE, buffers)
        for a, b in zip(out, ref):
            assert np.array_equal(a, b)

    def test_min_reduction(self, rng):
        shape = Shape(2, 2, 2)
        e = 16
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(
            allreduce_schedule(shape, e), buffers, op=ReduceOp.MIN
        )
        ref = reference(Collective.ALL_REDUCE, buffers, op=ReduceOp.MIN)
        assert np.array_equal(out[0], ref[0])

    def test_phase_order_matches_table_v(self):
        sched = allreduce_schedule(Shape(2, 2, 2), 8)
        names = [p.name for p in sched.phases]
        assert names == [
            "bank-RS", "chip-RS", "rank-RS", "rank-AG", "chip-AG", "bank-AG",
        ]

    def test_degenerate_tiers_skipped(self):
        sched = allreduce_schedule(Shape(4, 1, 1), 8)
        assert [p.name for p in sched.phases] == ["bank-RS", "bank-AG"]

    def test_indivisible_elements_rejected(self):
        with pytest.raises(ScheduleError):
            allreduce_schedule(Shape(2, 2, 2), 9)


class TestReduceScatterSchedule:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_owned_shards_match_reference(self, shape, rng):
        e = shape.num_dpus * 4
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(reduce_scatter_schedule(shape, e), buffers)
        ref = reference(Collective.REDUCE_SCATTER, buffers)
        for d in range(shape.num_dpus):
            off, length = owned_range(shape, e, d)
            assert np.array_equal(out[d][off : off + length], ref[d])


class TestAllToAllSchedule:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_matches_reference(self, shape, rng):
        e = shape.num_dpus * 4
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(alltoall_schedule(shape, e), buffers)
        ref = reference(Collective.ALL_TO_ALL, buffers)
        for a, b in zip(out, ref):
            assert np.array_equal(a, b)

    def test_local_phase_is_first(self):
        sched = alltoall_schedule(Shape(2, 2, 2), 8)
        assert sched.phases[0].name == "local-copy"
        assert sched.phases[0].algorithm == "local"

    def test_rank_phase_is_unicast(self):
        sched = alltoall_schedule(Shape(2, 2, 2), 8)
        assert sched.phases[-1].algorithm == "unicast"


class TestBroadcastSchedule:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_receive_root_data(self, shape, root, rng):
        e = 8
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(broadcast_schedule(shape, e, root), buffers)
        for buf in out:
            assert np.array_equal(buf, buffers[root])

    def test_invalid_root_rejected(self):
        with pytest.raises(ScheduleError):
            broadcast_schedule(Shape(2, 2, 2), 8, root=8)


class TestBuildSchedule:
    def test_dispatch(self):
        shape = Shape(2, 2, 2)
        for pattern in (
            Collective.ALL_REDUCE,
            Collective.REDUCE_SCATTER,
            Collective.ALL_TO_ALL,
            Collective.BROADCAST,
        ):
            sched = build_schedule(pattern, shape, 8)
            assert sched.pattern is pattern

    def test_every_pattern_has_a_generator(self):
        shape = Shape(2, 2, 2)
        for pattern in Collective:
            sched = build_schedule(pattern, shape, 8)
            assert sched.pattern is pattern


class TestExecutorValidation:
    def test_wrong_buffer_count(self, rng):
        sched = allreduce_schedule(Shape(2, 2, 2), 8)
        with pytest.raises(ScheduleError):
            execute_schedule(sched, make_buffers(4, 8, rng))

    def test_wrong_buffer_size(self, rng):
        sched = allreduce_schedule(Shape(2, 2, 2), 8)
        with pytest.raises(ScheduleError):
            execute_schedule(sched, make_buffers(8, 16, rng))
