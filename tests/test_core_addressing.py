"""Algorithm 1: address generation and traffic-timing offsets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import Collective, CollectiveRequest
from repro.config import (
    pimnet_sim_system,
    small_test_system,
    upmem_server,
)
from repro.core import (
    AllReduceAddressGenerator,
    PimnetBackend,
    Shape,
    alltoall_send_addresses,
)
from repro.errors import ScheduleError
from repro.memory import AddressMap


@pytest.fixture
def generator(machine):
    backend = PimnetBackend(machine)
    shape = Shape(8, 8, 4)
    return AllReduceAddressGenerator(
        shape, num_elements=shape.num_dpus * 8, model=backend.model
    )


class TestAllReduceAddresses:
    def test_bank_rs_address_matches_algorithm_1(self, generator):
        """Addr_s = Addr_B + D/N_B * ((I_B + N_B - 1) % N_B) for the ring
        RS first send (the segment one position behind)."""
        shape = generator.shape
        seg = generator.num_elements // shape.banks
        for dpu in (0, 17, 100, 255):
            _, _, bank = shape.coords(dpu)
            plan = generator.plan(dpu).phase("bank", "RS")
            assert plan.start_address == seg * ((bank - 1) % shape.banks)
            assert plan.segment_elements == seg
            assert plan.start_offset_s == 0.0

    def test_bank_ag_address_is_own_segment(self, generator):
        shape = generator.shape
        seg = generator.num_elements // shape.banks
        plan = generator.plan(9).phase("bank", "AG")
        _, _, bank = shape.coords(9)
        assert plan.start_address == seg * bank

    def test_phase_offsets_are_ordered(self, generator):
        """RS phases start bank -> chip -> rank; AG mirrors after them."""
        plan = generator.plan(3)
        offsets = {
            (p.domain, p.phase): p.start_offset_s for p in plan.phases
        }
        assert offsets[("bank", "RS")] <= offsets[("chip", "RS")]
        assert offsets[("chip", "RS")] <= offsets[("rank", "RS")]
        assert offsets[("rank", "RS")] <= offsets[("rank", "AG")]
        assert offsets[("rank", "AG")] <= offsets[("chip", "AG")]
        assert offsets[("chip", "AG")] <= offsets[("bank", "AG")]

    def test_bank_ag_offset_formula(self, generator):
        """offset(bank AG) = T_RS_B + T_RS_C + T_RS_R + T_AG_R + T_AG_C."""
        plan = generator.plan(0).phase("bank", "AG")
        expected = (
            generator.t_rs_bank
            + generator.t_rs_chip
            + generator.t_rs_rank
            + generator.t_ag_rank
            + generator.t_ag_chip
        )
        assert plan.start_offset_s == pytest.approx(expected)

    def test_total_time_consistent_with_model(self, generator, machine):
        backend = PimnetBackend(machine)
        tiers = backend.model._tier_times(
            CollectiveRequest(
                Collective.ALL_REDUCE, generator.num_elements * 8
            )
        )
        assert generator.total_time_s == pytest.approx(
            tiers.bank_s + tiers.chip_s + tiers.rank_s
        )

    def test_all_plans_cover_all_banks(self, generator):
        plans = generator.all_plans()
        assert len(plans) == generator.shape.num_dpus
        assert [p.dpu for p in plans] == list(range(len(plans)))

    def test_missing_phase_raises(self, generator):
        with pytest.raises(ScheduleError):
            generator.plan(0).phase("bank", "XX")

    def test_indivisible_elements_rejected(self, machine):
        backend = PimnetBackend(machine)
        with pytest.raises(ScheduleError):
            AllReduceAddressGenerator(
                Shape(8, 8, 4), num_elements=100, model=backend.model
            )

    def test_base_address_offsets_everything(self, machine):
        backend = PimnetBackend(machine)
        shape = Shape(2, 2, 2)
        gen0 = AllReduceAddressGenerator(shape, 32, backend.model)
        gen9 = AllReduceAddressGenerator(
            shape, 32, backend.model, base_address=1000
        )
        for d in range(shape.num_dpus):
            for p0, p9 in zip(gen0.plan(d).phases, gen9.plan(d).phases):
                assert p9.start_address == p0.start_address + 1000


class TestAllToAllAddresses:
    def test_send_addresses_are_destination_indexed(self):
        """Fig 9(b): the chunk for N_j sits at base + j*chunk."""
        shape = Shape(2, 2, 2)
        addresses = alltoall_send_addresses(shape, 64, dpu=3)
        chunk = 64 // shape.num_dpus
        assert len(addresses) == shape.num_dpus - 1
        for dst, address in addresses:
            assert dst != 3
            assert address == dst * chunk

    def test_addresses_cover_all_peers(self):
        shape = Shape(2, 2, 2)
        addresses = alltoall_send_addresses(shape, 64, dpu=0)
        assert sorted(dst for dst, _ in addresses) == list(range(1, 8))

    def test_invalid_dpu_rejected(self):
        with pytest.raises(ScheduleError):
            alltoall_send_addresses(Shape(2, 2, 2), 64, dpu=8)

    def test_indivisible_rejected(self):
        with pytest.raises(ScheduleError):
            alltoall_send_addresses(Shape(2, 2, 2), 63, dpu=0)


# ---------------------------------------------------------------------------
# Hypothesis properties: the hierarchical address maps round-trip and
# never alias distinct (rank, chip, bank, offset) tuples.
# ---------------------------------------------------------------------------

#: All preset machine geometries (Table VI sim system, real UPMEM
#: server, and the tiny test machine).
PRESET_SYSTEMS = {
    "small_test_system": small_test_system().system,
    "pimnet_sim_system": pimnet_sim_system().system,
    "upmem_server": upmem_server().system,
}

hyp_dims = st.integers(min_value=1, max_value=5)
hyp_shapes = st.builds(Shape, banks=hyp_dims, chips=hyp_dims, ranks=hyp_dims)


class TestShapeAddressingProperties:
    @given(shape=hyp_shapes)
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, shape):
        """coords(dpu(r, c, b)) == (r, c, b) over the whole grid."""
        for rank in range(shape.ranks):
            for chip in range(shape.chips):
                for bank in range(shape.banks):
                    dpu = shape.dpu(rank, chip, bank)
                    assert shape.coords(dpu) == (rank, chip, bank)

    @given(shape=hyp_shapes)
    @settings(max_examples=60, deadline=None)
    def test_no_two_tuples_alias(self, shape):
        """The flat id is a bijection: distinct coordinate tuples map to
        distinct ids, and every id in [0, N) is hit."""
        ids = {
            shape.dpu(rank, chip, bank)
            for rank in range(shape.ranks)
            for chip in range(shape.chips)
            for bank in range(shape.banks)
        }
        assert ids == set(range(shape.num_dpus))


@st.composite
def plan_cases(draw):
    shape = draw(hyp_shapes)
    per_dpu = draw(st.integers(min_value=1, max_value=8))
    return shape, shape.num_dpus * per_dpu


class TestAllReducePlanProperties:
    @given(case=plan_cases())
    @settings(max_examples=40, deadline=None)
    def test_bank_ag_addresses_partition_the_vector(self, case):
        """Within each chip, the per-bank AG segments tile [0, E) with
        no overlap — two banks never own the same address."""
        shape, num_elements = case
        model = PimnetBackend(pimnet_sim_system()).model
        generator = AllReduceAddressGenerator(shape, num_elements, model)
        seg = num_elements // shape.banks
        for rank in range(shape.ranks):
            for chip in range(shape.chips):
                starts = []
                for bank in range(shape.banks):
                    plan = generator.plan(shape.dpu(rank, chip, bank))
                    if shape.banks > 1:
                        starts.append(plan.phase("bank", "AG").start_address)
                if shape.banks > 1:
                    assert sorted(starts) == [
                        seg * b for b in range(shape.banks)
                    ]
                    assert len(set(starts)) == shape.banks

    @given(case=plan_cases())
    @settings(max_examples=40, deadline=None)
    def test_alltoall_sends_never_alias(self, case):
        """Every peer's chunk sits at a distinct destination-indexed
        address; no two sends from one DPU overlap."""
        shape, num_elements = case
        chunk = num_elements // shape.num_dpus
        for dpu in range(shape.num_dpus):
            addresses = alltoall_send_addresses(shape, num_elements, dpu)
            seen = set()
            for dst, address in addresses:
                assert address == dst * chunk
                assert address not in seen
                seen.add(address)


class TestAddressMapProperties:
    @pytest.mark.parametrize(
        "system", PRESET_SYSTEMS.values(), ids=PRESET_SYSTEMS.keys()
    )
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_locate_round_trips(self, system, data):
        """locate() is invertible: (dpu, mram_offset) determines the
        host address, so two distinct host bytes can never land on the
        same bank byte."""
        amap = AddressMap(system)
        address = data.draw(
            st.integers(min_value=0, max_value=amap.total_bytes - 1)
        )
        dpu, offset = amap.locate(address)
        assert 0 <= dpu < system.total_dpus
        assert 0 <= offset < system.dpu.mram_bytes
        stripe, within = divmod(offset, amap.interleave_bytes)
        rebuilt = (
            stripe * system.total_dpus + dpu
        ) * amap.interleave_bytes + within
        assert rebuilt == address

    @pytest.mark.parametrize(
        "system", PRESET_SYSTEMS.values(), ids=PRESET_SYSTEMS.keys()
    )
    def test_first_blocks_never_alias(self, system):
        """Directed: one interleave block per DPU — all distinct."""
        amap = AddressMap(system)
        targets = {
            amap.locate(block * amap.interleave_bytes)
            for block in range(system.total_dpus)
        }
        assert len(targets) == system.total_dpus
