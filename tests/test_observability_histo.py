"""The shared quantile sketch: exactness, bucketing, merge, round-trip.

The hypothesis block pins the two contracts everything else leans on:
merge is associative/commutative in every reported statistic, and a
bucketed quantile stays within one bucket's relative error
(``10**(1/buckets_per_decade) - 1``) of the exact nearest-rank answer
computed independently via numpy.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ObservabilityError
from repro.observability.histo import (
    DEFAULT_BUCKETS_PER_DECADE,
    DEFAULT_MAX_EXACT,
    LogBucketSketch,
    nearest_rank,
)


def _exact_percentile(values, q):
    """Independent nearest-rank reference on a numpy-sorted array."""
    ordered = np.sort(np.asarray(values, dtype=float))
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


class TestNearestRank:
    def test_matches_numpy_ordering(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        ordered = sorted(values)
        for q in (1, 25, 50, 75, 99, 100):
            assert nearest_rank(ordered, q) == _exact_percentile(values, q)

    def test_rejects_bad_q_and_empty(self):
        with pytest.raises(ObservabilityError, match="quantile q"):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ObservabilityError, match="quantile q"):
            nearest_rank([1.0], 101.0)
        with pytest.raises(ObservabilityError, match="empty"):
            nearest_rank([], 50.0)


class TestExactMode:
    def test_small_samples_are_exact(self):
        sketch = LogBucketSketch()
        values = [0.4, 12.0, 0.004, 3.0, 3.0, 99.0]
        for v in values:
            sketch.observe(v)
        assert not sketch.bucketed
        for q in (10, 50, 90, 99, 100):
            assert sketch.quantile(q) == _exact_percentile(values, q)

    def test_summary_stats(self):
        sketch = LogBucketSketch()
        for v in (1.0, 2.0, 3.0):
            sketch.observe(v)
        assert sketch.count == 3
        assert sketch.sum == pytest.approx(6.0)
        assert sketch.min == 1.0 and sketch.max == 3.0
        assert sketch.mean == pytest.approx(2.0)

    def test_rejects_non_finite(self):
        sketch = LogBucketSketch()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ObservabilityError, match="non-finite"):
                sketch.observe(bad)

    def test_empty_sketch(self):
        sketch = LogBucketSketch()
        assert sketch.count == 0
        assert sketch.quantile(50) is None
        assert sketch.snapshot() == {"count": 0}


class TestBucketedMode:
    def test_collapses_past_the_cap(self):
        sketch = LogBucketSketch(max_exact=10)
        for i in range(11):
            sketch.observe(1.0 + i)
        assert sketch.bucketed
        assert sketch.samples is None
        assert sketch.count == 11

    def test_bucketed_quantile_error_is_bounded(self):
        sketch = LogBucketSketch(max_exact=10)
        rng = np.random.default_rng(7)
        values = list(rng.lognormal(mean=-7.0, sigma=2.0, size=2000))
        for v in values:
            sketch.observe(v)
        bound = 10 ** (1 / DEFAULT_BUCKETS_PER_DECADE)
        for q in (50, 90, 99, 99.9):
            exact = _exact_percentile(values, q)
            estimate = sketch.quantile(q)
            assert exact * (1 - 1e-9) <= estimate <= exact * bound * (
                1 + 1e-9
            )

    def test_quantile_clamped_to_observed_range(self):
        sketch = LogBucketSketch(max_exact=2)
        for v in (1.0, 1.5, 2.0, 2.5):
            sketch.observe(v)
        assert sketch.quantile(100) <= sketch.max
        assert sketch.quantile(1) >= sketch.min

    def test_nonpositive_values_use_the_underflow_bucket(self):
        sketch = LogBucketSketch(max_exact=2)
        for v in (-1.0, 0.0, -2.0, 5.0):
            sketch.observe(v)
        assert sketch.bucketed
        assert sketch.min == -2.0
        # Half the mass is nonpositive, so p50 resolves to the minimum.
        assert sketch.quantile(50) == -2.0


class TestMerge:
    def test_merge_stays_exact_under_the_cap(self):
        a, b = LogBucketSketch(), LogBucketSketch()
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (3.0, 4.0):
            b.observe(v)
        a.merge(b)
        assert not a.bucketed
        assert a.count == 4
        assert a.quantile(100) == 4.0

    def test_merge_collapses_when_combined_count_overflows(self):
        a = LogBucketSketch(max_exact=3)
        b = LogBucketSketch(max_exact=3)
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (3.0, 4.0):
            b.observe(v)
        a.merge(b)
        assert a.bucketed
        assert a.count == 4

    def test_merge_rejects_mismatched_resolution(self):
        a = LogBucketSketch(buckets_per_decade=64)
        b = LogBucketSketch(buckets_per_decade=32)
        with pytest.raises(ObservabilityError, match="bucket resolutions"):
            a.merge(b)

    def test_merge_empty_is_identity(self):
        a = LogBucketSketch()
        a.observe(1.0)
        before = a.to_dict()
        a.merge(LogBucketSketch())
        assert a.to_dict() == before


class TestRoundTrip:
    @pytest.mark.parametrize("cap", [DEFAULT_MAX_EXACT, 4])
    def test_to_dict_json_round_trips(self, cap):
        sketch = LogBucketSketch(max_exact=cap)
        for v in (0.001, 0.5, 7.0, 7.0, 4200.0, -1.0):
            sketch.observe(v)
        wire = json.loads(json.dumps(sketch.to_dict()))
        clone = LogBucketSketch.from_dict(wire)
        assert clone.to_dict() == sketch.to_dict()
        for q in (50, 99):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_cumulative_buckets_end_at_inf(self):
        sketch = LogBucketSketch(max_exact=2)
        for v in (0.5, 1.0, 2.0, 80.0):
            sketch.observe(v)
        cumulative = sketch.cumulative_buckets()
        uppers = [u for u, _ in cumulative]
        counts = [c for _, c in cumulative]
        assert uppers == sorted(uppers)
        assert uppers[-1] == math.inf
        assert counts == sorted(counts)
        assert counts[-1] == sketch.count


# --------------------------------------------------------------------------
# Property tests (the ISSUE-mandated contracts).
# --------------------------------------------------------------------------

_positive_floats = st.floats(
    min_value=1e-9,
    max_value=1e9,
    allow_nan=False,
    allow_infinity=False,
)
_sample_lists = st.lists(_positive_floats, min_size=1, max_size=60)


def _fill(values, cap=8):
    sketch = LogBucketSketch(max_exact=cap)
    for v in values:
        sketch.observe(v)
    return sketch


def _stats(sketch):
    """Everything merge must preserve, order-independently."""
    return (
        sketch.count,
        pytest.approx(sketch.sum, rel=1e-9),
        sketch.min,
        sketch.max,
        tuple(
            pytest.approx(sketch.quantile(q), rel=1e-12)
            for q in (50, 90, 99, 99.9)
        ),
        sketch.bucketed,
    )


class TestMergeProperties:
    @given(a=_sample_lists, b=_sample_lists)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_commutative(self, a, b):
        ab = _fill(a).merge(_fill(b))
        ba = _fill(b).merge(_fill(a))
        assert _stats(ab) == _stats(ba)

    @given(a=_sample_lists, b=_sample_lists, c=_sample_lists)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = _fill(a).merge(_fill(b)).merge(_fill(c))
        right = _fill(b).merge(_fill(c))
        right = _fill(a).merge(right)
        assert _stats(left) == _stats(right)

    @given(values=st.lists(_positive_floats, min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_quantiles_within_one_bucket_of_numpy(self, values):
        sketch = _fill(values, cap=4)
        bound = 10 ** (1 / sketch.buckets_per_decade)
        for q in (50, 90, 99, 99.9):
            exact = _exact_percentile(values, q)
            estimate = sketch.quantile(q)
            if not sketch.bucketed:
                assert estimate == exact
            else:
                assert exact * (1 - 1e-9) <= estimate
                assert estimate <= exact * bound * (1 + 1e-9)
