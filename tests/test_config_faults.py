"""Fault-model and campaign configuration: eager validation."""

import pytest

from repro.config import (
    FaultCampaignConfig,
    FaultModelConfig,
    small_test_system,
)
from repro.errors import FaultConfigError


class TestFaultModelValidation:
    def test_defaults_are_fault_free(self):
        model = FaultModelConfig()
        assert model.fault_free

    @pytest.mark.parametrize("name", [
        "bank_fail_stop_rate",
        "bank_straggler_rate",
        "chip_link_fail_rate",
        "chip_link_degrade_rate",
        "rank_bus_stall_rate",
        "flit_corruption_rate",
    ])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, name, value):
        with pytest.raises(FaultConfigError, match="probability"):
            FaultModelConfig(**{name: value})

    @pytest.mark.parametrize("name", [
        "straggler_severity", "chip_link_degrade_factor",
    ])
    def test_severities_below_one_rejected(self, name):
        with pytest.raises(FaultConfigError, match=">= 1"):
            FaultModelConfig(**{name: 0.5})

    def test_negative_stall_duration_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultModelConfig(rank_bus_stall_s=-1e-6)

    def test_negative_retry_penalty_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultModelConfig(retry_penalty_flits=-1)

    def test_nonpositive_sync_timeout_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultModelConfig(sync_timeout_s=0.0)

    def test_negative_max_retries_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultModelConfig(max_retries=-1)

    def test_any_nonzero_rate_is_not_fault_free(self):
        assert not FaultModelConfig(bank_straggler_rate=0.1).fault_free

    def test_nan_rates_rejected(self):
        # `0 <= nan <= 1` is false, so the rate check already trips;
        # pinned here so a refactor cannot regress it.
        with pytest.raises(FaultConfigError):
            FaultModelConfig(flit_corruption_rate=float("nan"))

    @pytest.mark.parametrize("name", [
        "straggler_severity", "chip_link_degrade_factor",
        "rank_bus_stall_s", "sync_timeout_s",
    ])
    def test_nan_and_inf_durations_rejected(self, name):
        # NaN used to pass the bare `< 1` / `< 0` checks (all NaN
        # comparisons are false) and poison campaign cost models.
        for bad in (float("nan"), float("inf")):
            with pytest.raises(FaultConfigError):
                FaultModelConfig(**{name: bad})


class TestFaultModelScaled:
    def test_scales_every_rate(self):
        model = FaultModelConfig(
            bank_straggler_rate=0.1, rank_bus_stall_rate=0.2
        )
        doubled = model.scaled(2.0)
        assert doubled.bank_straggler_rate == pytest.approx(0.2)
        assert doubled.rank_bus_stall_rate == pytest.approx(0.4)

    def test_clamps_to_one(self):
        model = FaultModelConfig(bank_straggler_rate=0.6)
        assert model.scaled(10.0).bank_straggler_rate == 1.0

    def test_zero_factor_is_fault_free(self):
        model = FaultModelConfig(
            bank_fail_stop_rate=0.5, flit_corruption_rate=0.5
        )
        assert model.scaled(0.0).fault_free

    def test_severities_untouched(self):
        model = FaultModelConfig(
            bank_straggler_rate=0.1, straggler_severity=4.0
        )
        assert model.scaled(3.0).straggler_severity == 4.0

    def test_negative_factor_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultModelConfig().scaled(-1.0)


class TestFaultModelSerialization:
    def test_roundtrip(self):
        model = FaultModelConfig(
            bank_straggler_rate=0.25, straggler_severity=3.0
        )
        assert FaultModelConfig.from_dict(model.as_dict()) == model

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault model"):
            FaultModelConfig.from_dict({"bank_melt_rate": 0.1})


class TestCampaignValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(FaultConfigError, match="name"):
            FaultCampaignConfig(name="")

    def test_negative_seed_rejected(self):
        with pytest.raises(FaultConfigError, match="seed"):
            FaultCampaignConfig(name="c", seed=-1)

    def test_zero_trials_rejected(self):
        with pytest.raises(FaultConfigError, match="trial"):
            FaultCampaignConfig(name="c", trials=0)

    def test_zero_payload_rejected(self):
        with pytest.raises(FaultConfigError, match="payload"):
            FaultCampaignConfig(name="c", payload_bytes=0)

    @pytest.mark.parametrize("target,message", [
        ("dimm:0", "unknown fault target kind"),
        ("bank:0:1", "coordinate"),
        ("bus:3", "coordinate"),
        ("bank:0:x:1", "non-integer"),
        ("chip:-1:0", "negative"),
    ])
    def test_malformed_targets_rejected_at_construction(
        self, target, message
    ):
        with pytest.raises(FaultConfigError, match=message):
            FaultCampaignConfig(name="c", targets=(target,))


class TestCampaignValidateFor:
    """Satellite: specs naming components outside the machine topology
    are rejected eagerly, before any sweep point runs."""

    def test_in_range_targets_accepted(self):
        campaign = FaultCampaignConfig(
            name="c",
            targets=("bank:1:1:1", "chip:0:1", "rank:1", "bus"),
        )
        campaign.validate_for(small_test_system().system)  # no raise

    @pytest.mark.parametrize("target", [
        "bank:2:0:0",   # rank axis out of range on a 2x2x2 machine
        "bank:0:2:0",   # chip axis
        "bank:0:0:2",   # bank axis
        "chip:0:2",
        "rank:2",
    ])
    def test_out_of_topology_targets_rejected(self, target):
        campaign = FaultCampaignConfig(name="c", targets=(target,))
        with pytest.raises(FaultConfigError, match="out of range"):
            campaign.validate_for(small_test_system().system)


class TestCampaignFromDict:
    def test_full_spec_roundtrip(self):
        campaign = FaultCampaignConfig.from_dict({
            "name": "bathtub",
            "seed": 7,
            "trials": 4,
            "payload_bytes": 4096,
            "targets": ["bus"],
            "model": {"bank_straggler_rate": 0.5,
                      "straggler_severity": 2.0},
        })
        assert campaign.name == "bathtub"
        assert campaign.seed == 7
        assert campaign.targets == ("bus",)
        assert campaign.model.bank_straggler_rate == 0.5

    def test_unknown_campaign_field_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown campaign"):
            FaultCampaignConfig.from_dict({"name": "c", "warp": 9})

    def test_non_object_spec_rejected(self):
        with pytest.raises(FaultConfigError, match="JSON object"):
            FaultCampaignConfig.from_dict(["nope"])

    def test_non_object_model_rejected(self):
        with pytest.raises(FaultConfigError, match="'model'"):
            FaultCampaignConfig.from_dict({"name": "c", "model": 3})

    def test_missing_name_surfaces_as_config_error(self):
        with pytest.raises(FaultConfigError, match="invalid campaign"):
            FaultCampaignConfig.from_dict({"trials": 4})
