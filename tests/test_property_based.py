"""Hypothesis property tests on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    Collective,
    CollectiveRequest,
    ReduceOp,
    functional,
)
from repro.config import PimSystemConfig
from repro.core import (
    Shape,
    allreduce_schedule,
    alltoall_schedule,
    execute_schedule,
    owned_range,
)
from repro.memory import AddressMap, SparseMemory
from repro.topology import Topology

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

dims = st.integers(min_value=1, max_value=4)
shapes = st.builds(Shape, banks=dims, chips=dims, ranks=dims)


@st.composite
def shape_and_buffers(draw):
    shape = draw(shapes)
    per_dpu = draw(st.integers(min_value=1, max_value=4))
    e = shape.num_dpus * per_dpu
    values = draw(
        st.lists(
            st.lists(
                st.integers(min_value=-1000, max_value=1000),
                min_size=e,
                max_size=e,
            ),
            min_size=shape.num_dpus,
            max_size=shape.num_dpus,
        )
    )
    buffers = [np.array(v, dtype=np.int64) for v in values]
    return shape, buffers


# ---------------------------------------------------------------------------
# functional collectives
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestFunctionalProperties:
    @given(data=shape_and_buffers())
    @settings(max_examples=40, deadline=None)
    def test_allreduce_invariant_sum(self, data):
        """Every output equals the element-wise sum, regardless of shape."""
        shape, buffers = data
        req = CollectiveRequest(
            Collective.ALL_REDUCE,
            buffers[0].size * 8,
            dtype=np.dtype(np.int64),
        )
        outputs = functional.execute(req, buffers)
        expected = np.sum(buffers, axis=0)
        for out in outputs:
            assert np.array_equal(out, expected)

    @given(data=shape_and_buffers())
    @settings(max_examples=40, deadline=None)
    def test_reduce_scatter_concat_equals_allreduce(self, data):
        shape, buffers = data
        e = buffers[0].size
        rs = functional.execute(
            CollectiveRequest(
                Collective.REDUCE_SCATTER, e * 8, dtype=np.dtype(np.int64)
            ),
            buffers,
        )
        ar = functional.execute(
            CollectiveRequest(
                Collective.ALL_REDUCE, e * 8, dtype=np.dtype(np.int64)
            ),
            buffers,
        )
        assert np.array_equal(np.concatenate(rs), ar[0])

    @given(data=shape_and_buffers())
    @settings(max_examples=40, deadline=None)
    def test_alltoall_preserves_multiset(self, data):
        """A2A permutes data: global multiset of elements is conserved."""
        shape, buffers = data
        e = buffers[0].size
        outputs = functional.execute(
            CollectiveRequest(
                Collective.ALL_TO_ALL, e * 8, dtype=np.dtype(np.int64)
            ),
            buffers,
        )
        before = np.sort(np.concatenate(buffers))
        after = np.sort(np.concatenate(outputs))
        assert np.array_equal(before, after)

    @given(
        data=shape_and_buffers(),
        op=st.sampled_from([ReduceOp.SUM, ReduceOp.MIN, ReduceOp.MAX]),
    )
    @settings(max_examples=40, deadline=None)
    def test_allreduce_is_permutation_invariant(self, data, op):
        """Reduction result does not depend on DPU ordering."""
        shape, buffers = data
        e = buffers[0].size
        req = CollectiveRequest(
            Collective.ALL_REDUCE, e * 8, dtype=np.dtype(np.int64), op=op
        )
        forward = functional.execute(req, buffers)
        backward = functional.execute(req, list(reversed(buffers)))
        assert np.array_equal(forward[0], backward[0])


# ---------------------------------------------------------------------------
# static schedules
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestScheduleProperties:
    @given(data=shape_and_buffers())
    @settings(max_examples=25, deadline=None)
    def test_allreduce_schedule_matches_functional(self, data):
        shape, buffers = data
        e = buffers[0].size
        out = execute_schedule(allreduce_schedule(shape, e), buffers)
        expected = np.sum(buffers, axis=0)
        for buf in out:
            assert np.array_equal(buf, expected)

    @given(data=shape_and_buffers())
    @settings(max_examples=25, deadline=None)
    def test_alltoall_schedule_matches_functional(self, data):
        shape, buffers = data
        e = buffers[0].size
        out = execute_schedule(alltoall_schedule(shape, e), buffers)
        ref = functional.execute(
            CollectiveRequest(
                Collective.ALL_TO_ALL, e * 8, dtype=np.dtype(np.int64)
            ),
            buffers,
        )
        for a, b in zip(out, ref):
            assert np.array_equal(a, b)

    @given(shape=shapes, per_dpu=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_owned_ranges_partition_vector(self, shape, per_dpu):
        e = shape.num_dpus * per_dpu
        seen = np.zeros(e, dtype=bool)
        for d in range(shape.num_dpus):
            off, length = owned_range(shape, e, d)
            assert not seen[off : off + length].any()
            seen[off : off + length] = True
        assert seen.all()


# ---------------------------------------------------------------------------
# memory substrate
# ---------------------------------------------------------------------------


class TestMemoryProperties:
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4000),
                st.binary(min_size=1, max_size=64),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sparse_memory_acts_like_bytearray(self, writes):
        mem = SparseMemory(8192, page_bytes=128)
        shadow = bytearray(8192)
        for address, data in writes:
            if address + len(data) > 8192:
                continue
            mem.write(address, data)
            shadow[address : address + len(data)] = data
        assert bytes(mem.read(0, 8192)) == bytes(shadow)

    @given(
        start=st.integers(min_value=0, max_value=10_000),
        length=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_address_map_slices_are_a_partition(self, start, length):
        amap = AddressMap(
            PimSystemConfig(
                banks_per_chip=2, chips_per_rank=2, ranks_per_channel=2
            ),
            interleave_bytes=256,
        )
        slices = amap.slices(start, length)
        assert sum(s.length for s in slices) == length
        cursor = 0
        for s in slices:
            assert s.host_offset == cursor
            cursor += s.length
            # each slice must agree with pointwise locate()
            dpu, offset = amap.locate(start + s.host_offset)
            assert (dpu, offset) == (s.dpu_id, s.mram_offset)


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------


class TestTopologyProperties:
    @given(
        banks=st.integers(min_value=1, max_value=8),
        chips=st.integers(min_value=1, max_value=8),
        ranks=st.integers(min_value=1, max_value=4),
        channels=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_coord_bijection(self, banks, chips, ranks, channels):
        topo = Topology(
            PimSystemConfig(
                banks_per_chip=banks,
                chips_per_rank=chips,
                ranks_per_channel=ranks,
                num_channels=channels,
            )
        )
        ids = {topo.dpu_id(c) for c in topo.all_coords()}
        assert ids == set(range(topo.config.total_dpus))

    @given(
        banks=st.integers(min_value=2, max_value=8),
        start=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_ring_walk_returns_home(self, banks, start):
        start = start % banks
        topo = Topology(PimSystemConfig(banks_per_chip=banks))
        dpu = topo.dpu_id(
            __import__(
                "repro.topology", fromlist=["BankCoord"]
            ).BankCoord(0, 0, 0, start)
        )
        cursor = dpu
        for _ in range(banks):
            cursor = topo.ring_neighbor(cursor, +1)
        assert cursor == dpu
