"""Cross-backend property matrix: structural invariants of every timing
model over every pattern, payload, and machine scale."""

import numpy as np
import pytest

from repro.collectives import Collective, CollectiveRequest, registry
from repro.config import pimnet_sim_system
from repro.experiments.common import scaled_machine

MACHINE = pimnet_sim_system()
ALL_PATTERNS = list(Collective)
BACKENDS = ("B", "S", "MaxBW", "D", "N", "P")


def req(pattern, payload=32 * 1024):
    return CollectiveRequest(pattern, payload, dtype=np.dtype(np.int64))


def supported_pairs():
    pairs = []
    for key in BACKENDS:
        backend = registry.create(key, MACHINE)
        for pattern in ALL_PATTERNS:
            if backend.supports(pattern):
                pairs.append((key, pattern))
    return pairs


@pytest.mark.parametrize("key,pattern", supported_pairs())
class TestEveryBackendPatternPair:
    def test_time_is_positive_and_finite(self, key, pattern):
        breakdown = registry.create(key, MACHINE).timing(req(pattern))
        assert 0 < breakdown.total_s < 10.0

    def test_components_nonnegative(self, key, pattern):
        breakdown = registry.create(key, MACHINE).timing(req(pattern))
        for name, value in breakdown.as_dict().items():
            assert value >= 0, name

    def test_monotone_in_payload(self, key, pattern):
        backend = registry.create(key, MACHINE)
        small = backend.timing(req(pattern, 8 * 1024)).total_s
        large = backend.timing(req(pattern, 128 * 1024)).total_s
        assert large > small

    def test_timing_deterministic(self, key, pattern):
        backend = registry.create(key, MACHINE)
        a = backend.timing(req(pattern)).total_s
        b = backend.timing(req(pattern)).total_s
        assert a == b

    def test_run_matches_timing(self, key, pattern):
        backend = registry.create(key, MACHINE)
        result = backend.run(req(pattern))
        assert result.time_s == pytest.approx(
            backend.timing(req(pattern)).total_s
        )


class TestScaleMonotonicity:
    @pytest.mark.parametrize("pattern", [
        Collective.ALL_REDUCE, Collective.ALL_TO_ALL,
    ])
    def test_host_backends_degrade_linearly_with_dpus(self, pattern):
        """Host-path time is dominated by N x payload gathers."""
        t64 = registry.create(
            "B", scaled_machine(MACHINE, 64)
        ).timing(req(pattern)).total_s
        t256 = registry.create(
            "B", scaled_machine(MACHINE, 256)
        ).timing(req(pattern)).total_s
        assert 3.0 < t256 / t64 < 4.5

    def test_pimnet_allreduce_is_nearly_scale_free(self):
        """Ring phases depend on tier sizes, not total DPU count."""
        t64 = registry.create(
            "P", scaled_machine(MACHINE, 64)
        ).timing(req(Collective.ALL_REDUCE)).total_s
        t256 = registry.create(
            "P", scaled_machine(MACHINE, 256)
        ).timing(req(Collective.ALL_REDUCE)).total_s
        assert t256 / t64 < 1.5

    def test_pimnet_alltoall_grows_with_scale(self):
        """A2A total traffic grows with N, so even PIMnet slows."""
        t64 = registry.create(
            "P", scaled_machine(MACHINE, 64)
        ).timing(req(Collective.ALL_TO_ALL)).total_s
        t256 = registry.create(
            "P", scaled_machine(MACHINE, 256)
        ).timing(req(Collective.ALL_TO_ALL)).total_s
        assert t256 > 2 * t64


class TestPatternRelations:
    def test_allreduce_costs_about_two_reduce_scatters(self):
        """AR = RS + AG; on PIMnet the mirror phases cost the same."""
        backend = registry.create("P", MACHINE)
        ar = backend.timing(req(Collective.ALL_REDUCE)).total_s
        rs = backend.timing(req(Collective.REDUCE_SCATTER)).total_s
        assert 1.5 < ar / rs < 2.5

    def test_broadcast_cheaper_than_allgather(self):
        backend = registry.create("P", MACHINE)
        bc = backend.timing(req(Collective.BROADCAST)).total_s
        ag = backend.timing(req(Collective.ALL_GATHER)).total_s
        assert bc < ag

    def test_reduce_cheaper_than_allreduce_on_host_path(self):
        backend = registry.create("S", MACHINE)
        r = backend.timing(req(Collective.REDUCE)).total_s
        ar = backend.timing(req(Collective.ALL_REDUCE)).total_s
        assert r <= ar * 1.01


class TestBandwidthSensitivity:
    def test_pimnet_insensitive_to_host_links(self):
        """PIMnet never touches the host, so host-link speed is moot."""
        from dataclasses import replace

        from repro.config import HostLinkConfig

        slow_host = replace(
            MACHINE,
            host_links=HostLinkConfig(
                pim_to_cpu_bytes_per_s=1e8,
                cpu_to_pim_bytes_per_s=1e8,
                cpu_to_pim_broadcast_bytes_per_s=1e8,
                max_channel_bytes_per_s=1e9,
            ),
        )
        normal = registry.create("P", MACHINE).timing(
            req(Collective.ALL_REDUCE)
        )
        degraded = registry.create("P", slow_host).timing(
            req(Collective.ALL_REDUCE)
        )
        assert normal.total_s == pytest.approx(degraded.total_s)

    def test_baseline_insensitive_to_pimnet_fabric(self):
        from dataclasses import replace

        fast_fabric = replace(
            MACHINE,
            pimnet=MACHINE.pimnet.with_inter_bank_bandwidth(100.0),
        )
        normal = registry.create("B", MACHINE).timing(
            req(Collective.ALL_REDUCE)
        )
        boosted = registry.create("B", fast_fabric).timing(
            req(Collective.ALL_REDUCE)
        )
        assert normal.total_s == pytest.approx(boosted.total_s)
