"""Workload timing models: phase structure and calibration bands."""

import pytest

from repro.collectives import Collective
from repro.workloads import (
    BfsWorkload,
    CcWorkload,
    EmbeddingWorkload,
    GemvWorkload,
    JoinWorkload,
    MlpWorkload,
    NttWorkload,
    SpmvWorkload,
    compare_backends,
    emb_synth,
    paper_workloads,
    rm3,
)
from repro.workloads.base import CommPhase, ComputePhase, ExecutionEngine
from repro.errors import WorkloadError


class TestPhaseStructure:
    def test_gemv_alternates_compute_and_rs(self, machine):
        phases = GemvWorkload(batch=2).phases(machine)
        assert isinstance(phases[0], ComputePhase)
        assert isinstance(phases[1], CommPhase)
        assert phases[1].request.pattern is Collective.REDUCE_SCATTER
        assert len(phases) == 4

    def test_mlp_has_ar_per_layer(self, machine):
        workload = MlpWorkload(batch=1)
        comm = [
            p for p in workload.phases(machine) if isinstance(p, CommPhase)
        ]
        assert len(comm) == len(workload.layer_sizes)
        assert all(
            p.request.pattern is Collective.ALL_REDUCE for p in comm
        )

    def test_ntt_has_single_a2a_transpose(self, machine):
        comm = [
            p
            for p in NttWorkload().phases(machine)
            if isinstance(p, CommPhase)
        ]
        assert len(comm) == 1
        assert comm[0].request.pattern is Collective.ALL_TO_ALL

    def test_join_phase_order(self, machine):
        phases = JoinWorkload().phases(machine)
        kinds = [type(p).__name__ for p in phases]
        assert kinds == ["ComputePhase", "CommPhase", "ComputePhase"]

    def test_graph_workloads_iterate(self, machine):
        bfs_phases = BfsWorkload(iterations=5).phases(machine)
        assert sum(isinstance(p, CommPhase) for p in bfs_phases) == 5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            GemvWorkload(rows=0)
        with pytest.raises(WorkloadError):
            MlpWorkload(layer_sizes=())
        with pytest.raises(WorkloadError):
            NttWorkload(size=100)
        with pytest.raises(WorkloadError):
            EmbeddingWorkload(pooling=0)
        with pytest.raises(WorkloadError):
            CcWorkload(update_fraction=0)
        with pytest.raises(WorkloadError):
            JoinWorkload(num_tuples=0)
        with pytest.raises(WorkloadError):
            SpmvWorkload(rows=0)
        with pytest.raises(WorkloadError):
            BfsWorkload(iterations=0)


class TestExecutionEngine:
    def test_result_accumulates(self, machine):
        engine = ExecutionEngine(machine, "P")
        result = engine.run(CcWorkload(iterations=4))
        assert result.compute_s > 0
        assert result.comm_s > 0
        assert result.num_collectives == 4
        assert result.total_s == pytest.approx(
            result.compute_s + result.comm_s
        )

    def test_backend_key_recorded(self, machine):
        result = ExecutionEngine(machine, "B").run(GemvWorkload(batch=1))
        assert result.backend == "B"

    def test_phase_times_reported(self, machine):
        result = ExecutionEngine(machine, "P").run(NttWorkload())
        names = [name for name, _ in result.phase_times]
        assert "transpose-A2A" in names

    def test_compare_backends_skips_unsupported(self, machine):
        results = compare_backends(CcWorkload(), machine, ["B", "N", "P"])
        assert "N" not in results  # no AllReduce on NDPBridge
        assert {"B", "P"} <= set(results)

    def test_compare_backends_keeps_n_for_a2a(self, machine):
        results = compare_backends(JoinWorkload(), machine, ["B", "N", "P"])
        assert "N" in results


class TestCalibrationBands:
    """The Fig 10 anchors this reproduction is tuned to (paper values)."""

    @pytest.fixture(scope="class")
    def speedups(self):
        from repro.config import pimnet_sim_system

        machine = pimnet_sim_system()
        out = {}
        for name, workload in paper_workloads().items():
            results = compare_backends(workload, machine, ["B", "P"])
            out[name] = results["P"].speedup_over(results["B"])
        return out

    def test_cc_near_paper_5_6x(self, speedups):
        assert 4.5 <= speedups["CC"] <= 7.0

    def test_mlp_near_paper_1_3x(self, speedups):
        assert 1.1 <= speedups["MLP"] <= 1.6

    def test_spmv_near_paper_2_4x(self, speedups):
        assert 2.0 <= speedups["SpMV"] <= 4.0

    def test_join_near_paper_1_36x(self, speedups):
        assert 1.2 <= speedups["Join"] <= 1.8

    def test_rm3_is_best_emb_variant(self, speedups):
        assert speedups["RM3"] == max(
            speedups[v] for v in ("EMB_Synth", "RM1", "RM2", "RM3")
        )

    def test_headline_under_paper_max(self, speedups):
        """Paper: up to 11.8x on real applications."""
        assert max(speedups.values()) <= 13.0

    def test_cc_beats_bfs(self, speedups):
        """More communication per iteration -> larger PIMnet gain."""
        assert speedups["CC"] > speedups["BFS"]

    def test_everything_benefits(self, speedups):
        assert all(v > 1.0 for v in speedups.values())

    def test_graph_comm_fraction_near_83_percent(self):
        """Paper: AllReduce is up to 83% of graph-workload time on B."""
        from repro.config import pimnet_sim_system

        machine = pimnet_sim_system()
        result = ExecutionEngine(machine, "B").run(CcWorkload())
        assert 0.7 <= result.comm_fraction <= 0.95


class TestEmbVariants:
    def test_synth_matches_paper_config(self):
        workload = emb_synth()
        assert workload.pooling == 8
        assert workload.batch == 256
        assert workload.dim == 64
        assert workload.table_rows == 4_000_000

    def test_rm3_is_widest(self):
        assert rm3().dim == 128
        assert rm3().batch == 512
