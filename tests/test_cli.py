"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig02", "fig10", "fig13", "table04", "ablations"):
            assert key in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "table05"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "Ring(inter-bank)" in out

    def test_run_two_panel_experiment(self, capsys):
        assert main(["run", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3a" in out and "Fig 3b" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestInfo:
    def test_info_summarizes_machine(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "256 DPUs" in out
        assert "inter-rank 16.80 GB/s" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestVerify:
    def test_verify_passes(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all workloads verified" in out
        assert "GEMV" in out and "NTT" in out
