"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig02", "fig10", "fig13", "table04", "ablations"):
            assert key in out

    def test_json_mode_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        ids = {e["id"] for e in payload["experiments"]}
        assert {"fig02", "fig10", "table04"} <= ids
        assert all("summary" in e for e in payload["experiments"])


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "table05", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "Ring(inter-bank)" in out

    def test_run_two_panel_experiment(self, capsys):
        assert main(["run", "fig03", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3a" in out and "Fig 3b" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_cache_suppresses_summary_line(self, capsys):
        assert main(["run", "table05", "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().out

    def test_cached_run_reports_hits_on_second_pass(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "table05", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "cache: 0 hit(s), 1 miss(es)" in first
        assert main(["run", "table05", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "cache: 1 hit(s), 0 miss(es)" in second
        # The tables themselves must be identical either way.
        assert first.split("cache:")[0] == second.split("cache:")[0]

    def test_parallel_run_matches_serial(self, tmp_path, capsys):
        assert main(["run", "fig16", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig16", "--no-cache", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_invalid_jobs_fails(self, capsys):
        assert main(["run", "table05", "--jobs", "0", "--no-cache"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_clear_cache_flag_purges_before_running(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "table05", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["run", "table05", "--cache-dir", cache_dir,
                     "--clear-cache"]) == 0
        captured = capsys.readouterr()
        assert "cleared 1 cached result(s)" in captured.err
        assert "cache: 0 hit(s), 1 miss(es)" in captured.out


class TestRunSeed:
    def test_seed_is_echoed_and_changes_nothing_for_unseeded(
        self, capsys
    ):
        assert main(["run", "table05", "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert "seed:" not in plain
        assert main(["run", "table05", "--no-cache", "--seed", "3"]) == 0
        seeded = capsys.readouterr().out
        assert "seed: 3" in seeded
        # table05 has no seeded points; the tables are identical.
        assert seeded.split("seed:")[0].strip() == plain.strip()


class TestFaults:
    def test_list_names_every_preset(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("stragglers", "fail-stop", "mixed", "corruption"):
            assert name in out

    def test_list_json(self, capsys):
        assert main(["faults", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {c["name"] for c in payload["campaigns"]}
        assert {"stragglers", "mixed", "fail-stop"} <= names

    def test_run_preset_prints_summary(self, capsys):
        assert main(["faults", "run", "stragglers", "--trials", "2",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "campaign 'stragglers': 2 trials, seed 5" in out
        assert "completion rate" in out
        assert "p50" in out

    def test_run_json_is_deterministic(self, capsys):
        argv = ["faults", "run", "bus-stalls", "--trials", "2",
                "--seed", "1", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["seed"] == 1
        assert first["trials"] == 2

    def test_run_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps({
            "name": "from-file",
            "trials": 2,
            "payload_bytes": 65536,
            "model": {"bank_straggler_rate": 0.5,
                      "straggler_severity": 2.0},
        }))
        assert main(["faults", "run", str(spec), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "from-file"
        assert payload["trials"] == 2

    def test_unknown_campaign_fails(self, capsys):
        assert main(["faults", "run", "bogus"]) == 1
        err = capsys.readouterr().err
        assert "bogus" in err

    def test_bad_spec_file_fails_cleanly(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"name": "x", "warp_factor": 9}))
        assert main(["faults", "run", str(spec)]) == 1
        assert "warp_factor" in capsys.readouterr().err

    def test_bad_payload_override_fails(self, capsys):
        assert main(["faults", "run", "stragglers",
                     "--payload", "12XB"]) == 1

    def test_run_metrics_dump_includes_latency_histogram(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "m.json"
        assert main(["faults", "run", "mixed", "--trials", "4",
                     "--metrics", str(metrics_path)]) == 0
        assert f"wrote {metrics_path}" in capsys.readouterr().out
        metrics = json.loads(metrics_path.read_text())["metrics"]
        hist = metrics["faults.latency_s{campaign=mixed}"]
        assert hist["kind"] == "histogram"
        assert hist["count"] == 4
        assert "p999" in hist
        assert metrics["faults.campaigns"]["value"] == 1.0

    def test_run_slo_violation_exits_nonzero(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        slo.write_text(json.dumps({"objectives": [
            {"metric": "faults.latency_s", "labels": {"campaign": "mixed"},
             "stat": "p50", "op": "<", "threshold": 1e-12,
             "name": "impossible"},
        ]}))
        assert main(["faults", "run", "mixed", "--trials", "4",
                     "--metrics", str(tmp_path / "m.json"),
                     "--slo", str(slo)]) == 1
        out = capsys.readouterr().out
        assert "FAIL impossible" in out

    def test_run_slo_pass_exits_zero(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        slo.write_text(json.dumps([
            {"metric": "faults.latency_s", "labels": {"campaign": "mixed"},
             "stat": "p999", "op": "<", "threshold": 1e6},
        ]))
        assert main(["faults", "run", "mixed", "--trials", "4",
                     "--metrics", str(tmp_path / "m.json"),
                     "--slo", str(slo)]) == 0
        assert "all objectives met" in capsys.readouterr().out

    def test_slo_without_metrics_is_an_error(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        slo.write_text("[]")
        assert main(["faults", "run", "mixed", "--trials", "2",
                     "--slo", str(slo)]) == 1
        assert "--metrics" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_on_empty_cache(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path / "nope")]) == 0
        out = capsys.readouterr().out
        assert "(empty)" in out

    def test_stats_and_clear_roundtrip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig16", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "4 entries" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 4 cached result(s)" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_stats_json_mode(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "table05", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", "--cache-dir",
                     cache_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["experiments"]["table05"]["entries"] == 1


class TestInfo:
    def test_info_summarizes_machine(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "256 DPUs" in out
        assert "inter-rank 16.80 GB/s" in out

    def test_json_mode_reports_machine_and_backends(self, capsys):
        assert main(["info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"]["num_dpus"] == 256
        assert "P" in payload["backends"]
        assert payload["tiers"]["inter_rank_bytes_per_s"] > 0


class TestTrace:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "allreduce", "--payload", "1MB",
                     "--out", str(out_path), "--quiet"]) == 0
        trace = json.loads(out_path.read_text())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert "bank-RS" in names and "bank-AG" in names
        assert all(e["dur"] >= 0 for e in events)

    def test_trace_spans_match_timeline_offsets(self, tmp_path):
        from repro.core.timeline import allreduce_timeline

        out_path = tmp_path / "trace.json"
        assert main(["trace", "allreduce", "--payload", "1MB",
                     "--out", str(out_path), "--quiet"]) == 0
        trace = json.loads(out_path.read_text())
        timeline = allreduce_timeline(1 << 20)
        by_name = {
            e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"
        }
        for entry in timeline.entries:
            event = by_name[f"{entry.domain}-{entry.phase}"]
            assert event["ts"] == pytest.approx(entry.start_s * 1e6)
            assert event["dur"] == pytest.approx(entry.duration_s * 1e6)

    def test_tree_dump_on_stdout(self, capsys):
        assert main(["trace", "allreduce", "--payload", "1MB"]) == 0
        out = capsys.readouterr().out
        assert "trace/all_reduce" in out
        assert "bank-RS" in out

    def test_fallback_backend_gets_component_spans(self, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "alltoall", "--backend", "D",
                     "--payload", "32KB", "--out", str(out_path),
                     "--quiet"]) == 0
        names = {
            e["name"]
            for e in json.loads(out_path.read_text())["traceEvents"]
            if e["ph"] == "X"
        }
        assert "inter-chip" in names or "inter-rank" in names

    def test_metrics_dump(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.csv"
        assert main(["trace", "allreduce", "--payload", "1MB",
                     "--metrics", str(metrics_path), "--quiet"]) == 0
        text = metrics_path.read_text()
        assert text.startswith("name,kind,")
        assert "collective.payload_bytes" in text

    def test_unknown_collective_fails(self, capsys):
        assert main(["trace", "bogus"]) == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_bad_payload_fails(self, capsys):
        assert main(["trace", "allreduce", "--payload", "12XB"]) == 2
        assert "size" in capsys.readouterr().err

    def test_unsupported_backend_request_fails_cleanly(self, capsys):
        assert main(["trace", "allreduce", "--backend", "N",
                     "--quiet"]) == 1
        err = capsys.readouterr().err
        assert "trace failed" in err and "backend=N" in err


class TestRunInstrumented:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "run.json"
        metrics_path = tmp_path / "run-metrics.json"
        assert main(["run", "fig11", "--no-cache",
                     "--trace", str(trace_path),
                     "--metrics", str(metrics_path)]) == 0
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "experiment/fig11" in names
        metrics = json.loads(metrics_path.read_text())["metrics"]
        assert "collective.requests" in metrics


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestVerify:
    def test_verify_passes(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all workloads verified" in out
        assert "GEMV" in out and "NTT" in out
