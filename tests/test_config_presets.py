"""Machine presets: Table II / Table VI shapes."""

import pytest

from repro.config import (
    pimnet_sim_system,
    small_test_system,
    upmem_server,
)


class TestPimnetSimSystem:
    def test_table_vi_channel(self):
        machine = pimnet_sim_system()
        assert machine.system.banks_per_channel == 256
        assert machine.system.ranks_per_channel == 4
        assert machine.system.num_channels == 1

    def test_dpu_matches_table_vi(self):
        dpu = pimnet_sim_system().system.dpu
        assert dpu.frequency_hz == pytest.approx(350e6)
        assert dpu.iram_bytes == 24 * 1024
        assert dpu.wram_bytes == 64 * 1024

    def test_multi_channel_variant(self):
        machine = pimnet_sim_system(num_channels=4)
        assert machine.system.num_channels == 4
        assert machine.system.total_dpus == 1024


class TestUpmemServer:
    def test_2560_dpus(self):
        assert upmem_server().system.total_dpus == 2560

    def test_pim_capacity_at_least_table_ii(self):
        # Table II: 171 GB PIM-enabled memory (2560 x 64 MB = 160 GiB).
        capacity = upmem_server().system.pim_memory_bytes
        assert capacity == 2560 * 64 * 1024 * 1024


class TestSmallTestSystem:
    def test_eight_dpus(self):
        machine = small_test_system()
        assert machine.system.total_dpus == 8
        assert machine.system.banks_per_chip == 2
        assert machine.system.chips_per_rank == 2
        assert machine.system.ranks_per_channel == 2

    def test_shares_default_network(self):
        machine = small_test_system()
        assert machine.pimnet.inter_bank.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(0.7e9)
        )
