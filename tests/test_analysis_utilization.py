"""Schedule bandwidth-utilization analysis."""

import pytest

from repro.analysis import schedule_utilization
from repro.core import (
    Shape,
    Tier,
    allreduce_schedule,
    alltoall_schedule,
    reduce_scatter_schedule,
)
from repro.errors import ReproError


@pytest.fixture(scope="module")
def full_shape():
    return Shape(8, 8, 4)


class TestAllReduceUtilization:
    def test_ring_phases_saturate_their_tiers(self, full_shape):
        """Bandwidth parallelism: every chip's ring busy during bank
        phases, every DQ busy during chip phases."""
        report = schedule_utilization(
            allreduce_schedule(full_shape, full_shape.num_dpus * 16)
        )
        assert report.for_tier(Tier.BANK).utilization > 0.95
        assert report.for_tier(Tier.CHIP).utilization > 0.9

    def test_bytes_accounted(self, full_shape):
        e = full_shape.num_dpus * 16
        report = schedule_utilization(allreduce_schedule(full_shape, e))
        # bank tier moves 2 x (B-1)/B x payload per bank
        payload = e * 8
        expected = (
            2 * (7 / 8) * payload * full_shape.num_dpus
        )
        assert report.for_tier(Tier.BANK).bytes_moved == pytest.approx(
            expected
        )


class TestAllToAllUtilization:
    def test_bus_utilization_reflects_unicast_derating(self, full_shape):
        report = schedule_utilization(
            alltoall_schedule(full_shape, full_shape.num_dpus * 16)
        )
        rank = report.for_tier(Tier.RANK)
        assert 0.3 < rank.utilization < 0.7  # ~0.5 unicast efficiency

    def test_bank_tier_underutilized_for_a2a(self, full_shape):
        """A2A's intra-chip traffic is tiny; rings mostly idle."""
        a2a = schedule_utilization(
            alltoall_schedule(full_shape, full_shape.num_dpus * 16)
        )
        ar = schedule_utilization(
            allreduce_schedule(full_shape, full_shape.num_dpus * 16)
        )
        assert (
            a2a.for_tier(Tier.BANK).utilization
            < ar.for_tier(Tier.BANK).utilization
        )


class TestEdgeCases:
    def test_degenerate_tier_reports_zero(self):
        shape = Shape(4, 1, 1)
        report = schedule_utilization(
            reduce_scatter_schedule(shape, shape.num_dpus * 8)
        )
        assert report.for_tier(Tier.CHIP).bytes_moved == 0
        assert report.for_tier(Tier.CHIP).utilization == 0.0

    def test_missing_tier_lookup_raises(self, full_shape):
        report = schedule_utilization(
            allreduce_schedule(full_shape, full_shape.num_dpus * 16)
        )
        with pytest.raises(ReproError):
            report.for_tier(Tier.LOCAL)

    def test_utilization_capped_at_one(self, full_shape):
        report = schedule_utilization(
            allreduce_schedule(full_shape, full_shape.num_dpus * 16)
        )
        for entry in report.tiers:
            assert 0.0 <= entry.utilization <= 1.0
