"""Seeded fault sampling: reproducibility and common-random-numbers
nesting, the two properties the campaign layer builds on."""

import pytest

from repro.config import FaultModelConfig, small_test_system
from repro.errors import FaultConfigError, FaultError
from repro.faults import (
    FaultEvent,
    FaultSet,
    bank_name,
    chip_name,
    component_rng,
    corruption_uniforms,
    sample_fault_set,
)

SYSTEM = small_test_system().system

#: High enough that a 2x2x2 machine reliably samples something.
BUSY_MODEL = FaultModelConfig(
    bank_fail_stop_rate=0.3,
    bank_straggler_rate=0.3,
    straggler_severity=4.0,
    chip_link_fail_rate=0.2,
    chip_link_degrade_rate=0.3,
    rank_bus_stall_rate=0.5,
)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            FaultEvent("bank_meltdown", "bank:0:0:0")

    def test_negative_severity_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultEvent("bank_straggler", "bank:0:0:0", severity=-1.0)


class TestFaultSetAccessors:
    def test_empty_set_is_falsy_and_not_fatal(self):
        fault_set = FaultSet(events=())
        assert not fault_set
        assert not fault_set.fatal
        assert fault_set.max_straggler_multiplier == 1.0

    def test_dead_bank_is_fatal(self):
        fault_set = FaultSet(
            events=(FaultEvent("bank_fail_stop", "bank:0:0:0"),)
        )
        assert fault_set.fatal
        assert fault_set.dead_banks == ("bank:0:0:0",)

    def test_failed_chip_link_is_fatal(self):
        fault_set = FaultSet(
            events=(FaultEvent("chip_link_failed", "chip:0:1"),)
        )
        assert fault_set.fatal
        assert fault_set.failed_chip_links == ("chip:0:1",)

    def test_stragglers_are_not_fatal(self):
        fault_set = FaultSet(
            events=(FaultEvent("bank_straggler", "bank:0:0:0", 2.0),)
        )
        assert not fault_set.fatal
        assert fault_set.straggler_multipliers == {"bank:0:0:0": 2.0}
        assert fault_set.max_straggler_multiplier == 2.0

    def test_of_kind_rejects_unknown_kind(self):
        with pytest.raises(FaultError):
            FaultSet(events=()).of_kind("gamma_ray")


class TestSamplingDeterminism:
    def test_same_seed_same_faults(self):
        a = sample_fault_set(BUSY_MODEL, SYSTEM, seed=42)
        b = sample_fault_set(BUSY_MODEL, SYSTEM, seed=42)
        assert a == b

    def test_seeds_decorrelate(self):
        draws = {
            sample_fault_set(BUSY_MODEL, SYSTEM, seed=s).events
            for s in range(20)
        }
        assert len(draws) > 1

    def test_zero_rates_sample_nothing(self):
        assert not sample_fault_set(FaultModelConfig(), SYSTEM, seed=0)

    def test_negative_seed_rejected(self):
        with pytest.raises(FaultConfigError):
            component_rng(-1)

    def test_events_sorted_by_kind_then_component(self):
        events = sample_fault_set(BUSY_MODEL, SYSTEM, seed=3).events
        keys = [(e.kind, e.component) for e in events]
        assert keys == sorted(keys)

    def test_straggler_severity_within_model_bounds(self):
        for seed in range(10):
            fault_set = sample_fault_set(BUSY_MODEL, SYSTEM, seed=seed)
            for severity in fault_set.straggler_multipliers.values():
                # Draws map to the upper half of [1, severity].
                mid = 1.0 + (BUSY_MODEL.straggler_severity - 1.0) * 0.5
                assert mid <= severity <= BUSY_MODEL.straggler_severity


class TestNesting:
    """Raising a rate may only add faults — the common-random-numbers
    property that makes degradation curves monotone by construction."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fault_sets_nest_as_rates_scale(self, seed):
        low = sample_fault_set(
            BUSY_MODEL.scaled(0.5), SYSTEM, seed=seed
        )
        high = sample_fault_set(BUSY_MODEL, SYSTEM, seed=seed)
        low_keys = {(e.kind, e.component) for e in low.events}
        high_keys = {(e.kind, e.component) for e in high.events}
        # chip_link_failed can displace chip_link_degraded (a failed
        # link is no longer merely degraded), so compare per component.
        for kind, component in low_keys:
            assert (kind, component) in high_keys or (
                kind == "chip_link_degraded"
                and ("chip_link_failed", component) in high_keys
            )

    def test_corruption_counts_nest_in_rate(self):
        uniforms = corruption_uniforms(seed=5, num_flits=10_000)
        counts = [
            int((uniforms < rate).sum())
            for rate in (0.0, 0.001, 0.01, 0.1)
        ]
        assert counts == sorted(counts)
        assert counts[0] == 0

    def test_corruption_uniforms_deterministic(self):
        a = corruption_uniforms(seed=9, num_flits=128)
        b = corruption_uniforms(seed=9, num_flits=128)
        assert (a == b).all()

    def test_corruption_uniforms_negative_count_rejected(self):
        with pytest.raises(FaultError):
            corruption_uniforms(seed=0, num_flits=-1)


class TestForcedTargets:
    def test_bank_target_forces_fail_stop(self):
        fault_set = sample_fault_set(
            FaultModelConfig(), SYSTEM, seed=0, targets=("bank:0:1:0",)
        )
        assert fault_set.dead_banks == ("bank:0:1:0",)
        assert fault_set.fatal

    def test_chip_target_forces_link_failure(self):
        fault_set = sample_fault_set(
            FaultModelConfig(), SYSTEM, seed=0, targets=("chip:1:0",)
        )
        assert fault_set.failed_chip_links == ("chip:1:0",)

    def test_rank_target_kills_every_bank_of_the_rank(self):
        fault_set = sample_fault_set(
            FaultModelConfig(), SYSTEM, seed=0, targets=("rank:1",)
        )
        expected = {
            bank_name(1, c, b)
            for c in range(SYSTEM.chips_per_rank)
            for b in range(SYSTEM.banks_per_chip)
        }
        assert set(fault_set.dead_banks) == expected

    def test_bus_target_forces_stall(self):
        fault_set = sample_fault_set(
            FaultModelConfig(), SYSTEM, seed=0, targets=("bus",)
        )
        assert fault_set.bus_stalls == 1

    def test_forced_and_sampled_faults_deduplicate(self):
        always = FaultModelConfig(rank_bus_stall_rate=1.0)
        fault_set = sample_fault_set(
            always, SYSTEM, seed=0, targets=("bus",)
        )
        assert fault_set.bus_stalls == 1


class TestNames:
    def test_component_naming_scheme(self):
        assert bank_name(1, 2, 3) == "bank:1:2:3"
        assert chip_name(0, 7) == "chip:0:7"
