"""The full functional machine: host -> kernel -> PIMnet -> host."""

import numpy as np
import pytest

from repro.collectives import Collective, ReduceOp
from repro.config import small_test_system
from repro.dpu import reduce_sum_kernel, vector_add_kernel
from repro.errors import WorkloadError
from repro.machine import PimMachine


@pytest.fixture
def machine_obj() -> PimMachine:
    return PimMachine(small_test_system())


class TestStaging:
    def test_wram_round_trip(self, machine_obj, rng):
        machine_obj.runtime.allocate("buf", 1024)
        arrays = [
            rng.integers(0, 50, 16, dtype=np.int64) for _ in range(8)
        ]
        machine_obj.runtime.push("buf", arrays)
        t_in = machine_obj.stage_to_wram("buf", 128)
        assert t_in > 0
        # mutate WRAM then write back
        for bank in machine_obj.runtime.banks:
            data = bank.wram.read_array(0, 16, np.int64)
            bank.wram.write_array(0, data * 2)
        machine_obj.stage_to_mram("buf", 128)
        pulled, _ = machine_obj.runtime.pull("buf", 16, np.int64)
        for sent, got in zip(arrays, pulled):
            assert np.array_equal(got, sent * 2)

    def test_stage_length_validated(self, machine_obj):
        machine_obj.runtime.allocate("buf", 64)
        with pytest.raises(WorkloadError):
            machine_obj.stage_to_wram("buf", 128)


class TestKernels:
    def test_same_program_runs_everywhere(self, machine_obj, rng):
        n = 16
        a = rng.integers(0, 100, n).astype(np.uint32)
        b = rng.integers(0, 100, n).astype(np.uint32)
        for bank in machine_obj.runtime.banks:
            bank.wram.write_array(0, a)
            bank.wram.write_array(256, b)
        launch = machine_obj.run_kernel(
            vector_add_kernel(0, 256, 512),
            num_tasklets=4,
            init_registers={t: {1: 4, 2: n} for t in range(4)},
        )
        assert len(launch.per_dpu) == 8
        assert launch.time_s > launch.slowest_s  # + launch overhead
        for bank in machine_obj.runtime.banks:
            out = bank.wram.read_array(512, n, np.uint32)
            assert np.array_equal(out, a + b)


class TestPimnetOnMram:
    def test_allreduce_in_place(self, machine_obj, rng):
        machine_obj.runtime.allocate("buf", 1024)
        arrays = [
            rng.integers(0, 50, 16, dtype=np.int64) for _ in range(8)
        ]
        machine_obj.runtime.push("buf", arrays)
        time_s = machine_obj.pimnet_collective(
            Collective.ALL_REDUCE, "buf", 16
        )
        assert time_s > 0
        pulled, _ = machine_obj.runtime.pull("buf", 16, np.int64)
        expected = np.sum(arrays, axis=0)
        for got in pulled:
            assert np.array_equal(got, expected)

    def test_oversized_collective_rejected(self, machine_obj):
        machine_obj.runtime.allocate("buf", 64)
        with pytest.raises(WorkloadError):
            machine_obj.pimnet_collective(Collective.ALL_REDUCE, "buf", 100)


class TestEndToEndPipeline:
    def test_host_kernel_pimnet_host(self, machine_obj, rng):
        """The full Fig 5(b) flow with real data.

        Host pushes per-DPU vectors; each DPU computes per-tasklet
        partial sums with the ISA interpreter; the host-visible partial
        results are AllReduced over PIMnet; the host pulls the global
        per-tasklet sums.
        """
        n = 32
        tasklets = 4
        per_dpu = [
            rng.integers(0, 100, n).astype(np.uint32) for _ in range(8)
        ]
        machine_obj.runtime.allocate("partials", 1024)
        # load each DPU's vector into WRAM directly (kernel input)
        for bank, data in zip(machine_obj.runtime.banks, per_dpu):
            bank.wram.write_array(0, data)
        machine_obj.run_kernel(
            reduce_sum_kernel(a_base=0, out_base=2048),
            num_tasklets=tasklets,
            init_registers={t: {1: tasklets, 2: n} for t in range(tasklets)},
        )
        # move per-tasklet partials WRAM -> MRAM buffer
        for bank in machine_obj.runtime.banks:
            bank.dma_to_mram(2048, 0, tasklets * 4 if tasklets * 4 >= 8 else 8)
        total_time = machine_obj.pimnet_collective(
            Collective.ALL_REDUCE, "partials", tasklets, dtype=np.uint32
        )
        assert total_time > 0
        pulled, _ = machine_obj.runtime.pull(
            "partials", tasklets, np.uint32
        )
        global_sum = sum(int(v.sum()) for v in per_dpu)
        for got in pulled:
            assert int(got.sum()) == global_sum
