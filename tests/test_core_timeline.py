"""AllReduce execution timelines (Fig 5(d) fidelity)."""

import pytest

from repro.collectives import Collective, CollectiveRequest
from repro.config import pimnet_sim_system, small_test_system
from repro.core import PimnetBackend, allreduce_timeline, format_timeline
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def timeline():
    return allreduce_timeline(32 * 1024, pimnet_sim_system())


class TestPhaseWindows:
    def test_phase_order(self, timeline):
        order = [(e.domain, e.phase) for e in timeline.entries]
        assert order == [
            ("bank", "RS"), ("chip", "RS"), ("rank", "RS"),
            ("rank", "AG"), ("chip", "AG"), ("bank", "AG"),
        ]

    def test_phases_abut_without_gaps(self, timeline):
        for a, b in zip(timeline.entries, timeline.entries[1:]):
            assert b.start_s == pytest.approx(a.end_s, abs=1e-12)

    def test_mirror_symmetry(self, timeline):
        """RS and AG legs of each ring tier take the same time."""
        assert timeline.entry("bank", "RS").duration_s == pytest.approx(
            timeline.entry("bank", "AG").duration_s
        )
        assert timeline.entry("chip", "RS").duration_s == pytest.approx(
            timeline.entry("chip", "AG").duration_s
        )

    def test_rank_rs_longer_than_rank_ag(self, timeline):
        """The bus RS leg moves (R-1)x the AG leg's data."""
        assert (
            timeline.entry("rank", "RS").duration_s
            > timeline.entry("rank", "AG").duration_s
        )

    def test_total_matches_backend_timing(self, timeline):
        backend = PimnetBackend(pimnet_sim_system())
        breakdown = backend.timing(
            CollectiveRequest(Collective.ALL_REDUCE, 32 * 1024)
        )
        transport = (
            breakdown.inter_bank_s
            + breakdown.inter_chip_s
            + breakdown.inter_rank_s
        )
        assert timeline.total_s == pytest.approx(
            transport + breakdown.sync_s, rel=1e-6
        )


class TestSmallMachines:
    def test_single_rank_machine_has_four_phases(self):
        from dataclasses import replace

        from repro.config import PimSystemConfig

        machine = replace(
            pimnet_sim_system(),
            system=PimSystemConfig(
                banks_per_chip=8, chips_per_rank=8, ranks_per_channel=1
            ),
        )
        timeline = allreduce_timeline(64 * 8 * 8, machine)
        domains = {e.domain for e in timeline.entries}
        assert domains == {"bank", "chip"}

    def test_payload_alignment_checked(self):
        with pytest.raises(ScheduleError):
            allreduce_timeline(1000, small_test_system())


class TestRendering:
    def test_gantt_contains_every_phase(self, timeline):
        text = format_timeline(timeline)
        for label in ("bank-RS", "chip-RS", "rank-RS", "bank-AG"):
            assert label in text
        assert "#" in text

    def test_bars_are_time_ordered(self, timeline):
        text = format_timeline(timeline)
        lines = [l for l in text.splitlines() if "|" in l]
        starts = [line.index("#") for line in lines]
        assert starts == sorted(starts)


class TestPropagateStragglers:
    """Satellite of ``repro.faults``: a stretched phase pushes the start
    of every later phase — delays propagate instead of being absorbed."""

    def test_identity_with_no_factors(self, timeline):
        from repro.core import propagate_stragglers

        out = propagate_stragglers(timeline, {})
        assert out.total_s == pytest.approx(timeline.total_s)
        for before, after in zip(
            sorted(timeline.entries, key=lambda e: (e.start_s, e.domain)),
            out.entries,
        ):
            assert after.start_s == pytest.approx(before.start_s)
            assert after.duration_s == pytest.approx(before.duration_s)

    def test_bank_slowdown_pushes_every_later_phase(self, timeline):
        from repro.core import propagate_stragglers

        out = propagate_stragglers(timeline, {"bank": 2.0})
        first = out.entries[0]
        assert first.domain == "bank"
        assert first.duration_s == pytest.approx(
            2.0 * timeline.entries[0].duration_s
        )
        # Every phase after the stretched opener starts strictly later.
        base = sorted(
            timeline.entries, key=lambda e: (e.start_s, e.domain)
        )
        for before, after in zip(base[1:], out.entries[1:]):
            assert after.start_s > before.start_s

    def test_total_grows_with_any_factor(self, timeline):
        from repro.core import propagate_stragglers

        for domain in ("bank", "chip", "rank"):
            out = propagate_stragglers(timeline, {domain: 1.5})
            assert out.total_s > timeline.total_s

    def test_extra_sync_adds_to_sync_tail(self, timeline):
        from repro.core import propagate_stragglers

        out = propagate_stragglers(timeline, {}, extra_sync_s=5e-6)
        assert out.sync_s == pytest.approx(timeline.sync_s + 5e-6)
        assert out.total_s == pytest.approx(timeline.total_s + 5e-6)

    def test_factor_below_one_rejected(self, timeline):
        from repro.core import propagate_stragglers

        with pytest.raises(ScheduleError, match=">= 1"):
            propagate_stragglers(timeline, {"bank": 0.5})

    def test_negative_extra_sync_rejected(self, timeline):
        from repro.core import propagate_stragglers

        with pytest.raises(ScheduleError, match="extra_sync"):
            propagate_stragglers(timeline, {}, extra_sync_s=-1e-9)
