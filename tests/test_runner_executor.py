"""Parallel executor: determinism, error surfacing, clean shutdown.

Toy experiments registered here (and removed afterwards) keep these
tests independent of the real experiment sweeps: the toys are cheap,
their values encode their point params, and some of them misbehave on
purpose.  Parallel cases require the ``fork`` start method so worker
processes inherit the test-local registry entries.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.config import RunnerConfig, small_test_system
from repro.errors import PointExecutionError, RunnerError
from repro.experiments.common import ExperimentTable
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.runner import (
    REGISTRY,
    ExperimentSpec,
    SweepPoint,
    run_experiment,
    run_experiments,
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel toy specs need fork-inherited registry entries",
)

N_POINTS = 6


def _square_points(machine):
    return tuple(
        SweepPoint(i, {"x": i}) for i in range(N_POINTS)
    )


def _square_points_shuffled(machine):
    order = [4, 1, 5, 0, 2, 3]
    return tuple(SweepPoint(i, {"x": i}) for i in order)


def _square_point(machine, x):
    return {"x": x, "square": x * x, "pid": os.getpid()}


def _square_assemble(machine, values):
    rows = tuple((v["x"], v["square"]) for v in values)
    return (
        ExperimentTable("Toy", "squares", ("x", "x^2"), rows),
    )


def _failing_point(machine, x):
    if x == 3:
        raise ValueError(f"point {x} exploded")
    return {"x": x, "square": x * x}


def _sleepy_point(machine, x):
    time.sleep(1.5)
    return {"x": x, "square": x * x}


def _duplicate_index_points(machine):
    return (SweepPoint(0, {"x": 0}), SweepPoint(0, {"x": 1}))


def _seeded_points(machine):
    return (
        SweepPoint(0, {"x": 0, "seed": 100}),
        SweepPoint(1, {"x": 1, "seed": 100}),
        SweepPoint(2, {"x": 2}),  # unseeded: a --seed override skips it
    )


def _seeded_point(machine, x, seed=None):
    return {"x": x, "square": seed if seed is not None else -1}


def _metric_point(machine, x):
    from repro.observability.metrics import metric_counter, metric_histogram

    metric_counter("toy.points").inc()
    metric_histogram("toy.latency_s", {"shard": str(x % 2)}).observe(
        0.001 * (x + 1)
    )
    return {"x": x, "square": x * x, "pid": os.getpid()}


def _schedcache_point(machine, x):
    from repro.collectives.patterns import Collective
    from repro.core.schedule import Shape
    from repro.schedcache import active_schedule_cache

    cache = active_schedule_cache()
    shape = Shape(banks=2, chips=2, ranks=1)
    times = cache.timing(
        Collective.ALL_REDUCE,
        shape,
        shape.num_dpus * (x + 1),
        machine.pimnet,
    )
    return {
        "x": x,
        "square": x * x,
        "total_s": sum(times.values()),
        "pid": os.getpid(),
        # The worker's cache must be its own, not the parent's COW copy.
        "cache_owned": cache.stats()["pid"] == os.getpid(),
    }


TOY_SPECS = (
    ExperimentSpec(
        "toy_squares", "toy", _square_points, _square_point, _square_assemble
    ),
    ExperimentSpec(
        "toy_shuffled",
        "toy",
        _square_points_shuffled,
        _square_point,
        _square_assemble,
    ),
    ExperimentSpec(
        "toy_failing",
        "toy",
        _square_points,
        _failing_point,
        _square_assemble,
    ),
    ExperimentSpec(
        "toy_sleepy", "toy", _square_points, _sleepy_point, _square_assemble
    ),
    ExperimentSpec(
        "toy_bad_indices",
        "toy",
        _duplicate_index_points,
        _square_point,
        _square_assemble,
    ),
    ExperimentSpec(
        "toy_seeded",
        "toy",
        _seeded_points,
        _seeded_point,
        _square_assemble,
    ),
    ExperimentSpec(
        "toy_metrics",
        "toy",
        _square_points,
        _metric_point,
        _square_assemble,
    ),
    ExperimentSpec(
        "toy_schedcache",
        "toy",
        _square_points,
        _schedcache_point,
        _square_assemble,
    ),
)


@pytest.fixture(autouse=True)
def toy_registry():
    for spec in TOY_SPECS:
        REGISTRY.register(spec, replace=True)
    try:
        yield
    finally:
        for spec in TOY_SPECS:
            if spec.experiment_id in REGISTRY:
                REGISTRY.unregister(spec.experiment_id)


@pytest.fixture
def machine():
    return small_test_system()


def _no_cache(jobs=1, **kwargs):
    return RunnerConfig(jobs=jobs, cache_enabled=False, **kwargs)


EXPECTED_ROWS = tuple((x, x * x) for x in range(N_POINTS))


class TestDeterminism:
    def test_serial_rows_are_in_index_order(self, machine):
        run = run_experiment("toy_squares", machine, _no_cache())
        assert run.tables[0].rows == EXPECTED_ROWS
        assert run.points == N_POINTS

    @needs_fork
    def test_parallel_equals_serial(self, machine):
        serial = run_experiment("toy_squares", machine, _no_cache())
        parallel = run_experiment("toy_squares", machine, _no_cache(jobs=4))
        assert parallel.tables == serial.tables

    @needs_fork
    def test_shuffled_submission_order_is_reassembled_by_index(
        self, machine
    ):
        serial = run_experiment("toy_shuffled", machine, _no_cache())
        parallel = run_experiment("toy_shuffled", machine, _no_cache(jobs=3))
        assert serial.tables[0].rows == EXPECTED_ROWS
        assert parallel.tables == serial.tables


class TestErrorSurfacing:
    def test_serial_failure_carries_point_params(self, machine):
        with pytest.raises(PointExecutionError) as excinfo:
            run_experiment("toy_failing", machine, _no_cache())
        assert excinfo.value.experiment_id == "toy_failing"
        assert excinfo.value.params == {"x": 3}
        assert "exploded" in str(excinfo.value)

    @needs_fork
    def test_parallel_failure_carries_point_params(self, machine):
        with pytest.raises(PointExecutionError) as excinfo:
            run_experiment("toy_failing", machine, _no_cache(jobs=3))
        assert excinfo.value.experiment_id == "toy_failing"
        assert excinfo.value.params == {"x": 3}

    @needs_fork
    def test_executor_recovers_after_a_failed_run(self, machine):
        with pytest.raises(PointExecutionError):
            run_experiment("toy_failing", machine, _no_cache(jobs=3))
        run = run_experiment("toy_squares", machine, _no_cache(jobs=3))
        assert run.tables[0].rows == EXPECTED_ROWS

    @needs_fork
    def test_timeout_surfaces_with_params(self, machine):
        runner = _no_cache(jobs=2, point_timeout_s=0.25)
        start = time.perf_counter()
        with pytest.raises(PointExecutionError) as excinfo:
            run_experiment("toy_sleepy", machine, runner)
        elapsed = time.perf_counter() - start
        assert "timed out" in str(excinfo.value)
        assert excinfo.value.params == {"x": 0}
        # The run must fail promptly, not wait out every sleeping worker.
        assert elapsed < 1.4

    def test_unknown_experiment_raises_runner_error(self, machine):
        with pytest.raises(RunnerError) as excinfo:
            run_experiment("toy_nonexistent", machine, _no_cache())
        assert "unknown experiment" in str(excinfo.value)

    def test_duplicate_point_indices_rejected(self, machine):
        with pytest.raises(RunnerError) as excinfo:
            run_experiment("toy_bad_indices", machine, _no_cache())
        assert "permutation" in str(excinfo.value)


class TestCachingThroughExecutor:
    def test_cold_then_warm_counts(self, machine, tmp_path):
        runner = RunnerConfig(cache_dir=str(tmp_path / "cache"))
        cold = run_experiment("toy_squares", machine, runner)
        assert (cold.cache_hits, cold.cache_misses) == (0, N_POINTS)
        warm = run_experiment("toy_squares", machine, runner)
        assert (warm.cache_hits, warm.cache_misses) == (N_POINTS, 0)
        assert warm.tables == cold.tables

    @needs_fork
    def test_parallel_cold_run_seeds_the_cache_for_serial_warm(
        self, machine, tmp_path
    ):
        parallel = RunnerConfig(jobs=3, cache_dir=str(tmp_path / "cache"))
        serial = RunnerConfig(jobs=1, cache_dir=str(tmp_path / "cache"))
        cold = run_experiment("toy_squares", machine, parallel)
        warm = run_experiment("toy_squares", machine, serial)
        assert warm.cache_hits == N_POINTS
        assert warm.tables == cold.tables

    def test_metrics_counters_are_recorded(self, machine, tmp_path):
        registry = MetricsRegistry()
        runner = RunnerConfig(cache_dir=str(tmp_path / "cache"))
        with use_metrics(registry):
            run_experiment("toy_squares", machine, runner)
            run_experiment("toy_squares", machine, runner)
        snapshot = registry.snapshot()
        assert snapshot["runner.cache.misses"]["value"] == N_POINTS
        assert snapshot["runner.cache.stores"]["value"] == N_POINTS
        assert snapshot["runner.cache.hits"]["value"] == N_POINTS
        assert snapshot["runner.experiments"]["value"] == 2
        assert snapshot["runner.points"]["value"] == 2 * N_POINTS


class TestSeedOverride:
    """Satellite of ``repro.faults``: a global --seed flows into every
    seeded sweep point and is recorded in the run."""

    def test_no_seed_keeps_registered_defaults(self, machine):
        run = run_experiment("toy_seeded", machine, _no_cache())
        assert run.seed is None
        assert run.tables[0].rows == ((0, 100), (1, 100), (2, -1))

    def test_seed_overrides_only_seeded_points(self, machine):
        run = run_experiment("toy_seeded", machine, _no_cache(), seed=7)
        assert run.seed == 7
        assert run.tables[0].rows == ((0, 7), (1, 7), (2, -1))

    def test_negative_seed_rejected(self, machine):
        with pytest.raises(RunnerError, match="seed"):
            run_experiment("toy_seeded", machine, _no_cache(), seed=-1)

    def test_seed_participates_in_the_cache_key(self, machine, tmp_path):
        runner = RunnerConfig(cache_dir=str(tmp_path / "cache"))
        first = run_experiment("toy_seeded", machine, runner, seed=7)
        other_seed = run_experiment("toy_seeded", machine, runner, seed=8)
        assert other_seed.cache_hits == 1  # only the unseeded point
        assert other_seed.tables != first.tables
        warm = run_experiment("toy_seeded", machine, runner, seed=7)
        assert warm.cache_hits == 3
        assert warm.tables == first.tables

    def test_experiments_without_seeded_points_unaffected(self, machine):
        plain = run_experiment("toy_squares", machine, _no_cache())
        seeded = run_experiment("toy_squares", machine, _no_cache(), seed=5)
        assert seeded.tables == plain.tables
        assert seeded.seed == 5


class TestRunExperiments:
    def test_runs_in_given_order(self, machine):
        runs = run_experiments(
            ["toy_shuffled", "toy_squares"], machine, _no_cache()
        )
        assert [r.experiment_id for r in runs] == [
            "toy_shuffled", "toy_squares",
        ]
        assert all(r.tables[0].rows == EXPECTED_ROWS for r in runs)


class TestWorkerMetricsMerge:
    """Metrics observed inside fork-pool workers fold back to the parent."""

    @needs_fork
    def test_jobs4_sweep_lands_in_the_parent_snapshot(self, machine):
        registry = MetricsRegistry()
        with use_metrics(registry):
            run = run_experiment("toy_metrics", machine, _no_cache(jobs=4))
        assert run.points == N_POINTS
        snapshot = registry.snapshot()
        assert snapshot["toy.points"]["value"] == N_POINTS
        # Labeled histogram children survive the process boundary with
        # their observations intact.
        even = snapshot["toy.latency_s{shard=0}"]
        odd = snapshot["toy.latency_s{shard=1}"]
        assert even["count"] + odd["count"] == N_POINTS
        assert even["max"] == pytest.approx(0.005)
        assert odd["max"] == pytest.approx(0.006)

    @needs_fork
    def test_parallel_merge_matches_serial_recording(self, machine):
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        with use_metrics(serial):
            run_experiment("toy_metrics", machine, _no_cache(jobs=1))
        with use_metrics(parallel):
            run_experiment("toy_metrics", machine, _no_cache(jobs=4))
        assert parallel.snapshot() == serial.snapshot()

    @needs_fork
    def test_cache_stores_unwrapped_values(self, machine, tmp_path):
        runner = RunnerConfig(jobs=4, cache_dir=str(tmp_path / "cache"))
        with use_metrics(MetricsRegistry()):
            cold = run_experiment("toy_metrics", machine, runner)
        # A metrics-off serial warm run must read plain point values,
        # not (value, registry) tuples.
        warm = run_experiment(
            "toy_metrics",
            machine,
            RunnerConfig(cache_dir=str(tmp_path / "cache")),
        )
        assert warm.cache_hits == N_POINTS
        assert warm.tables == cold.tables

    @needs_fork
    def test_no_registry_means_no_wrapping_overhead(self, machine):
        run = run_experiment("toy_metrics", machine, _no_cache(jobs=4))
        assert run.tables[0].rows == EXPECTED_ROWS


class TestWorkerScheduleCache:
    """The schedule-compilation cache stays safe under the fork pool:
    each worker resets its inherited copy, and worker hit/miss counters
    reach the parent through the metrics merge (not the parent's own
    cache instance, which must stay untouched)."""

    def _run_parallel(self, machine, registry=None):
        from repro.schedcache import ScheduleCache, use_schedule_cache

        with use_schedule_cache(ScheduleCache()) as parent_cache:
            if registry is not None:
                with use_metrics(registry):
                    run = run_experiment(
                        "toy_schedcache", machine, _no_cache(jobs=3)
                    )
            else:
                run = run_experiment(
                    "toy_schedcache", machine, _no_cache(jobs=3)
                )
        return run, parent_cache

    @needs_fork
    def test_workers_own_their_caches(self, machine):
        run, _ = self._run_parallel(machine)
        assert run.points == N_POINTS
        # _square_assemble only keeps (x, square); re-run serially to
        # inspect the point values directly.
        from repro.runner.executor import _execute_point

        value = _execute_point("toy_schedcache", machine, {"x": 0})
        assert value["cache_owned"]

    @needs_fork
    def test_worker_counters_merge_into_parent_metrics(self, machine):
        registry = MetricsRegistry()
        run, parent_cache = self._run_parallel(machine, registry)
        assert run.points == N_POINTS
        snapshot = registry.snapshot()
        # Every point either compiled the structure's profile (first
        # touch in its worker) or replayed it; nothing is lost.
        compiled = snapshot["schedcache.profile.misses"]["value"]
        replayed = snapshot.get(
            "schedcache.timing.replays", {"value": 0}
        )["value"]
        assert compiled >= 1
        assert compiled + replayed == N_POINTS

    @needs_fork
    def test_parent_cache_instance_stays_untouched(self, machine):
        run, parent_cache = self._run_parallel(machine, MetricsRegistry())
        assert run.points == N_POINTS
        stats = parent_cache.stats()
        assert stats["schedules"] == 0 and stats["profiles"] == 0
        assert all(v == 0 for v in stats["counters"].values())

    def test_serial_run_uses_the_parent_cache(self, machine):
        from repro.schedcache import ScheduleCache, use_schedule_cache

        with use_schedule_cache(ScheduleCache()) as cache:
            run = run_experiment("toy_schedcache", machine, _no_cache())
        assert run.points == N_POINTS
        counters = cache.counters
        assert counters.profile_misses == 1
        assert counters.timing_replays == N_POINTS - 1
