"""PIM-FW APSP: blocked Floyd–Warshall and its chained schedules.

Covers the reference algorithm's invariants, the distributed blocked
decomposition's bit-exactness, the hypothesis property suite (APSP vs
reference FW on random weighted R-MAT graphs), and the new
Broadcast + AllGather :class:`~repro.core.ScheduleChain`: structural
validation plus the conformance latency band on a flit-level NoC point.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import registry
from repro.config import small_test_system
from repro.core import Shape, chain_timing, validate_chain
from repro.errors import ScheduleError, WorkloadError
from repro.noc.network import NocNetwork
from repro.noc.simulator import NocSimulator
from repro.noc.workload import messages_from_schedule
from repro.workloads import (
    ApspWorkload,
    INFINITE_DISTANCE,
    apsp_round_chain,
    apsp_shard_geometry,
    comm_trace,
    distributed_floyd_warshall,
    floyd_warshall_reference,
    rmat_weighted_dist,
)

pytestmark = pytest.mark.workloads


@pytest.fixture(params=["P", "B", "S"])
def backend(request, tiny_machine):
    return registry.create(request.param, tiny_machine)


def _line_graph(n: int, weight: int = 3) -> np.ndarray:
    """Path graph 0-1-...-n-1: shortest paths are hop counts * weight."""
    dist = np.full((n, n), INFINITE_DISTANCE, dtype=np.int64)
    np.fill_diagonal(dist, 0)
    for i in range(n - 1):
        dist[i, i + 1] = dist[i + 1, i] = weight
    return dist


class TestReference:
    def test_line_graph_closed_form(self):
        n = 16
        closed = floyd_warshall_reference(_line_graph(n))
        expected = 3 * np.abs(
            np.arange(n)[:, None] - np.arange(n)[None, :]
        )
        assert np.array_equal(closed, expected)

    def test_disconnected_stays_infinite(self):
        dist = np.full((4, 4), INFINITE_DISTANCE, dtype=np.int64)
        np.fill_diagonal(dist, 0)
        dist[0, 1] = dist[1, 0] = 5
        dist[2, 3] = dist[3, 2] = 7
        closed = floyd_warshall_reference(dist)
        assert closed[0, 2] == INFINITE_DISTANCE
        assert closed[1, 3] == INFINITE_DISTANCE
        assert closed[0, 1] == 5 and closed[2, 3] == 7

    def test_idempotent(self):
        dist = rmat_weighted_dist(16, 48, seed=5)
        closed = floyd_warshall_reference(dist)
        assert np.array_equal(floyd_warshall_reference(closed), closed)

    def test_triangle_inequality(self):
        closed = floyd_warshall_reference(rmat_weighted_dist(16, 48, seed=6))
        n = closed.shape[0]
        for k in range(n):
            assert np.all(
                closed <= closed[:, k : k + 1] + closed[k : k + 1, :]
            )

    def test_negative_weights_rejected(self):
        dist = np.zeros((4, 4), dtype=np.int64)
        dist[0, 1] = -1
        with pytest.raises(WorkloadError):
            floyd_warshall_reference(dist)

    def test_non_square_rejected(self):
        with pytest.raises(WorkloadError):
            floyd_warshall_reference(np.zeros((3, 4), dtype=np.int64))


class TestGenerator:
    def test_symmetric_with_zero_diagonal(self):
        dist = rmat_weighted_dist(32, 96, seed=7)
        assert np.array_equal(dist, dist.T)
        assert np.all(np.diag(dist) == 0)

    def test_weights_in_range(self):
        dist = rmat_weighted_dist(32, 96, max_weight=9, seed=8)
        finite = dist[(dist > 0) & (dist < INFINITE_DISTANCE)]
        assert finite.size > 0
        assert finite.min() >= 1 and finite.max() <= 9

    def test_bad_weight_rejected(self):
        with pytest.raises(WorkloadError):
            rmat_weighted_dist(16, 32, max_weight=0)


class TestDistributed:
    def test_bit_exact_on_rmat(self, backend):
        n = 4 * backend.num_dpus
        dist = rmat_weighted_dist(n, 3 * n, seed=11)
        got = distributed_floyd_warshall(dist, 2, backend)
        assert np.array_equal(got, floyd_warshall_reference(dist))

    def test_block_equals_slab(self, backend):
        """block == rows-per-DPU: one owner per round, max broadcast."""
        n = 2 * backend.num_dpus
        dist = rmat_weighted_dist(n, 3 * n, seed=12)
        got = distributed_floyd_warshall(dist, 2, backend)
        assert np.array_equal(got, floyd_warshall_reference(dist))

    def test_block_one(self, backend):
        """block == 1 degenerates to unblocked FW, one pivot per round."""
        n = 2 * backend.num_dpus
        dist = rmat_weighted_dist(n, 3 * n, seed=13)
        got = distributed_floyd_warshall(dist, 1, backend)
        assert np.array_equal(got, floyd_warshall_reference(dist))

    def test_geometry_validation(self, backend):
        n_dpus = backend.num_dpus
        with pytest.raises(WorkloadError):
            apsp_shard_geometry(n_dpus + 1, 1, n_dpus)
        with pytest.raises(WorkloadError):
            apsp_shard_geometry(4 * n_dpus, 3, n_dpus)
        with pytest.raises(WorkloadError):
            apsp_shard_geometry(4 * n_dpus, 0, n_dpus)

    @given(
        rows_per=st.sampled_from([2, 4]),
        block=st.sampled_from([1, 2]),
        edge_factor=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_rmat_property(self, rows_per, block, edge_factor, seed):
        """Blocked == reference FW on random weighted R-MAT graphs."""
        backend = registry.create("P", small_test_system())
        n = rows_per * backend.num_dpus
        dist = rmat_weighted_dist(n, edge_factor * n, seed=seed)
        got = distributed_floyd_warshall(dist, block, backend)
        assert np.array_equal(got, floyd_warshall_reference(dist))


class TestWorkloadDeclaration:
    def test_trace_shape(self, tiny_machine):
        workload = ApspWorkload(num_vertices=32, block=2)
        trace = comm_trace(workload, tiny_machine)
        rounds = 32 // 2
        assert len(trace) == 2 * rounds
        assert [e.pattern for e in trace] == ["BC", "AG"] * rounds
        # Roots walk the owners as the pivot block sweeps the slabs.
        roots = [e.root for e in trace if e.pattern == "BC"]
        assert roots == sorted(roots)
        assert set(roots) == set(range(8))

    def test_volume_matches_closed_form(self, tiny_machine):
        workload = ApspWorkload(num_vertices=32, block=2)
        volume: dict[str, int] = {}
        for entry in comm_trace(workload, tiny_machine):
            volume[entry.pattern] = (
                volume.get(entry.pattern, 0) + entry.total_bytes
            )
        assert volume == workload.expected_comm_volume(tiny_machine)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ApspWorkload(num_vertices=0)
        with pytest.raises(WorkloadError):
            ApspWorkload(block=0)


class TestScheduleChain:
    def test_every_round_validates(self):
        shape = Shape(banks=2, chips=2, ranks=2)
        rows_per, rounds = apsp_shard_geometry(32, 2, shape.num_dpus)
        for t in range(rounds):
            chain = apsp_round_chain(shape, 32, 2, t)
            validate_chain(chain)
            assert [p.value for p in chain.patterns] == [
                "broadcast",
                "all_gather",
            ]

    def test_round_out_of_range(self):
        shape = Shape(banks=2, chips=2, ranks=2)
        with pytest.raises(WorkloadError):
            apsp_round_chain(shape, 32, 2, 16)

    def test_chain_timing_sums_links(self):
        from repro.core import schedule_timing

        shape = Shape(banks=2, chips=2, ranks=2)
        chain = apsp_round_chain(shape, 32, 2, 3)
        network = small_test_system().pimnet
        total = chain_timing(chain, network)
        by_hand: dict = {}
        for link in chain.schedules:
            for tier, t in schedule_timing(link, network).items():
                by_hand[tier] = by_hand.get(tier, 0.0) + t
        assert total == by_hand
        assert sum(total.values()) > 0

    def test_chain_rejects_mixed_shapes(self):
        from repro.core import ScheduleChain, build_schedule
        from repro.collectives.patterns import Collective

        a = build_schedule(
            Collective.BROADCAST, Shape(2, 2, 2), 16, root=0
        )
        b = build_schedule(Collective.ALL_GATHER, Shape(4, 2, 2), 16)
        with pytest.raises(ScheduleError):
            ScheduleChain((a, b))

    def test_chain_rejects_empty(self):
        from repro.core import ScheduleChain

        with pytest.raises(ScheduleError):
            ScheduleChain(())

    def test_noc_latency_band(self):
        """Flit-level NoC agrees with the analytic chain timing within
        the conformance band (rel_tol=1.0, min_ratio=0.9, slack=200)."""
        machine = small_test_system()
        shape = Shape(banks=2, chips=2, ranks=2)
        chain = apsp_round_chain(shape, 32, 2, round_index=5)
        validate_chain(chain)

        analytic_cycles = sum(
            chain_timing(chain, machine.pimnet).values()
        ) / 1e-9
        noc_cycles = 0
        for link in chain.schedules:
            net = NocNetwork(shape, network=machine.pimnet)
            messages, barriers = messages_from_schedule(
                link, net, "scheduled", itemsize=8
            )
            assert messages
            sim = NocSimulator(net, messages)
            if barriers:
                sim.set_barriers(barriers)
            stats = sim.run()
            assert stats.flits_delivered == sum(
                m.num_flits for m in messages
            )
            noc_cycles += stats.cycles

        lower = 0.9 * analytic_cycles - 200
        upper = 2.0 * analytic_cycles + 200
        assert lower <= noc_cycles <= upper, (
            f"NoC {noc_cycles} outside [{lower:.0f}, {upper:.0f}] "
            f"around analytic {analytic_cycles:.0f}"
        )
