"""End-to-end integration: API -> schedule -> program -> timing coherence."""

import numpy as np
import pytest

from repro import (
    PimnetBackend,
    pimnet_all_reduce,
    pimnet_sim_system,
    registry,
    small_test_system,
)
from repro.collectives import Collective, CollectiveRequest
from repro.core import execute_schedule, generate_programs, run_programs
from repro.workloads import ExecutionEngine, GemvWorkload, distributed_gemv

from .conftest import make_buffers


class TestThreeRepresentationsAgree:
    """Functional reference, schedule executor, and program interpreter
    must agree on real data, end to end, on the tiny machine."""

    @pytest.mark.parametrize(
        "pattern", [Collective.ALL_REDUCE, Collective.ALL_TO_ALL]
    )
    def test_all_paths_agree(self, tiny_machine, rng, pattern):
        backend = PimnetBackend(tiny_machine)
        buffers = make_buffers(8, 16, rng)
        request = CollectiveRequest(
            pattern, 16 * 8, dtype=np.dtype(np.int64)
        )
        api_out = backend.run(request, buffers).outputs
        sched = backend.schedule(request)
        sched_out = execute_schedule(sched, buffers)
        prog_out = run_programs(generate_programs(sched), buffers)
        for a, b, c in zip(api_out, sched_out, prog_out):
            assert np.array_equal(a, b)
            assert np.array_equal(b, c)


class TestTimingCoherence:
    def test_api_time_equals_backend_timing(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        api_result = pimnet_all_reduce(buffers, tiny_machine)
        backend = registry.create("P", tiny_machine)
        request = CollectiveRequest(
            Collective.ALL_REDUCE, 16 * 8, dtype=np.dtype(np.int64)
        )
        assert api_result.time_s == pytest.approx(
            backend.timing(request).total_s
        )

    def test_engine_comm_equals_sum_of_collectives(self, machine):
        workload = GemvWorkload(batch=3)
        engine = ExecutionEngine(machine, "P")
        result = engine.run(workload)
        backend = registry.create("P", machine)
        single = backend.timing(
            CollectiveRequest(
                Collective.REDUCE_SCATTER,
                workload.rows * 4,
                dtype=np.dtype(np.int32),
            )
        ).total_s
        assert result.comm_s == pytest.approx(3 * single)


class TestWorkloadThroughBackend:
    def test_gemv_through_every_backend_same_answer(self, tiny_machine, rng):
        W = rng.integers(-5, 5, (16, 32)).astype(np.int64)
        x = rng.integers(-5, 5, 32).astype(np.int64)
        expected = W @ x
        for key in ("B", "S", "MaxBW", "D", "P"):
            backend = registry.create(key, tiny_machine)
            assert np.array_equal(
                distributed_gemv(W, x, backend), expected
            ), key

    def test_pimnet_is_fastest_backend_for_gemv(self, machine):
        results = {}
        for key in ("B", "S", "D", "P"):
            results[key] = (
                ExecutionEngine(machine, key).run(GemvWorkload()).total_s
            )
        assert results["P"] == min(results.values())


class TestScaleConsistency:
    def test_small_and_large_machines_share_semantics(self, rng):
        """Same per-DPU data, different machine sizes: PIMnet AllReduce
        output values are machine-independent for the common prefix."""
        small = small_test_system()
        buffers8 = make_buffers(8, 8, rng)
        out8 = pimnet_all_reduce(buffers8, small).outputs[0]
        assert np.array_equal(out8, np.sum(buffers8, axis=0))

    def test_weak_scaling_time_grows_sublinearly(self):
        """PIMnet AllReduce time grows far slower than DPU count."""
        from repro.experiments.common import scaled_machine

        machine = pimnet_sim_system()
        request = CollectiveRequest(Collective.ALL_REDUCE, 32 * 1024)
        t8 = registry.create(
            "P", scaled_machine(machine, 8)
        ).timing(request).total_s
        t256 = registry.create(
            "P", scaled_machine(machine, 256)
        ).timing(request).total_s
        assert t256 < 4 * t8
