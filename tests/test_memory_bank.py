"""Bank memory: MRAM/WRAM DMA semantics and staging model."""

import numpy as np
import pytest

from repro.config import DpuConfig
from repro.errors import MemoryModelError
from repro.memory import BankMemory


@pytest.fixture
def bank() -> BankMemory:
    return BankMemory(DpuConfig())


class TestDmaFunctional:
    def test_mram_to_wram_copies_data(self, bank):
        data = np.arange(64, dtype=np.uint8)
        bank.mram.write(1000, data)
        bank.dma_to_wram(1000, 0, 64)
        assert np.array_equal(bank.wram.read(0, 64), data)

    def test_wram_to_mram_copies_data(self, bank):
        data = np.arange(32, dtype=np.uint8)
        bank.wram.write(8, data)
        bank.dma_to_mram(8, 4096, 32)
        assert np.array_equal(bank.mram.read(4096, 32), data)

    def test_transfers_are_recorded(self, bank):
        bank.mram.write(0, bytes(16))
        bank.dma_to_wram(0, 0, 16)
        bank.dma_to_mram(0, 64, 16)
        assert [t.direction for t in bank.transfers] == [
            "mram_to_wram",
            "wram_to_mram",
        ]


class TestDmaConstraints:
    def test_unaligned_length_rejected(self, bank):
        with pytest.raises(MemoryModelError):
            bank.dma_to_wram(0, 0, 12)

    def test_too_small_rejected(self, bank):
        with pytest.raises(MemoryModelError):
            bank.dma_to_wram(0, 0, 0)

    def test_wram_capacity_enforced(self, bank):
        with pytest.raises(MemoryModelError):
            bank.dma_to_wram(0, 64 * 1024 - 8, 16)


class TestDmaTiming:
    def test_time_grows_with_size(self, bank):
        bank.mram.write(0, bytes(4096))
        t_small = bank.dma_to_wram(0, 0, 64).time_s
        t_large = bank.dma_to_wram(0, 0, 4096).time_s
        assert t_large > t_small

    def test_bandwidth_term(self):
        bank = BankMemory(DpuConfig(), dma_bandwidth_bytes_per_s=1e9)
        bank.mram.write(0, bytes(2048))
        record = bank.dma_to_wram(0, 0, 2048)
        # one max-size burst: setup + serialization
        assert record.time_s == pytest.approx(
            bank.dma_setup_s + 2048 / 1e9
        )

    def test_multiple_bursts_pay_multiple_setups(self):
        bank = BankMemory(DpuConfig(), dma_bandwidth_bytes_per_s=1e9)
        bank.mram.write(0, bytes(4096))
        record = bank.dma_to_wram(0, 0, 4096)
        assert record.time_s == pytest.approx(
            2 * bank.dma_setup_s + 4096 / 1e9
        )

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(MemoryModelError):
            BankMemory(DpuConfig(), dma_bandwidth_bytes_per_s=0)


class TestStagingModel:
    def test_fits_in_wram_is_free(self, bank):
        assert bank.staging_time(8 * 1024) == 0.0

    def test_overflow_costs_round_trip(self, bank):
        t = bank.staging_time(128 * 1024)
        assert t > 0

    def test_staging_monotone_in_payload(self, bank):
        small = bank.staging_time(80 * 1024)
        large = bank.staging_time(160 * 1024)
        assert large > small

    def test_negative_payload_rejected(self, bank):
        with pytest.raises(MemoryModelError):
            bank.staging_time(-1)

    def test_reserved_wram_must_fit(self, bank):
        with pytest.raises(MemoryModelError):
            bank.staging_time(1024, reserved_wram=128 * 1024)
