"""Hypothesis property tests on the timing models."""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.collectives import Collective, CollectiveRequest, registry
from repro.config import PimSystemConfig, pimnet_sim_system

PATTERNS = [
    Collective.ALL_REDUCE,
    Collective.REDUCE_SCATTER,
    Collective.ALL_TO_ALL,
    Collective.BROADCAST,
]

shape_dims = st.tuples(
    st.integers(1, 8), st.integers(1, 8), st.integers(1, 4)
)


def machine_for(dims):
    b, c, r = dims
    return replace(
        pimnet_sim_system(),
        system=PimSystemConfig(
            banks_per_chip=b, chips_per_rank=c, ranks_per_channel=r
        ),
    )


def request_for(pattern, dims, kib):
    b, c, r = dims
    n = b * c * r
    payload = max(1, kib) * 1024
    payload = (payload // (8 * n) or 1) * 8 * n  # keep shardable
    return CollectiveRequest(pattern, payload, dtype=np.dtype(np.int64))


class TestTimingProperties:
    @given(dims=shape_dims, pattern=st.sampled_from(PATTERNS))
    @settings(max_examples=60, deadline=None)
    def test_pimnet_time_positive_on_any_shape(self, dims, pattern):
        machine = machine_for(dims)
        request = request_for(pattern, dims, 16)
        breakdown = registry.create("P", machine).timing(request)
        assert breakdown.total_s > 0
        for value in breakdown.as_dict().values():
            assert value >= 0

    @given(
        dims=shape_dims,
        pattern=st.sampled_from(PATTERNS),
        small=st.integers(1, 16),
        factor=st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_payload_monotonicity_everywhere(
        self, dims, pattern, small, factor
    ):
        machine = machine_for(dims)
        backend = registry.create("P", machine)
        t_small = backend.timing(request_for(pattern, dims, small)).total_s
        t_large = backend.timing(
            request_for(pattern, dims, small * factor)
        ).total_s
        assert t_large >= t_small

    @given(dims=shape_dims, scale=st.floats(1.1, 8.0))
    @settings(max_examples=40, deadline=None)
    def test_more_fabric_bandwidth_never_hurts(self, dims, scale):
        machine = machine_for(dims)
        faster = replace(
            machine,
            pimnet=machine.pimnet.with_global_bandwidth_scale(scale),
        )
        request = request_for(Collective.ALL_REDUCE, dims, 32)
        base = registry.create("P", machine).timing(request).total_s
        boosted = registry.create("P", faster).timing(request).total_s
        assert boosted <= base * (1 + 1e-9)

    @given(dims=shape_dims)
    @settings(max_examples=40, deadline=None)
    def test_pimnet_beats_baseline_on_any_shape(self, dims):
        """The headline relation holds for every machine shape, not just
        the paper's 8x8x4."""
        machine = machine_for(dims)
        request = request_for(Collective.ALL_REDUCE, dims, 32)
        baseline = registry.create("B", machine).timing(request).total_s
        pimnet = registry.create("P", machine).timing(request).total_s
        assert pimnet < baseline

    @given(
        dims=shape_dims,
        pattern=st.sampled_from(
            [Collective.ALL_REDUCE, Collective.ALL_TO_ALL]
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_schedule_and_closed_form_agree_on_random_shapes(
        self, dims, pattern
    ):
        from repro.core import (
            PimnetBackend,
            Shape,
            Tier,
            build_schedule,
            schedule_timing,
        )

        machine = machine_for(dims)
        backend = PimnetBackend(machine)
        b, c, r = dims
        n = b * c * r
        e = n * 8
        request = CollectiveRequest(pattern, e * 8)
        closed = backend.model._tier_times(request)
        derived = schedule_timing(
            build_schedule(pattern, Shape(b, c, r), e),
            machine.pimnet,
            itemsize=8,
        )
        for closed_value, tier in (
            (closed.bank_s, Tier.BANK),
            (closed.chip_s, Tier.CHIP),
            (closed.rank_s, Tier.RANK),
        ):
            derived_value = derived[tier]
            if max(closed_value, derived_value) == 0:
                continue
            rel = abs(closed_value - derived_value) / max(
                closed_value, derived_value
            )
            assert rel < 0.02, (dims, pattern, tier)
