"""Functional DPU interpreter: arithmetic, memory, control flow, tasklets."""

import numpy as np
import pytest

from repro.dpu import Dpu, Instruction, Opcode, Program
from repro.errors import IsaError


def run_single(instrs, init=None, **kwargs):
    """Run a short instruction list on tasklet 0 and return the DPU."""
    p = Program()
    for inst in instrs:
        p.emit(inst)
    p.emit(Instruction(Opcode.HALT))
    dpu = Dpu()
    dpu.run(p.resolve(), num_tasklets=1, init_registers={0: init or {}}, **kwargs)
    return dpu


class TestArithmetic:
    def test_addi_and_add(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=5))
        p.emit(Instruction(Opcode.ADDI, rd=2, rs1=0, imm=7))
        p.emit(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2))
        p.emit(Instruction(Opcode.SW, rs1=0, rs2=3, imm=0))
        p.emit(Instruction(Opcode.HALT))
        dpu.run(p.resolve())
        assert dpu.memory.wram.read_array(0, 1, np.uint32)[0] == 12

    def test_mul_wraps_32bit(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=0x10000))
        p.emit(Instruction(Opcode.MUL, rd=2, rs1=1, rs2=1))
        p.emit(Instruction(Opcode.SW, rs1=0, rs2=2, imm=0))
        p.emit(Instruction(Opcode.HALT))
        dpu.run(p.resolve())
        assert dpu.memory.wram.read_array(0, 1, np.uint32)[0] == 0

    def test_sub_wraps(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.SUB, rd=1, rs1=0, rs2=2))  # 0 - r2
        p.emit(Instruction(Opcode.SW, rs1=0, rs2=1, imm=0))
        p.emit(Instruction(Opcode.HALT))
        dpu.run(p.resolve(), init_registers={0: {2: 1}})
        assert dpu.memory.wram.read_array(0, 1, np.uint32)[0] == 0xFFFFFFFF

    def test_logic_and_shifts(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=0b1100))
        p.emit(Instruction(Opcode.ADDI, rd=2, rs1=0, imm=0b1010))
        p.emit(Instruction(Opcode.AND, rd=3, rs1=1, rs2=2))
        p.emit(Instruction(Opcode.OR, rd=4, rs1=1, rs2=2))
        p.emit(Instruction(Opcode.XOR, rd=5, rs1=1, rs2=2))
        p.emit(Instruction(Opcode.ADDI, rd=6, rs1=0, imm=2))
        p.emit(Instruction(Opcode.SLL, rd=7, rs1=1, rs2=6))
        p.emit(Instruction(Opcode.SRL, rd=8, rs1=1, rs2=6))
        for i, reg in enumerate((3, 4, 5, 7, 8)):
            p.emit(Instruction(Opcode.SW, rs1=0, rs2=reg, imm=4 * i))
        p.emit(Instruction(Opcode.HALT))
        dpu.run(p.resolve())
        values = dpu.memory.wram.read_array(0, 5, np.uint32)
        assert list(values) == [0b1000, 0b1110, 0b0110, 0b110000, 0b11]


class TestControlFlow:
    def test_countdown_loop(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=10))  # counter
        p.emit(Instruction(Opcode.XOR, rd=2, rs1=2, rs2=2))    # acc = 0
        p.label("loop")
        p.emit(Instruction(Opcode.ADDI, rd=2, rs1=2, imm=1))
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-1))
        p.branch_to(Opcode.BNE, "loop", rs1=1, rs2=0)
        p.emit(Instruction(Opcode.SW, rs1=0, rs2=2, imm=0))
        p.emit(Instruction(Opcode.HALT))
        dpu.run(p.resolve(), init_registers={0: {0: 0}})
        assert dpu.memory.wram.read_array(0, 1, np.uint32)[0] == 10

    def test_blt_signed_comparison(self):
        dpu = Dpu()
        p = Program()
        # r1 = -1 (signed) < r2 = 1 -> branch taken
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=-1))
        p.emit(Instruction(Opcode.ADDI, rd=2, rs1=0, imm=1))
        p.branch_to(Opcode.BLT, "taken", rs1=1, rs2=2)
        p.emit(Instruction(Opcode.ADDI, rd=3, rs1=0, imm=111))
        p.label("taken")
        p.emit(Instruction(Opcode.SW, rs1=0, rs2=3, imm=0))
        p.emit(Instruction(Opcode.HALT))
        dpu.run(p.resolve(), init_registers={0: {0: 0}})
        assert dpu.memory.wram.read_array(0, 1, np.uint32)[0] == 0

    def test_infinite_loop_detected(self):
        dpu = Dpu()
        p = Program()
        p.label("spin")
        p.branch_to(Opcode.JUMP, "spin")
        with pytest.raises(IsaError):
            dpu.run(p.resolve(), max_instructions=1000)


class TestMemorySemantics:
    def test_unaligned_load_rejected(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=2))
        p.emit(Instruction(Opcode.LW, rd=2, rs1=1, imm=0))
        p.emit(Instruction(Opcode.HALT))
        with pytest.raises(IsaError):
            dpu.run(p.resolve(), init_registers={0: {0: 0}})


class TestTasklets:
    def test_register_zero_is_tasklet_id(self):
        dpu = Dpu()
        p = Program()
        # each tasklet stores its id at word tid
        p.emit(Instruction(Opcode.ADD, rd=4, rs1=0, rs2=0))
        p.emit(Instruction(Opcode.ADD, rd=4, rs1=4, rs2=4))  # 4*tid
        p.emit(Instruction(Opcode.SW, rs1=4, rs2=0, imm=0))
        p.emit(Instruction(Opcode.HALT))
        dpu.run(p.resolve(), num_tasklets=4)
        values = dpu.memory.wram.read_array(0, 4, np.uint32)
        assert list(values) == [0, 1, 2, 3]

    def test_tasklet_count_validated(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.HALT))
        with pytest.raises(IsaError):
            dpu.run(p.resolve(), num_tasklets=25)

    def test_run_result_counts(self):
        dpu = Dpu()
        p = Program()
        p.emit(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=1))
        p.emit(Instruction(Opcode.HALT))
        result = dpu.run(p.resolve(), num_tasklets=2)
        assert result.instructions_retired == 4
        assert result.issue_slots == 4
        assert result.cycles > 0
        assert result.time_s == pytest.approx(
            result.cycles / 350e6
        )

    def test_mul_costs_more_slots_than_add(self):
        dpu = Dpu()
        p_add = Program()
        p_add.emit(Instruction(Opcode.ADD, rd=1, rs1=1, rs2=1))
        p_add.emit(Instruction(Opcode.HALT))
        p_mul = Program()
        p_mul.emit(Instruction(Opcode.MUL, rd=1, rs1=1, rs2=1))
        p_mul.emit(Instruction(Opcode.HALT))
        slots_add = dpu.run(p_add.resolve()).issue_slots
        slots_mul = dpu.run(p_mul.resolve()).issue_slots
        assert slots_mul - slots_add == 31
