"""Multi-channel collective composition."""

from dataclasses import replace

import numpy as np
import pytest

from repro.collectives import Collective, CollectiveRequest
from repro.config import pimnet_sim_system
from repro.core.multichannel import (
    channel_scaling_series,
    multichannel_collective,
)
from repro.errors import BackendError


def request(pattern=Collective.ALL_REDUCE, payload=32 * 1024):
    return CollectiveRequest(pattern, payload, dtype=np.dtype(np.int64))


class TestSingleChannel:
    def test_no_cross_channel_cost(self):
        machine = pimnet_sim_system(num_channels=1)
        parts = multichannel_collective(machine, request())
        assert parts.cross_channel_s == 0.0
        assert parts.total_s == parts.per_channel.total_s


class TestCrossChannel:
    def test_host_bridge_adds_cost(self):
        machine = pimnet_sim_system(num_channels=4)
        parts = multichannel_collective(machine, request())
        assert parts.cross_channel_s > 0

    def test_reducing_patterns_cross_one_payload(self):
        """After channel-local reduction only one payload crosses —
        non-reducing patterns must move everything."""
        machine = pimnet_sim_system(num_channels=4)
        reduced = multichannel_collective(machine, request())
        moved = multichannel_collective(
            machine, request(Collective.ALL_TO_ALL)
        )
        assert moved.cross_channel_s > 10 * reduced.cross_channel_s

    def test_direct_bridge_beats_host(self):
        machine = pimnet_sim_system(num_channels=4)
        host = multichannel_collective(machine, request(), bridge="host")
        direct = multichannel_collective(
            machine, request(), bridge="direct"
        )
        assert direct.cross_channel_s < host.cross_channel_s

    def test_unknown_bridge_rejected(self):
        machine = pimnet_sim_system(num_channels=2)
        with pytest.raises(BackendError):
            multichannel_collective(machine, request(), bridge="teleport")

    def test_works_with_baseline_backend_too(self):
        machine = pimnet_sim_system(num_channels=2)
        parts = multichannel_collective(machine, request(), backend_key="B")
        assert parts.total_s > 0


class TestScalingSeries:
    def test_series_shape(self):
        machine = pimnet_sim_system()
        series = channel_scaling_series(machine, request())
        assert [k for k, _ in series] == [1, 2, 4, 8]
        assert all(t > 0 for _, t in series)

    def test_pimnet_cross_cost_nearly_flat(self):
        """PIMnet's host term grows only with the per-channel payload,
        so total time stays nearly constant as channels grow."""
        machine = pimnet_sim_system()
        series = channel_scaling_series(machine, request())
        times = [t for _, t in series]
        assert times[-1] < 1.5 * times[0]
