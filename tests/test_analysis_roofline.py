"""Roofline models (Fig 2)."""

import pytest

from repro.analysis import RooflineModel
from repro.errors import ReproError


@pytest.fixture(scope="module")
def model():
    return RooflineModel()


class TestMachineCeilings:
    def test_peak_is_dpus_times_dpu_peak(self, model):
        assert model.peak_ops_per_s() == pytest.approx(256 * 350e6)

    def test_internal_bandwidth_aggregate(self, model):
        assert model.internal_bandwidth_bytes_per_s() == pytest.approx(
            256 * 0.63e9
        )

    def test_collective_bandwidth_ordering(self, model):
        bws = {
            k: model.collective_bandwidth_bytes_per_s(k)
            for k in ("B", "S", "MaxBW", "P")
        }
        assert bws["B"] < bws["S"] < bws["MaxBW"] < bws["P"]


class TestClassicRoofline:
    def test_low_intensity_is_memory_bound(self, model):
        low = model.classic_attainable(0.01, "P")
        assert low == pytest.approx(
            0.01 * model.internal_bandwidth_bytes_per_s()
        )

    def test_pimnet_reaches_compute_peak(self, model):
        assert model.classic_attainable(1024, "P") == pytest.approx(
            model.peak_ops_per_s()
        )

    def test_baseline_is_comm_capped(self, model):
        assert model.classic_attainable(1024, "B") < (
            0.2 * model.peak_ops_per_s()
        )

    def test_software_ideal_capped_near_eighth_of_peak(self, model):
        """Paper: PIMnet achieves ~8x the Software(Ideal) throughput."""
        ratio = model.classic_attainable(1024, "P") / model.classic_attainable(
            1024, "S"
        )
        assert 5 <= ratio <= 12

    def test_intensity_must_be_positive(self, model):
        with pytest.raises(ReproError):
            model.classic_attainable(0, "P")


class TestCommRoofline:
    def test_slope_region_linear(self, model):
        low = model.comm_attainable(0.01, "S")
        double = model.comm_attainable(0.02, "S")
        assert double == pytest.approx(2 * low)

    def test_all_hit_peak_eventually(self, model):
        for key in ("B", "S", "MaxBW", "P"):
            assert model.comm_attainable(1e6, key) == pytest.approx(
                model.peak_ops_per_s()
            )

    def test_pimnet_least_comm_bound(self, model):
        """At any fixed intensity PIMnet attains the most throughput."""
        ci = 0.5
        values = [
            model.comm_attainable(ci, k) for k in ("B", "S", "MaxBW", "P")
        ]
        assert values[-1] == max(values)


class TestSeries:
    def test_series_shapes(self, model):
        series = model.all_series("comm")
        assert [s.backend for s in series] == ["B", "MaxBW", "S", "P"]
        lengths = {len(s.points) for s in series}
        assert len(lengths) == 1

    def test_series_monotone_nondecreasing(self, model):
        for series in model.all_series("classic"):
            values = [p.ops_per_s for p in series.points]
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_unknown_view_rejected(self, model):
        with pytest.raises(ReproError):
            model.all_series("sideways")
