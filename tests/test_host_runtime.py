"""Host runtime: allocation, push/pull/broadcast, event accounting."""

import numpy as np
import pytest

from repro.config import small_test_system
from repro.errors import MemoryModelError, WorkloadError
from repro.host import PimRuntime


@pytest.fixture
def runtime() -> PimRuntime:
    return PimRuntime(small_test_system())


class TestAllocation:
    def test_sequential_offsets(self, runtime):
        a = runtime.allocate("a", 1024)
        b = runtime.allocate("b", 2048)
        assert a.mram_offset == 0
        assert b.mram_offset == 1024

    def test_duplicate_name_rejected(self, runtime):
        runtime.allocate("x", 64)
        with pytest.raises(WorkloadError):
            runtime.allocate("x", 64)

    def test_alignment_enforced(self, runtime):
        with pytest.raises(MemoryModelError):
            runtime.allocate("bad", 12)

    def test_mram_exhaustion(self, runtime):
        capacity = runtime.machine.system.dpu.mram_bytes
        runtime.allocate("big", capacity)
        with pytest.raises(MemoryModelError):
            runtime.allocate("more", 8)

    def test_unknown_buffer(self, runtime):
        with pytest.raises(WorkloadError):
            runtime.buffer("nope")


class TestDataMovement:
    def test_push_pull_round_trip(self, runtime, rng):
        runtime.allocate("data", 1024)
        arrays = [
            rng.integers(0, 100, 16, dtype=np.int64) for _ in range(8)
        ]
        runtime.push("data", arrays)
        pulled, _ = runtime.pull("data", 16, np.int64)
        for sent, got in zip(arrays, pulled):
            assert np.array_equal(sent, got)

    def test_broadcast_reaches_every_bank(self, runtime):
        runtime.allocate("data", 256)
        payload = np.arange(32, dtype=np.int64)
        runtime.broadcast("data", payload)
        pulled, _ = runtime.pull("data", 32, np.int64)
        for got in pulled:
            assert np.array_equal(got, payload)

    def test_push_wrong_count_rejected(self, runtime):
        runtime.allocate("data", 64)
        with pytest.raises(WorkloadError):
            runtime.push("data", [np.zeros(4, dtype=np.int64)])

    def test_oversized_push_rejected(self, runtime):
        runtime.allocate("data", 64)
        arrays = [np.zeros(100, dtype=np.int64) for _ in range(8)]
        with pytest.raises(MemoryModelError):
            runtime.push("data", arrays)

    def test_oversized_pull_rejected(self, runtime):
        runtime.allocate("data", 64)
        with pytest.raises(MemoryModelError):
            runtime.pull("data", 100, np.int64)


class TestTiming:
    def test_events_accumulate(self, runtime, rng):
        runtime.allocate("data", 1024)
        arrays = [rng.integers(0, 5, 16, dtype=np.int64) for _ in range(8)]
        runtime.push("data", arrays)
        runtime.pull("data", 16, np.int64)
        runtime.launch("kernel", 1e-6)
        assert [e.kind for e in runtime.events] == ["push", "pull", "launch"]
        assert runtime.elapsed_s > 0

    def test_broadcast_faster_than_push_per_byte(self, runtime, rng):
        runtime.allocate("data", 8192)
        arrays = [
            rng.integers(0, 5, 1024, dtype=np.int64) for _ in range(8)
        ]
        push_s = runtime.push("data", arrays)
        broadcast_s = runtime.broadcast("data", arrays[0])
        # push moved 8x the unique bytes; broadcast also uses a faster rate
        assert broadcast_s < push_s

    def test_ideal_runtime_has_no_overheads(self, rng):
        real = PimRuntime(small_test_system())
        ideal = PimRuntime(small_test_system(), ideal=True)
        for rt in (real, ideal):
            rt.allocate("d", 1024)
        arrays = [rng.integers(0, 5, 16, dtype=np.int64) for _ in range(8)]
        assert ideal.push("d", arrays) < real.push("d", arrays)

    def test_launch_includes_overhead(self, runtime):
        t = runtime.launch("k", 0.0)
        assert t == pytest.approx(
            runtime.machine.host.kernel_launch_overhead_s
        )

    def test_negative_kernel_time_rejected(self, runtime):
        with pytest.raises(WorkloadError):
            runtime.launch("k", -1.0)

    def test_reset_trace(self, runtime):
        runtime.launch("k", 0.0)
        runtime.reset_trace()
        assert runtime.elapsed_s == 0.0
