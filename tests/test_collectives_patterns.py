"""Collective request validation and reduce operators."""

import numpy as np
import pytest

from repro.collectives import (
    Collective,
    CollectiveRequest,
    REDUCING_PATTERNS,
    ReduceOp,
)
from repro.errors import CollectiveError


class TestReduceOp:
    def test_sum(self):
        a, b = np.array([1, 2]), np.array([3, 4])
        assert np.array_equal(ReduceOp.SUM.apply(a, b), [4, 6])

    def test_max(self):
        a, b = np.array([1, 5]), np.array([3, 4])
        assert np.array_equal(ReduceOp.MAX.apply(a, b), [3, 5])

    def test_min(self):
        a, b = np.array([1, 5]), np.array([3, 4])
        assert np.array_equal(ReduceOp.MIN.apply(a, b), [1, 4])


class TestRequestValidation:
    def test_payload_must_be_positive(self):
        with pytest.raises(CollectiveError):
            CollectiveRequest(Collective.ALL_REDUCE, 0)

    def test_payload_must_match_dtype(self):
        with pytest.raises(CollectiveError):
            CollectiveRequest(
                Collective.ALL_REDUCE, 10, dtype=np.dtype(np.int64)
            )

    def test_num_elements(self):
        req = CollectiveRequest(
            Collective.ALL_REDUCE, 64, dtype=np.dtype(np.int32)
        )
        assert req.num_elements == 16

    def test_root_range_checked(self):
        req = CollectiveRequest(Collective.BROADCAST, 64, root=8)
        with pytest.raises(CollectiveError):
            req.validate_for(8)
        req.validate_for(16)

    def test_sharding_divisibility(self):
        req = CollectiveRequest(Collective.REDUCE_SCATTER, 64)  # 8 elements
        req.validate_for(8)
        with pytest.raises(CollectiveError):
            req.validate_for(3)

    def test_alltoall_divisibility(self):
        req = CollectiveRequest(Collective.ALL_TO_ALL, 64)
        with pytest.raises(CollectiveError):
            req.validate_for(5)

    def test_allreduce_has_no_sharding_constraint(self):
        CollectiveRequest(Collective.ALL_REDUCE, 8).validate_for(3)

    def test_reducing_patterns_set(self):
        assert Collective.ALL_REDUCE in REDUCING_PATTERNS
        assert Collective.REDUCE_SCATTER in REDUCING_PATTERNS
        assert Collective.ALL_TO_ALL not in REDUCING_PATTERNS
        assert Collective.ALL_GATHER not in REDUCING_PATTERNS
