"""Unit-conversion helpers."""

import pytest

from repro.config import units


class TestConstants:
    def test_binary_vs_decimal_sizes(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GIB == 1024 ** 3
        assert units.KB == 1000
        assert units.GB == 10 ** 9

    def test_time_constants(self):
        assert units.NS == pytest.approx(1e-9)
        assert units.US == pytest.approx(1e-6)
        assert units.MS == pytest.approx(1e-3)


class TestConversions:
    def test_bytes_per_second(self):
        assert units.bytes_per_second(16.8) == pytest.approx(16.8e9)

    def test_cycles_round_trip(self):
        cycles = units.seconds_to_cycles(1e-6, 350e6)
        assert cycles == pytest.approx(350)
        assert units.cycles_to_seconds(cycles, 350e6) == pytest.approx(1e-6)

    def test_cycles_to_seconds_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(100, 0)

    def test_transfer_time_basic(self):
        assert units.transfer_time(1e9, 1e9) == pytest.approx(1.0)

    def test_transfer_time_zero_bytes_is_free(self):
        assert units.transfer_time(0, 1e9) == 0.0

    def test_transfer_time_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            units.transfer_time(-1, 1e9)

    def test_transfer_time_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time(10, 0)


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert units.fmt_bytes(512) == "512 B"
        assert "KiB" in units.fmt_bytes(2048)
        assert "MiB" in units.fmt_bytes(5 * units.MIB)
        assert "GiB" in units.fmt_bytes(3 * units.GIB)

    def test_fmt_seconds_scales(self):
        assert units.fmt_seconds(0) == "0 s"
        assert "ns" in units.fmt_seconds(5e-9)
        assert "us" in units.fmt_seconds(5e-6)
        assert "ms" in units.fmt_seconds(5e-3)
        assert units.fmt_seconds(2.0).endswith(" s")


class TestParseBytes:
    def test_plain_and_binary_suffixes(self):
        assert units.parse_bytes("4096") == 4096
        assert units.parse_bytes("512B") == 512
        assert units.parse_bytes("32KB") == 32 * units.KIB
        assert units.parse_bytes("1MB") == units.MIB
        assert units.parse_bytes("2GiB") == 2 * units.GIB

    def test_case_and_whitespace_insensitive(self):
        assert units.parse_bytes(" 1 mb ") == units.MIB
        assert units.parse_bytes("32kib") == 32 * units.KIB

    def test_fractional_values_allowed_if_whole_bytes(self):
        assert units.parse_bytes("0.5KB") == 512

    def test_default_trace_payload_divides_the_dpu_grid(self):
        # `repro trace --payload 1MB` must satisfy the Algorithm 1
        # divisibility requirement for the 256-DPU default machine.
        assert units.parse_bytes("1MB") % (8 * 256) == 0

    def test_rejects_bad_inputs(self):
        for bad in ("", "12XB", "abc", "-4KB", "0", "0.3B"):
            with pytest.raises(ValueError):
                units.parse_bytes(bad)

    def test_rejects_negative_with_clear_error(self):
        with pytest.raises(ValueError, match="positive whole number"):
            units.parse_bytes("-1MB")

    def test_rejects_overflowing_digit_strings(self):
        # float("9" * 400) is inf; this used to surface as an
        # OverflowError from int(inf) rather than a clear ValueError.
        with pytest.raises(ValueError, match="finite"):
            units.parse_bytes("9" * 400)

    def test_rejects_overflow_after_multiplier(self):
        # The digits alone are finite, but scaling by GiB overflows.
        with pytest.raises(ValueError, match="overflows"):
            units.parse_bytes("1" + "0" * 308 + "GB")

    def test_rejects_nan_and_inf_spellings(self):
        # "nan"/"inf" parse as an unknown *suffix*, never as a value.
        for bad in ("nan", "inf", "-inf", "nanKB", "infGB"):
            with pytest.raises(ValueError):
                units.parse_bytes(bad)


class TestIsFiniteNumber:
    def test_accepts_real_numbers(self):
        for value in (1, 0, -3, 1.5, 2**62):
            assert units.is_finite_number(value)

    def test_rejects_non_finite_and_non_numbers(self):
        for value in (
            float("nan"), float("inf"), float("-inf"), "1", None, True,
        ):
            assert not units.is_finite_number(value)
