"""Golden-value regression suite for every registered experiment.

Each experiment's tables (the exact JSON the runner caches and the exact
text the CLI prints) are pinned as fixtures under ``tests/goldens/``.
Three execution paths must reproduce them byte-for-byte:

* a serial run (``jobs=1``, cache off),
* a parallel run (``jobs=2``, cache off), and
* a warm-cache run (every point served from disk).

To regenerate the fixtures after an intentional model change::

    PYTHONPATH=src python -m pytest tests/test_golden_experiments.py \
        --update-goldens -q

then inspect the diff of ``tests/goldens/`` like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import RunnerConfig, pimnet_sim_system
from repro.experiments import EXPERIMENTS
from repro.runner import REGISTRY, run_experiment, tables_to_jsonable

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Experiments whose cycle-level simulations dominate suite runtime.
SLOW_IDS = {"fig13", "noc_load_latency"}

ALL_IDS = REGISTRY.ids()

PARAMS = [
    pytest.param(
        experiment_id,
        marks=[pytest.mark.slow] if experiment_id in SLOW_IDS else [],
    )
    for experiment_id in ALL_IDS
]


@pytest.fixture(scope="module")
def golden_machine():
    return pimnet_sim_system()


def _golden_path(experiment_id: str) -> Path:
    return GOLDEN_DIR / f"{experiment_id}.json"


def _snapshot(run) -> dict:
    return {
        "experiment": run.experiment_id,
        "tables": tables_to_jsonable(run.tables),
        "formatted": run.format(),
    }


def _load_golden(experiment_id: str) -> dict:
    path = _golden_path(experiment_id)
    if not path.is_file():
        pytest.fail(
            f"missing golden fixture {path}; generate it with "
            "--update-goldens"
        )
    return json.loads(path.read_text())


def _assert_matches_golden(run, experiment_id: str) -> None:
    golden = _load_golden(experiment_id)
    snapshot = _snapshot(run)
    assert snapshot["formatted"] == golden["formatted"]
    assert snapshot["tables"] == golden["tables"]


@pytest.mark.parametrize("experiment_id", PARAMS)
def test_serial_run_matches_golden(
    experiment_id, golden_machine, update_goldens
):
    run = run_experiment(
        experiment_id,
        machine=golden_machine,
        runner=RunnerConfig(jobs=1, cache_enabled=False),
    )
    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        _golden_path(experiment_id).write_text(
            json.dumps(_snapshot(run), indent=1) + "\n"
        )
        return
    _assert_matches_golden(run, experiment_id)


@pytest.mark.parametrize("experiment_id", PARAMS)
def test_parallel_run_matches_golden(
    experiment_id, golden_machine, update_goldens
):
    if update_goldens:
        pytest.skip("fixture regeneration uses the serial path only")
    run = run_experiment(
        experiment_id,
        machine=golden_machine,
        runner=RunnerConfig(jobs=2, cache_enabled=False),
    )
    _assert_matches_golden(run, experiment_id)


@pytest.mark.parametrize("experiment_id", PARAMS)
def test_warm_cache_run_matches_golden(
    experiment_id, golden_machine, update_goldens, tmp_path
):
    if update_goldens:
        pytest.skip("fixture regeneration uses the serial path only")
    runner = RunnerConfig(jobs=1, cache_dir=str(tmp_path / "cache"))
    cold = run_experiment(experiment_id, golden_machine, runner)
    assert cold.cache_hits == 0 and cold.cache_misses == cold.points
    warm = run_experiment(experiment_id, golden_machine, runner)
    assert warm.cache_hits == warm.points and warm.cache_misses == 0
    _assert_matches_golden(cold, experiment_id)
    _assert_matches_golden(warm, experiment_id)


@pytest.mark.parametrize("experiment_id", PARAMS)
def test_schedule_cache_cold_and_warm_match_golden(
    experiment_id, golden_machine, update_goldens
):
    """A warm schedule-compilation cache must be invisible in the output:
    the second run replays cached schedules/profiles, byte-identical."""
    if update_goldens:
        pytest.skip("fixture regeneration uses the serial path only")
    from repro.schedcache import ScheduleCache, use_schedule_cache

    runner = RunnerConfig(jobs=1, cache_enabled=False)
    with use_schedule_cache(ScheduleCache()) as cache:
        cold = run_experiment(experiment_id, golden_machine, runner)
        cold_compiles = cache.counters.schedule_misses
        warm = run_experiment(experiment_id, golden_machine, runner)
        assert cache.counters.schedule_misses == cold_compiles
    _assert_matches_golden(cold, experiment_id)
    _assert_matches_golden(warm, experiment_id)


def test_registry_covers_every_experiment_module():
    assert set(ALL_IDS) == set(EXPERIMENTS)


def test_every_experiment_has_a_golden_fixture():
    missing = [
        experiment_id
        for experiment_id in ALL_IDS
        if not _golden_path(experiment_id).is_file()
    ]
    assert not missing, f"run --update-goldens to create: {missing}"


def test_no_stale_golden_fixtures():
    stale = [
        path.name
        for path in sorted(GOLDEN_DIR.glob("*.json"))
        if path.stem not in set(ALL_IDS)
    ]
    assert not stale, f"goldens without a registered experiment: {stale}"
