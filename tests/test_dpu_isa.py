"""Mini DPU ISA: instruction encoding and program building."""

import pytest

from repro.dpu import EXTRA_SLOTS, Instruction, Opcode, Program
from repro.errors import IsaError


class TestInstruction:
    def test_register_bounds_checked(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rd=24)
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rs1=-1)

    def test_single_slot_default(self):
        assert Instruction(Opcode.ADD).issue_slots == 1

    def test_mul_is_multi_slot(self):
        assert Instruction(Opcode.MUL).issue_slots == 1 + EXTRA_SLOTS[Opcode.MUL]
        assert Instruction(Opcode.MUL).issue_slots == 32


class TestProgramBuilder:
    def test_emit_returns_index(self):
        p = Program()
        assert p.emit(Instruction(Opcode.HALT)) == 0
        assert p.emit(Instruction(Opcode.HALT)) == 1

    def test_label_binds_next_instruction(self):
        p = Program()
        p.emit(Instruction(Opcode.ADD))
        p.label("here")
        p.emit(Instruction(Opcode.HALT))
        assert p.labels["here"] == 1

    def test_duplicate_label_rejected(self):
        p = Program()
        p.label("x")
        with pytest.raises(IsaError):
            p.label("x")

    def test_branch_resolution(self):
        p = Program()
        p.branch_to(Opcode.JUMP, "end")
        p.emit(Instruction(Opcode.ADD))
        p.label("end")
        p.emit(Instruction(Opcode.HALT))
        p.resolve()
        assert p.instructions[0].imm == 2

    def test_unresolved_label_rejected(self):
        p = Program()
        p.branch_to(Opcode.JUMP, "nowhere")
        with pytest.raises(IsaError):
            p.resolve()

    def test_forward_and_backward_branches(self):
        p = Program()
        p.label("top")
        p.emit(Instruction(Opcode.ADD))
        p.branch_to(Opcode.BNE, "top", rs1=1, rs2=2)
        p.branch_to(Opcode.JUMP, "bottom")
        p.label("bottom")
        p.emit(Instruction(Opcode.HALT))
        p.resolve()
        assert p.instructions[1].imm == 0
        assert p.instructions[2].imm == 3

    def test_len(self):
        p = Program()
        p.emit(Instruction(Opcode.HALT))
        assert len(p) == 1
