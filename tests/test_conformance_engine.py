"""Cross-model conformance engine: matrix, checks, config, cache."""

import pytest

from repro.config import ConformanceConfig
from repro.conformance import (
    CHECKS,
    ConformancePoint,
    enumerate_matrix,
    run_matrix,
    run_point,
)
from repro.errors import ConformanceError

#: A four-point sub-matrix small enough for tier-1.
QUICK = ConformanceConfig(
    collectives=("all_reduce", "all_to_all"),
    shapes=((2, 2, 1), (2, 2, 2)),
    payload_bytes=(256,),
)


class TestConformancePoint:
    def test_label_and_derived_geometry(self):
        point = ConformancePoint("all_reduce", 4, 2, 2, 4096)
        assert point.label() == "all_reduce@4x2x2/4096B"
        assert point.num_dpus == 16
        assert point.shape.num_dpus == 16
        assert point.num_elements(8) == 512

    def test_params_round_trip(self):
        point = ConformancePoint("broadcast", 2, 2, 1, 256)
        assert ConformancePoint.from_params(point.params) == point

    def test_unknown_collective_rejected(self):
        with pytest.raises(ConformanceError, match="unknown collective"):
            ConformancePoint("all_shuffle", 2, 2, 2, 256)

    @pytest.mark.parametrize("field", ["banks", "chips", "ranks",
                                       "payload_bytes"])
    def test_nonpositive_dims_rejected(self, field):
        params = {"collective": "all_reduce", "banks": 2, "chips": 2,
                  "ranks": 2, "payload_bytes": 256, field: 0}
        with pytest.raises(ConformanceError, match="positive int"):
            ConformancePoint(**params)

    def test_from_params_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ConformanceError, match="unknown point field"):
            ConformancePoint.from_params(
                {**ConformancePoint("all_reduce", 2, 2, 2, 256).params,
                 "color": "red"}
            )
        with pytest.raises(ConformanceError, match="missing field"):
            ConformancePoint.from_params({"collective": "all_reduce"})

    def test_indivisible_payload_rejected(self):
        point = ConformancePoint("all_reduce", 2, 2, 2, 100)
        with pytest.raises(ConformanceError, match="multiple"):
            point.num_elements(8)


class TestMatrixEnumeration:
    def test_default_matrix_is_the_issue_floor(self):
        """The acceptance floor: >= 5 collectives x 3 shapes x 3 payloads."""
        config = ConformanceConfig()
        points = enumerate_matrix(config)
        assert len(points) == config.num_points
        assert len({p.collective for p in points}) >= 5
        assert len({(p.banks, p.chips, p.ranks) for p in points}) >= 3
        assert len({p.payload_bytes for p in points}) >= 3
        assert len(set(points)) == len(points)

    def test_order_is_collective_major_then_shape_then_payload(self):
        points = enumerate_matrix(QUICK)
        labels = [p.label() for p in points]
        assert labels == [
            "all_reduce@2x2x1/256B",
            "all_reduce@2x2x2/256B",
            "all_to_all@2x2x1/256B",
            "all_to_all@2x2x2/256B",
        ]


class TestConformanceConfig:
    def test_round_trip(self):
        assert ConformanceConfig.from_dict(QUICK.as_dict()) == QUICK

    def test_unknown_field_rejected(self):
        with pytest.raises(ConformanceError, match="unknown conformance"):
            ConformanceConfig.from_dict({"tolerance": 2})

    def test_unknown_collective_rejected(self):
        with pytest.raises(ConformanceError, match="unknown collective"):
            ConformanceConfig(collectives=("warp_sum",))

    def test_bad_shape_rejected(self):
        with pytest.raises(ConformanceError, match="three positive ints"):
            ConformanceConfig(shapes=((2, 2),))

    def test_payload_must_divide_itemsize(self):
        with pytest.raises(ConformanceError, match="multiple"):
            ConformanceConfig(payload_bytes=(100,))

    @pytest.mark.parametrize("kwargs", [
        {"latency_rel_tol": float("nan")},
        {"latency_rel_tol": -0.5},
        {"latency_min_ratio": 1.5},
        {"latency_abs_slack_cycles": float("inf")},
        {"seed": -1},
    ])
    def test_bad_tolerances_rejected(self, kwargs):
        with pytest.raises(ConformanceError):
            ConformanceConfig(**kwargs)


class TestRunPoint:
    def test_agreeing_point_reports_all_checks_ok(self):
        report = run_point(
            ConformancePoint("all_reduce", 2, 2, 2, 1024), QUICK
        )
        assert report["ok"]
        assert set(report["checks"]) == set(CHECKS)
        assert all(c["ok"] for c in report["checks"].values())
        assert report["mutation"] is None

    def test_latency_report_carries_the_band(self):
        report = run_point(
            ConformancePoint("all_to_all", 2, 2, 2, 1024), QUICK
        )
        latency = report["checks"]["latency"]
        assert latency["analytic_cycles"] > 0
        assert (
            latency["lower_cycles"]
            <= latency["noc_cycles"]
            <= latency["upper_cycles"]
        )

    def test_conservation_counts_schedule_flits(self):
        report = run_point(
            ConformancePoint("all_gather", 2, 2, 1, 256), QUICK
        )
        conservation = report["checks"]["conservation"]
        assert conservation["expected_flits"] > 0
        assert conservation["delivered_flits"] == (
            conservation["expected_flits"]
        )

    def test_infeasible_point_raises_not_reports(self):
        # One element across two banks: the ring segmentation cannot
        # divide it — infeasibility must be an exception, not a failure.
        with pytest.raises(ConformanceError, match="infeasible"):
            run_point(ConformancePoint("all_reduce", 2, 2, 1, 8), QUICK)

    def test_report_is_deterministic(self):
        point = ConformancePoint("reduce_scatter", 2, 2, 2, 512)
        assert run_point(point, QUICK) == run_point(point, QUICK)


class TestRunMatrix:
    def test_quick_matrix_agrees(self, tmp_path):
        report = run_matrix(QUICK, cache_enabled=False)
        assert report.ok
        assert len(report.reports) == QUICK.num_points
        assert report.failures == ()
        assert report.config == QUICK.as_dict()

    def test_warm_rerun_is_all_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_matrix(QUICK, cache_dir=cache_dir)
        assert (cold.cache_hits, cold.cache_misses) == (
            0, QUICK.num_points
        )
        warm = run_matrix(QUICK, cache_dir=cache_dir)
        assert (warm.cache_hits, warm.cache_misses) == (
            QUICK.num_points, 0
        )
        assert warm.reports == cold.reports

    def test_format_mentions_every_point_and_the_totals(self):
        report = run_matrix(QUICK, cache_enabled=False)
        text = report.format()
        for point in enumerate_matrix(QUICK):
            assert point.label() in text
        assert f"{QUICK.num_points} point(s), 0 failure(s)" in text


@pytest.mark.slow
class TestFullMatrix:
    def test_default_matrix_all_models_agree(self):
        """The acceptance criterion: the full 5x3x3 matrix passes with
        functional bit-exactness, latency within band, and flit
        conservation on every point."""
        config = ConformanceConfig()
        report = run_matrix(config, cache_enabled=False)
        failing = [
            f"{r['point']}: "
            + ",".join(n for n in CHECKS if not r["checks"][n]["ok"])
            for r in report.failures
        ]
        assert report.ok, failing
        assert len(report.reports) == config.num_points == 45
