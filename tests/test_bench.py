"""Bench harness: artifacts, noise-aware compare, suite, CLI gating."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchArtifact,
    BenchScenario,
    ScenarioResult,
    compare_artifacts,
    default_artifact_name,
    load_artifact,
    machine_fingerprint,
    run_scenario,
    run_suite,
    save_artifact,
    summarize_times,
)
from repro.bench.scenarios import SCENARIOS
from repro.cli import main
from repro.errors import BenchError


def _result(name, times, **kwargs):
    return ScenarioResult(
        name=name,
        description=kwargs.get("description", ""),
        warmup=kwargs.get("warmup", 0),
        repeats=len(times),
        wall_times_s=tuple(times),
        summary=summarize_times(list(times)),
    )


def _artifact(results, tag="pr6"):
    return BenchArtifact(
        scenarios=tuple(results),
        fingerprint=machine_fingerprint(),
        tag=tag,
        created_utc="2026-08-08T00:00:00+00:00",
    )


class TestArtifact:
    def test_save_load_round_trip(self, tmp_path):
        artifact = _artifact([_result("a", [0.01, 0.012, 0.011])])
        path = save_artifact(artifact, tmp_path / "BENCH_x.json")
        loaded = load_artifact(path)
        assert loaded.to_dict() == artifact.to_dict()
        assert loaded.scenario("a").median_s == pytest.approx(0.011)

    def test_schema_version_is_enforced(self, tmp_path):
        artifact = _artifact([_result("a", [0.01])])
        data = artifact.to_dict()
        data["schema_version"] = BENCH_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(BenchError, match="unsupported bench artifact"):
            load_artifact(path)

    def test_malformed_artifacts_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(BenchError, match="not valid JSON"):
            load_artifact(bad)
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({
            "schema_version": BENCH_SCHEMA_VERSION,
            "fingerprint": {},
            "scenarios": [],
        }))
        with pytest.raises(BenchError, match="no scenarios"):
            load_artifact(empty)
        with pytest.raises(BenchError, match="wall_times_s"):
            ScenarioResult.from_dict({"name": "a", "wall_times_s": []})

    def test_duplicate_scenarios_rejected(self):
        data = _artifact(
            [_result("a", [0.01]), _result("a", [0.02])]
        ).to_dict()
        with pytest.raises(BenchError, match="twice"):
            BenchArtifact.from_dict(data)

    def test_fingerprint_names_the_environment(self):
        fingerprint = machine_fingerprint()
        assert {"python", "platform", "cpu_count", "code"} <= set(
            fingerprint
        )
        assert len(fingerprint["code"]) == 64  # sha-256 hex

    def test_default_name_embeds_date_and_tag(self):
        import datetime

        name = default_artifact_name(
            "pr6", when=datetime.date(2026, 8, 8)
        )
        assert name == "BENCH_20260808_pr6.json"


class TestCompare:
    def test_clear_regression_is_named(self):
        old = _artifact([
            _result("fast", [0.010, 0.011, 0.010]),
            _result("steady", [0.020, 0.021, 0.020]),
        ])
        new = _artifact([
            _result("fast", [0.020, 0.021, 0.020]),  # 2x slower
            _result("steady", [0.020, 0.021, 0.020]),
        ])
        report = compare_artifacts(old, new)
        assert not report.ok
        assert [d.name for d in report.regressions] == ["fast"]
        assert "REGRESSION: fast" in report.format()

    def test_shift_within_noise_is_not_a_regression(self):
        # Median moves +40%, but the repeats themselves span 2x: the
        # shift is indistinguishable from run-to-run wobble.
        old = _artifact([_result("noisy", [0.010, 0.020, 0.010])])
        new = _artifact([_result("noisy", [0.014, 0.028, 0.014])])
        report = compare_artifacts(old, new, threshold=0.25)
        assert report.ok
        assert report.deltas[0].shift == pytest.approx(0.4)
        assert report.deltas[0].spread >= report.deltas[0].shift

    def test_improvement_is_reported_not_failed(self):
        old = _artifact([_result("a", [0.020, 0.021, 0.020])])
        new = _artifact([_result("a", [0.010, 0.011, 0.010])])
        report = compare_artifacts(old, new)
        assert report.ok
        assert report.deltas[0].status == "improved"

    def test_unmatched_scenarios_are_listed_not_gated(self):
        old = _artifact([_result("gone", [0.01]), _result("kept", [0.01])])
        new = _artifact([_result("kept", [0.01]), _result("added", [0.01])])
        report = compare_artifacts(old, new)
        assert report.ok
        assert report.only_old == ("gone",)
        assert report.only_new == ("added",)

    def test_zero_baseline_is_an_error(self):
        old = _artifact([_result("z", [0.0, 0.0])])
        new = _artifact([_result("z", [0.01, 0.01])])
        with pytest.raises(BenchError, match="median is zero"):
            compare_artifacts(old, new)

    def test_bad_threshold_rejected(self):
        artifact = _artifact([_result("a", [0.01])])
        with pytest.raises(BenchError, match="threshold"):
            compare_artifacts(artifact, artifact, threshold=0.0)

    def test_markdown_table_renders_every_row(self):
        old = _artifact([_result("a", [0.010]), _result("b", [0.010])])
        new = _artifact([_result("a", [0.030]), _result("b", [0.010])])
        md = compare_artifacts(old, new).to_markdown()
        assert md.startswith("| scenario |")
        assert "REGRESSED" in md and "`a`" in md and "`b`" in md


class TestHarness:
    def test_run_scenario_times_setup_teardown(self):
        calls = []
        scenario = BenchScenario(
            name="toy",
            description="",
            body=lambda state: calls.append(("body", state)),
            setup=lambda: calls.append(("setup", None)) or "state",
            teardown=lambda state: calls.append(("teardown", state)),
        )
        result = run_scenario(scenario, repeats=3, warmup=2)
        assert result.repeats == 3 and result.warmup == 2
        assert len(result.wall_times_s) == 3
        assert result.summary["count"] == 3
        assert calls[0] == ("setup", None)
        assert calls[-1] == ("teardown", "state")
        assert sum(1 for c in calls if c[0] == "body") == 5

    def test_teardown_runs_even_when_the_body_raises(self):
        torn = []
        scenario = BenchScenario(
            name="boom",
            description="",
            body=lambda state: 1 / 0,
            teardown=lambda state: torn.append(True),
        )
        with pytest.raises(ZeroDivisionError):
            run_scenario(scenario, repeats=1, warmup=0)
        assert torn == [True]

    def test_invalid_counts_rejected(self):
        scenario = SCENARIOS["schedule_compile_execute"]
        with pytest.raises(BenchError, match="repeats"):
            run_scenario(scenario, repeats=0)
        with pytest.raises(BenchError, match="warmup"):
            run_scenario(scenario, repeats=1, warmup=-1)

    def test_curated_suite_registers_the_issue_scenarios(self):
        assert {
            "noc_saturation",
            "schedule_compile_execute",
            "runner_sweep_cold",
            "runner_sweep_warm",
            "conformance_warm",
        } <= set(SCENARIOS)

    def test_run_suite_subset_produces_a_valid_artifact(self, tmp_path):
        artifact = run_suite(
            names=["schedule_compile_execute"], repeats=2, warmup=0,
            tag="test",
        )
        assert artifact.tag == "test"
        assert artifact.schema_version == BENCH_SCHEMA_VERSION
        path = save_artifact(artifact, tmp_path / "BENCH_t.json")
        loaded = load_artifact(path)
        [result] = loaded.scenarios
        assert result.name == "schedule_compile_execute"
        assert all(t > 0 for t in result.wall_times_s)

    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(BenchError, match="unknown bench scenario"):
            run_suite(names=["nope"], repeats=1)


class TestCli:
    def test_list_names_every_scenario(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_writes_schema_valid_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_run.json"
        assert main([
            "bench", "run",
            "--scenario", "schedule_compile_execute",
            "--repeats", "2", "--warmup", "0",
            "--out", str(out_path),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        artifact = load_artifact(out_path)
        assert artifact.scenario("schedule_compile_execute") is not None

    def test_compare_exits_nonzero_naming_the_slowed_scenario(
        self, tmp_path, capsys
    ):
        base = _artifact([
            _result("schedule_compile_execute", [0.010, 0.011, 0.010]),
            _result("noc_saturation", [0.100, 0.101, 0.100]),
        ])
        slowed = _artifact([
            # Artificially slowed well past threshold + spread.
            _result("schedule_compile_execute", [0.030, 0.031, 0.030]),
            _result("noc_saturation", [0.100, 0.101, 0.100]),
        ])
        old_path = save_artifact(base, tmp_path / "old.json")
        new_path = save_artifact(slowed, tmp_path / "new.json")
        assert main(
            ["bench", "compare", str(old_path), str(new_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSION: schedule_compile_execute" in out
        assert main(
            ["bench", "compare", str(old_path), str(old_path)]
        ) == 0

    def test_compare_json_mode(self, tmp_path, capsys):
        artifact = _artifact([_result("a", [0.01])])
        path = save_artifact(artifact, tmp_path / "a.json")
        assert main(
            ["bench", "compare", str(path), str(path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["deltas"][0]["name"] == "a"

    def test_compare_of_missing_file_is_a_usage_error(self, capsys):
        assert main(["bench", "compare", "/no/such.json", "/no/such.json"]
                    ) == 2
        assert "bench compare failed" in capsys.readouterr().err
