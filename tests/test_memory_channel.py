"""DDR channel model: host <-> PIM transfer timing."""

import pytest

from repro.config import HostConfig, HostLinkConfig
from repro.errors import MemoryModelError
from repro.memory import DdrChannel


@pytest.fixture
def channel() -> DdrChannel:
    return DdrChannel(HostLinkConfig(), HostConfig())


@pytest.fixture
def ideal_channel() -> DdrChannel:
    return DdrChannel(HostLinkConfig(), HostConfig(), ideal=True)


class TestDirections:
    def test_gather_uses_pim_to_cpu_rate(self, ideal_channel):
        t = ideal_channel.pim_to_cpu(4.74e9).time_s
        assert t == pytest.approx(1.0)

    def test_scatter_uses_cpu_to_pim_rate(self, ideal_channel):
        t = ideal_channel.cpu_to_pim(6.68e9).time_s
        assert t == pytest.approx(1.0)

    def test_broadcast_is_fastest_downstream(self, ideal_channel):
        down = ideal_channel.cpu_to_pim(1e9).time_s
        bcast = ideal_channel.cpu_to_pim_broadcast(1e9).time_s
        assert bcast < down


class TestOverheads:
    def test_real_channel_charges_setup(self, channel, ideal_channel):
        real = channel.pim_to_cpu(1e6, num_ranks=4).time_s
        ideal = ideal_channel.pim_to_cpu(1e6, num_ranks=4).time_s
        assert real > ideal

    def test_overhead_grows_with_ranks(self, channel):
        one = channel.pim_to_cpu(1e6, num_ranks=1).time_s
        four = channel.pim_to_cpu(1e6, num_ranks=4).time_s
        assert four > one

    def test_rank_count_validated(self, channel):
        with pytest.raises(MemoryModelError):
            channel.pim_to_cpu(100, num_ranks=0)


class TestBookkeeping:
    def test_transfers_recorded(self, channel):
        channel.pim_to_cpu(100)
        channel.cpu_to_pim(100)
        channel.cpu_to_pim_broadcast(100)
        directions = [t.direction for t in channel.transfers]
        assert directions == [
            "pim_to_cpu",
            "cpu_to_pim",
            "cpu_to_pim_broadcast",
        ]

    def test_max_bandwidth_helper(self, channel):
        assert channel.at_max_bandwidth(19.2e9) == pytest.approx(1.0)
