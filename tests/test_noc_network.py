"""NoC topology construction and deterministic routing."""

import pytest

from repro.core import Shape
from repro.errors import TopologyError
from repro.noc import NocNetwork


@pytest.fixture
def net() -> NocNetwork:
    return NocNetwork(Shape(4, 2, 2))


class TestConstruction:
    def test_ring_links_both_directions(self, net):
        east = [n for n in net.links if ">E" in n]
        west = [n for n in net.links if ">W" in n]
        # 4 banks x 2 chips x 2 ranks, one east+west link per bank
        assert len(east) == 16
        assert len(west) == 16

    def test_every_bank_has_io_taps(self, net):
        ups = [n for n in net.links if n.startswith("io:") and n.endswith("up")]
        assert len(ups) == 16

    def test_dq_links_per_chip(self, net):
        dq = [n for n in net.links if n.startswith("dq:")]
        assert len(dq) == 2 * 4  # up+down per chip

    def test_bus_links_share_medium(self, net):
        bus_links = [l for n, l in net.links.items() if n.startswith("bus:")]
        assert len(bus_links) == 2  # 2 ranks, ordered pairs
        assert all(l.medium is net.bus_medium for l in bus_links)

    def test_bank_links_slower_than_bus(self, net):
        ring = net.links["ring:0:0:0>E"]
        bus = net.links["bus:0>1"]
        assert ring.cycles_per_flit > bus.cycles_per_flit

    def test_single_bank_chip_has_no_ring(self):
        net = NocNetwork(Shape(1, 2, 1))
        assert not any(n.startswith("ring:") for n in net.links)


class TestRouting:
    def test_same_chip_uses_ring_only(self, net):
        path = net.path(net.shape.dpu(0, 0, 0), net.shape.dpu(0, 0, 1))
        assert all(l.name.startswith("ring:") for l in path)

    def test_shorter_way_routing(self, net):
        # distance 3 east vs 1 west on a 4-ring: choose west
        path = net.path(net.shape.dpu(0, 0, 0), net.shape.dpu(0, 0, 3))
        assert len(path) == 1
        assert ">W" in path[0].name

    def test_cross_chip_path_structure(self, net):
        src = net.shape.dpu(0, 0, 1)
        dst = net.shape.dpu(0, 1, 2)
        names = [l.name for l in net.path(src, dst)]
        assert names[0].startswith("io:0:0:1:up")
        assert names[1].startswith("dq:0:0:up")
        assert names[2].startswith("dq:0:1:down")
        assert names[3].startswith("io:0:1:2:down")

    def test_cross_rank_path_crosses_bus(self, net):
        src = net.shape.dpu(0, 0, 0)
        dst = net.shape.dpu(1, 1, 3)
        names = [l.name for l in net.path(src, dst)]
        assert "bus:0>1" in names

    def test_path_endpoints_consistent(self, net):
        for src in range(net.shape.num_dpus):
            for dst in range(net.shape.num_dpus):
                if src == dst:
                    continue
                path = net.path(src, dst)
                assert path[0].src_router == net.stop_name(src)
                assert path[-1].dst_router == net.stop_name(dst)
                # hops chain together
                for a, b in zip(path, path[1:]):
                    assert a.dst_router == b.src_router

    def test_self_path_rejected(self, net):
        with pytest.raises(TopologyError):
            net.path(0, 0)


class TestReset:
    def test_reset_restores_links_and_bus(self, net):
        link = net.links["bus:0>1"]
        from repro.noc.flit import Flit, Message

        flit = Flit(
            message=Message(msg_id=0, src=0, dst=8, num_flits=1),
            seq=0,
            path=(),
        )
        link.start_traversal(flit, now=0)
        net.reset()
        assert link.credits == link.buffer_depth
        assert net.bus_medium.next_free_cycle == 0
