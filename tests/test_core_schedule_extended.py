"""AllGather / Reduce / Gather static schedules (Section V-E extensions)."""

import numpy as np
import pytest

from repro.collectives import Collective, CollectiveRequest, ReduceOp, functional
from repro.core import (
    Shape,
    Tier,
    allgather_schedule,
    execute_schedule,
    gather_schedule,
    reduce_schedule,
)
from repro.errors import ScheduleError

from .conftest import make_buffers

SHAPES = [
    Shape(2, 2, 2),
    Shape(4, 2, 2),
    Shape(2, 3, 2),
    Shape(8, 1, 1),
    Shape(1, 1, 4),
    Shape(1, 4, 1),
]


class TestAllGatherSchedule:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_matches_reference(self, shape, rng):
        e = 4
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(allgather_schedule(shape, e), buffers)
        ref = functional.execute(
            CollectiveRequest(
                Collective.ALL_GATHER, e * 8, dtype=np.dtype(np.int64)
            ),
            buffers,
        )
        for a, b in zip(out, ref):
            assert np.array_equal(a, b)

    def test_table_v_phase_order(self):
        sched = allgather_schedule(Shape(2, 2, 2), 4)
        tiers = [p.tier for p in sched.phases]
        assert tiers == [Tier.LOCAL, Tier.RANK, Tier.CHIP, Tier.BANK]

    def test_rank_phase_is_broadcast(self):
        sched = allgather_schedule(Shape(2, 2, 2), 4)
        rank = [p for p in sched.phases if p.tier is Tier.RANK][0]
        assert rank.algorithm == "broadcast"

    def test_output_extent_is_n_times_e(self, rng):
        shape = Shape(2, 2, 1)
        buffers = make_buffers(shape.num_dpus, 4, rng)
        out = execute_schedule(allgather_schedule(shape, 4), buffers)
        assert all(o.size == shape.num_dpus * 4 for o in out)


class TestReduceSchedule:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    @pytest.mark.parametrize("root", [0, 3])
    def test_root_holds_reduction(self, shape, root, rng):
        root = root % shape.num_dpus
        e = shape.num_dpus * 4
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(
            reduce_schedule(shape, e, root=root), buffers
        )
        assert np.array_equal(out[root], np.sum(buffers, axis=0))

    def test_min_op(self, rng):
        shape = Shape(2, 2, 1)
        e = 8
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(
            reduce_schedule(shape, e, root=2), buffers, op=ReduceOp.MIN
        )
        assert np.array_equal(out[2], np.min(buffers, axis=0))

    def test_funnel_phases_locality_ordered(self):
        sched = reduce_schedule(Shape(2, 2, 2), 8, root=0)
        names = [p.name for p in sched.phases]
        assert names.index("bank-funnel") < names.index("chip-funnel")
        assert names.index("chip-funnel") < names.index("rank-funnel")

    def test_invalid_root(self):
        with pytest.raises(ScheduleError):
            reduce_schedule(Shape(2, 2, 2), 8, root=8)


class TestGatherSchedule:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_root_holds_concatenation(self, shape, rng):
        e = 4
        buffers = make_buffers(shape.num_dpus, e, rng)
        out = execute_schedule(gather_schedule(shape, e, root=0), buffers)
        assert np.array_equal(out[0], np.concatenate(buffers))

    def test_nonzero_root(self, rng):
        shape = Shape(2, 2, 2)
        buffers = make_buffers(8, 4, rng)
        out = execute_schedule(gather_schedule(shape, 4, root=5), buffers)
        assert np.array_equal(out[5], np.concatenate(buffers))

    def test_funnel_transfers_target_root_only(self):
        root = 3
        sched = gather_schedule(Shape(2, 2, 2), 4, root=root)
        for phase in sched.phases:
            if phase.tier is Tier.LOCAL:
                continue
            for step in phase.steps:
                for t in step.transfers:
                    assert t.dst == root

    def test_invalid_root(self):
        with pytest.raises(ScheduleError):
            gather_schedule(Shape(2, 2, 2), 8, root=-1)


class TestProgramsForExtendedSchedules:
    def test_allgather_program_round_trip(self, rng):
        from repro.core import generate_programs, run_programs

        shape = Shape(2, 2, 1)
        buffers = make_buffers(shape.num_dpus, 4, rng)
        programs = generate_programs(allgather_schedule(shape, 4))
        out = run_programs(programs, buffers)
        ref = functional.execute(
            CollectiveRequest(
                Collective.ALL_GATHER, 4 * 8, dtype=np.dtype(np.int64)
            ),
            buffers,
        )
        for a, b in zip(out, ref):
            assert np.array_equal(a, b)
