"""Arbitration fairness regression tests.

Two saturating flows competing for one resource must share it ~50/50:

* a router output port (switch allocation rotates over the stable
  input-port list, advancing past each grantee), and
* the shared half-duplex bus medium (grant rotation across member
  links instead of link-dict-order static priority).

The grant sequences are recorded with ``record_grants=True`` and every
prefix of the competition window must be balanced within one flit —
the property the old pointer-over-rebuilt-candidate-list arbitration
and the fixed-order bus walk both violated.
"""

from collections import Counter

import pytest

from repro.core import Shape
from repro.noc import Message, NocNetwork, NocSimulator

FLITS = 24


def prefix_imbalance(log: list[str]) -> int:
    """Max over prefixes of (leader count - trailer count)."""
    counts: Counter = Counter()
    worst = 0
    for grant in log:
        counts[grant] += 1
        values = sorted(counts.values())
        worst = max(worst, values[-1] - values[0])
    return worst


class TestOutputPortFairness:
    """Two banks of one chip flood a remote chip: their io-up buffers
    contend for the single DQ-up link at the gateway."""

    @pytest.fixture
    def stats(self):
        shape = Shape(2, 2, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=shape.dpu(0, 0, 0),
                    dst=shape.dpu(0, 1, 0), num_flits=FLITS),
            Message(msg_id=1, src=shape.dpu(0, 0, 1),
                    dst=shape.dpu(0, 1, 1), num_flits=FLITS),
        ]
        return NocSimulator(net, messages, record_grants=True).run()

    def test_grant_totals_within_one_flit(self, stats):
        log = stats.grant_log["dq:0:0:up"]
        counts = Counter(log)
        assert counts["io:0:0:0:up"] == FLITS
        assert counts["io:0:0:1:up"] == FLITS
        assert abs(counts["io:0:0:0:up"] - counts["io:0:0:1:up"]) <= 1

    def test_every_prefix_balanced(self, stats):
        """Round-robin must interleave, not burst: no port ever leads
        by more than one grant."""
        assert prefix_imbalance(stats.grant_log["dq:0:0:up"]) <= 1

    def test_conflicts_were_actually_arbitrated(self, stats):
        assert stats.arbitration_conflicts > 0


class TestSharedBusFairness:
    """Opposite-direction rank-to-rank flows share the half-duplex DDR
    bus medium; grants must rotate between the two bus links."""

    @pytest.fixture
    def stats(self):
        shape = Shape(1, 1, 2)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=shape.dpu(0, 0, 0),
                    dst=shape.dpu(1, 0, 0), num_flits=FLITS),
            Message(msg_id=1, src=shape.dpu(1, 0, 0),
                    dst=shape.dpu(0, 0, 0), num_flits=FLITS),
        ]
        return NocSimulator(net, messages, record_grants=True).run()

    def test_bus_grant_totals_within_one_flit(self, stats):
        log = stats.medium_grant_log["ddr-bus"]
        counts = Counter(log)
        assert counts["bus:0>1"] == FLITS
        assert counts["bus:1>0"] == FLITS
        assert abs(counts["bus:0>1"] - counts["bus:1>0"]) <= 1

    def test_every_bus_prefix_balanced(self, stats):
        assert prefix_imbalance(stats.medium_grant_log["ddr-bus"]) <= 1

    def test_both_flows_finish_together(self, stats):
        """Fair bus sharing means neither direction is starved into
        finishing long after the other."""
        latencies = stats.per_message_latency
        bus_cycles = 0
        for name, busy in stats.link_busy_cycles.items():
            if name.startswith("bus:"):
                bus_cycles = max(bus_cycles, busy // FLITS)
        assert abs(latencies[0] - latencies[1]) <= 2 * bus_cycles


class TestGrantRecordingOffByDefault:
    def test_no_logs_without_flag(self):
        shape = Shape(1, 1, 2)
        net = NocNetwork(shape)
        msg = Message(msg_id=0, src=shape.dpu(0, 0, 0),
                      dst=shape.dpu(1, 0, 0), num_flits=4)
        stats = NocSimulator(net, [msg]).run()
        assert stats.grant_log == {}
        assert stats.medium_grant_log == {}
