"""Communication energy model."""

import numpy as np
import pytest

from repro.analysis import collective_energy, energy_comparison
from repro.collectives import Collective, CollectiveRequest
from repro.config import pimnet_sim_system
from repro.errors import ReproError
from repro.experiments.common import scaled_machine


def req(pattern, payload=32 * 1024):
    return CollectiveRequest(pattern, payload, dtype=np.dtype(np.int64))


class TestEnergyOrdering:
    @pytest.mark.parametrize(
        "pattern",
        [Collective.ALL_REDUCE, Collective.ALL_TO_ALL],
    )
    def test_pimnet_cheaper_than_host_path(self, pattern):
        est = energy_comparison(req(pattern))
        assert est["P"].total_j < est["B"].total_j

    def test_broadcast_is_not_an_energy_win(self):
        """Honest model outcome: Table V's chip-ring-first broadcast puts
        C copies on the expensive bus, so for pure broadcast the
        host's single bus crossing is energy-comparable or better —
        PIMnet's broadcast win is latency/bandwidth, not energy."""
        est = energy_comparison(req(Collective.BROADCAST))
        ratio = est["B"].total_j / est["P"].total_j
        assert 0.3 < ratio < 3.0

    def test_allreduce_saves_severalfold(self):
        est = energy_comparison(req(Collective.ALL_REDUCE))
        assert est["B"].total_j / est["P"].total_j > 2

    def test_host_path_charges_compute(self):
        est = collective_energy(req(Collective.ALL_REDUCE), "B")
        assert est.compute_j > 0

    def test_pimnet_has_no_host_compute(self):
        est = collective_energy(req(Collective.ALL_REDUCE), "P")
        assert est.compute_j == 0.0


class TestScaling:
    def test_energy_linear_in_payload(self):
        small = collective_energy(req(Collective.ALL_REDUCE, 8 * 1024), "P")
        large = collective_energy(req(Collective.ALL_REDUCE, 64 * 1024), "P")
        assert large.total_j == pytest.approx(8 * small.total_j, rel=0.01)

    def test_host_energy_grows_with_dpus(self):
        machine = pimnet_sim_system()
        e64 = collective_energy(
            req(Collective.ALL_REDUCE), "B", scaled_machine(machine, 64)
        )
        e256 = collective_energy(
            req(Collective.ALL_REDUCE), "B", scaled_machine(machine, 256)
        )
        assert e256.total_j > 3 * e64.total_j

    def test_pimnet_energy_mostly_on_cheap_tiers(self):
        """Most PIMnet bytes move on the cheap on-chip rings."""
        ar = collective_energy(req(Collective.ALL_REDUCE), "P")
        a2a = collective_energy(req(Collective.ALL_TO_ALL), "P")
        # A2A pushes most bytes over the expensive bus, so per byte
        # moved its energy exceeds AllReduce's.
        assert a2a.total_j > ar.total_j


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            collective_energy(req(Collective.ALL_REDUCE), "Z")

    def test_unmodeled_pattern_rejected(self):
        with pytest.raises(ReproError):
            collective_energy(req(Collective.GATHER), "P")
