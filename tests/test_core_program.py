"""Per-bank PIM communication programs (Fig 5(c)/(d))."""

import numpy as np
import pytest

from repro.collectives import Collective, CollectiveRequest, ReduceOp, functional
from repro.core import (
    PimOp,
    Shape,
    allreduce_schedule,
    alltoall_schedule,
    broadcast_schedule,
    generate_programs,
    reduce_scatter_schedule,
    run_programs,
)
from repro.errors import ScheduleError

from .conftest import make_buffers


class TestGeneration:
    def test_every_bank_gets_a_stream(self):
        shape = Shape(2, 2, 2)
        programs = generate_programs(allreduce_schedule(shape, 16))
        assert set(programs) == set(range(8))

    def test_streams_end_with_done(self):
        programs = generate_programs(
            allreduce_schedule(Shape(2, 2, 2), 16)
        )
        for stream in programs.values():
            assert stream[-1].op is PimOp.DONE

    def test_lockstep_barrier_structure(self):
        """All banks see the same POLL/WAIT skeleton — the property that
        makes contention-free channel sharing possible."""
        programs = generate_programs(
            allreduce_schedule(Shape(2, 2, 2), 16)
        )
        skeletons = {
            tuple(
                inst.op
                for inst in stream
                if inst.op in (PimOp.POLL, PimOp.WAIT, PimOp.DONE)
            )
            for stream in programs.values()
        }
        assert len(skeletons) == 1

    def test_polls_match_phase_count(self):
        sched = allreduce_schedule(Shape(2, 2, 2), 16)
        programs = generate_programs(sched)
        polls = sum(
            1 for inst in programs[0] if inst.op is PimOp.POLL
        )
        assert polls == len(sched.phases)

    def test_sends_and_recvs_pair_up(self):
        programs = generate_programs(
            allreduce_schedule(Shape(2, 2, 2), 16)
        )
        sends = sum(
            1
            for stream in programs.values()
            for inst in stream
            if inst.op is PimOp.SEND
        )
        recvs = sum(
            1
            for stream in programs.values()
            for inst in stream
            if inst.op in (PimOp.RECV, PimOp.RECV_REDUCE)
        )
        assert sends == recvs > 0


class TestExecution:
    @pytest.mark.parametrize(
        "generator,pattern",
        [
            (allreduce_schedule, Collective.ALL_REDUCE),
            (alltoall_schedule, Collective.ALL_TO_ALL),
        ],
    )
    def test_matches_functional_reference(self, generator, pattern, rng):
        shape = Shape(2, 2, 2)
        e = 16
        buffers = make_buffers(shape.num_dpus, e, rng)
        programs = generate_programs(generator(shape, e))
        out = run_programs(programs, buffers)
        ref = functional.execute(
            CollectiveRequest(pattern, e * 8, dtype=np.dtype(np.int64)),
            buffers,
        )
        for a, b in zip(out, ref):
            assert np.array_equal(a, b)

    def test_reduce_scatter_with_min(self, rng):
        shape = Shape(2, 2, 1)
        e = 16
        buffers = make_buffers(shape.num_dpus, e, rng)
        programs = generate_programs(reduce_scatter_schedule(shape, e))
        out = run_programs(programs, buffers, op=ReduceOp.MIN)
        total = np.min(buffers, axis=0)
        shard = e // shape.num_dpus
        for d in range(shape.num_dpus):
            assert np.array_equal(
                out[d][d * shard : (d + 1) * shard],
                total[d * shard : (d + 1) * shard],
            )

    def test_broadcast_program(self, rng):
        shape = Shape(2, 2, 2)
        buffers = make_buffers(shape.num_dpus, 8, rng)
        programs = generate_programs(broadcast_schedule(shape, 8, root=5))
        out = run_programs(programs, buffers)
        for buf in out:
            assert np.array_equal(buf, buffers[5])

    def test_desynchronized_program_detected(self, rng):
        """Dropping one bank's RECV leaves an undelivered SEND."""
        shape = Shape(2, 1, 1)
        programs = generate_programs(allreduce_schedule(shape, 4))
        broken = {
            d: [
                inst
                for inst in stream
                if not (
                    d == 1 and inst.op in (PimOp.RECV, PimOp.RECV_REDUCE)
                )
            ]
            for d, stream in programs.items()
        }
        with pytest.raises(ScheduleError):
            run_programs(broken, make_buffers(2, 4, rng))

    def test_wrong_buffer_count_rejected(self, rng):
        programs = generate_programs(allreduce_schedule(Shape(2, 1, 1), 4))
        with pytest.raises(ScheduleError):
            run_programs(programs, make_buffers(3, 4, rng))
