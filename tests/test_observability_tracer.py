"""Span tracer: nesting, clocks, and the disabled zero-overhead path."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    active_tracer,
    current_span,
    set_active_tracer,
    trace_span,
    traced,
    use_tracer,
)


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        assert tracer.roots == [outer]
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in middle.children] == ["inner"]

    def test_sequential_roots_form_a_forest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in tracer.walk()] == ["a", "b", "c", "d"]

    def test_find_and_find_all(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        with tracer.span("phase"):
            pass
        assert tracer.find("phase") is tracer.roots[0]
        assert len(tracer.find_all("phase")) == 2
        assert tracer.find("missing") is None

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current is inner
        assert tracer.current is None

    def test_out_of_order_exit_rejected(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError, match="out of order"):
            outer.__exit__(None, None, None)


class TestSpanClocks:
    def test_wall_clock_recorded_on_exit(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            assert span.wall_start_s is not None
            assert span.wall_end_s is None
        assert span.wall_duration_s is not None
        assert span.wall_duration_s >= 0

    def test_sim_window_explicit(self):
        tracer = Tracer()
        with tracer.span("phase", sim_start_s=1.0, sim_end_s=3.5) as span:
            pass
        assert span.has_sim_window
        assert span.sim_duration_s == pytest.approx(2.5)

    def test_set_sim_window_after_the_fact(self):
        tracer = Tracer()
        with tracer.span("phase") as span:
            assert not span.has_sim_window
            span.set_sim_window(0.0, 0.25)
        assert span.sim_duration_s == pytest.approx(0.25)

    def test_inverted_sim_window_rejected(self):
        tracer = Tracer()
        with pytest.raises(ObservabilityError, match="before it starts"):
            tracer.span("bad").set_sim_window(2.0, 1.0)

    def test_record_adds_closed_sim_span(self):
        tracer = Tracer()
        span = tracer.record("phase", 0.5, 1.5, category="phase", tier="bank")
        assert tracer.roots == [span]
        assert span.sim_duration_s == pytest.approx(1.0)
        assert span.wall_duration_s is not None
        assert span.attributes["tier"] == "bank"


class TestSpanAttributes:
    def test_attribute_setters_chain(self):
        tracer = Tracer()
        with tracer.span("s", payload=8) as span:
            span.set_attribute("tier", "bank").set_attributes(steps=7, x=1)
        assert span.attributes == {"payload": 8, "tier": "bank",
                                   "steps": 7, "x": 1}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.attributes["error"] == "ValueError"
        assert tracer.current is None  # stack unwound

    def test_empty_name_rejected(self):
        with pytest.raises(ObservabilityError, match="non-empty"):
            Span("")


class TestDisabledPath:
    """With no (or a disabled) tracer, every helper returns shared no-ops."""

    def test_trace_span_returns_the_null_singleton(self):
        assert active_tracer() is None
        assert trace_span("anything", key="value") is NULL_SPAN
        assert current_span() is NULL_SPAN

    def test_disabled_tracer_returns_the_null_singleton(self):
        tracer = Tracer(enabled=False)
        with use_tracer(tracer):
            assert trace_span("anything") is NULL_SPAN
        assert tracer.roots == []

    def test_null_span_absorbs_everything(self):
        span = NULL_SPAN
        with span as entered:
            assert entered is NULL_SPAN
        assert span.set_attribute("k", 1) is NULL_SPAN
        assert span.set_attributes(a=2) is NULL_SPAN
        assert span.set_sim_window(0.0, 1.0) is NULL_SPAN
        assert isinstance(span, NullSpan)

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with use_tracer(None):
            with trace_span("invisible"):
                pass
        assert tracer.roots == []


class TestActiveTracer:
    def test_use_tracer_restores_previous(self):
        first, second = Tracer(), Tracer()
        set_active_tracer(first)
        try:
            with use_tracer(second):
                assert active_tracer() is second
            assert active_tracer() is first
        finally:
            set_active_tracer(None)

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError
        assert active_tracer() is None

    def test_trace_span_reports_to_active_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("via-helper", category="test") as span:
                assert current_span() is span
        assert [r.name for r in tracer.roots] == ["via-helper"]

    def test_clear_resets_roots(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.clear()
        assert tracer.roots == []

    def test_clear_with_open_span_rejected(self):
        tracer = Tracer()
        span = tracer.span("open")
        span.__enter__()
        with pytest.raises(ObservabilityError, match="open spans"):
            tracer.clear()
        span.__exit__(None, None, None)


class TestTracedDecorator:
    def test_decorator_resolves_tracer_at_call_time(self):
        @traced("work/unit", category="test")
        def unit(x):
            return x * 2

        assert unit(3) == 6  # no tracer: plain call

        tracer = Tracer()
        with use_tracer(tracer):
            assert unit(4) == 8
        assert [r.name for r in tracer.roots] == ["work/unit"]

    def test_decorator_defaults_to_qualname(self):
        @traced()
        def helper():
            return 1

        tracer = Tracer()
        with use_tracer(tracer):
            helper()
        assert "helper" in tracer.roots[0].name
