"""Shard health: fault sets map to states, transitions are logged."""

import pytest

from repro.config import small_test_system
from repro.config.faults import FaultModelConfig
from repro.errors import FleetError
from repro.faults.model import sample_fault_set
from repro.fleet import (
    HealthTracker,
    ShardHealth,
    health_of,
)

pytestmark = pytest.mark.fleet

SYSTEM = small_test_system().system


def fault_set(model: FaultModelConfig, seed: int = 0):
    return sample_fault_set(model, SYSTEM, seed, ())


class TestHealthOf:
    def test_empty_fault_set_is_healthy(self):
        assert health_of(fault_set(FaultModelConfig())) is ShardHealth.HEALTHY

    def test_fatal_fault_set_is_down(self):
        dead = fault_set(FaultModelConfig(bank_fail_stop_rate=1.0))
        assert dead.fatal
        assert health_of(dead) is ShardHealth.DOWN

    def test_nonfatal_fault_set_is_degraded(self):
        slow = fault_set(
            FaultModelConfig(
                bank_straggler_rate=1.0, straggler_severity=2.0
            )
        )
        assert slow and not slow.fatal
        assert health_of(slow) is ShardHealth.DEGRADED

    def test_serving(self):
        assert ShardHealth.HEALTHY.serving
        assert ShardHealth.DEGRADED.serving
        assert not ShardHealth.DOWN.serving


class TestHealthTracker:
    def test_starts_all_healthy(self):
        tracker = HealthTracker(3)
        assert tracker.states() == (ShardHealth.HEALTHY,) * 3
        assert tracker.serving_shards() == (0, 1, 2)
        assert tracker.transitions == []

    def test_mark_logs_a_transition(self):
        tracker = HealthTracker(3)
        changed = tracker.mark(1, ShardHealth.DOWN, "killed", at_submission=7)
        assert changed
        assert tracker.state(1) is ShardHealth.DOWN
        assert tracker.serving_shards() == (0, 2)
        (transition,) = tracker.transitions
        assert transition.to_dict() == {
            "at_submission": 7,
            "shard": 1,
            "old": "healthy",
            "new": "down",
            "reason": "killed",
        }

    def test_marking_the_same_state_is_a_noop(self):
        tracker = HealthTracker(2)
        assert not tracker.mark(0, ShardHealth.HEALTHY, "still fine")
        assert tracker.transitions == []

    def test_apply_fault_set_then_revive(self):
        tracker = HealthTracker(2)
        dead = fault_set(FaultModelConfig(bank_fail_stop_rate=1.0))
        state = tracker.apply_fault_set(0, dead, at_submission=4)
        assert state is ShardHealth.DOWN
        tracker.revive(0, at_submission=9)
        assert tracker.state(0) is ShardHealth.HEALTHY
        assert [t.new for t in tracker.transitions] == [
            ShardHealth.DOWN, ShardHealth.HEALTHY,
        ]
        assert [t.at_submission for t in tracker.transitions] == [4, 9]

    def test_counts(self):
        tracker = HealthTracker(3)
        tracker.mark(0, ShardHealth.DOWN, "killed")
        tracker.mark(1, ShardHealth.DEGRADED, "straggler")
        assert tracker.counts() == {"healthy": 1, "degraded": 1, "down": 1}

    def test_out_of_range_raises(self):
        tracker = HealthTracker(2)
        with pytest.raises(FleetError):
            tracker.state(2)
        with pytest.raises(FleetError):
            tracker.mark(-1, ShardHealth.DOWN, "nope")

    def test_zero_shards_rejected(self):
        with pytest.raises(FleetError):
            HealthTracker(0)
