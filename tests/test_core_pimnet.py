"""PimnetBackend and stop/switch structural specs."""

import numpy as np
import pytest

from repro.collectives import Collective, CollectiveRequest
from repro.core import PimnetBackend, PimnetStopSpec, SwitchSpec, Shape
from repro.core.collectives import PIMNET_ALGORITHMS, algorithm_chain
from repro.errors import ConfigurationError, ScheduleError


class TestBackendShape:
    def test_shape_mirrors_machine(self, machine):
        backend = PimnetBackend(machine)
        assert backend.shape == Shape(8, 8, 4)

    def test_schedule_uses_request_pattern(self, machine):
        backend = PimnetBackend(machine)
        request = CollectiveRequest(
            Collective.ALL_TO_ALL, 256 * 8, dtype=np.dtype(np.int64)
        )
        sched = backend.schedule(request)
        assert sched.pattern is Collective.ALL_TO_ALL
        assert sched.shape.num_dpus == 256

    def test_schedule_requires_divisible_elements(self, machine):
        backend = PimnetBackend(machine)
        request = CollectiveRequest(Collective.ALL_REDUCE, 8)
        with pytest.raises(ScheduleError):
            backend.schedule(request)


class TestTableV:
    def test_every_primary_pattern_has_a_chain(self):
        for pattern in (
            Collective.REDUCE_SCATTER,
            Collective.ALL_GATHER,
            Collective.ALL_REDUCE,
            Collective.ALL_TO_ALL,
            Collective.BROADCAST,
        ):
            assert pattern in PIMNET_ALGORITHMS

    def test_allreduce_chain_is_rs_then_ag(self):
        chain = PIMNET_ALGORITHMS[Collective.ALL_REDUCE]
        tiers = [leg.tier for leg in chain]
        assert tiers == [
            "inter-bank", "inter-chip", "inter-rank",
            "inter-chip", "inter-bank",
        ]

    def test_alltoall_uses_permutation_and_unicast(self):
        chain = PIMNET_ALGORITHMS[Collective.ALL_TO_ALL]
        assert [leg.algorithm for leg in chain] == [
            "ring", "permutation", "unicast",
        ]

    def test_chain_formatting(self):
        text = algorithm_chain(Collective.REDUCE_SCATTER)
        assert text == (
            "Ring(inter-bank) -> Ring(inter-chip) -> Broadcast(inter-rank)"
        )

    def test_unmapped_pattern_falls_back(self):
        assert algorithm_chain(Collective.GATHER) == "single-DPU funnel"


class TestStopSpec:
    def test_default_geometry_matches_fig7(self):
        spec = PimnetStopSpec()
        assert spec.channel_width_bits == 16
        assert spec.num_channels == 4
        assert spec.traversal_cycles() == 1

    def test_datapath_bits(self):
        assert PimnetStopSpec().datapath_bits == 64

    def test_from_tier(self, machine):
        spec = PimnetStopSpec.from_tier(machine.pimnet.inter_bank)
        assert spec.channel_width_bits == 16
        assert spec.num_channels == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PimnetStopSpec(channel_width_bits=0)
        with pytest.raises(ConfigurationError):
            PimnetStopSpec(traversal_stages=0)


class TestSwitchSpec:
    def test_default_is_8x8_of_4bit_ports(self):
        spec = SwitchSpec()
        assert spec.radix == 8
        assert spec.port_width_bits == 4
        assert spec.crosspoint_count == 64

    def test_config_registers(self):
        spec = SwitchSpec(num_step_configs=16)
        assert spec.config_register_bits == 16 * 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchSpec(radix=1)
        with pytest.raises(ConfigurationError):
            SwitchSpec(port_width_bits=0)
