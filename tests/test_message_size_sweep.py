"""Message-size sensitivity sweep."""

import pytest

from repro.collectives import Collective
from repro.experiments import message_size_sweep


@pytest.fixture(scope="module")
def allreduce():
    return message_size_sweep.run(Collective.ALL_REDUCE)


class TestSweepStructure:
    def test_all_backends_all_sizes(self, allreduce):
        assert set(allreduce.times_s) == {"B", "S", "D", "P"}
        for times in allreduce.times_s.values():
            assert len(times) == len(allreduce.payloads)

    def test_times_monotone_in_payload(self, allreduce):
        for times in allreduce.times_s.values():
            assert all(b > a for a, b in zip(times, times[1:]))


class TestRegimes:
    def test_small_messages_are_latency_dominated(self, allreduce):
        """At 256 B the baseline's fixed host overheads dominate, so the
        PIMnet gain is largest there."""
        speedups = allreduce.speedup_series()["P"]
        assert speedups[0] == max(speedups)

    def test_large_messages_settle_to_bandwidth_ratio(self, allreduce):
        """Beyond WRAM-scale payloads the gain converges to the
        bandwidth (plus staging) ratio."""
        speedups = allreduce.speedup_series()["P"]
        assert speedups[-1] == pytest.approx(speedups[-2], rel=0.25)

    def test_pimnet_wins_at_every_size(self, allreduce):
        assert all(s > 1 for s in allreduce.speedup_series()["P"])

    def test_alltoall_gain_smaller_everywhere(self, allreduce):
        a2a = message_size_sweep.run(Collective.ALL_TO_ALL)
        ar_speedups = allreduce.speedup_series()["P"]
        a2a_speedups = a2a.speedup_series()["P"]
        # compare at bandwidth-dominated sizes (small ones are
        # overhead-dominated for both patterns alike)
        assert a2a_speedups[-1] < ar_speedups[-1]


class TestFormatting:
    def test_table_renders(self, allreduce):
        text = message_size_sweep.format_table(allreduce)
        assert "Size sweep" in text
        assert "1024 KiB" in text
