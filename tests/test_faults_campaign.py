"""Campaign runner: trial seeding, percentile math, presets, and the
reproducibility contract (seed + config -> identical results)."""

import pytest

from repro.config import (
    FaultCampaignConfig,
    FaultModelConfig,
    pimnet_sim_system,
    small_test_system,
)
from repro.errors import FaultConfigError, FaultError
from repro.faults import (
    CAMPAIGN_PRESETS,
    percentile,
    run_campaign,
    trial_seed,
)


def campaign(trials=6, seed=3, **model_kwargs) -> FaultCampaignConfig:
    return FaultCampaignConfig(
        name="test",
        model=FaultModelConfig(**model_kwargs),
        seed=seed,
        trials=trials,
        payload_bytes=1 << 16,
    )


class TestTrialSeed:
    def test_pure_arithmetic(self):
        assert trial_seed(0, 0) == 0
        assert trial_seed(0, 5) == 5
        assert trial_seed(2, 1) == trial_seed(2, 0) + 1

    def test_nearby_campaign_seeds_never_collide(self):
        a = {trial_seed(1, t) for t in range(1000)}
        b = {trial_seed(2, t) for t in range(1000)}
        assert not a & b

    def test_negative_inputs_rejected(self):
        with pytest.raises(FaultError):
            trial_seed(-1, 0)
        with pytest.raises(FaultError):
            trial_seed(0, -1)


class TestPercentile:
    def test_nearest_rank_on_known_values(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == 20.0
        assert percentile(values, 75.0) == 30.0
        assert percentile(values, 100.0) == 40.0
        assert percentile(values, 1.0) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 100.0) == 3.0

    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    @pytest.mark.parametrize("q", [0.0, -5.0, 101.0])
    def test_out_of_range_q_rejected(self, q):
        with pytest.raises(FaultError):
            percentile([1.0], q)


class TestRunCampaign:
    def test_same_seed_and_config_identical_results(self, tiny_machine):
        spec = campaign(bank_straggler_rate=0.5, straggler_severity=3.0)
        assert run_campaign(spec, tiny_machine) == run_campaign(
            spec, tiny_machine
        )

    def test_different_seeds_decorrelate(self, tiny_machine):
        a = run_campaign(
            campaign(seed=1, bank_straggler_rate=0.5), tiny_machine
        )
        b = run_campaign(
            campaign(seed=2, bank_straggler_rate=0.5), tiny_machine
        )
        assert a != b

    def test_fault_free_campaign_all_completed(self, tiny_machine):
        result = run_campaign(campaign(), tiny_machine)
        assert result.completed == len(result.trials) == 6
        assert result.completion_rate == 1.0
        assert result.mean_bandwidth_bytes_per_s > 0
        assert all(t.retries == 0 for t in result.trials)

    def test_forced_fail_stop_aborts_every_trial(self, tiny_machine):
        spec = FaultCampaignConfig(
            name="dead-dimm",
            trials=3,
            payload_bytes=1 << 16,
            targets=("bank:0:0:0",),
        )
        result = run_campaign(spec, tiny_machine)
        assert result.aborted == 3
        assert result.completion_rate == 0.0
        assert result.mean_bandwidth_bytes_per_s == 0.0
        assert result.latency_percentile_s(99.0) == 0.0
        assert all(
            t.critical_node == "bank:0:0:0" for t in result.trials
        )

    def test_out_of_topology_target_rejected_before_any_trial(
        self, tiny_machine
    ):
        spec = FaultCampaignConfig(
            name="wrong-machine", targets=("bank:7:0:0",)
        )
        with pytest.raises(FaultConfigError, match="out of range"):
            run_campaign(spec, tiny_machine)

    def test_summary_shape(self, tiny_machine):
        summary = run_campaign(
            campaign(bank_straggler_rate=0.5), tiny_machine
        ).summary()
        assert summary["trials"] == 6
        assert (
            summary["completed"]
            + summary["degraded"]
            + summary["aborted"]
            == 6
        )
        assert 0.0 <= summary["completion_rate"] <= 1.0
        assert (
            summary["p50_latency_s"]
            <= summary["p99_latency_s"]
            <= summary["p999_latency_s"]
        )


class TestPresets:
    def test_names_match_keys(self):
        for name, preset in CAMPAIGN_PRESETS.items():
            assert preset.name == name
            assert preset.description

    def test_presets_valid_on_the_paper_machine(self):
        system = pimnet_sim_system().system
        for preset in CAMPAIGN_PRESETS.values():
            preset.validate_for(system)  # no raise

    def test_every_fault_family_has_a_preset(self):
        models = [p.model for p in CAMPAIGN_PRESETS.values()]
        assert any(m.bank_straggler_rate > 0 for m in models)
        assert any(m.chip_link_degrade_rate > 0 for m in models)
        assert any(m.rank_bus_stall_rate > 0 for m in models)
        assert any(m.flit_corruption_rate > 0 for m in models)
        assert any(m.bank_fail_stop_rate > 0 for m in models)

    def test_stragglers_preset_runs_on_the_small_machine(self):
        import dataclasses

        preset = dataclasses.replace(
            CAMPAIGN_PRESETS["stragglers"], trials=4
        )
        result = run_campaign(preset, small_test_system())
        assert len(result.trials) == 4
