"""NoC load-latency study."""

import pytest

from repro.experiments import noc_load_latency


@pytest.fixture(scope="module")
def result():
    return noc_load_latency.run()


class TestLoadLatencyCurve:
    def test_latency_monotone_in_offered_load(self, result):
        lat = result.mean_latency_cycles
        assert all(b >= a for a, b in zip(lat, lat[1:]))

    def test_saturation_regime_reached(self, result):
        assert result.saturation_visible()

    def test_completion_time_shrinks_with_rate(self, result):
        """Higher injection rate = denser schedule = earlier completion
        (the latency cost is per-message queueing, not total time)."""
        comp = result.completion_cycles
        assert comp[0] > comp[-1]

    def test_deterministic(self):
        a = noc_load_latency.run(seed=3)
        b = noc_load_latency.run(seed=3)
        assert a.mean_latency_cycles == b.mean_latency_cycles

    def test_format(self, result):
        text = noc_load_latency.format_table(result)
        assert "load-latency" in text
