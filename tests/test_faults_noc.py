"""Fault lowering onto the cycle-level NoC: plan building, link hooks,
event-loop/reference equivalence under faults, and schedule checks."""

import pytest

from repro.config import FaultModelConfig
from repro.core import Shape, allreduce_schedule
from repro.errors import FaultError, SimulationError
from repro.faults import (
    FaultEvent,
    FaultSet,
    NocFaultPlan,
    apply_noc_faults,
    build_noc_fault_plan,
    check_degraded_schedule,
    clear_noc_faults,
)
from repro.noc import Message, NocNetwork, NocSimulator

COMPARED_FIELDS = (
    "cycles",
    "flits_delivered",
    "messages_delivered",
    "per_message_latency",
    "link_busy_cycles",
    "flits_corrupted",
    "retry_cycles_paid",
)


def faults_of(*events) -> FaultSet:
    return FaultSet(events=tuple(events))


def cross_traffic(shape, count=12, flits=4):
    n = shape.num_dpus
    return [
        Message(msg_id=i, src=i % n, dst=(i * 5 + 1) % n or 1,
                num_flits=flits, ready_cycle=(i * 3) % 20)
        for i in range(count)
        if i % n != ((i * 5 + 1) % n or 1)
    ]


def run_loop(network, messages, loop):
    sim = NocSimulator(network, list(messages))
    runner = sim.run if loop == "event" else sim._run_reference
    return runner(200_000)


def assert_loops_agree(network, messages):
    event = run_loop(network, messages, "event")
    reference = run_loop(network, messages, "reference")
    for name in COMPARED_FIELDS:
        assert getattr(event, name) == getattr(reference, name), name
    return event


class TestPlanBuild:
    def test_empty_fault_set_builds_noop_plan(self):
        plan = build_noc_fault_plan(faults_of(), FaultModelConfig())
        assert not plan

    def test_degraded_chip_slows_both_dq_directions(self):
        plan = build_noc_fault_plan(
            faults_of(FaultEvent("chip_link_degraded", "chip:1:0", 2.5)),
            FaultModelConfig(),
        )
        assert plan.link_factors == {"dq:1:0:up": 3, "dq:1:0:down": 3}

    def test_bus_stalls_become_disjoint_windows(self):
        plan = build_noc_fault_plan(
            faults_of(
                FaultEvent("rank_bus_stall", "bus"),
            ),
            FaultModelConfig(rank_bus_stall_s=2e-6),
        )
        assert plan.bus_stall_windows == ((2000, 4000),)

    def test_corruption_settings_carried_from_model(self):
        plan = build_noc_fault_plan(
            faults_of(),
            FaultModelConfig(
                flit_corruption_rate=0.25, retry_penalty_flits=3
            ),
            seed=9,
        )
        assert plan.corruption_rate == 0.25
        assert plan.retry_penalty_flits == 3
        assert plan.corruption_salt == 9
        assert plan  # corruption alone makes the plan non-trivial

    def test_fatal_fault_sets_rejected(self):
        with pytest.raises(FaultError, match="fail-stop"):
            build_noc_fault_plan(
                faults_of(FaultEvent("bank_fail_stop", "bank:0:0:0")),
                FaultModelConfig(),
            )


class TestApplyAndClear:
    def test_unknown_link_name_fails_loudly(self):
        net = NocNetwork(Shape(2, 1, 1))
        plan = NocFaultPlan(link_factors={"dq:9:9:up": 2})
        with pytest.raises(FaultError, match="does not exist"):
            apply_noc_faults(net, plan)

    def test_apply_configures_named_links_and_bus(self):
        net = NocNetwork(Shape(2, 2, 2))
        plan = build_noc_fault_plan(
            faults_of(
                FaultEvent("chip_link_degraded", "chip:0:1", 2.0),
                FaultEvent("rank_bus_stall", "bus"),
            ),
            FaultModelConfig(rank_bus_stall_s=1e-6),
        )
        apply_noc_faults(net, plan)
        assert net.links["dq:0:1:up"].fault_factor == 2
        assert net.links["dq:0:1:down"].fault_factor == 2
        assert net.bus_medium.stall_windows == ((1000, 2000),)

    def test_clear_restores_asbuilt_behavior(self):
        shape = Shape(2, 2, 2)
        messages = cross_traffic(shape)
        clean = run_loop(NocNetwork(shape), messages, "event")

        net = NocNetwork(shape)
        plan = build_noc_fault_plan(
            faults_of(FaultEvent("chip_link_degraded", "chip:0:0", 4.0)),
            FaultModelConfig(flit_corruption_rate=0.5),
        )
        apply_noc_faults(net, plan)
        faulted = run_loop(net, messages, "event")
        assert faulted.cycles > clean.cycles

        clear_noc_faults(net)
        restored = run_loop(net, messages, "event")
        assert restored.cycles == clean.cycles
        assert restored.per_message_latency == clean.per_message_latency
        assert restored.flits_corrupted == 0


class TestLinkFaultValidation:
    def link(self):
        return NocNetwork(Shape(2, 1, 1)).links["ring:0:0:0>E"]

    def test_bad_outage_window_rejected(self):
        with pytest.raises(SimulationError, match="outage"):
            self.link().configure_faults(outages=((10, 10),))

    def test_factor_below_one_rejected(self):
        with pytest.raises(SimulationError, match="fault_factor"):
            self.link().configure_faults(fault_factor=0)

    def test_negative_retry_cycles_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            self.link().configure_faults(retry_cycles=-1)

    def test_corruption_rate_outside_unit_interval_rejected(self):
        with pytest.raises(SimulationError, match="corruption_rate"):
            self.link().configure_faults(corruption_rate=1.5)

    def test_reset_keeps_configuration_but_clears_counters(self):
        link = self.link()
        link.configure_faults(corruption_rate=1.0, retry_cycles=2)
        link.traversal_count = 5
        link.corrupted_flits = 5
        link.retry_cycles_paid = 10
        link.reset()
        assert link.corruption_rate == 1.0
        assert link.traversal_count == 0
        assert link.corrupted_flits == 0
        assert link.retry_cycles_paid == 0


class TestLoopEquivalenceUnderFaults:
    """The event-driven loop and the naive reference loop must stay
    byte-equal with fault hooks active, not just fault-free."""

    def test_degraded_links_and_corruption(self):
        shape = Shape(2, 2, 2)
        net = NocNetwork(shape)
        plan = build_noc_fault_plan(
            faults_of(
                FaultEvent("chip_link_degraded", "chip:0:0", 2.0),
                FaultEvent("chip_link_degraded", "chip:1:1", 3.0),
            ),
            FaultModelConfig(
                flit_corruption_rate=0.2, retry_penalty_flits=2
            ),
            seed=4,
        )
        apply_noc_faults(net, plan)
        stats = assert_loops_agree(net, cross_traffic(shape, count=16))
        assert stats.flits_corrupted > 0
        assert stats.retry_cycles_paid > 0

    def test_bus_stall_window(self):
        shape = Shape(2, 2, 2)
        net = NocNetwork(shape)
        net.bus_medium.stall_windows = ((0, 500),)
        assert_loops_agree(net, cross_traffic(shape, count=16))

    def test_outage_window_delays_but_delivers(self):
        shape = Shape(2, 1, 1)
        net = NocNetwork(shape)
        clean_stats = run_loop(
            net, [Message(msg_id=0, src=0, dst=1, num_flits=2)], "event"
        )
        for link in net.links.values():
            link.configure_faults(outages=((0, 400),))
        stats = assert_loops_agree(
            net, [Message(msg_id=0, src=0, dst=1, num_flits=2)]
        )
        assert stats.messages_delivered == 1
        assert stats.cycles >= 400
        assert stats.cycles > clean_stats.cycles

    def test_overlapping_outage_windows(self):
        shape = Shape(2, 1, 1)
        net = NocNetwork(shape)
        for link in net.links.values():
            link.configure_faults(outages=((0, 100), (50, 300)))
        stats = assert_loops_agree(
            net, [Message(msg_id=0, src=0, dst=1, num_flits=3)]
        )
        assert stats.cycles >= 300

    def test_corruption_counts_deterministic_across_runs(self):
        shape = Shape(2, 2, 1)
        net = NocNetwork(shape)
        for link in net.links.values():
            link.configure_faults(corruption_rate=0.3, retry_cycles=4)
        messages = cross_traffic(shape, count=10)
        first = run_loop(net, messages, "event")
        second = run_loop(net, messages, "event")
        assert first.flits_corrupted == second.flits_corrupted
        assert first.cycles == second.cycles


class TestFaultFreeByteEquality:
    """With no faults configured the hooks must cost nothing: stats are
    identical to a network that never heard of fault injection."""

    def test_configure_then_clear_equals_untouched(self):
        shape = Shape(2, 2, 2)
        messages = cross_traffic(shape)
        untouched = run_loop(NocNetwork(shape), messages, "event")
        net = NocNetwork(shape)
        for link in net.links.values():
            link.configure_faults(
                outages=((5, 9),), fault_factor=3, corruption_rate=0.5
            )
        clear_noc_faults(net)
        cleared = run_loop(net, messages, "event")
        assert cleared.cycles == untouched.cycles
        assert cleared.link_busy_cycles == untouched.link_busy_cycles
        assert cleared.flits_corrupted == 0


class TestScheduleFeasibility:
    def schedule(self, shape=Shape(2, 2, 2)):
        return allreduce_schedule(shape, 64)

    def test_clean_fault_set_has_no_violations(self):
        assert check_degraded_schedule(self.schedule(), faults_of()) == ()

    def test_stragglers_do_not_invalidate_the_schedule(self):
        fault_set = faults_of(
            FaultEvent("bank_straggler", "bank:0:0:0", 4.0)
        )
        assert check_degraded_schedule(self.schedule(), fault_set) == ()

    def test_dead_bank_reported_once_per_phase(self):
        fault_set = faults_of(FaultEvent("bank_fail_stop", "bank:0:0:0"))
        violations = check_degraded_schedule(self.schedule(), fault_set)
        assert violations
        assert all("bank:0:0:0" in v for v in violations)
        assert len(violations) == len(set(violations))

    def test_failed_chip_link_blocks_chip_crossing_transfers(self):
        fault_set = faults_of(FaultEvent("chip_link_failed", "chip:0:1"))
        violations = check_degraded_schedule(self.schedule(), fault_set)
        assert violations
        assert all("DQ link" in v for v in violations)
