"""Experiment drivers: every figure/table runs and shows the paper's shape."""

import pytest

from repro.collectives import Collective
from repro.experiments import (
    EXPERIMENTS,
    fig02_roofline,
    fig03_motivation,
    fig10_applications,
    fig11_comm_breakdown,
    fig12_collective_scaling,
    fig13_flow_control,
    fig14_bandwidth_sweep,
    fig15_alt_pim,
    fig16_multichannel,
    fig17_multitenancy,
    hw_overhead,
    table04_tiers,
    table05_algorithms,
)


class TestRegistry:
    def test_every_figure_has_a_driver(self):
        expected = {
            "fig02", "fig03", "table04", "table05", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "hw_overhead", "ablations", "size_sweep",
            "characterization", "noc_load_latency",
            "fault_sweep", "straggler_tail", "tenant_service_load",
            "fleet_resilience", "prim_suite",
        }
        assert set(EXPERIMENTS) == expected

    def test_drivers_expose_run_and_format(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "run")
            assert hasattr(module, "format_table")


class TestFig02:
    def test_ceiling_ratio_near_8x(self):
        result = fig02_roofline.run()
        assert 5 <= result.ceiling_ratio() <= 12

    def test_format(self):
        text = fig02_roofline.format_table(fig02_roofline.run())
        assert "Fig 2a" in text and "Fig 2b" in text


class TestFig03:
    def test_allreduce_throughput_scales(self):
        result = fig03_motivation.run(Collective.ALL_REDUCE)
        rel = result.normalized_throughput()
        # PIMnet keeps scaling; baseline saturates
        assert rel["P"][-1] > 10 * rel["P"][0]
        assert rel["B"][-1] < 2 * rel["B"][0]

    def test_software_flatlines_beyond_64(self):
        result = fig03_motivation.run(Collective.ALL_REDUCE)
        rel = result.normalized_throughput()["S"]
        assert rel[-1] == pytest.approx(rel[-2], rel=0.1)

    def test_alltoall_benefit_smaller(self):
        ar, a2a = fig03_motivation.run_both()
        assert (
            a2a.normalized_throughput()["P"][-1]
            < ar.normalized_throughput()["P"][-1]
        )

    def test_format(self):
        text = fig03_motivation.format_table(fig03_motivation.run())
        assert "Fig 3a" in text


class TestExperimentTable:
    def test_row_width_mismatch_fails_at_construction(self):
        from repro.errors import ReproError
        from repro.experiments.common import ExperimentTable

        with pytest.raises(ReproError) as excinfo:
            ExperimentTable("X", "t", ("a", "b"), ((1,),))
        msg = str(excinfo.value)
        assert "row 0" in msg and "width 1" in msg and "width 2" in msg

    def test_only_the_offending_row_is_reported(self):
        from repro.errors import ReproError
        from repro.experiments.common import ExperimentTable

        with pytest.raises(ReproError) as excinfo:
            ExperimentTable(
                "X", "t", ("a", "b"), ((1, 2), (3, 4), (5, 6, 7))
            )
        assert "row 2" in str(excinfo.value)

    def test_well_formed_table_constructs_and_formats(self):
        from repro.experiments.common import ExperimentTable

        table = ExperimentTable("X", "t", ("a", "b"), ((1, 2),))
        assert "== X: t ==" in table.format()


class TestTables:
    def test_table04_aggregate_bandwidths(self):
        result = table04_tiers.run()
        assert result.chip_bisection_gbs == pytest.approx(2.8)
        assert result.rank_interbank_bisection_gbs == pytest.approx(22.4)
        assert result.rank_aggregate_gbs == pytest.approx(179.2)
        assert "Table IV" in table04_tiers.format_table(result)

    def test_table05_all_patterns(self):
        result = table05_algorithms.run()
        assert len(result) == 5
        text = table05_algorithms.format_table(result)
        assert "Permutation(inter-chip)" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_applications.run()

    def test_all_workloads_present(self, result):
        assert set(result.results) >= {
            "BFS", "CC", "MLP", "GEMV", "SpMV", "NTT", "Join",
        }

    def test_pimnet_wins_everywhere(self, result):
        for name in result.results:
            assert result.speedup(name) > 1.0

    def test_max_speedup_near_11_8(self, result):
        _, value = result.max_speedup()
        assert 8 <= value <= 13

    def test_format(self, result):
        text = fig10_applications.format_table(result)
        assert "Fig 10" in text


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_comm_breakdown.run()

    def test_pimnet_beats_reference_everywhere(self, result):
        for entry in result.entries:
            assert entry.comm_speedup > 1.0

    def test_a2a_workloads_normalized_to_ndpbridge(self, result):
        refs = {e.workload: e.reference_backend for e in result.entries}
        assert refs["NTT"] == "N"
        assert refs["Join"] == "N"
        assert refs["CC"] == "D"

    def test_format(self, result):
        assert "Fig 11" in fig11_comm_breakdown.format_table(result)


class TestFig12:
    def test_allreduce_speedup_grows(self):
        result = fig12_collective_scaling.run(Collective.ALL_REDUCE)
        p = result.speedups["P"]
        assert p[-1] > p[0]
        assert p[-1] > 20

    def test_alltoall_speedup_flattens(self):
        result = fig12_collective_scaling.run(Collective.ALL_TO_ALL)
        p = result.speedups["P"]
        assert p[-1] < 0.6 * fig12_collective_scaling.run(
            Collective.ALL_REDUCE
        ).speedups["P"][-1]

    def test_ndpbridge_only_in_a2a(self):
        ar, a2a = fig12_collective_scaling.run_both()
        assert "N" not in ar.speedups
        assert "N" in a2a.speedups


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_bandwidth_sweep.run()

    def test_min_interbank_speedup_at_least_3x(self, result):
        """Paper: PIMnet >= 3x DIMM-Link even at 0.1 GB/s."""
        assert result.min_interbank_speedup() >= 2.5

    def test_speedup_monotone_in_bandwidth(self, result):
        speedups = [row[2] for row in result.inter_bank]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_pimnet_beats_dimmlink_even_at_quarter_global(self, result):
        assert all(row[2] > 1.0 for row in result.global_bw)


class TestFig15:
    def test_benefit_grows_with_compute_throughput(self):
        result = fig15_alt_pim.run()
        for workload in ("MLP", "NTT"):
            row = result.speedups[workload]
            assert row["UPMEM"] < row["HBM-PIM"] <= row["GDDR6-AiM"] * 1.01
        assert result.gain("MLP") > 5


class TestFig16:
    def test_speedup_grows_with_channels(self):
        result = fig16_multichannel.run()
        speedups = result.speedups()
        assert speedups[-1] > speedups[0]
        assert all(s > 1 for s in speedups)


class TestFig17:
    def test_pimnet_isolates(self):
        result = fig17_multitenancy.run()
        assert result.isolation_benefit() > 1.2


class TestHwOverhead:
    def test_report_and_format(self):
        report = hw_overhead.run()
        text = hw_overhead.format_table(report)
        assert "HW overhead" in text
        assert report.router_to_stop_area_ratio > 60


@pytest.mark.slow
class TestFig13:
    def test_flow_control_directions(self):
        result = fig13_flow_control.run(
            banks=4, chips=4, ranks=1, elements_per_dpu=256
        )
        # AR near parity; A2A favors scheduling
        assert abs(result.reduction_percent("allreduce")) < 15
        assert result.reduction_percent("alltoall") > 0
        assert "Fig 13" in fig13_flow_control.format_table(result)
