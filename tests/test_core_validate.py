"""Schedule validators + failure injection.

Each test corrupts a known-good schedule in one specific way and checks
the corresponding validator rejects it — the compiler-side safety net a
flow-control-free network depends on.
"""

import pytest

from repro.collectives import Collective
from repro.core import (
    CommSchedule,
    Phase,
    Shape,
    Step,
    Tier,
    Transfer,
    allreduce_schedule,
    alltoall_schedule,
    build_schedule,
    validate_bounds,
    validate_contention_free,
    validate_schedule,
    validate_tier_locality,
)
from repro.errors import ScheduleError

SHAPE = Shape(2, 2, 2)


def rebuild_with(schedule: CommSchedule, phases) -> CommSchedule:
    return CommSchedule(
        schedule.pattern, schedule.shape, schedule.num_elements,
        tuple(phases),
    )


def mutate_first_transfer(schedule: CommSchedule, **overrides) -> CommSchedule:
    """Replace one field of the very first transfer."""
    first_phase = schedule.phases[0]
    first_step = first_phase.steps[0]
    old = first_step.transfers[0]
    fields = dict(
        src=old.src, dst=old.dst, src_offset=old.src_offset,
        dst_offset=old.dst_offset, length=old.length, combine=old.combine,
        read_output=old.read_output, into_output=old.into_output,
    )
    fields.update(overrides)
    new_transfers = (Transfer(**fields),) + first_step.transfers[1:]
    new_phase = Phase(
        first_phase.tier, first_phase.name,
        (Step(new_transfers),) + first_phase.steps[1:],
        first_phase.algorithm,
    )
    return rebuild_with(schedule, (new_phase,) + schedule.phases[1:])


class TestCleanSchedulesPass:
    @pytest.mark.parametrize("pattern", list(Collective))
    @pytest.mark.parametrize(
        "shape", [Shape(2, 2, 2), Shape(8, 8, 4), Shape(2, 3, 2)], ids=str
    )
    def test_all_generators_validate(self, pattern, shape):
        validate_schedule(build_schedule(pattern, shape, shape.num_dpus * 4))


class TestBoundsInjection:
    def test_endpoint_out_of_range(self):
        sched = allreduce_schedule(SHAPE, 16)
        broken = mutate_first_transfer(sched, dst=99)
        with pytest.raises(ScheduleError, match="endpoint"):
            validate_bounds(broken)

    def test_source_range_overflow(self):
        sched = allreduce_schedule(SHAPE, 16)
        broken = mutate_first_transfer(sched, src_offset=15, length=4)
        with pytest.raises(ScheduleError, match="source range"):
            validate_bounds(broken)

    def test_destination_range_overflow(self):
        sched = allreduce_schedule(SHAPE, 16)
        broken = mutate_first_transfer(sched, dst_offset=14, length=4)
        with pytest.raises(ScheduleError, match="destination"):
            validate_bounds(broken)

    def test_output_buffer_allows_n_times_e(self):
        sched = alltoall_schedule(SHAPE, 16)
        validate_bounds(sched)  # chunk offsets up to N*chunk are fine


class TestLocalityInjection:
    def test_bank_phase_crossing_chips(self):
        sched = allreduce_schedule(SHAPE, 16)
        # dst in a different chip (dpu 2 = chip 1 under rank-fastest ids)
        broken = mutate_first_transfer(sched, src=0, dst=2)
        with pytest.raises(ScheduleError, match="leaves the chip"):
            validate_tier_locality(broken)

    def test_chip_phase_crossing_ranks(self):
        sched = allreduce_schedule(SHAPE, 16)
        chip_index = [p.name for p in sched.phases].index("chip-RS")
        phase = sched.phases[chip_index]
        old = phase.steps[0].transfers[0]
        bad = Transfer(
            src=old.src, dst=(old.dst + 1) % SHAPE.num_dpus,
            src_offset=old.src_offset, dst_offset=old.dst_offset,
            length=old.length, combine=old.combine,
        )
        phases = list(sched.phases)
        phases[chip_index] = Phase(
            phase.tier, phase.name,
            (Step((bad,) + phase.steps[0].transfers[1:]),)
            + phase.steps[1:],
            phase.algorithm,
        )
        broken = rebuild_with(sched, phases)
        # the mutated destination changes rank (rank-fastest ids)
        with pytest.raises(ScheduleError):
            validate_tier_locality(broken)

    def test_local_phase_must_stay_local(self):
        sched = alltoall_schedule(SHAPE, 16)
        broken = mutate_first_transfer(sched, dst=1)
        with pytest.raises(ScheduleError, match="local phase"):
            validate_tier_locality(broken)


class TestContentionInjection:
    def test_write_race_detected(self):
        """Two plain (non-combining) writes to one range in one step."""
        from repro.core import validate_no_write_races

        sched = allreduce_schedule(Shape(4, 1, 1), 16)
        ag_index = [p.name for p in sched.phases].index("bank-AG")
        phase = sched.phases[ag_index]
        old = phase.steps[0].transfers[0]
        rogue = Transfer(
            src=(old.src + 2) % 4, dst=old.dst,
            src_offset=old.src_offset, dst_offset=old.dst_offset,
            length=old.length, combine=False,
        )
        phases = list(sched.phases)
        phases[ag_index] = Phase(
            phase.tier, phase.name,
            (Step(phase.steps[0].transfers + (rogue,)),)
            + phase.steps[1:],
            phase.algorithm,
        )
        broken = rebuild_with(sched, phases)
        with pytest.raises(ScheduleError, match="write race"):
            validate_no_write_races(broken)

    def test_combining_writes_may_share_ranges(self):
        """Rank-RS legitimately combines many partials into one range."""
        from repro.core import validate_no_write_races

        validate_no_write_races(allreduce_schedule(SHAPE, 16))

    def test_crossbar_double_drive(self):
        shape = Shape(1, 4, 1)
        sched = alltoall_schedule(shape, 16)
        chip_phase_index = [
            i for i, p in enumerate(sched.phases) if p.tier is Tier.CHIP
        ][0]
        phase = sched.phases[chip_phase_index]
        old = phase.steps[0].transfers[0]
        rogue = Transfer(
            src=old.src,
            dst=(old.dst + 1) % shape.num_dpus,
            src_offset=old.src_offset, dst_offset=old.dst_offset,
            length=old.length, into_output=True,
        )
        phases = list(sched.phases)
        phases[chip_phase_index] = Phase(
            phase.tier, phase.name,
            (Step(phase.steps[0].transfers + (rogue,)),)
            + phase.steps[1:],
            phase.algorithm,
        )
        broken = rebuild_with(sched, phases)
        with pytest.raises(ScheduleError, match="crossbar"):
            validate_contention_free(broken)
