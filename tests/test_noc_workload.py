"""Schedule-to-NoC traffic generation and the Fig 13 comparison."""

import pytest

from repro.core import Shape, allreduce_schedule, alltoall_schedule
from repro.errors import SimulationError
from repro.noc import (
    NocNetwork,
    NocSimulator,
    compute_skew_cycles,
    messages_from_schedule,
    run_flow_control_comparison,
)


@pytest.fixture
def net() -> NocNetwork:
    return NocNetwork(Shape(4, 2, 1))


class TestSkewModel:
    def test_seeded_and_deterministic(self):
        a = compute_skew_cycles(16, seed=3)
        b = compute_skew_cycles(16, seed=3)
        assert a == b

    def test_mean_is_respected(self):
        samples = compute_skew_cycles(1000, mean_cycles=5000, sigma=0.05)
        mean = sum(samples) / len(samples)
        assert 4500 < mean < 5600

    def test_positive_mean_required(self):
        with pytest.raises(SimulationError):
            compute_skew_cycles(4, mean_cycles=0)


class TestMessageGeneration:
    def test_scheduled_mode_assigns_barriers(self, net):
        sched = allreduce_schedule(net.shape, net.shape.num_dpus * 4)
        messages, barriers = messages_from_schedule(sched, net, "scheduled")
        assert len(barriers) == len(messages)
        assert min(barriers.values()) == 0

    def test_credit_mode_has_ring_deps(self, net):
        sched = allreduce_schedule(net.shape, net.shape.num_dpus * 4)
        messages, barriers = messages_from_schedule(sched, net, "credit")
        assert barriers == {}
        assert any(m.deps for m in messages)

    def test_credit_alltoall_is_naive_pairwise(self, net):
        sched = alltoall_schedule(net.shape, net.shape.num_dpus * 4)
        messages, barriers = messages_from_schedule(sched, net, "credit")
        n = net.shape.num_dpus
        assert len(messages) == n * (n - 1)
        assert all(not m.deps for m in messages)

    def test_scheduled_start_after_slowest_dpu(self, net):
        from repro.config import PimSystemConfig, PimnetNetworkConfig
        from repro.core.sync import SyncTree

        sched = allreduce_schedule(net.shape, net.shape.num_dpus * 4)
        ready = list(range(100, 100 + net.shape.num_dpus))
        sync = SyncTree(
            PimSystemConfig(
                banks_per_chip=4, chips_per_rank=2, ranks_per_channel=1
            ),
            PimnetNetworkConfig(),
        )
        messages, _ = messages_from_schedule(
            sched, net, "scheduled", ready_cycles=ready, sync_tree=sync
        )
        assert all(m.ready_cycle > max(ready) for m in messages)

    def test_invalid_mode_rejected(self, net):
        sched = allreduce_schedule(net.shape, net.shape.num_dpus * 4)
        with pytest.raises(SimulationError):
            messages_from_schedule(sched, net, "magic")

    def test_ready_length_validated(self, net):
        sched = allreduce_schedule(net.shape, net.shape.num_dpus * 4)
        with pytest.raises(SimulationError):
            messages_from_schedule(sched, net, "credit", ready_cycles=[0])


@pytest.mark.slow
class TestFlowControlComparison:
    def test_both_modes_complete_and_report(self, net):
        sched = allreduce_schedule(net.shape, net.shape.num_dpus * 8)
        results = run_flow_control_comparison(
            sched, net, mean_compute_cycles=500
        )
        assert results["credit"] > 0
        assert results["scheduled"] > 0

    def test_allreduce_modes_are_close(self, net):
        """Paper Fig 13a: AR within a few percent either way."""
        sched = allreduce_schedule(net.shape, net.shape.num_dpus * 16)
        results = run_flow_control_comparison(
            sched, net, mean_compute_cycles=1000
        )
        ratio = results["scheduled"] / results["credit"]
        assert 0.85 < ratio < 1.15

    def test_alltoall_scheduling_wins(self):
        """Paper Fig 13b: PIM-controlled scheduling beats credit-based
        flow control for All-to-All (crossbar contention).  Needs a
        crossbar wide enough for convergent naive traffic to hurt, so
        this test uses a 4-chip rank rather than the small fixture."""
        shape = Shape(4, 4, 1)
        wide_net = NocNetwork(shape)
        sched = alltoall_schedule(shape, shape.num_dpus * 16)
        results = run_flow_control_comparison(
            sched, wide_net, mean_compute_cycles=2000
        )
        assert results["scheduled"] < results["credit"]

    def test_messages_delivered_identically(self, net):
        """Both modes move the same flit volume."""
        sched = alltoall_schedule(net.shape, net.shape.num_dpus * 4)
        ready = compute_skew_cycles(net.shape.num_dpus, 500)
        totals = {}
        for mode in ("credit", "scheduled"):
            messages, barriers = messages_from_schedule(
                sched, net, mode, ready_cycles=ready
            )
            sim = NocSimulator(net, messages)
            if mode == "scheduled":
                sim.set_barriers(barriers)
            stats = sim.run()
            totals[mode] = stats.flits_delivered
        assert totals["credit"] == totals["scheduled"]
