"""``repro conformance`` CLI: list, run, mutate, shrink."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_the_default_matrix(self, capsys):
        assert main(["conformance", "list"]) == 0
        out = capsys.readouterr().out
        assert "conformance matrix (45 points)" in out
        assert "all_reduce@2x2x1/256B" in out
        assert "broadcast@4x2x2/4096B" in out

    def test_json_mode(self, capsys):
        assert main(["conformance", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["points"]) == 45
        assert payload["points"][0] == {
            "collective": "all_reduce",
            "banks": 2,
            "chips": 2,
            "ranks": 1,
            "payload_bytes": 256,
        }


@pytest.mark.slow
class TestRun:
    def test_full_matrix_passes_then_reruns_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "conformance", "run", "--cache-dir", cache_dir,
            "--reproducer-dir", str(tmp_path),
        ]) == 0
        cold = capsys.readouterr().out
        assert "45 point(s), 0 failure(s)" in cold
        assert "45 miss(es)" in cold
        assert main([
            "conformance", "run", "--cache-dir", cache_dir,
            "--reproducer-dir", str(tmp_path),
        ]) == 0
        warm = capsys.readouterr().out
        assert "cache: 45 hit(s), 0 miss(es)" in warm
        # Same verdict either way.
        assert cold.split("cache:")[0] == warm.split("cache:")[0]

    def test_metrics_dump_written_alongside_the_run(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "m.json"
        assert main([
            "conformance", "run",
            "--cache-dir", str(tmp_path / "cache"),
            "--reproducer-dir", str(tmp_path),
            "--metrics", str(metrics_path),
        ]) == 0
        assert f"wrote {metrics_path}" in capsys.readouterr().out
        metrics = json.loads(metrics_path.read_text())["metrics"]
        assert metrics["conformance.points"]["value"] == 45.0
        assert metrics["conformance.cache.misses"]["value"] == 45.0

    def test_json_mode_reports_every_point(self, tmp_path, capsys):
        assert main([
            "conformance", "run", "--no-cache", "--json",
            "--reproducer-dir", str(tmp_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] and payload["points"] == 45
        assert payload["failures"] == 0
        assert payload["reproducers"] == []
        assert all(r["ok"] for r in payload["reports"])

    def test_mutated_run_fails_and_writes_reproducers(
        self, tmp_path, capsys
    ):
        assert main([
            "conformance", "run", "--no-cache",
            "--mutate", "drop-flit",
            "--reproducer-dir", str(tmp_path / "out"),
        ]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        written = sorted((tmp_path / "out").glob("conformance-*.json"))
        assert written, "mutated run must leave reproducers behind"
        data = json.loads(written[0].read_text())
        assert data["format"] == "repro-conformance-reproducer"
        assert data["mutation"]["mode"] == "drop-flit"

    def test_shrink_replays_a_reproducer(self, tmp_path, capsys):
        reproducer_dir = tmp_path / "out"
        main([
            "conformance", "run", "--no-cache", "--mutate", "stall",
            "--reproducer-dir", str(reproducer_dir),
        ])
        capsys.readouterr()
        path = sorted(reproducer_dir.glob("conformance-*.json"))[0]
        # Still failing -> re-minimized, exit 1.
        assert main(["conformance", "shrink", str(path)]) == 1
        assert "minimized to" in capsys.readouterr().out


class TestBadInput:
    def test_unknown_mutation_mode_is_a_usage_error(self, capsys):
        assert main([
            "conformance", "run", "--no-cache", "--mutate", "melt",
        ]) == 2
        assert "unknown mutation" in capsys.readouterr().err

    def test_shrink_of_garbage_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["conformance", "shrink", str(path)]) == 1
        assert "conformance shrink failed" in capsys.readouterr().err

    def test_negative_seed_rejected(self, capsys):
        assert main(["conformance", "run", "--seed", "-1"]) == 2
