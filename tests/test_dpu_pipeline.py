"""Revolving-pipeline timing model."""

import pytest

from repro.config import DpuConfig
from repro.dpu import PipelineModel
from repro.errors import SimulationError


@pytest.fixture
def pipe() -> PipelineModel:
    return PipelineModel(DpuConfig())


class TestEffectiveIpc:
    def test_full_throughput_at_eleven_tasklets(self, pipe):
        assert pipe.revolver_period == 11
        assert pipe.effective_ipc(11) == pytest.approx(1.0)
        assert pipe.effective_ipc(24) == pytest.approx(1.0)

    def test_single_tasklet_is_one_eleventh(self, pipe):
        assert pipe.effective_ipc(1) == pytest.approx(1 / 11)

    def test_ipc_monotone_in_tasklets(self, pipe):
        ipcs = [pipe.effective_ipc(t) for t in range(1, 25)]
        assert all(b >= a for a, b in zip(ipcs, ipcs[1:]))

    def test_zero_tasklets_rejected(self, pipe):
        with pytest.raises(SimulationError):
            pipe.effective_ipc(0)

    def test_too_many_tasklets_rejected(self, pipe):
        with pytest.raises(SimulationError):
            pipe.effective_ipc(25)


class TestCycleConversion:
    def test_zero_slots_is_free(self, pipe):
        assert pipe.cycles_for_slots(0, 16) == 0.0

    def test_packed_pipeline_is_one_slot_per_cycle(self, pipe):
        cycles = pipe.cycles_for_slots(10_000, 16)
        assert cycles == pytest.approx(10_000 + 14)

    def test_underfilled_pipeline_is_slower(self, pipe):
        full = pipe.cycles_for_slots(10_000, 16)
        sparse = pipe.cycles_for_slots(10_000, 2)
        assert sparse > full
        assert sparse == pytest.approx(10_000 * 11 / 2 + 14)

    def test_negative_slots_rejected(self, pipe):
        with pytest.raises(SimulationError):
            pipe.cycles_for_slots(-1, 16)

    def test_time_uses_dpu_frequency(self, pipe):
        t = pipe.time_for_slots(350e6 - 14, 16)
        assert t == pytest.approx(1.0)
