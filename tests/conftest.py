"""Shared fixtures for the PIMnet reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    MachineConfig,
    PimSystemConfig,
    pimnet_sim_system,
    small_test_system,
)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current model output "
        "instead of asserting against it",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def machine() -> MachineConfig:
    """The paper's simulated 256-DPU single-channel system (Table VI)."""
    return pimnet_sim_system()


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """An 8-DPU (2x2x2) machine for fast functional tests."""
    return small_test_system()


@pytest.fixture
def medium_machine() -> MachineConfig:
    """A 4x2x2 (16-DPU) machine: big enough for asymmetric shapes."""
    from dataclasses import replace

    return replace(
        small_test_system(),
        system=PimSystemConfig(
            banks_per_chip=4, chips_per_rank=2, ranks_per_channel=2
        ),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_buffers(
    num_dpus: int,
    num_elements: int,
    rng: np.random.Generator,
    dtype=np.int64,
    low: int = 0,
    high: int = 1000,
) -> list[np.ndarray]:
    """Random per-DPU buffers for collective tests."""
    return [
        rng.integers(low, high, num_elements).astype(dtype)
        for _ in range(num_dpus)
    ]
