"""The asyncio collective service: outcomes, backpressure, invariants."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.patterns import Collective, CollectiveRequest
from repro.config import small_test_system
from repro.config.service import (
    ServiceConfig,
    TenantQuotaConfig,
    TimeSlotConfig,
    default_service_config,
)
from repro.errors import ServiceError
from repro.observability import (
    MetricsRegistry,
    instrument_key,
    use_metrics,
)
from repro.schedcache import ScheduleCache, use_schedule_cache
from repro.service import (
    SERVICE_SUBSTRATE,
    CollectiveService,
    Outcome,
    SlotCycle,
)

pytestmark = pytest.mark.service

TINY = small_test_system()  # 2x2x2 = 8 DPUs
TINY_DPUS = 8


def ar(elements_per_dpu: int = 8) -> CollectiveRequest:
    """An AllReduce whose element count divides the tiny machine."""
    return CollectiveRequest(
        Collective.ALL_REDUCE,
        payload_bytes=8 * TINY_DPUS * elements_per_dpu,
    )


def run(coro):
    return asyncio.run(coro)


class TestOutcomes:
    def test_single_request_is_admitted_and_timed(self):
        async def go():
            async with CollectiveService(TINY) as service:
                return await service.submit("a", ar())

        response = run(go())
        assert response.outcome is Outcome.ADMITTED
        assert response.admitted
        assert response.slot == "all_reduce"
        assert response.cycle == 0
        assert response.replayed is True
        assert response.service_s > 0
        assert response.finish_s == pytest.approx(
            response.start_s + response.service_s
        )
        assert response.latency_s >= response.service_s

    def test_unserved_pattern_is_rejected_with_reason(self):
        config = default_service_config(("all_reduce",))

        async def go():
            async with CollectiveService(TINY, config) as service:
                return await service.submit(
                    "a",
                    CollectiveRequest(Collective.BROADCAST, payload_bytes=64),
                )

        response = run(go())
        assert response.outcome is Outcome.REJECTED
        assert "no slot in the cycle accepts pattern 'broadcast'" in (
            response.reason
        )

    def test_invalid_request_is_rejected_not_raised(self):
        async def go():
            async with CollectiveService(TINY) as service:
                # 3 elements cannot shard across 8 DPUs.
                return await service.submit(
                    "a",
                    CollectiveRequest(
                        Collective.REDUCE_SCATTER, payload_bytes=24
                    ),
                )

        response = run(go())
        assert response.outcome is Outcome.REJECTED
        assert "divisible" in response.reason

    def test_submit_without_start_raises(self):
        async def go():
            service = CollectiveService(TINY)
            with pytest.raises(ServiceError, match="not running"):
                await service.submit("a", ar())

        run(go())

    def test_tenant_name_must_be_non_empty(self):
        async def go():
            async with CollectiveService(TINY) as service:
                with pytest.raises(ServiceError, match="tenant name"):
                    await service.submit("", ar())

        run(go())


class TestBackpressure:
    """Bounded queue depth and explicit rejections under overload."""

    CONFIG = ServiceConfig(
        slots=(
            TimeSlotConfig(
                "all_reduce", ("all_reduce",),
                time_window_s=1e-3, max_multiplexing=2,
            ),
        ),
        switch_time_s=1e-6,
        queue_limit=4,
        default_quota=TenantQuotaConfig(max_queued=2, max_per_slot=2),
    )

    def test_overload_rejects_explicitly_and_bounds_the_queue(self):
        async def go():
            async with CollectiveService(TINY, self.CONFIG) as service:
                responses = await asyncio.gather(*(
                    service.submit(f"t{i % 3}", ar(1 + i % 4))
                    for i in range(30)
                ))
                await service.drain()
                return responses, service.stats()

        responses, stats = run(go())
        # Every submission resolved with an explicit outcome.
        assert len(responses) == 30
        assert all(
            r.outcome in (Outcome.ADMITTED, Outcome.REJECTED)
            for r in responses
        )
        rejected = [r for r in responses if r.outcome is Outcome.REJECTED]
        assert rejected, "overload must produce rejections"
        assert all(r.reason for r in rejected)
        reasons = " | ".join(r.reason for r in rejected)
        assert "over quota" in reasons or "queue full" in reasons
        # The queue never grew past its bound.
        assert stats["peak_queue_depth"] <= self.CONFIG.queue_limit
        # Conservation: nothing lost, nothing left behind.
        assert stats["submitted"] == 30
        assert stats["admitted"] + stats["rejected"] == 30
        assert stats["queued"] == 0

    def test_queue_full_reason_appears_across_tenants(self):
        async def go():
            async with CollectiveService(TINY, self.CONFIG) as service:
                responses = await asyncio.gather(*(
                    service.submit(f"t{i}", ar()) for i in range(6)
                ))
                await service.drain()
                return responses

        responses = run(go())
        reasons = [
            r.reason for r in responses if r.outcome is Outcome.REJECTED
        ]
        # 6 distinct tenants, quota 2 each: only the global bound trips.
        assert reasons and all("queue full" in reason for reason in reasons)


class TestScheduling:
    def test_oversize_request_is_served_with_recorded_overrun(self):
        config = ServiceConfig(
            slots=(
                TimeSlotConfig(
                    "all_reduce", ("all_reduce",), time_window_s=1e-9,
                ),
            ),
            switch_time_s=0.0,
        )

        async def go():
            async with CollectiveService(TINY, config) as service:
                response = await service.submit("a", ar(64))
                return response, list(service.iter_occurrences())

        response, occurrences = run(go())
        assert response.outcome is Outcome.ADMITTED
        assert occurrences[0].overrun
        assert occurrences[0].consumed_s > occurrences[0].window_s

    def test_same_structure_requests_compile_once_and_replay(self):
        cache = ScheduleCache()

        async def go():
            async with CollectiveService(TINY) as service:
                await asyncio.gather(*(
                    service.submit("a", ar(k)) for k in (1, 2, 3, 4, 5)
                ))
                await service.drain()

        with use_schedule_cache(cache):
            run(go())
        counters = cache.counters
        # One structure: one profile compile, every other payload replays.
        assert counters.profile_misses == 1
        assert counters.timing_replays == 4
        assert counters.timing_fallbacks == 0

    def test_clock_advances_by_window_plus_switch(self):
        config = ServiceConfig(
            slots=(
                TimeSlotConfig(
                    "all_reduce", ("all_reduce",), time_window_s=1e-3,
                ),
            ),
            switch_time_s=100e-6,
        )

        async def go():
            async with CollectiveService(TINY, config) as service:
                await service.submit("a", ar())
                return service.stats()["now_s"], len(service.occurrences)

        now_s, occurrences = run(go())
        assert occurrences == 1
        assert now_s == pytest.approx(1e-3 + 100e-6)

    def test_close_rejects_still_queued_requests(self):
        async def go():
            service = CollectiveService(TINY)
            service.start()
            tasks = [
                asyncio.ensure_future(service.submit("a", ar()))
                for _ in range(3)
            ]
            # One pass: submissions enqueue, the scheduler has not yet
            # run an occurrence.
            await asyncio.sleep(0)
            await service.close()
            return await asyncio.gather(*tasks)

        responses = run(go())
        assert all(r.outcome is Outcome.REJECTED for r in responses)
        assert all("service closed" in r.reason for r in responses)


class TestMetrics:
    def test_latency_family_and_counters_are_populated(self):
        registry = MetricsRegistry()

        async def go():
            async with CollectiveService(TINY) as service:
                await asyncio.gather(*(
                    service.submit("alpha", ar(k)) for k in (1, 2)
                ))
                await service.submit("beta", ar())
                await service.drain()
                return service.stats()

        with use_metrics(registry):
            stats = run(go())
        assert registry.counters["service.submitted"].value == 3
        assert registry.counters["service.admitted"].value == 3
        key = instrument_key(
            "tenant.request_latency_s",
            {"substrate": SERVICE_SUBSTRATE, "tenant": "alpha"},
        )
        assert registry.histograms[key].sketch.count == 2
        assert stats["tenants"]["alpha"]["p99_s"] > 0


@st.composite
def service_cases(draw):
    arrivals = draw(
        st.lists(
            st.tuples(
                st.integers(0, 2),   # tenant
                st.integers(0, 1),   # 0: all_reduce, 1: broadcast
                st.integers(1, 16),  # elements per DPU
            ),
            min_size=1,
            max_size=24,
        )
    )
    window_us = draw(st.integers(1, 500))
    max_multiplexing = draw(st.integers(1, 2))
    max_per_slot = draw(st.integers(1, 3))
    max_queued = draw(st.integers(2, 12))
    return arrivals, window_us, max_multiplexing, max_per_slot, max_queued


class TestServiceInvariants:
    @given(case=service_cases())
    @settings(deadline=None, max_examples=25)
    def test_random_arrivals_keep_every_invariant(self, case):
        arrivals, window_us, max_multiplexing, max_per_slot, max_queued = case
        config = ServiceConfig(
            slots=(
                TimeSlotConfig(
                    "all_reduce", ("all_reduce",),
                    time_window_s=window_us * 1e-6,
                    max_multiplexing=max_multiplexing,
                ),
                TimeSlotConfig(
                    "broadcast", ("broadcast",),
                    time_window_s=window_us * 1e-6,
                    max_multiplexing=max_multiplexing,
                ),
            ),
            switch_time_s=1e-6,
            queue_limit=16,
            default_quota=TenantQuotaConfig(
                max_queued=max_queued, max_per_slot=max_per_slot
            ),
        )
        patterns = (Collective.ALL_REDUCE, Collective.BROADCAST)

        async def go():
            async with CollectiveService(TINY, config) as service:
                responses = await asyncio.gather(*(
                    service.submit(
                        f"t{tenant}",
                        CollectiveRequest(
                            patterns[pattern],
                            payload_bytes=8 * TINY_DPUS * elements,
                        ),
                    )
                    for tenant, pattern, elements in arrivals
                ))
                await service.drain()
                return responses, service.stats(), list(
                    service.iter_occurrences()
                )

        responses, stats, occurrences = run(go())
        # Conservation and explicit outcomes.
        assert len(responses) == len(arrivals)
        assert stats["submitted"] == len(arrivals)
        assert stats["admitted"] + stats["rejected"] == len(arrivals)
        assert stats["queued"] == 0
        assert stats["peak_queue_depth"] <= config.queue_limit
        for response in responses:
            if response.outcome is Outcome.REJECTED:
                assert response.reason
            else:
                assert response.finish_s is not None
                assert response.latency_s >= 0
        # Occurrence invariants mirror the admission-queue contract.
        slot_by_name = {
            slot.name: slot for slot in SlotCycle(config).slots
        }
        for record in occurrences:
            slot = slot_by_name[record.slot]
            assert len(record.structures) <= slot.max_multiplexing
            per_tenant = {}
            for tenant, _, _ in record.entries:
                per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
            assert all(
                count <= max_per_slot for count in per_tenant.values()
            )
            if len(record.entries) > 1:
                assert record.consumed_s <= record.window_s * (1 + 1e-9)
        # FIFO per (tenant, structure) in completion order.
        order: dict = {}
        for record in occurrences:
            for tenant, sequence, structure in record.entries:
                order.setdefault((tenant, structure), []).append(sequence)
        for sequences in order.values():
            assert sequences == sorted(sequences)
