"""READY/START synchronization tree."""

import pytest

from repro.config import PimSystemConfig, PimnetNetworkConfig
from repro.core import SyncTree
from repro.errors import ScheduleError


def tree(b=8, c=8, r=4):
    return SyncTree(
        PimSystemConfig(
            banks_per_chip=b, chips_per_rank=c, ranks_per_channel=r
        ),
        PimnetNetworkConfig(),
    )


class TestLevels:
    def test_full_channel_needs_three_levels(self):
        assert tree().levels_for_scope() == 3

    def test_single_rank_needs_two(self):
        assert tree(r=1).levels_for_scope() == 2

    def test_single_chip_needs_one(self):
        assert tree(c=1, r=1).levels_for_scope() == 1


class TestLatency:
    def test_full_fabric_matches_paper_estimate(self):
        """Paper: ~15 ns worst case (about 6 DPU cycles at 350 MHz)."""
        latency = tree().round_trip_latency_s()
        assert 10e-9 <= latency <= 30e-9
        cycles = latency * 350e6
        assert 3 <= cycles <= 11

    def test_floor_applies_to_small_scopes(self):
        """Even a one-chip scope pays the configured worst-case floor."""
        assert tree(c=1, r=1).round_trip_latency_s() == pytest.approx(
            PimnetNetworkConfig().sync_latency_s
        )

    def test_latency_monotone_in_levels(self):
        t = tree()
        values = [t.round_trip_latency_s(levels) for levels in (1, 2, 3)]
        assert values[0] <= values[1] <= values[2]

    def test_invalid_levels_rejected(self):
        with pytest.raises(ScheduleError):
            tree().round_trip_latency_s(4)


class TestPhaseCost:
    def test_scales_with_phase_count(self):
        t = tree()
        assert t.phase_sync_time_s(6) == pytest.approx(
            6 * t.round_trip_latency_s()
        )

    def test_zero_phases_is_free(self):
        assert tree().phase_sync_time_s(0) == 0.0

    def test_negative_phases_rejected(self):
        with pytest.raises(ScheduleError):
            tree().phase_sync_time_s(-1)

    def test_sync_is_small_vs_collective(self):
        """Paper: sync (~15 ns) is negligible against a 1 KB AllReduce
        that takes >1000 DPU cycles."""
        sync = tree().round_trip_latency_s()
        thousand_cycles = 1000 / 350e6
        assert sync < thousand_cycles / 50
