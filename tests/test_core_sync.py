"""READY/START synchronization tree."""

import pytest

from repro.config import PimSystemConfig, PimnetNetworkConfig
from repro.core import SyncReport, SyncTree
from repro.errors import ScheduleError


def tree(b=8, c=8, r=4):
    return SyncTree(
        PimSystemConfig(
            banks_per_chip=b, chips_per_rank=c, ranks_per_channel=r
        ),
        PimnetNetworkConfig(),
    )


class TestLevels:
    def test_full_channel_needs_three_levels(self):
        assert tree().levels_for_scope() == 3

    def test_single_rank_needs_two(self):
        assert tree(r=1).levels_for_scope() == 2

    def test_single_chip_needs_one(self):
        assert tree(c=1, r=1).levels_for_scope() == 1


class TestLatency:
    def test_full_fabric_matches_paper_estimate(self):
        """Paper: ~15 ns worst case (about 6 DPU cycles at 350 MHz)."""
        latency = tree().round_trip_latency_s()
        assert 10e-9 <= latency <= 30e-9
        cycles = latency * 350e6
        assert 3 <= cycles <= 11

    def test_floor_applies_to_small_scopes(self):
        """Even a one-chip scope pays the configured worst-case floor."""
        assert tree(c=1, r=1).round_trip_latency_s() == pytest.approx(
            PimnetNetworkConfig().sync_latency_s
        )

    def test_latency_monotone_in_levels(self):
        t = tree()
        values = [t.round_trip_latency_s(levels) for levels in (1, 2, 3)]
        assert values[0] <= values[1] <= values[2]

    def test_invalid_levels_rejected(self):
        with pytest.raises(ScheduleError):
            tree().round_trip_latency_s(4)


class TestPhaseCost:
    def test_scales_with_phase_count(self):
        t = tree()
        assert t.phase_sync_time_s(6) == pytest.approx(
            6 * t.round_trip_latency_s()
        )

    def test_zero_phases_is_free(self):
        assert tree().phase_sync_time_s(0) == 0.0

    def test_negative_phases_rejected(self):
        with pytest.raises(ScheduleError):
            tree().phase_sync_time_s(-1)

    def test_sync_is_small_vs_collective(self):
        """Paper: sync (~15 ns) is negligible against a 1 KB AllReduce
        that takes >1000 DPU cycles."""
        sync = tree().round_trip_latency_s()
        thousand_cycles = 1000 / 350e6
        assert sync < thousand_cycles / 50


class TestRoundTripReport:
    """Satellite of ``repro.faults``: the report names which node's
    late READY set the round-trip time."""

    def test_no_delays_matches_plain_latency(self):
        t = tree()
        report = t.round_trip_report()
        assert isinstance(report, SyncReport)
        assert report.latency_s == t.round_trip_latency_s()
        assert report.critical_node == ""
        assert report.critical_delay_s == 0.0
        assert not report.timed_out

    def test_slowest_node_named(self):
        report = tree().round_trip_report(node_delays={
            "bank:0:0:1": 2e-6,
            "bank:1:3:0": 9e-6,
            "bank:0:2:2": 4e-6,
        })
        assert report.critical_node == "bank:1:3:0"
        assert report.critical_delay_s == pytest.approx(9e-6)
        assert report.latency_s == pytest.approx(
            tree().round_trip_latency_s() + 9e-6
        )

    def test_ties_break_lexicographically(self):
        report = tree().round_trip_report(node_delays={
            "bank:1:0:0": 5e-6,
            "bank:0:0:0": 5e-6,
        })
        assert report.critical_node == "bank:0:0:0"

    def test_zero_delays_leave_critical_path_unnamed(self):
        report = tree().round_trip_report(
            node_delays={"bank:0:0:0": 0.0}
        )
        assert report.critical_node == ""

    def test_timeout_flags_detection(self):
        report = tree().round_trip_report(
            node_delays={"bank:0:0:0": 200e-6}, timeout_s=100e-6
        )
        assert report.timed_out
        assert report.critical_node == "bank:0:0:0"

    def test_within_timeout_not_flagged(self):
        report = tree().round_trip_report(
            node_delays={"bank:0:0:0": 1e-6}, timeout_s=100e-6
        )
        assert not report.timed_out

    def test_negative_delay_rejected(self):
        with pytest.raises(ScheduleError, match="negative"):
            tree().round_trip_report(node_delays={"bank:0:0:0": -1e-9})
