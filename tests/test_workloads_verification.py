"""The one-call workload self-verification harness."""

import pytest

from repro.config import small_test_system
from repro.workloads import VerificationResult, all_passed, verify_all
from repro.workloads.verification import VERIFIERS


class TestVerifyAll:
    @pytest.fixture(scope="class")
    def results(self):
        return verify_all(small_test_system())

    def test_every_workload_covered(self, results):
        assert {r.workload for r in results} == set(VERIFIERS)

    def test_everything_passes_on_pimnet(self, results):
        failing = [r for r in results if not r.passed]
        assert not failing, failing

    def test_all_passed_helper(self, results):
        assert all_passed(results)

    def test_host_backend_also_passes(self):
        assert all_passed(verify_all(small_test_system(), backend_key="B"))

    def test_deterministic_under_seed(self):
        a = verify_all(small_test_system(), seed=1)
        b = verify_all(small_test_system(), seed=1)
        assert a == b

    def test_failure_is_reported_not_raised(self, monkeypatch):
        import repro.workloads.verification as v

        def broken(backend, rng):
            raise RuntimeError("injected fault")

        monkeypatch.setitem(v.VERIFIERS, "GEMV", broken)
        results = verify_all(small_test_system())
        gemv = next(r for r in results if r.workload == "GEMV")
        assert not gemv.passed
        assert "injected fault" in gemv.detail
        assert not all_passed(results)

    def test_result_dataclass(self):
        r = VerificationResult("X", True)
        assert r.passed and r.detail == ""
