"""Link and shared-medium flow-control primitives."""

import pytest

from repro.errors import SimulationError
from repro.noc import Link, SharedMedium
from repro.noc.flit import Flit, Message


def make_link(**kwargs):
    defaults = dict(
        name="l", src_router="a", dst_router="b",
        cycles_per_flit=2, latency_cycles=1, buffer_depth=2,
    )
    defaults.update(kwargs)
    return Link(**defaults)


def make_flit():
    msg = Message(msg_id=0, src=0, dst=1, num_flits=1)
    return Flit(message=msg, seq=0, path=())


class TestCredits:
    def test_starts_with_full_credits(self):
        link = make_link()
        assert link.credits == 2

    def test_traversal_consumes_credit(self):
        link = make_link()
        link.start_traversal(make_flit(), now=0)
        assert link.credits == 1

    def test_cannot_exceed_buffer_depth(self):
        link = make_link(cycles_per_flit=1)
        link.start_traversal(make_flit(), now=0)
        link.start_traversal(make_flit(), now=1)
        assert not link.can_accept(2)

    def test_credit_return(self):
        link = make_link()
        link.start_traversal(make_flit(), now=0)
        link.return_credit()
        assert link.credits == 2

    def test_credit_overflow_detected(self):
        link = make_link()
        with pytest.raises(SimulationError):
            link.return_credit()


class TestSerialization:
    def test_busy_until_cycles_per_flit(self):
        link = make_link(cycles_per_flit=3)
        link.start_traversal(make_flit(), now=0)
        assert not link.can_accept(1)
        assert not link.can_accept(2)
        assert link.can_accept(3)

    def test_traversal_without_capacity_rejected(self):
        link = make_link(cycles_per_flit=5)
        link.start_traversal(make_flit(), now=0)
        with pytest.raises(SimulationError):
            link.start_traversal(make_flit(), now=1)

    def test_arrival_after_latency(self):
        link = make_link(cycles_per_flit=2, latency_cycles=3)
        flit = make_flit()
        link.start_traversal(flit, now=0)
        link.deliver_arrivals(4)
        assert len(link.buffer) == 0
        link.deliver_arrivals(5)
        assert link.buffer[0] is flit
        assert flit.arrival_link is link


class TestSharedMedium:
    def test_medium_serializes_across_links(self):
        bus = SharedMedium("bus")
        a = make_link(name="a", medium=bus, cycles_per_flit=4)
        b = make_link(name="b", medium=bus, cycles_per_flit=4)
        a.start_traversal(make_flit(), now=0)
        assert not b.can_accept(0)
        assert not b.can_accept(3)
        assert b.can_accept(4)

    def test_reset_clears_state(self):
        link = make_link()
        link.start_traversal(make_flit(), now=0)
        link.reset()
        assert link.credits == 2
        assert link.next_free_cycle == 0
        assert not link.in_flight


class TestValidation:
    def test_zero_cycles_per_flit_rejected(self):
        with pytest.raises(SimulationError):
            make_link(cycles_per_flit=0)

    def test_zero_buffer_rejected(self):
        with pytest.raises(SimulationError):
            make_link(buffer_depth=0)

    def test_message_validation(self):
        with pytest.raises(SimulationError):
            Message(msg_id=0, src=1, dst=1, num_flits=1)
        with pytest.raises(SimulationError):
            Message(msg_id=0, src=0, dst=1, num_flits=0)
