"""Host-link characterization experiment."""

import pytest

from repro.experiments import characterization


@pytest.fixture(scope="module")
def result():
    return characterization.run()


class TestBandwidthCurves:
    def test_effective_bandwidth_monotone_in_size(self, result):
        for series in (
            result.gather_gbs, result.scatter_gbs, result.broadcast_gbs,
        ):
            assert all(b > a for a, b in zip(series, series[1:]))

    def test_asymptotes_approach_measured_peaks(self, result):
        assert result.gather_gbs[-1] == pytest.approx(4.74, rel=0.02)
        assert result.scatter_gbs[-1] == pytest.approx(6.68, rel=0.02)
        assert result.broadcast_gbs[-1] == pytest.approx(16.88, rel=0.05)

    def test_small_transfers_crushed_by_overheads(self, result):
        assert result.gather_gbs[0] < 0.5

    def test_transposition_penalty_reported(self, result):
        assert result.transposed_gather_gbs == pytest.approx(
            4.74 * 0.35, rel=0.01
        )

    def test_format(self, result):
        text = characterization.format_table(result)
        assert "Host-link characterization" in text
