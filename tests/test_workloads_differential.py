"""The differential workload matrix: distributed == reference, always.

Every cell is one (workload, machine shape, payload scale) point run by
:func:`repro.workloads.run_case`, which asserts three invariants at
once: the distributed result is bit-exact against the numpy reference,
the recorded collective trace matches the workload's declared phase
list, and both match the closed-form ``expected_comm_volume``.

The full PrIM matrix runs in the default suite; APSP's larger scales
are cycle-hungry (dense min-plus) and carry the ``slow`` marker.
"""

import pytest

from repro.workloads import (
    DIFFERENTIAL_KEYS,
    DifferentialCase,
    TraceRecordingBackend,
    enumerate_cases,
    run_case,
    run_differential_matrix,
    summarize_by_workload,
)
from repro.workloads.differential import DEFAULT_SCALES, DEFAULT_SHAPES

pytestmark = pytest.mark.workloads


def _case_params():
    params = []
    for case in enumerate_cases():
        marks = []
        if case.workload_key == "APSP" and case.scale != "S":
            marks.append(pytest.mark.slow)
        params.append(
            pytest.param(case, id=case.case_id, marks=tuple(marks))
        )
    return params


@pytest.mark.parametrize("case", _case_params())
def test_matrix_cell(case):
    report = run_case(case)
    assert report.functional_ok, report.detail
    assert report.trace_ok, report.detail
    assert report.volume_ok, report.detail
    assert report.passed and report.detail == ""


class TestEnumeration:
    def test_full_matrix_shape(self):
        cases = enumerate_cases()
        assert len(cases) == (
            len(DIFFERENTIAL_KEYS) * len(DEFAULT_SHAPES) * len(DEFAULT_SCALES)
        )
        assert len({c.case_id for c in cases}) == len(cases)

    def test_seed_is_stable_across_processes(self):
        case = DifferentialCase("APSP", (2, 2, 2), "S")
        # crc32 of the case id — not hash(), which is per-process salted.
        assert case.seed == DifferentialCase("APSP", (2, 2, 2), "S").seed
        assert case.case_id == "APSP-2x2x2-S-P"

    def test_recording_backend_counts_dpus(self):
        from repro.collectives import registry

        case = DifferentialCase("HST", (4, 2, 2), "S")
        backend = TraceRecordingBackend(registry.create("P", case.machine()))
        assert backend.num_dpus == 16
        assert backend.trace == []


class TestSummary:
    def test_per_workload_rows(self):
        cases = enumerate_cases(
            keys=("HST", "SCAN"), shapes=((2, 2, 2),), scales=("S",)
        )
        reports = run_differential_matrix(cases)
        rows = summarize_by_workload(reports)
        assert [r["workload"] for r in rows] == ["HST", "SCAN"]
        for row in rows:
            assert row["cases"] == 1
            assert row["passed"] == 1
            assert row["failed"] == 0
            assert row["status"] == "ok"

    def test_failures_surface_detail(self):
        cases = enumerate_cases(
            keys=("SCAN",), shapes=((2, 2, 2),), scales=("S",)
        )
        reports = list(run_differential_matrix(cases))
        broken = reports[0].__class__(
            case=reports[0].case,
            functional_ok=False,
            trace_ok=True,
            volume_ok=True,
            detail="mismatch at shard 3",
        )
        rows = summarize_by_workload([broken])
        assert rows[0]["status"] == "FAIL"
        assert "mismatch at shard 3" in rows[0]["detail"]
