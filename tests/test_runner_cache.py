"""Content-addressed cache: key sensitivity and corruption handling.

The cache key must change whenever *anything* that determines a point's
result changes — any MachineConfig field (however deeply nested), any
sweep param, or the code fingerprint — and a damaged cache file must be
a miss (dropped and recomputed), never an error.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RunnerConfig, pimnet_sim_system
from repro.errors import ConfigurationError, ReproError, RunnerError
from repro.runner import (
    ResultCache,
    cache_key,
    canonical_json,
    canonicalize,
    code_fingerprint,
    run_experiment,
)

MACHINE = pimnet_sim_system()
CODE = "f" * 64


def _leaf_paths(value, prefix=()):
    """Every (path, leaf) of numeric/str/bool fields in a dataclass tree."""
    out = []
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for f in dataclasses.fields(value):
            out.extend(
                _leaf_paths(getattr(value, f.name), prefix + (f.name,))
            )
    elif isinstance(value, (bool, int, float, str)):
        out.append((prefix, value))
    return out


def _replace_at(value, path, new_leaf):
    """A copy of the dataclass tree with the leaf at ``path`` replaced."""
    if not path:
        return new_leaf
    field_name = path[0]
    return dataclasses.replace(
        value,
        **{
            field_name: _replace_at(
                getattr(value, field_name), path[1:], new_leaf
            )
        },
    )


LEAF_PATHS = [path for path, _ in _leaf_paths(MACHINE)]


def _candidates(leaf, delta=1):
    """Perturbed leaf values, most likely to pass config validation first.

    Validators constrain many fields (efficiencies in (0, 1], counts
    must be powers of two, ...), so several candidates are tried; a
    field where no candidate builds a valid config is skipped — it
    still participates in the key via the fields around it.
    """
    if isinstance(leaf, bool):
        return [not leaf]
    if isinstance(leaf, int):
        return [leaf * 2, leaf + delta, leaf // 2, leaf - delta]
    if isinstance(leaf, float):
        return [leaf / 2, leaf * 2, leaf + delta, leaf / (1 + delta)]
    return [leaf + "x" * delta]


def _mutated_machine(path, leaf, delta=1):
    for candidate in _candidates(leaf, delta):
        if candidate == leaf:
            continue
        try:
            return _replace_at(MACHINE, path, candidate)
        except ReproError:
            continue
    return None


class TestKeySensitivity:
    def test_every_machine_leaf_field_is_load_bearing(self):
        """Perturbing ANY leaf of the config tree must change the key."""
        base = cache_key("exp", MACHINE, {}, code=CODE)
        tested = 0
        for path, leaf in _leaf_paths(MACHINE):
            machine = _mutated_machine(path, leaf)
            if machine is None:
                continue
            tested += 1
            assert cache_key("exp", machine, {}, code=CODE) != base, path
        # The tree has dozens of leaves; the sweep must cover most.
        assert tested >= 0.8 * len(LEAF_PATHS)

    @given(
        index=st.integers(min_value=0, max_value=len(LEAF_PATHS) - 1),
        delta=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_numeric_field_perturbations_change_key(self, index, delta):
        path, base_leaf = _leaf_paths(MACHINE)[index]
        machine = _mutated_machine(path, base_leaf, delta)
        if machine is None:
            return  # no valid perturbation for this (field, delta)
        assert cache_key("exp", machine, {}, code=CODE) != cache_key(
            "exp", MACHINE, {}, code=CODE
        )

    _params = st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.integers(min_value=-(10**9), max_value=10**9),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=12),
            st.booleans(),
            st.none(),
        ),
        max_size=5,
    )

    @given(params=_params, extra=st.integers())
    @settings(max_examples=50, deadline=None)
    def test_any_param_change_changes_key(self, params, extra):
        base = cache_key("exp", MACHINE, params, code=CODE)
        changed = dict(params)
        changed["__extra__"] = extra
        assert cache_key("exp", MACHINE, changed, code=CODE) != base

    @given(params=_params)
    @settings(max_examples=50, deadline=None)
    def test_param_key_order_is_irrelevant(self, params):
        reversed_params = dict(reversed(list(params.items())))
        assert cache_key("exp", MACHINE, params, code=CODE) == cache_key(
            "exp", MACHINE, reversed_params, code=CODE
        )

    @given(
        value=st.recursive(
            st.one_of(
                st.integers(min_value=-(10**9), max_value=10**9),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=8),
                st.booleans(),
                st.none(),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(
                    st.text(min_size=1, max_size=6), children, max_size=4
                ),
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_canonical_json_roundtrips_plain_json_values(self, value):
        # Canonicalization of an already-JSON value only erases dict
        # ordering and tuple/list distinction; equality of canonical
        # strings is the cache's notion of "same params".
        assert canonical_json(value) == canonical_json(
            json.loads(json.dumps(value))
        )

    def test_experiment_id_and_code_fingerprint_change_key(self):
        base = cache_key("exp", MACHINE, {"a": 1}, code=CODE)
        assert cache_key("exp2", MACHINE, {"a": 1}, code=CODE) != base
        assert cache_key("exp", MACHINE, {"a": 1}, code="0" * 64) != base

    def test_default_code_fingerprint_is_used_when_omitted(self):
        assert cache_key("exp", MACHINE, {}) == cache_key(
            "exp", MACHINE, {}, code=code_fingerprint()
        )

    def test_unencodable_param_raises_instead_of_guessing(self):
        with pytest.raises(RunnerError):
            cache_key("exp", MACHINE, {"bad": object()}, code=CODE)
        with pytest.raises(RunnerError):
            canonicalize(object())


class TestCorruptionHandling:
    def _seeded_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("exp", MACHINE, {"n": 1}, code=CODE)
        path = cache.put("exp", key, {"answer": 42}, params={"n": 1})
        return cache, key, path

    def test_roundtrip(self, tmp_path):
        cache, key, _ = self._seeded_cache(tmp_path)
        hit, value = cache.get("exp", key)
        assert hit and value == {"answer": 42}
        assert cache.counters.hits == 1

    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        hit, value = cache.get("exp", "0" * 64)
        assert not hit and value is None
        assert cache.counters.misses == 1

    @pytest.mark.parametrize(
        "damage",
        [
            lambda text: text[: len(text) // 2],  # truncated write
            lambda text: "not json at all {",  # garbage
            lambda text: "{}",  # schema missing
            lambda text: json.dumps({"cache_version": 999}),  # bad version
        ],
        ids=["truncated", "garbage", "no-schema", "wrong-version"],
    )
    def test_damaged_entry_is_a_miss_not_an_error(self, tmp_path, damage):
        cache, key, path = self._seeded_cache(tmp_path)
        path.write_text(damage(path.read_text()))
        hit, value = cache.get("exp", key)
        assert not hit and value is None
        assert cache.counters.corrupt == 1
        assert not path.exists(), "damaged entry must be dropped"
        # ... and the slot is rewritable afterwards.
        cache.put("exp", key, {"answer": 43})
        assert cache.get("exp", key) == (True, {"answer": 43})

    def test_entry_under_wrong_address_is_corrupt(self, tmp_path):
        cache, key, path = self._seeded_cache(tmp_path)
        other_key = cache_key("exp", MACHINE, {"n": 2}, code=CODE)
        path.rename(cache.path_for("exp", other_key))
        hit, _ = cache.get("exp", other_key)
        assert not hit
        assert cache.counters.corrupt == 1

    def test_clear_reports_removed_count(self, tmp_path):
        cache, _, _ = self._seeded_cache(tmp_path)
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_stats_shape(self, tmp_path):
        cache, _, _ = self._seeded_cache(tmp_path)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["experiments"]["exp"]["entries"] == 1
        assert stats["experiments"]["exp"]["bytes"] > 0


class TestEndToEndCorruptionRecovery:
    def test_corrupt_point_is_recomputed_not_fatal(self, tmp_path):
        runner = RunnerConfig(cache_dir=str(tmp_path / "cache"))
        cold = run_experiment("table05", runner=runner)
        cache_files = list((tmp_path / "cache" / "table05").glob("*.json"))
        assert len(cache_files) == 1
        cache_files[0].write_text("truncated{")
        again = run_experiment("table05", runner=runner)
        assert again.cache_hits == 0 and again.cache_misses == 1
        assert again.format() == cold.format()
        warm = run_experiment("table05", runner=runner)
        assert warm.cache_hits == 1


class TestRunnerConfigValidation:
    def test_defaults_are_valid(self):
        config = RunnerConfig()
        assert config.jobs == 1 and config.cache_enabled

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_bad_jobs_rejected(self, jobs):
        with pytest.raises(ConfigurationError):
            RunnerConfig(jobs=jobs)

    @pytest.mark.parametrize(
        "timeout", [0.0, -5.0, float("nan"), float("inf")]
    )
    def test_bad_timeout_rejected(self, timeout):
        with pytest.raises(ConfigurationError):
            RunnerConfig(point_timeout_s=timeout)

    def test_empty_cache_dir_rejected(self):
        with pytest.raises(ConfigurationError):
            RunnerConfig(cache_dir="")
