"""Synthetic graph generation and reference graph algorithms."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads import (
    bfs_levels,
    bfs_reference,
    connected_components_reference,
    rmat_graph,
)


@pytest.fixture(scope="module")
def small_graph():
    return rmat_graph(500, 2000, seed=11)


class TestRmatGenerator:
    def test_deterministic_under_seed(self):
        a = rmat_graph(200, 500, seed=1)
        b = rmat_graph(200, 500, seed=1)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_seed_changes_graph(self):
        a = rmat_graph(200, 500, seed=1)
        b = rmat_graph(200, 500, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_edge_count_near_target(self, small_graph):
        # dedup and self-loop removal lose a few percent
        assert 0.7 * 2000 <= small_graph.num_edges <= 2000

    def test_csr_structure_valid(self, small_graph):
        g = small_graph
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.indices.size
        assert np.all(np.diff(g.indptr) >= 0)
        assert g.indices.min() >= 0
        assert g.indices.max() < g.num_vertices

    def test_graph_is_undirected(self, small_graph):
        g = small_graph
        edges = set()
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                edges.add((v, int(u)))
        for v, u in edges:
            assert (u, v) in edges

    def test_no_self_loops(self, small_graph):
        g = small_graph
        for v in range(g.num_vertices):
            assert v not in g.neighbors(v)

    def test_skewed_degree_distribution(self, small_graph):
        """R-MAT produces hub vertices (max degree >> mean degree)."""
        degrees = np.diff(small_graph.indptr)
        assert degrees.max() > 5 * max(1.0, degrees.mean())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rmat_graph(1, 10)
        with pytest.raises(ConfigurationError):
            rmat_graph(10, 0)

    def test_degenerate_probabilities_rejected_eagerly(self):
        """Individually-invalid a/b/c must fail even when the sum looks
        fine (regression: -0.1 + 0.6 + 0.3 sums into (0, 1))."""
        with pytest.raises(ConfigurationError):
            rmat_graph(100, 200, a=-0.1, b=0.6, c=0.3)
        with pytest.raises(ConfigurationError):
            rmat_graph(100, 200, a=0.5, b=-0.2, c=0.4)
        with pytest.raises(ConfigurationError):
            rmat_graph(100, 200, a=0.3, b=0.3, c=1.2)
        with pytest.raises(ConfigurationError):
            rmat_graph(100, 200, a=0.0, b=0.4, c=0.4)
        with pytest.raises(ConfigurationError):
            rmat_graph(100, 200, a=0.5, b=0.3, c=0.2)  # no room for d


class TestBfsReference:
    def test_source_has_depth_zero(self, small_graph):
        depth = bfs_reference(small_graph, 0)
        assert depth[0] == 0

    def test_depths_are_consistent(self, small_graph):
        """Neighbors differ by at most one level (triangle property)."""
        depth = bfs_reference(small_graph, 0)
        for v in range(small_graph.num_vertices):
            if depth[v] < 0:
                continue
            for u in small_graph.neighbors(v):
                if depth[u] >= 0:
                    assert abs(depth[u] - depth[v]) <= 1

    def test_unreachable_marked(self):
        g = rmat_graph(64, 40, seed=3)
        depth = bfs_reference(g, 0)
        assert (depth == -1).any() or (depth >= 0).all()

    def test_bfs_levels_positive(self, small_graph):
        assert bfs_levels(small_graph, 0) >= 1

    def test_invalid_source(self, small_graph):
        with pytest.raises(WorkloadError):
            bfs_reference(small_graph, small_graph.num_vertices)


class TestCcReference:
    def test_labels_constant_within_component(self, small_graph):
        labels = connected_components_reference(small_graph)
        for v in range(small_graph.num_vertices):
            for u in small_graph.neighbors(v):
                assert labels[v] == labels[u]

    def test_labels_are_component_minima(self, small_graph):
        labels = connected_components_reference(small_graph)
        for v in range(small_graph.num_vertices):
            assert labels[v] <= v

    def test_isolated_vertices_keep_own_label(self):
        g = rmat_graph(64, 20, seed=5)
        labels = connected_components_reference(g)
        isolated = [v for v in range(64) if g.degree(v) == 0]
        for v in isolated:
            assert labels[v] == v
