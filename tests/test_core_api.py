"""User-facing PIMnet collective API."""

import numpy as np
import pytest

from repro import (
    pimnet_all_gather,
    pimnet_all_reduce,
    pimnet_all_to_all,
    pimnet_broadcast,
    pimnet_reduce_scatter,
)
from repro.collectives import ReduceOp
from repro.errors import CollectiveError

from .conftest import make_buffers


class TestAllReduceApi:
    def test_returns_outputs_and_timing(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        result = pimnet_all_reduce(buffers, tiny_machine)
        assert result.backend_name == "PIMnet"
        assert result.time_s > 0
        total = np.sum(buffers, axis=0)
        for out in result.outputs:
            assert np.array_equal(out, total)

    def test_reduce_op_forwarded(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        result = pimnet_all_reduce(buffers, tiny_machine, op=ReduceOp.MAX)
        assert np.array_equal(result.outputs[0], np.max(buffers, axis=0))

    def test_dtype_inferred_from_buffers(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng, dtype=np.int32)
        result = pimnet_all_reduce(buffers, tiny_machine)
        assert result.outputs[0].dtype == np.int32

    def test_buffer_count_must_match_machine(self, tiny_machine, rng):
        with pytest.raises(CollectiveError):
            pimnet_all_reduce(make_buffers(4, 16, rng), tiny_machine)

    def test_empty_buffer_list_rejected(self, tiny_machine):
        with pytest.raises(CollectiveError):
            pimnet_all_reduce([], tiny_machine)


class TestOtherPatterns:
    def test_reduce_scatter(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        result = pimnet_reduce_scatter(buffers, tiny_machine)
        assert np.array_equal(
            np.concatenate(result.outputs), np.sum(buffers, axis=0)
        )

    def test_all_gather(self, tiny_machine, rng):
        buffers = make_buffers(8, 4, rng)
        result = pimnet_all_gather(buffers, tiny_machine)
        expected = np.concatenate(buffers)
        for out in result.outputs:
            assert np.array_equal(out, expected)

    def test_all_to_all(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        result = pimnet_all_to_all(buffers, tiny_machine)
        chunk = 2
        assert np.array_equal(
            result.outputs[1][0:chunk], buffers[0][chunk : 2 * chunk]
        )

    def test_broadcast_root(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        result = pimnet_broadcast(buffers, tiny_machine, root=6)
        for out in result.outputs:
            assert np.array_equal(out, buffers[6])

    def test_default_machine_is_full_channel(self, rng):
        buffers = make_buffers(256, 4, rng)
        result = pimnet_all_reduce(buffers)
        assert len(result.outputs) == 256
