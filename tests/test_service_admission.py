"""Admission queue: explicit outcomes, quotas, and FIFO invariants.

The hypothesis suite drives random arrival interleavings through the
queue + slot cycle and pins the admission-order invariants documented
in ``repro.service.admission``:

* conservation — every enqueued entry is admitted exactly once,
* slot discipline — an occurrence only admits patterns its slot accepts,
* quota discipline — per-tenant admissions per occurrence and distinct
  structures per occurrence never exceed their caps,
* window discipline — consumed time fits the window except for the
  single-oversize allowance, and
* FIFO per (tenant, structure) — service order never reorders one
  tenant's same-structure requests.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.patterns import Collective, CollectiveRequest
from repro.config.service import (
    ServiceConfig,
    TenantQuotaConfig,
    TimeSlotConfig,
)
from repro.service import AdmissionQueue, QueueEntry, SlotCycle

pytestmark = pytest.mark.service

PATTERNS = (
    Collective.ALL_REDUCE,
    Collective.REDUCE_SCATTER,
    Collective.BROADCAST,
)

#: Deterministic fake service time: 1us per 8-byte element.
def service_time(request: CollectiveRequest) -> float:
    return request.num_elements * 1e-6


def structure(request: CollectiveRequest):
    return (request.pattern, request.root, request.dtype.itemsize)


def make_entry(sequence: int, tenant: str, pattern: Collective,
               elements: int) -> QueueEntry:
    return QueueEntry(
        sequence=sequence,
        tenant=tenant,
        request=CollectiveRequest(pattern, payload_bytes=8 * elements),
        arrival_s=0.0,
    )


def two_slot_config(**kwargs) -> ServiceConfig:
    return ServiceConfig(
        slots=(
            TimeSlotConfig(
                "reduce", ("all_reduce",),
                time_window_s=kwargs.pop("window_s", 100e-6),
                max_multiplexing=kwargs.pop("max_multiplexing", 1),
            ),
            TimeSlotConfig("rest", ()),
        ),
        **kwargs,
    )


class TestEnqueue:
    def test_queue_limit_is_explicit(self):
        config = two_slot_config(queue_limit=2)
        queue = AdmissionQueue(config)
        assert queue.try_enqueue(make_entry(0, "a", PATTERNS[0], 1)) is None
        assert queue.try_enqueue(make_entry(1, "b", PATTERNS[0], 1)) is None
        reason = queue.try_enqueue(make_entry(2, "c", PATTERNS[0], 1))
        assert reason is not None and "queue full" in reason
        assert "queue_limit=2" in reason

    def test_tenant_quota_is_explicit(self):
        config = two_slot_config(
            default_quota=TenantQuotaConfig(max_queued=1, max_per_slot=1)
        )
        queue = AdmissionQueue(config)
        assert queue.try_enqueue(make_entry(0, "a", PATTERNS[0], 1)) is None
        reason = queue.try_enqueue(make_entry(1, "a", PATTERNS[0], 1))
        assert reason is not None and "over quota" in reason
        assert "max_queued=1" in reason
        # Another tenant is unaffected.
        assert queue.try_enqueue(make_entry(2, "b", PATTERNS[0], 1)) is None
        assert queue.tenant_depth("a") == 1
        assert queue.tenant_depth("b") == 1


class TestSelect:
    def test_pattern_filter(self):
        config = two_slot_config()
        queue = AdmissionQueue(config)
        cycle = SlotCycle(config)
        queue.try_enqueue(make_entry(0, "a", Collective.BROADCAST, 1))
        queue.try_enqueue(make_entry(1, "a", Collective.ALL_REDUCE, 1))
        selection = queue.select(cycle.slot_at(0), structure, service_time)
        assert [e.sequence for e in selection.entries] == [1]
        selection = queue.select(cycle.slot_at(1), structure, service_time)
        assert [e.sequence for e in selection.entries] == [0]
        assert queue.depth == 0

    def test_single_oversize_allowance(self):
        config = two_slot_config(window_s=10e-6)
        queue = AdmissionQueue(config)
        cycle = SlotCycle(config)
        # 50us of work against a 10us window: admitted alone, overrun.
        queue.try_enqueue(make_entry(0, "a", Collective.ALL_REDUCE, 50))
        queue.try_enqueue(make_entry(1, "a", Collective.ALL_REDUCE, 50))
        selection = queue.select(cycle.slot_at(0), structure, service_time)
        assert selection.count == 1
        assert selection.consumed_s > cycle.slot_at(0).time_window_s
        assert queue.depth == 1

    def test_budget_fill_is_strictly_fifo(self):
        # 60us + 60us against 100us: the second does not fit, and the
        # smaller third entry must NOT leapfrog it.
        config = two_slot_config(window_s=100e-6)
        queue = AdmissionQueue(config)
        cycle = SlotCycle(config)
        queue.try_enqueue(make_entry(0, "a", Collective.ALL_REDUCE, 60))
        queue.try_enqueue(make_entry(1, "b", Collective.ALL_REDUCE, 60))
        queue.try_enqueue(make_entry(2, "c", Collective.ALL_REDUCE, 1))
        selection = queue.select(cycle.slot_at(0), structure, service_time)
        assert [e.sequence for e in selection.entries] == [0]

    def test_multiplexing_caps_distinct_structures(self):
        config = ServiceConfig(
            slots=(
                TimeSlotConfig("any", (), 1.0, max_multiplexing=1),
            ),
        )
        queue = AdmissionQueue(config)
        cycle = SlotCycle(config)
        queue.try_enqueue(make_entry(0, "a", Collective.ALL_REDUCE, 1))
        queue.try_enqueue(make_entry(1, "a", Collective.BROADCAST, 1))
        queue.try_enqueue(make_entry(2, "b", Collective.ALL_REDUCE, 2))
        selection = queue.select(cycle.slot_at(0), structure, service_time)
        # Both all_reduce entries batch on one structure; the broadcast
        # would be a second structure and must wait.
        assert [e.sequence for e in selection.entries] == [0, 2]
        assert len(selection.structures) == 1


@st.composite
def admission_cases(draw):
    max_multiplexing = draw(st.integers(1, 3))
    max_per_slot = draw(st.integers(1, 3))
    max_queued = draw(st.integers(1, 10))
    queue_limit = draw(st.integers(1, 30))
    window_us = draw(st.integers(1, 60))
    config = ServiceConfig(
        slots=(
            TimeSlotConfig(
                "reduce", ("all_reduce", "reduce_scatter"),
                time_window_s=window_us * 1e-6,
                max_multiplexing=max_multiplexing,
            ),
            TimeSlotConfig(
                "rest", (),
                time_window_s=window_us * 1e-6,
                max_multiplexing=max_multiplexing,
            ),
        ),
        switch_time_s=1e-6,
        queue_limit=queue_limit,
        default_quota=TenantQuotaConfig(
            max_queued=max_queued, max_per_slot=max_per_slot
        ),
    )
    arrivals = draw(
        st.lists(
            st.tuples(
                st.integers(0, 3),           # tenant
                st.integers(0, len(PATTERNS) - 1),
                st.integers(1, 40),          # elements -> service time
            ),
            min_size=1,
            max_size=40,
        )
    )
    return config, arrivals


class TestAdmissionInvariants:
    @given(case=admission_cases())
    @settings(deadline=None, max_examples=60)
    def test_random_interleavings_respect_cycle_and_quotas(self, case):
        config, arrivals = case
        cycle = SlotCycle(config)
        queue = AdmissionQueue(config)
        queued = []
        for sequence, (tenant, pattern, elements) in enumerate(arrivals):
            entry = make_entry(
                sequence, f"t{tenant}", PATTERNS[pattern], elements
            )
            reason = queue.try_enqueue(entry)
            if reason is None:
                queued.append(entry)
            else:
                assert reason  # rejection always carries a reason
        served = []
        position = 0
        for _ in range(10_000):
            if queue.depth == 0:
                break
            slot = cycle.slot_at(position)
            selection = queue.select(slot, structure, service_time)
            quota = config.default_quota
            per_tenant = {}
            for entry in selection.entries:
                # Slot discipline.
                assert slot.accepts(entry.request.pattern)
                per_tenant[entry.tenant] = per_tenant.get(entry.tenant, 0) + 1
            # Quota and multiplexing discipline.
            assert all(
                count <= quota.max_per_slot for count in per_tenant.values()
            )
            assert len(selection.structures) <= slot.max_multiplexing
            assert len(set(selection.structures)) == len(selection.structures)
            # Window discipline (single-oversize allowance).
            expected = sum(
                service_time(e.request) for e in selection.entries
            )
            assert selection.consumed_s == pytest.approx(expected)
            if selection.count > 1:
                assert selection.consumed_s <= slot.time_window_s * (1 + 1e-9)
            # In-occurrence admission order is global FIFO.
            sequences = [e.sequence for e in selection.entries]
            assert sequences == sorted(sequences)
            served.extend(selection.entries)
            position += 1
        else:
            pytest.fail("queue did not drain within 10k occurrences")
        # Conservation: everything queued is served exactly once.
        assert sorted(e.sequence for e in served) == sorted(
            e.sequence for e in queued
        )
        # FIFO per (tenant, structure) across the whole run.
        order: dict = {}
        for entry in served:
            key = (entry.tenant, structure(entry.request))
            order.setdefault(key, []).append(entry.sequence)
        for sequences in order.values():
            assert sequences == sorted(sequences)
