"""Metrics registry: instruments, memoization, and the disabled path."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    metric_counter,
    metric_gauge,
    metric_histogram,
    set_active_metrics,
    use_metrics,
)
from repro.observability.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("bytes")
        c.inc(100)
        c.inc(28)
        assert c.value == 128
        assert c.updates == 2

    def test_default_increment_is_one(self):
        c = Counter("events")
        c.inc()
        assert c.value == 1.0

    def test_rejects_negative(self):
        c = Counter("bytes")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("bytes")
        c.inc(7)
        assert c.snapshot() == {"value": 7.0, "updates": 1}


class TestGauge:
    def test_set_keeps_last_value(self):
        g = Gauge("occupancy")
        g.set(3)
        g.set(1)
        assert g.value == 1
        assert g.updates == 2

    def test_max_keeps_running_maximum(self):
        g = Gauge("peak")
        g.max(2)
        g.max(9)
        g.max(4)
        assert g.value == 9


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("phase_s")
        for v in (1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(2.5)

    def test_percentile_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)

    def test_percentile_bounds_checked(self):
        h = Histogram("x")
        h.observe(1.0)
        with pytest.raises(ObservabilityError):
            h.percentile(101)

    def test_empty_histogram(self):
        h = Histogram("x")
        assert h.snapshot() == {"count": 0}
        assert h.percentile(50) is None
        assert h.mean is None


class TestRegistry:
    def test_instruments_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError, match="different kind"):
            reg.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ObservabilityError, match="non-empty"):
            MetricsRegistry().counter("")

    def test_snapshot_is_sorted_and_kinded(self):
        reg = MetricsRegistry()
        reg.counter("b.total").inc(2)
        reg.gauge("a.peak").set(5)
        reg.histogram("c.dist").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["b.total", "a.peak", "c.dist"]
        assert snap["b.total"] == {"kind": "counter", "value": 2.0,
                                   "updates": 1}
        assert snap["a.peak"]["kind"] == "gauge"
        assert snap["c.dist"]["kind"] == "histogram"

    def test_disabled_registry_hands_out_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_COUNTER
        assert reg.gauge("a") is NULL_GAUGE
        assert reg.histogram("a") is NULL_HISTOGRAM
        assert reg.snapshot() == {}


class TestActiveRegistry:
    def test_helpers_return_null_singletons_when_off(self):
        assert active_metrics() is None
        assert metric_counter("x") is NULL_COUNTER
        assert metric_gauge("x") is NULL_GAUGE
        assert metric_histogram("x") is NULL_HISTOGRAM

    def test_null_instruments_absorb_updates(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(1)
        NULL_GAUGE.max(2)
        NULL_HISTOGRAM.observe(3.0)
        # No state to assert — the point is nothing raises and nothing
        # is recorded anywhere.

    def test_use_metrics_scopes_the_registry(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert active_metrics() is reg
            metric_counter("scoped").inc()
        assert active_metrics() is None
        assert reg.counters["scoped"].value == 1

    def test_set_active_metrics_returns_previous(self):
        reg = MetricsRegistry()
        assert set_active_metrics(reg) is None
        try:
            assert set_active_metrics(None) is reg
        finally:
            set_active_metrics(None)
