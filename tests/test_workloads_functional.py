"""Distributed workload implementations vs single-node references.

Every Table VII workload's distributed algorithm runs through real
collective backends on small instances and must match its numpy
reference exactly — this is what makes the timing models trustworthy
(they time algorithms that demonstrably compute the right answers).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import registry
from repro.config import small_test_system
from repro.workloads import (
    distributed_bfs,
    distributed_connected_components,
    distributed_embedding_lookup,
    distributed_gemv,
    distributed_hash_join,
    distributed_mlp,
    distributed_ntt_2d,
    distributed_spmv,
    embedding_reference,
    join_reference,
    mlp_reference,
    ntt_reference,
    bfs_reference,
    connected_components_reference,
    random_coo_matrix,
    rmat_graph,
    spmv_reference,
    MODULUS,
    root_of_unity,
)
from repro.errors import WorkloadError


@pytest.fixture(params=["P", "B", "S"])
def backend(request, tiny_machine):
    """Run each functional check through PIMnet and two host backends."""
    return registry.create(request.param, tiny_machine)


class TestGemv:
    def test_matches_numpy(self, backend, rng):
        W = rng.integers(-9, 9, (32, 64)).astype(np.int64)
        x = rng.integers(-9, 9, 64).astype(np.int64)
        assert np.array_equal(distributed_gemv(W, x, backend), W @ x)

    def test_cols_must_divide(self, backend, rng):
        W = rng.integers(0, 3, (16, 12)).astype(np.int64)
        with pytest.raises(WorkloadError):
            distributed_gemv(W, np.zeros(12, dtype=np.int64), backend)

    def test_rows_must_divide(self, backend, rng):
        W = rng.integers(0, 3, (12, 16)).astype(np.int64)
        with pytest.raises(WorkloadError):
            distributed_gemv(W, np.zeros(16, dtype=np.int64), backend)


class TestMlp:
    def test_three_layer_forward(self, backend, rng):
        layers = [
            rng.integers(-3, 3, (16, 16)).astype(np.int64) for _ in range(3)
        ]
        x = rng.integers(0, 4, 16).astype(np.int64)
        assert np.array_equal(
            distributed_mlp(layers, x, backend), mlp_reference(layers, x)
        )

    def test_rectifier_applied(self, backend):
        layers = [np.full((8, 8), -1, dtype=np.int64)]
        x = np.ones(8, dtype=np.int64)
        out = distributed_mlp(layers, x, backend)
        assert np.all(out == 0)


class TestSpmv:
    def test_matches_reference(self, backend, rng):
        coo = random_coo_matrix(64, 64, 400, seed=9)
        x = rng.integers(0, 9, 64).astype(np.int64)
        result = distributed_spmv(coo, 64, 64, x, backend)
        assert np.array_equal(result, spmv_reference(coo, 64, x))

    def test_empty_columns_are_fine(self, backend):
        r = np.array([0, 1], dtype=np.int64)
        c = np.array([0, 0], dtype=np.int64)
        v = np.array([2, 3], dtype=np.int64)
        x = np.ones(8, dtype=np.int64)
        result = distributed_spmv((r, c, v), 8, 8, x, backend)
        expected = np.zeros(8, dtype=np.int64)
        expected[0], expected[1] = 2, 3
        assert np.array_equal(result, expected)


class TestNtt:
    def test_roots_of_unity(self):
        w = root_of_unity(64)
        assert pow(w, 64, MODULUS) == 1
        assert pow(w, 32, MODULUS) != 1

    def test_reference_matches_naive_dft(self, rng):
        n = 16
        x = rng.integers(0, MODULUS, n).astype(np.int64)
        w = root_of_unity(n)
        naive = np.array(
            [
                sum(int(x[i]) * pow(w, i * k, MODULUS) for i in range(n))
                % MODULUS
                for k in range(n)
            ],
            dtype=np.int64,
        )
        assert np.array_equal(ntt_reference(x), naive)

    def test_distributed_2d_matches_reference(self, backend, rng):
        n = backend.num_dpus
        x = rng.integers(0, MODULUS, n * n).astype(np.int64)
        assert np.array_equal(
            distributed_ntt_2d(x, backend), ntt_reference(x)
        )

    def test_size_must_be_square_of_dpus(self, backend, rng):
        with pytest.raises(WorkloadError):
            distributed_ntt_2d(np.zeros(10, dtype=np.int64), backend)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(WorkloadError):
            ntt_reference(np.zeros(12, dtype=np.int64))


class TestEmbedding:
    def test_pooled_lookup_matches(self, backend, rng):
        table = rng.integers(0, 50, (64, 8)).astype(np.int64)
        indices = rng.integers(0, 64, (8, 5))
        assert np.array_equal(
            distributed_embedding_lookup(table, indices, backend),
            embedding_reference(table, indices),
        )

    def test_batch_dim_divisibility_checked(self, backend, rng):
        table = rng.integers(0, 5, (16, 3)).astype(np.int64)
        indices = rng.integers(0, 16, (3, 2))
        with pytest.raises(WorkloadError):
            distributed_embedding_lookup(table, indices, backend)


class TestJoin:
    def test_match_count(self, backend, rng):
        left = rng.choice(5000, 300, replace=False)
        right = rng.choice(5000, 200, replace=False)
        assert distributed_hash_join(left, right, backend) == join_reference(
            left, right
        )

    def test_disjoint_keys_give_zero(self, backend):
        left = np.arange(0, 100, dtype=np.int64)
        right = np.arange(1000, 1100, dtype=np.int64)
        assert distributed_hash_join(left, right, backend) == 0

    def test_full_overlap(self, backend):
        keys = np.arange(64, dtype=np.int64)
        assert distributed_hash_join(keys, keys, backend) == 64


class TestGraphWorkloads:
    def test_distributed_bfs(self, backend):
        graph = rmat_graph(128, 400, seed=21)
        assert np.array_equal(
            distributed_bfs(graph, 0, backend), bfs_reference(graph, 0)
        )

    def test_distributed_cc(self, backend):
        graph = rmat_graph(96, 300, seed=22)
        assert np.array_equal(
            distributed_connected_components(graph, backend),
            connected_components_reference(graph),
        )


def _permuted_graph(graph, perm):
    """The same graph with vertices relabeled by ``perm``."""
    from repro.workloads import Graph

    v = graph.num_vertices
    heads = perm[
        np.repeat(np.arange(v, dtype=np.int64), np.diff(graph.indptr))
    ]
    tails = perm[graph.indices]
    order = np.lexsort((tails, heads))
    heads, tails = heads[order], tails[order]
    indptr = np.zeros(v + 1, dtype=np.int64)
    np.add.at(indptr, heads + 1, 1)
    return Graph(v, np.cumsum(indptr), tails)


class TestWorkloadProperties:
    """Hypothesis property suite for the pre-existing workload tier."""

    @given(
        num_vertices=st.integers(min_value=8, max_value=48),
        edge_factor=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_bfs_level_monotonicity(self, num_vertices, edge_factor, seed):
        """Depths step by at most one across any edge, and every
        positive-depth vertex has a parent exactly one level up."""
        backend = registry.create("P", small_test_system())
        graph = rmat_graph(num_vertices, edge_factor * num_vertices, seed=seed)
        depth = distributed_bfs(graph, 0, backend)
        assert depth[0] == 0
        for v in range(num_vertices):
            if depth[v] < 0:
                continue
            neighbor_depths = depth[graph.neighbors(v)]
            reached = neighbor_depths[neighbor_depths >= 0]
            if reached.size:
                assert np.all(np.abs(reached - depth[v]) <= 1)
            if depth[v] > 0:
                assert (neighbor_depths == depth[v] - 1).any()

    @given(
        num_vertices=st.integers(min_value=8, max_value=40),
        edge_factor=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_cc_partition_invariant_under_relabeling(
        self, num_vertices, edge_factor, seed
    ):
        """Relabeling vertices permutes the labels but must induce the
        identical component partition."""
        backend = registry.create("P", small_test_system())
        graph = rmat_graph(num_vertices, edge_factor * num_vertices, seed=seed)
        labels = distributed_connected_components(graph, backend)

        perm = np.random.default_rng(seed + 7).permutation(
            num_vertices
        ).astype(np.int64)
        relabeled = distributed_connected_components(
            _permuted_graph(graph, perm), backend
        )
        # Pull the permuted labels back into the original vertex order.
        pulled = relabeled[perm]
        same_before = labels[:, None] == labels[None, :]
        same_after = pulled[:, None] == pulled[None, :]
        assert np.array_equal(same_before, same_after)

    @given(
        rows=st.integers(min_value=8, max_value=64),
        batch=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_embedding_lookup_round_trip(self, rows, batch, seed):
        """Pooling width 1 makes the lookup a pure gather: the pooled
        output must round-trip the table rows bit-exactly."""
        backend = registry.create("P", small_test_system())
        rng = np.random.default_rng(seed)
        table = rng.integers(-100, 100, (rows, 8)).astype(np.int64)
        indices = rng.integers(0, rows, (batch, 1))
        got = distributed_embedding_lookup(table, indices, backend)
        assert np.array_equal(got, table[indices[:, 0]])
        assert np.array_equal(got, embedding_reference(table, indices))
