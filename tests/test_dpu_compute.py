"""Phase-level compute model and its consistency with the interpreter."""

import numpy as np
import pytest

from repro.config import DpuConfig, Op, gddr6_aim_profile, upmem_profile
from repro.dpu import (
    ComputeModel,
    Dpu,
    OpCounts,
    vector_add_kernel,
)
from repro.errors import WorkloadError


@pytest.fixture
def model() -> ComputeModel:
    return ComputeModel(dpu=DpuConfig(), profile=upmem_profile())


class TestOpCounts:
    def test_merge_adds_counts(self):
        a = OpCounts(counts={Op.INT_ADD: 10}, mram_read_bytes=100)
        b = OpCounts(counts={Op.INT_ADD: 5, Op.INT_MUL: 2})
        merged = a.merged(b)
        assert merged.counts[Op.INT_ADD] == 15
        assert merged.counts[Op.INT_MUL] == 2
        assert merged.mram_read_bytes == 100

    def test_scaled(self):
        work = OpCounts(counts={Op.INT_ADD: 4}, mram_write_bytes=8)
        scaled = work.scaled(2.5)
        assert scaled.counts[Op.INT_ADD] == 10
        assert scaled.mram_write_bytes == 20

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            OpCounts(counts={Op.INT_ADD: -1})

    def test_negative_scale_rejected(self):
        with pytest.raises(WorkloadError):
            OpCounts(counts={}).scaled(-1)

    def test_arithmetic_ops_excludes_memory(self):
        work = OpCounts(
            counts={Op.INT_ADD: 5, Op.LOAD: 100, Op.INT_MUL: 3}
        )
        assert work.arithmetic_ops == 8


class TestComputeModel:
    def test_mul_heavy_phase_slower(self, model):
        adds = OpCounts(counts={Op.INT_ADD: 10_000})
        muls = OpCounts(counts={Op.INT_MUL: 10_000})
        assert model.phase_time_s(muls) > 10 * model.phase_time_s(adds)

    def test_dma_bound_phase(self, model):
        work = OpCounts(
            counts={Op.INT_ADD: 10}, mram_read_bytes=64 * 1024 * 1024
        )
        t = model.phase_time_s(work)
        assert t >= 64 * 1024 * 1024 / model.dma_bandwidth_bytes_per_s

    def test_memory_scale_speeds_up_dma(self):
        work = OpCounts(counts={}, mram_read_bytes=1e9)
        slow = ComputeModel(dpu=DpuConfig(), profile=upmem_profile())
        fast = ComputeModel(dpu=DpuConfig(), profile=gddr6_aim_profile())
        assert fast.phase_time_s(work) < slow.phase_time_s(work) / 10

    def test_tasklet_count_validated(self):
        with pytest.raises(WorkloadError):
            ComputeModel(
                dpu=DpuConfig(), profile=upmem_profile(), num_tasklets=0
            )

    def test_peak_ops_per_s(self, model):
        assert model.peak_ops_per_s() == pytest.approx(350e6)


class TestModelVsInterpreter:
    def test_vector_add_slot_prediction(self, rng):
        """The analytic model's issue slots track the interpreter's.

        The kernel executes ~9 instructions per element (index math,
        loads, add, store, loop control); the model counts the abstract
        ops (2 loads, 1 add, 1 store).  The interpreter's total must lie
        within a small constant factor of the abstract count — this
        pins the model's scale to executable ground truth.
        """
        n = 128
        dpu = Dpu()
        a = rng.integers(0, 100, n).astype(np.uint32)
        dpu.memory.wram.write_array(0, a)
        dpu.memory.wram.write_array(2048, a)
        result = dpu.run(
            vector_add_kernel(0, 2048, 4096),
            num_tasklets=16,
            init_registers={
                t: {1: 16, 2: n} for t in range(16)
            },
        )
        model = ComputeModel(
            dpu=DpuConfig(), profile=upmem_profile(), num_tasklets=16
        )
        abstract = OpCounts(
            counts={Op.LOAD: n * 2, Op.INT_ADD: n, Op.STORE: n}
        )
        predicted_slots = model.issue_slots(abstract)
        assert predicted_slots <= result.issue_slots <= 4 * predicted_slots
