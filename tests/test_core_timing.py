"""Closed-form PIMnet timing vs schedule-derived link-load timing.

The closed-form model (used by every experiment) and the transfer-level
schedule timing are two independent derivations of the same physics;
they must agree essentially exactly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.collectives import Collective, CollectiveRequest
from repro.config import PimSystemConfig, pimnet_sim_system
from repro.core import (
    PimnetBackend,
    Shape,
    Tier,
    build_schedule,
    schedule_timing,
)
from repro.errors import BackendError

SHAPES = [(8, 8, 4), (4, 4, 2), (2, 2, 2), (8, 8, 1), (1, 4, 4), (2, 8, 4)]
PATTERNS = [
    Collective.ALL_REDUCE,
    Collective.REDUCE_SCATTER,
    Collective.ALL_TO_ALL,
]


def machine_for(b, c, r):
    return replace(
        pimnet_sim_system(),
        system=PimSystemConfig(
            banks_per_chip=b, chips_per_rank=c, ranks_per_channel=r
        ),
    )


@pytest.mark.parametrize("shape_tuple", SHAPES, ids=str)
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("elems_per_dpu", [16, 256])
def test_closed_form_matches_schedule(shape_tuple, pattern, elems_per_dpu):
    b, c, r = shape_tuple
    machine = machine_for(b, c, r)
    backend = PimnetBackend(machine)
    n = b * c * r
    e = n * elems_per_dpu
    request = CollectiveRequest(pattern, e * 8, dtype=np.dtype(np.int64))
    closed = backend.model._tier_times(request)
    derived = schedule_timing(
        build_schedule(pattern, Shape(b, c, r), e), machine.pimnet, itemsize=8
    )
    for closed_value, derived_value in (
        (closed.bank_s, derived[Tier.BANK]),
        (closed.chip_s, derived[Tier.CHIP]),
        (closed.rank_s, derived[Tier.RANK]),
    ):
        if max(closed_value, derived_value) == 0:
            continue
        rel = abs(closed_value - derived_value) / max(
            closed_value, derived_value
        )
        assert rel < 0.01, (closed_value, derived_value)


class TestBreakdownStructure:
    def test_sync_counts_phases(self, machine):
        backend = PimnetBackend(machine)
        ar = backend.timing(CollectiveRequest(Collective.ALL_REDUCE, 1024))
        rs = backend.timing(
            CollectiveRequest(Collective.REDUCE_SCATTER, 2048)
        )
        # AllReduce has twice the phase boundaries of Reduce-Scatter
        assert ar.sync_s == pytest.approx(2 * rs.sync_s)

    def test_mem_staging_kicks_in_above_wram(self, machine):
        backend = PimnetBackend(machine)
        small = backend.timing(CollectiveRequest(Collective.ALL_REDUCE, 8 * 1024))
        large = backend.timing(
            CollectiveRequest(Collective.ALL_REDUCE, 128 * 1024)
        )
        assert small.mem_s == 0
        assert large.mem_s > 0

    def test_alltoall_stages_twice_the_payload(self, machine):
        backend = PimnetBackend(machine)
        ar = backend.timing(CollectiveRequest(Collective.ALL_REDUCE, 48 * 1024))
        a2a = backend.timing(
            CollectiveRequest(Collective.ALL_TO_ALL, 48 * 1024)
        )
        # 48 KB fits WRAM once but not twice (A2A needs in + out)
        assert ar.mem_s == 0
        assert a2a.mem_s > 0

    def test_single_bank_scope_has_no_network_time(self):
        machine = machine_for(1, 1, 1)
        backend = PimnetBackend(machine)
        t = backend.timing(CollectiveRequest(Collective.ALL_REDUCE, 1024))
        assert t.inter_bank_s == 0
        assert t.inter_chip_s == 0
        assert t.inter_rank_s == 0

    def test_all_patterns_have_positive_time(self, machine):
        backend = PimnetBackend(machine)
        for pattern in Collective:
            t = backend.timing(CollectiveRequest(pattern, 32 * 1024))
            assert t.total_s > 0, pattern


class TestTierProportions:
    def test_allreduce_is_interbank_dominated(self, machine):
        """At the default bandwidths the 0.7 GB/s rings dominate AR."""
        backend = PimnetBackend(machine)
        t = backend.timing(CollectiveRequest(Collective.ALL_REDUCE, 32 * 1024))
        assert t.inter_bank_s > t.inter_chip_s > t.inter_rank_s

    def test_alltoall_is_interrank_dominated(self, machine):
        """A2A's global traffic is bus-bound (Section III-B)."""
        backend = PimnetBackend(machine)
        t = backend.timing(CollectiveRequest(Collective.ALL_TO_ALL, 32 * 1024))
        assert t.inter_rank_s > t.inter_chip_s > t.inter_bank_s

    def test_unicast_efficiency_applies_to_a2a_only(self, machine):
        fast = replace(
            machine,
            pimnet=replace(machine.pimnet, inter_rank_unicast_efficiency=1.0),
        )
        slow_backend = PimnetBackend(machine)
        fast_backend = PimnetBackend(fast)
        a2a = CollectiveRequest(Collective.ALL_TO_ALL, 32 * 1024)
        ar = CollectiveRequest(Collective.ALL_REDUCE, 32 * 1024)
        assert fast_backend.timing(a2a).inter_rank_s < (
            slow_backend.timing(a2a).inter_rank_s
        )
        assert fast_backend.timing(ar).inter_rank_s == pytest.approx(
            slow_backend.timing(ar).inter_rank_s
        )
