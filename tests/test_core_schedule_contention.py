"""Contention-freedom invariants: the property PIMnet's design rests on.

Because communication is statically scheduled, within any step no two
transfers may claim the same directed resource: a ring link, a crossbar
input/output port pair, or (for broadcast-deduped payloads) the bus more
than once per payload.  These tests verify the *generated* schedules
actually satisfy the no-buffers/no-arbitration premise of Table III.
"""

import pytest

from repro.core import (
    Shape,
    Tier,
    allreduce_schedule,
    alltoall_schedule,
    broadcast_schedule,
    reduce_scatter_schedule,
)

SHAPES = [Shape(8, 8, 4), Shape(4, 4, 2), Shape(2, 2, 2), Shape(8, 4, 2)]
GENERATORS = [
    allreduce_schedule,
    reduce_scatter_schedule,
    alltoall_schedule,
]


def _bank_links_used(shape, transfer):
    """Directed ring links (rank, chip, position, direction) of a hop."""
    r, c, b_src = shape.coords(transfer.src)
    _, _, b_dst = shape.coords(transfer.dst)
    east = (b_dst - b_src) % shape.banks
    west = shape.banks - east
    direction = +1 if east <= west else -1
    hops = min(east, west)
    position = b_src
    links = []
    for _ in range(hops):
        links.append((r, c, position, direction))
        position = (position + direction) % shape.banks
    return links


@pytest.mark.parametrize("shape", SHAPES, ids=str)
@pytest.mark.parametrize("generator", GENERATORS)
class TestRingSteps:
    def test_ring_rs_ag_steps_use_each_link_once(self, shape, generator):
        """Ring RS/AG steps place exactly one segment per directed link."""
        sched = generator(shape, shape.num_dpus * 4)
        for phase in sched.phases:
            if phase.tier is not Tier.BANK or phase.algorithm != "ring":
                continue
            if sched.pattern.value == "all_to_all":
                continue  # A2A bank steps are multi-hop by construction
            for step in phase.steps:
                seen = set()
                for t in step.transfers:
                    for link in _bank_links_used(shape, t):
                        assert link not in seen, (
                            f"link {link} used twice in {phase.name}"
                        )
                        seen.add(link)


@pytest.mark.parametrize("shape", SHAPES, ids=str)
class TestCrossbarSteps:
    def test_chip_permutation_is_conflict_free(self, shape):
        """Each A2A chip step connects every chip to exactly one partner."""
        sched = alltoall_schedule(shape, shape.num_dpus * 4)
        for phase in sched.phases:
            if phase.tier is not Tier.CHIP:
                continue
            for step in phase.steps:
                # (rank, src_chip) -> set of destination chips
                partners: dict[tuple, set] = {}
                for t in step.transfers:
                    r, c_src, _ = shape.coords(t.src)
                    _, c_dst, _ = shape.coords(t.dst)
                    partners.setdefault((r, c_src), set()).add(c_dst)
                for (r, c_src), dsts in partners.items():
                    assert len(dsts) == 1, (
                        f"chip {c_src} targets {dsts} in one step"
                    )

    def test_chip_ring_steps_single_neighbor(self, shape):
        sched = allreduce_schedule(shape, shape.num_dpus * 4)
        for phase in sched.phases:
            if phase.tier is not Tier.CHIP:
                continue
            for step in phase.steps:
                for t in step.transfers:
                    r1, c1, b1 = shape.coords(t.src)
                    r2, c2, b2 = shape.coords(t.dst)
                    assert r1 == r2 and b1 == b2
                    assert c2 == (c1 + 1) % shape.chips


@pytest.mark.parametrize("shape", SHAPES, ids=str)
class TestTierLocality:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_transfers_stay_within_their_tier(self, shape, generator):
        """bank steps never cross chips; chip steps never cross ranks."""
        sched = generator(shape, shape.num_dpus * 4)
        for phase in sched.phases:
            for step in phase.steps:
                for t in step.transfers:
                    r1, c1, _ = shape.coords(t.src)
                    r2, c2, _ = shape.coords(t.dst)
                    if phase.tier is Tier.BANK:
                        assert (r1, c1) == (r2, c2)
                    elif phase.tier is Tier.CHIP:
                        assert r1 == r2
                    elif phase.tier is Tier.LOCAL:
                        assert t.src == t.dst


@pytest.mark.parametrize("shape", SHAPES, ids=str)
class TestConservation:
    def test_allreduce_moves_expected_bytes(self, shape):
        """Total ring-RS traffic equals the analytic (n-1)/n * payload."""
        e = shape.num_dpus * 8
        sched = allreduce_schedule(shape, e)
        for phase in sched.phases:
            if phase.name != "bank-RS":
                continue
            total = sum(
                t.length for s in phase.steps for t in s.transfers
            )
            expected = (
                (shape.banks - 1)
                * (e // shape.banks)
                * shape.chips
                * shape.ranks
                * shape.banks
                // shape.banks
            ) * shape.banks // shape.banks
            # per chip: B transfers of seg per step, (B-1) steps
            per_chip = (shape.banks - 1) * shape.banks * (e // shape.banks)
            assert total == per_chip * shape.chips * shape.ranks

    def test_alltoall_delivers_every_chunk_once(self, shape):
        e = shape.num_dpus * 4
        chunk = e // shape.num_dpus
        sched = alltoall_schedule(shape, e)
        delivered: dict[tuple, int] = {}
        for phase in sched.phases:
            for step in phase.steps:
                for t in step.transfers:
                    key = (t.dst, t.dst_offset)
                    delivered[key] = delivered.get(key, 0) + 1
        # every (dst, src-chunk) pair delivered exactly once
        assert len(delivered) == shape.num_dpus * shape.num_dpus
        assert all(v == 1 for v in delivered.values())
        assert all(off % chunk == 0 for (_, off) in delivered)


class TestBroadcastStructure:
    def test_rank_phase_dedupes_on_bus(self):
        """Rank-tier broadcast transfers share source payloads."""
        shape = Shape(2, 2, 4)
        sched = broadcast_schedule(shape, 8, root=0)
        rank_phase = [p for p in sched.phases if p.tier is Tier.RANK][0]
        assert rank_phase.algorithm == "broadcast"
        step = rank_phase.steps[0]
        sources = {(t.src, t.src_offset, t.length) for t in step.transfers}
        # one payload per chip, each serving ranks-1 destinations
        assert len(step.transfers) == len(sources) * (shape.ranks - 1)
