"""Closed-form resilience engine: statuses, costs, and the zero-fault
no-op guarantee."""

import pytest

from repro.collectives import COLLECTIVE_STATUSES
from repro.collectives.backend import registry
from repro.collectives.patterns import Collective, CollectiveRequest
from repro.config import FaultModelConfig, small_test_system
from repro.faults import FaultSet, collective_under_faults

PAYLOAD = 1 << 16


@pytest.fixture
def machine():
    return small_test_system()


def base_time(machine, payload=PAYLOAD):
    bk = registry.create("P", machine)
    return bk.timing(
        CollectiveRequest(Collective("all_reduce"), payload)
    ).total_s


class TestZeroFaultNoOp:
    def test_empty_model_reproduces_backend_timing_exactly(self, machine):
        result = collective_under_faults(
            machine, FaultModelConfig(), seed=0, payload_bytes=PAYLOAD
        )
        assert result.status == "completed"
        assert result.retries == 0
        assert result.fault_time_s == 0.0
        assert result.critical_node == ""
        assert result.time_s == base_time(machine)

    def test_explicit_empty_fault_set_is_a_no_op(self, machine):
        result = collective_under_faults(
            machine,
            FaultModelConfig(bank_straggler_rate=1.0),
            seed=0,
            payload_bytes=PAYLOAD,
            fault_set=FaultSet(events=()),
        )
        assert result.status == "completed"
        assert result.time_s == base_time(machine)


class TestDeterminism:
    def test_same_inputs_same_result(self, machine):
        model = FaultModelConfig(
            bank_straggler_rate=0.5,
            straggler_severity=3.0,
            flit_corruption_rate=0.001,
        )
        a = collective_under_faults(machine, model, 7, PAYLOAD)
        b = collective_under_faults(machine, model, 7, PAYLOAD)
        assert a == b


class TestStragglers:
    def test_straggler_degrades_and_names_the_culprit(self, machine):
        model = FaultModelConfig(
            bank_straggler_rate=1.0, straggler_severity=4.0
        )
        result = collective_under_faults(machine, model, 1, PAYLOAD)
        assert result.status == "degraded"
        assert result.time_s > base_time(machine)
        assert result.fault_time_s > 0
        assert result.critical_node.startswith("bank:")

    def test_critical_node_is_the_slowest_straggler(self, machine):
        model = FaultModelConfig(
            bank_straggler_rate=1.0, straggler_severity=4.0
        )
        result = collective_under_faults(machine, model, 1, PAYLOAD)
        from repro.faults import sample_fault_set

        fault_set = sample_fault_set(model, machine.system, 1)
        worst = max(
            sorted(fault_set.straggler_multipliers),
            key=lambda n: fault_set.straggler_multipliers[n],
        )
        assert result.critical_node == worst


class TestAbort:
    def test_dead_bank_aborts_with_detection_cost(self, machine):
        model = FaultModelConfig()
        result = collective_under_faults(
            machine, model, 0, PAYLOAD, targets=("bank:0:0:1",)
        )
        assert result.status == "aborted"
        assert not result.completed
        assert result.critical_node == "bank:0:0:1"
        assert result.retries == model.max_retries
        detection = (model.max_retries + 1) * model.sync_timeout_s
        assert result.time_s >= base_time(machine) + detection

    def test_failed_chip_link_aborts(self, machine):
        result = collective_under_faults(
            machine, FaultModelConfig(), 0, PAYLOAD, targets=("chip:1:1",)
        )
        assert result.status == "aborted"
        assert result.critical_node == "chip:1:1"


class TestCostModels:
    def test_bus_stall_adds_to_inter_rank_tier(self, machine):
        model = FaultModelConfig(
            rank_bus_stall_rate=1.0, rank_bus_stall_s=5e-6
        )
        clean = collective_under_faults(
            machine, FaultModelConfig(), 0, PAYLOAD
        )
        stalled = collective_under_faults(machine, model, 0, PAYLOAD)
        extra = (
            stalled.breakdown.inter_rank_s - clean.breakdown.inter_rank_s
        )
        assert extra == pytest.approx(5e-6)

    def test_corruption_charges_retries_on_inter_bank_tier(self, machine):
        model = FaultModelConfig(flit_corruption_rate=0.01)
        result = collective_under_faults(machine, model, 3, PAYLOAD)
        assert result.retries > 0
        assert result.status == "degraded"
        assert (
            result.breakdown.inter_bank_s
            > collective_under_faults(
                machine, FaultModelConfig(), 3, PAYLOAD
            ).breakdown.inter_bank_s
        )

    def test_degraded_chip_link_stretches_inter_chip_tier(self, machine):
        model = FaultModelConfig(
            chip_link_degrade_rate=1.0, chip_link_degrade_factor=3.0
        )
        clean = collective_under_faults(
            machine, FaultModelConfig(), 0, PAYLOAD
        )
        slow = collective_under_faults(machine, model, 0, PAYLOAD)
        assert slow.breakdown.inter_chip_s == pytest.approx(
            3.0 * clean.breakdown.inter_chip_s
        )


class TestMonotonicity:
    def test_time_non_decreasing_in_rate_factor(self, machine):
        base = FaultModelConfig(
            bank_straggler_rate=0.2,
            straggler_severity=2.0,
            rank_bus_stall_rate=0.3,
            flit_corruption_rate=0.002,
        )
        times = [
            collective_under_faults(
                machine, base.scaled(f), 5, PAYLOAD
            ).time_s
            for f in (0.0, 0.5, 1.0, 2.0)
        ]
        assert times == sorted(times)


class TestStatusVocabulary:
    def test_engine_only_emits_known_statuses(self, machine):
        model = FaultModelConfig(
            bank_fail_stop_rate=0.3,
            bank_straggler_rate=0.3,
            straggler_severity=2.0,
        )
        for seed in range(10):
            result = collective_under_faults(machine, model, seed, PAYLOAD)
            assert result.status in COLLECTIVE_STATUSES
