"""Exporters: Chrome trace-event JSON, tree dumps, metrics files."""

import csv
import io
import json

import pytest

from repro.observability import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    format_span_tree,
    metrics_to_csv,
    metrics_to_json,
    metrics_to_prometheus,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)


def _sim_tracer() -> Tracer:
    """A small forest with sim windows: root covering two phases."""
    tracer = Tracer()
    with tracer.span("collective", sim_start_s=0.0, sim_end_s=3e-3,
                     backend="P") as root:
        tracer.record("bank-RS", 0.0, 1e-3, category="phase")
        tracer.record("chip-RS", 1e-3, 3e-3, category="phase")
    assert root.has_sim_window
    return tracer


def _x_events(events):
    return [e for e in events if e["ph"] == "X"]


class TestChromeTraceEvents:
    def test_sim_windows_become_microsecond_events(self):
        events = chrome_trace_events(_sim_tracer())
        complete = {e["name"]: e for e in _x_events(events)}
        assert set(complete) == {"collective", "bank-RS", "chip-RS"}
        assert complete["bank-RS"]["ts"] == pytest.approx(0.0)
        assert complete["bank-RS"]["dur"] == pytest.approx(1000.0)
        assert complete["chip-RS"]["ts"] == pytest.approx(1000.0)
        assert complete["chip-RS"]["dur"] == pytest.approx(2000.0)

    def test_every_event_has_the_required_keys(self):
        for event in _x_events(chrome_trace_events(_sim_tracer())):
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_metadata_names_process_and_tracks(self):
        events = chrome_trace_events(_sim_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_nested_children_share_the_parent_track(self):
        events = _x_events(chrome_trace_events(_sim_tracer()))
        tids = {e["name"]: e["tid"] for e in events}
        # Phases nest inside the root's window, so one track suffices.
        assert tids["bank-RS"] == tids["collective"]
        assert tids["chip-RS"] == tids["collective"]

    def test_overlapping_siblings_split_onto_tracks(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 2.0)
        tracer.record("b", 1.0, 3.0)  # overlaps a but neither nests
        events = _x_events(chrome_trace_events(tracer))
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["a"] != tids["b"]

    def test_sim_clock_drops_wall_only_spans(self):
        tracer = Tracer()
        with tracer.span("wall-only"):
            pass
        tracer.record("simmed", 0.0, 1.0)
        names = {e["name"] for e in _x_events(
            chrome_trace_events(tracer, clock="sim"))}
        assert names == {"simmed"}

    def test_wall_clock_is_relative_to_trace_start(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        events = _x_events(chrome_trace_events(tracer, clock="wall"))
        assert min(e["ts"] for e in events) == pytest.approx(0.0)
        by_name = {e["name"]: e["ts"] for e in events}
        assert by_name["second"] >= by_name["first"]

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError, match="clock"):
            chrome_trace_events(Tracer(), clock="lamport")

    def test_attributes_survive_as_jsonable_args(self):
        tracer = Tracer()
        tracer.record("s", 0.0, 1.0, tier="bank", steps=7,
                      obj=object())
        event = _x_events(chrome_trace_events(tracer))[0]
        assert event["args"]["tier"] == "bank"
        assert event["args"]["steps"] == 7
        assert isinstance(event["args"]["obj"], str)


class TestChromeTraceFile:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sim_tracer(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == to_chrome_trace(_sim_tracer())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["metadata"]["tool"] == "repro.observability"
        assert isinstance(loaded["traceEvents"], list)


class TestSpanTree:
    def test_tree_renders_names_and_sim_windows(self):
        text = format_span_tree(_sim_tracer())
        assert "collective" in text
        assert "|- bank-RS" in text
        assert "`- chip-RS" in text
        assert "sim [" in text
        assert "backend=P" in text

    def test_empty_tracer(self):
        assert format_span_tree(Tracer()) == "(no spans recorded)"


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("noc.flits").inc(128)
    reg.gauge("noc.peak").max(6)
    h = reg.histogram("phase_s")
    h.observe(1.0)
    h.observe(3.0)
    return reg


class TestMetricsDumps:
    def test_json_dump_shape(self):
        dump = metrics_to_json(_sample_registry())
        metrics = dump["metrics"]
        assert metrics["noc.flits"] == {"kind": "counter", "value": 128.0,
                                        "updates": 1}
        assert metrics["phase_s"]["mean"] == pytest.approx(2.0)

    def test_csv_dump_parses_back(self):
        rows = list(csv.DictReader(io.StringIO(
            metrics_to_csv(_sample_registry()))))
        by_name = {r["name"]: r for r in rows}
        assert by_name["noc.flits"]["kind"] == "counter"
        assert float(by_name["noc.flits"]["value"]) == 128.0
        assert by_name["phase_s"]["value"] == ""  # n/a for histograms
        assert float(by_name["phase_s"]["count"]) == 2

    def test_write_metrics_picks_format_from_suffix(self, tmp_path):
        reg = _sample_registry()
        csv_path = tmp_path / "m.csv"
        json_path = tmp_path / "m.json"
        write_metrics(reg, str(csv_path))
        write_metrics(reg, str(json_path))
        assert csv_path.read_text().startswith("name,kind,")
        assert json.loads(json_path.read_text()) == metrics_to_json(reg)


class TestExporterEdgeCases:
    def test_empty_tracer_yields_a_valid_empty_chrome_trace(self):
        trace = to_chrome_trace(Tracer())
        # Still a loadable document: list of events (metadata only, no
        # X events), round-trippable through JSON.
        assert isinstance(trace["traceEvents"], list)
        assert not _x_events(trace["traceEvents"])
        json.dumps(trace)

    def test_open_spans_export_without_crashing(self):
        tracer = Tracer()
        span = tracer.span("still-open", category="test")
        span.__enter__()  # never exited: export happens mid-flight
        events = chrome_trace_events(tracer)
        json.dumps(events)
        names = {e["name"] for e in _x_events(events)}
        # An unfinished span either renders with a best-effort duration
        # or is withheld — both are valid; crashing or emitting
        # malformed events is not.
        assert names <= {"still-open"}
        for event in _x_events(events):
            assert event["dur"] >= 0

    def test_zero_observation_histogram_in_every_format(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("empty_s")  # declared, never observed
        dump = metrics_to_json(reg)
        assert dump["metrics"]["empty_s"]["count"] == 0
        rows = list(csv.DictReader(io.StringIO(metrics_to_csv(reg))))
        assert float(rows[0]["count"]) == 0
        text = metrics_to_prometheus(reg)
        assert 'empty_s_bucket{le="+Inf"} 0' in text
        assert "empty_s_count 0" in text
        assert "empty_s_sum 0" in text


def _parse_prometheus(text: str) -> dict[str, float]:
    """Strict mini-parser for the 0.0.4 text exposition format.

    Enforces the rules the real scraper would: comment lines are
    ``# HELP``/``# TYPE`` only, every sample line is
    ``name[{labels}] value``, names match the legal charset, label
    values are well-quoted with only the three legal escapes.
    """
    import re

    samples: dict[str, float] = {}
    name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert parts[1] in ("HELP", "TYPE"), line
            assert name_re.match(parts[2]), line
            continue
        match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$",
                         line)
        assert match, f"malformed sample line: {line!r}"
        name, labels, value = match.groups()
        if labels:
            body = labels[1:-1]
            label_re = re.compile(
                r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"'
            )
            pos = 0
            while pos < len(body):
                m = label_re.match(body, pos)
                assert m, f"malformed label at {body[pos:]!r} in {line!r}"
                pos = m.end()
                if pos < len(body):
                    assert body[pos] == ",", line
                    pos += 1
        samples[name + (labels or "")] = float(value)
    return samples


class TestPrometheusExport:
    def test_counters_get_the_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("noc.flits").inc(128)
        samples = _parse_prometheus(metrics_to_prometheus(reg))
        assert samples["noc_flits_total"] == 128.0

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("phase_s")
        for v in (0.001, 0.02, 0.02, 1.5):
            hist.observe(v)
        samples = _parse_prometheus(metrics_to_prometheus(reg))
        buckets = sorted(
            (float(k.split('le="')[1].rstrip('"}').replace("+Inf", "inf")),
             v)
            for k, v in samples.items()
            if k.startswith("phase_s_bucket")
        )
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == float("inf")
        assert buckets[-1][1] == 4.0
        assert samples["phase_s_count"] == 4.0
        assert samples["phase_s_sum"] == pytest.approx(1.541)

    def test_labeled_children_share_one_family(self):
        reg = MetricsRegistry()
        reg.counter("req", {"tenant": "CC"}).inc(3)
        reg.counter("req", {"tenant": "EMB"}).inc(5)
        text = metrics_to_prometheus(reg)
        assert text.count("# TYPE req_total counter") == 1
        samples = _parse_prometheus(text)
        assert samples['req_total{tenant="CC"}'] == 3.0
        assert samples['req_total{tenant="EMB"}'] == 5.0

    def test_label_values_escape_backslash_quote_newline(self):
        reg = MetricsRegistry()
        reg.counter(
            "odd", {"path": 'a\\b"c\nd'}
        ).inc()
        text = metrics_to_prometheus(reg)
        samples = _parse_prometheus(text)
        [key] = [k for k in samples if k.startswith("odd_total")]
        assert '\\\\' in key and '\\"' in key and "\\n" in key
        assert "\n" not in key

    def test_metric_and_label_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("noc.link-up", {"link.name": "dq:0"}).inc()
        samples = _parse_prometheus(metrics_to_prometheus(reg))
        assert samples['noc_link_up_total{link_name="dq:0"}'] == 1.0

    def test_unset_gauge_is_omitted_but_set_gauge_emits(self):
        reg = MetricsRegistry()
        reg.gauge("never")
        reg.gauge("peak").max(9)
        samples = _parse_prometheus(metrics_to_prometheus(reg))
        assert "never" not in " ".join(samples)
        assert samples["peak"] == 9.0

    def test_write_metrics_routes_prom_suffix(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "m.prom"
        write_metrics(reg, str(path))
        assert "c_total 1.0" in path.read_text()

    def test_empty_registry_renders_to_empty_document(self):
        assert _parse_prometheus(
            metrics_to_prometheus(MetricsRegistry())
        ) == {}
