"""Exporters: Chrome trace-event JSON, tree dumps, metrics files."""

import csv
import io
import json

import pytest

from repro.observability import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    format_span_tree,
    metrics_to_csv,
    metrics_to_json,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)


def _sim_tracer() -> Tracer:
    """A small forest with sim windows: root covering two phases."""
    tracer = Tracer()
    with tracer.span("collective", sim_start_s=0.0, sim_end_s=3e-3,
                     backend="P") as root:
        tracer.record("bank-RS", 0.0, 1e-3, category="phase")
        tracer.record("chip-RS", 1e-3, 3e-3, category="phase")
    assert root.has_sim_window
    return tracer


def _x_events(events):
    return [e for e in events if e["ph"] == "X"]


class TestChromeTraceEvents:
    def test_sim_windows_become_microsecond_events(self):
        events = chrome_trace_events(_sim_tracer())
        complete = {e["name"]: e for e in _x_events(events)}
        assert set(complete) == {"collective", "bank-RS", "chip-RS"}
        assert complete["bank-RS"]["ts"] == pytest.approx(0.0)
        assert complete["bank-RS"]["dur"] == pytest.approx(1000.0)
        assert complete["chip-RS"]["ts"] == pytest.approx(1000.0)
        assert complete["chip-RS"]["dur"] == pytest.approx(2000.0)

    def test_every_event_has_the_required_keys(self):
        for event in _x_events(chrome_trace_events(_sim_tracer())):
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_metadata_names_process_and_tracks(self):
        events = chrome_trace_events(_sim_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_nested_children_share_the_parent_track(self):
        events = _x_events(chrome_trace_events(_sim_tracer()))
        tids = {e["name"]: e["tid"] for e in events}
        # Phases nest inside the root's window, so one track suffices.
        assert tids["bank-RS"] == tids["collective"]
        assert tids["chip-RS"] == tids["collective"]

    def test_overlapping_siblings_split_onto_tracks(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 2.0)
        tracer.record("b", 1.0, 3.0)  # overlaps a but neither nests
        events = _x_events(chrome_trace_events(tracer))
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["a"] != tids["b"]

    def test_sim_clock_drops_wall_only_spans(self):
        tracer = Tracer()
        with tracer.span("wall-only"):
            pass
        tracer.record("simmed", 0.0, 1.0)
        names = {e["name"] for e in _x_events(
            chrome_trace_events(tracer, clock="sim"))}
        assert names == {"simmed"}

    def test_wall_clock_is_relative_to_trace_start(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        events = _x_events(chrome_trace_events(tracer, clock="wall"))
        assert min(e["ts"] for e in events) == pytest.approx(0.0)
        by_name = {e["name"]: e["ts"] for e in events}
        assert by_name["second"] >= by_name["first"]

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError, match="clock"):
            chrome_trace_events(Tracer(), clock="lamport")

    def test_attributes_survive_as_jsonable_args(self):
        tracer = Tracer()
        tracer.record("s", 0.0, 1.0, tier="bank", steps=7,
                      obj=object())
        event = _x_events(chrome_trace_events(tracer))[0]
        assert event["args"]["tier"] == "bank"
        assert event["args"]["steps"] == 7
        assert isinstance(event["args"]["obj"], str)


class TestChromeTraceFile:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sim_tracer(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == to_chrome_trace(_sim_tracer())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["metadata"]["tool"] == "repro.observability"
        assert isinstance(loaded["traceEvents"], list)


class TestSpanTree:
    def test_tree_renders_names_and_sim_windows(self):
        text = format_span_tree(_sim_tracer())
        assert "collective" in text
        assert "|- bank-RS" in text
        assert "`- chip-RS" in text
        assert "sim [" in text
        assert "backend=P" in text

    def test_empty_tracer(self):
        assert format_span_tree(Tracer()) == "(no spans recorded)"


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("noc.flits").inc(128)
    reg.gauge("noc.peak").max(6)
    h = reg.histogram("phase_s")
    h.observe(1.0)
    h.observe(3.0)
    return reg


class TestMetricsDumps:
    def test_json_dump_shape(self):
        dump = metrics_to_json(_sample_registry())
        metrics = dump["metrics"]
        assert metrics["noc.flits"] == {"kind": "counter", "value": 128.0,
                                        "updates": 1}
        assert metrics["phase_s"]["mean"] == pytest.approx(2.0)

    def test_csv_dump_parses_back(self):
        rows = list(csv.DictReader(io.StringIO(
            metrics_to_csv(_sample_registry()))))
        by_name = {r["name"]: r for r in rows}
        assert by_name["noc.flits"]["kind"] == "counter"
        assert float(by_name["noc.flits"]["value"]) == 128.0
        assert by_name["phase_s"]["value"] == ""  # n/a for histograms
        assert float(by_name["phase_s"]["count"]) == 2

    def test_write_metrics_picks_format_from_suffix(self, tmp_path):
        reg = _sample_registry()
        csv_path = tmp_path / "m.csv"
        json_path = tmp_path / "m.json"
        write_metrics(reg, str(csv_path))
        write_metrics(reg, str(json_path))
        assert csv_path.read_text().startswith("name,kind,")
        assert json.loads(json_path.read_text()) == metrics_to_json(reg)
