"""Fleet metrics: registry folding, SLO wiring, Prometheus round-trip.

The Prometheus block is the satellite contract: the merged ``fleet.*``
families — labeled by tenant and shard — must survive the existing
:func:`metrics_to_prometheus` exposition unchanged: label values escape
per the exposition rules, every histogram series ends with a ``+Inf``
bucket, and the cumulative counts reconcile with ``_count``.
"""

import asyncio
import re

import pytest

from repro.collectives.patterns import Collective, CollectiveRequest
from repro.config import small_test_system
from repro.config.fleet import FleetConfig
from repro.config.service import (
    ServiceConfig,
    TenantQuotaConfig,
    TimeSlotConfig,
)
from repro.fleet import (
    FLEET_COUNTERS,
    LATENCY_METRIC,
    FleetRouter,
    default_fleet_objectives,
    fold_registries,
    shard_label,
    tenant_latency_sketch,
)
from repro.observability import (
    MetricsRegistry,
    evaluate_slos,
    metrics_to_prometheus,
)

pytestmark = pytest.mark.fleet

TINY = small_test_system()


def shard_registry(index: int, tenant: str, latencies) -> MetricsRegistry:
    registry = MetricsRegistry()
    label = shard_label(index)
    for latency in latencies:
        registry.counter("fleet.shard.admitted", {"shard": label}).inc()
        registry.histogram(
            LATENCY_METRIC, {"tenant": tenant, "shard": label}
        ).observe(latency)
    return registry


class TestFolding:
    def test_counters_add_and_sketches_fold(self):
        a = shard_registry(0, "t", [1e-3, 2e-3])
        b = shard_registry(1, "t", [4e-3])
        merged = fold_registries([a, b])
        assert (
            merged.counter(
                "fleet.shard.admitted", {"shard": "shard-0"}
            ).value == 2
        )
        assert (
            merged.counter(
                "fleet.shard.admitted", {"shard": "shard-1"}
            ).value == 1
        )
        sketch = tenant_latency_sketch(merged, "t")
        assert sketch is not None and sketch.count == 3

    def test_folding_leaves_inputs_untouched(self):
        a = shard_registry(0, "t", [1e-3])
        fold_registries([a, shard_registry(1, "t", [2e-3])])
        assert (
            a.counter("fleet.shard.admitted", {"shard": "shard-0"}).value
            == 1
        )

    def test_missing_tenant_reads_as_missing(self):
        merged = fold_registries([shard_registry(0, "t", [1e-3])])
        assert tenant_latency_sketch(merged, "nobody") is None


class TestObjectives:
    def test_default_set_shape(self):
        objectives = default_fleet_objectives(
            {"a": 0, "b": 2}, p99_s=10e-3
        )
        # p99 per tenant, one p999 probe, rejection + reroute rates.
        assert len(objectives) == 5
        stats = [o.stat for o in objectives]
        assert stats.count("p99") == 2 and stats.count("p999") == 1

    def test_rates_evaluate_against_merged_counters(self):
        registry = MetricsRegistry()
        registry.counter("fleet.submitted").inc(10)
        registry.counter("fleet.rejected").inc(1)
        registry.counter("fleet.rerouted").inc(2)
        objectives = default_fleet_objectives(
            {}, p99_s=10e-3, rejection_rate=0.5, reroute_rate=0.5
        )
        report = evaluate_slos(registry, objectives)
        assert report.ok


# --------------------------------------------------------------------------
# Prometheus exposition round-trip.
# --------------------------------------------------------------------------

_SERIES = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")


def parse_exposition(text: str) -> dict[str, float]:
    """series (name + label string) -> value, ignoring comments."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SERIES.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        name, labels, value = match.groups()
        series[f"{name}{labels or ''}"] = float(value)
    return series


class TestPrometheusRoundTrip:
    def test_labeled_fleet_families_export_and_reconcile(self):
        merged = fold_registries(
            [
                shard_registry(0, "tenant-a", [1e-3, 2e-3, 3e-3]),
                shard_registry(1, "tenant-a", [5e-3]),
            ]
        )
        text = metrics_to_prometheus(merged)
        series = parse_exposition(text)

        assert (
            series[
                'fleet_shard_admitted_total{shard="shard-0"}'
            ] == 3.0
        )
        # Every histogram series ends at +Inf, and the cumulative count
        # there must equal the _count series — per shard label.
        for shard, expect in (("shard-0", 3.0), ("shard-1", 1.0)):
            labels = f'shard="{shard}",tenant="tenant-a"'
            inf = series[
                f'fleet_request_latency_s_bucket{{{labels},le="+Inf"}}'
            ]
            count = series[f"fleet_request_latency_s_count{{{labels}}}"]
            assert inf == count == expect

    def test_label_values_escape_per_exposition_rules(self):
        hostile = 'ten"ant\\wi\nth'
        registry = shard_registry(0, hostile, [1e-3])
        text = metrics_to_prometheus(registry)
        assert 'tenant="ten\\"ant\\\\wi\\nth"' in text
        # The escaped text still parses line-by-line (no raw newline
        # leaked into the middle of a series).
        parse_exposition(text)

    def test_counter_families_gain_the_total_suffix(self):
        registry = MetricsRegistry()
        for name in FLEET_COUNTERS:
            registry.counter(name)
        text = metrics_to_prometheus(registry)
        for name in FLEET_COUNTERS:
            base = name.replace(".", "_")
            assert f"# TYPE {base}_total counter" in text

    def test_live_fleet_merged_registry_round_trips(self):
        config = FleetConfig(
            shards=2,
            service=ServiceConfig(
                slots=(
                    TimeSlotConfig(
                        "all_reduce", ("all_reduce",),
                        time_window_s=500e-6, max_multiplexing=2,
                    ),
                ),
                switch_time_s=20e-6,
                queue_limit=64,
                default_quota=TenantQuotaConfig(
                    max_queued=8, max_per_slot=4
                ),
            ),
        )

        async def go():
            async with FleetRouter(config, TINY) as fleet:
                for _ in range(5):
                    await fleet.submit(
                        "a",
                        CollectiveRequest(
                            Collective.ALL_REDUCE, payload_bytes=8 * 8 * 8
                        ),
                    )
                await fleet.drain()
                return fleet.merged_metrics()

        merged = asyncio.run(go())
        series = parse_exposition(metrics_to_prometheus(merged))
        assert series["fleet_submitted_total"] == 5.0
        admitted = series["fleet_admitted_total"]
        rerouted = series["fleet_rerouted_total"]
        assert admitted + rerouted == 5.0
        # The latency sketch saw exactly the admitted requests.
        inf_total = sum(
            value
            for key, value in series.items()
            if key.startswith("fleet_request_latency_s_bucket")
            and 'le="+Inf"' in key
        )
        assert inf_total == 5.0
