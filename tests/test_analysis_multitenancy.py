"""Multi-tenancy bandwidth-isolation model (Fig 17)."""

import pytest

from repro.analysis import run_multitenancy
from repro.workloads import CcWorkload, GemvWorkload, emb_synth


@pytest.fixture(scope="module")
def result():
    return run_multitenancy(
        CcWorkload(iterations=4), emb_synth()
    )


class TestIsolation:
    def test_baseline_tenants_interfere(self, result):
        for tenant in result.baseline:
            assert tenant.interference_slowdown > 1.2

    def test_pimnet_tenants_nearly_isolated(self, result):
        for tenant in result.pimnet:
            assert tenant.interference_slowdown < 1.1

    def test_isolation_benefit_positive(self, result):
        assert result.isolation_benefit() > 1.2

    def test_alone_times_positive(self, result):
        for pair in (result.baseline, result.pimnet):
            for tenant in pair:
                assert tenant.alone_s > 0
                assert tenant.shared_s >= tenant.alone_s


class TestStructure:
    def test_both_tenants_reported(self, result):
        assert result.baseline[0].workload == "CC"
        assert result.baseline[1].workload == "EMB"

    def test_backend_labels(self, result):
        assert {t.backend for t in result.baseline} == {"B"}
        assert {t.backend for t in result.pimnet} == {"P"}

    def test_other_workload_pairs_work(self):
        quick = run_multitenancy(
            GemvWorkload(batch=1), GemvWorkload(batch=1)
        )
        assert quick.isolation_benefit() >= 1.0


class TestSilentFallbackBugfixes:
    """A broken tenant run must fail loudly, never score as benign."""

    def test_non_positive_alone_time_raises(self):
        from repro.analysis.multitenancy import TenantResult
        from repro.errors import ConfigurationError

        broken = TenantResult(
            workload="CC", backend="B", alone_s=0.0, shared_s=1.0
        )
        with pytest.raises(ConfigurationError) as excinfo:
            broken.interference_slowdown
        message = str(excinfo.value)
        assert "non-positive alone time" in message
        assert "'CC'" in message and "(B)" in message

    def test_negative_alone_time_raises_too(self):
        from repro.analysis.multitenancy import TenantResult
        from repro.errors import ConfigurationError

        broken = TenantResult(
            workload="EMB", backend="P", alone_s=-2.0, shared_s=1.0
        )
        with pytest.raises(ConfigurationError, match="non-positive"):
            broken.interference_slowdown

    def test_non_positive_slowdown_cannot_enter_geomean(self):
        from repro.analysis.multitenancy import (
            MultiTenancyResult,
            TenantResult,
        )
        from repro.errors import ConfigurationError

        good = TenantResult(
            workload="CC", backend="B", alone_s=1.0, shared_s=2.0
        )
        zero_shared = TenantResult(
            workload="EMB", backend="P", alone_s=1.0, shared_s=0.0
        )
        result = MultiTenancyResult(
            baseline=(good, good), pimnet=(good, zero_shared)
        )
        with pytest.raises(ConfigurationError) as excinfo:
            result.isolation_benefit()
        message = str(excinfo.value)
        assert "non-positive slowdown" in message
        assert "cannot enter" in message and "'EMB'" in message

    def test_workload_with_no_comm_phases_raises(self):
        from repro.analysis.multitenancy import _tenant_request_stats
        from repro.config import small_test_system
        from repro.errors import ConfigurationError
        from repro.workloads.base import Workload

        class CommFree(Workload):
            name = "SILENT"

            def phases(self, machine):
                return []

        with pytest.raises(ConfigurationError) as excinfo:
            _tenant_request_stats(CommFree(), small_test_system(), "P")
        message = str(excinfo.value)
        assert "produced no communication requests" in message
        assert "empty sketch" in message
