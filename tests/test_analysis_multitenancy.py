"""Multi-tenancy bandwidth-isolation model (Fig 17)."""

import pytest

from repro.analysis import run_multitenancy
from repro.workloads import CcWorkload, GemvWorkload, emb_synth


@pytest.fixture(scope="module")
def result():
    return run_multitenancy(
        CcWorkload(iterations=4), emb_synth()
    )


class TestIsolation:
    def test_baseline_tenants_interfere(self, result):
        for tenant in result.baseline:
            assert tenant.interference_slowdown > 1.2

    def test_pimnet_tenants_nearly_isolated(self, result):
        for tenant in result.pimnet:
            assert tenant.interference_slowdown < 1.1

    def test_isolation_benefit_positive(self, result):
        assert result.isolation_benefit() > 1.2

    def test_alone_times_positive(self, result):
        for pair in (result.baseline, result.pimnet):
            for tenant in pair:
                assert tenant.alone_s > 0
                assert tenant.shared_s >= tenant.alone_s


class TestStructure:
    def test_both_tenants_reported(self, result):
        assert result.baseline[0].workload == "CC"
        assert result.baseline[1].workload == "EMB"

    def test_backend_labels(self, result):
        assert {t.backend for t in result.baseline} == {"B"}
        assert {t.backend for t in result.pimnet} == {"P"}

    def test_other_workload_pairs_work(self):
        quick = run_multitenancy(
            GemvWorkload(batch=1), GemvWorkload(batch=1)
        )
        assert quick.isolation_benefit() >= 1.0
