"""Network configuration: Table IV values and sweep helpers."""

import pytest

from repro.config import (
    BufferChipConfig,
    HostLinkConfig,
    PimnetNetworkConfig,
    TierLinkConfig,
)
from repro.errors import ConfigurationError


class TestTierLinkConfig:
    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigurationError):
            TierLinkConfig("x", 0, 16, 1e9, 0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            TierLinkConfig("x", 1, 16, 0, 0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            TierLinkConfig("x", 1, 16, 1e9, -1e-9)

    def test_rejects_nan_and_inf_bandwidth(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                TierLinkConfig("x", 1, 16, bad, 0)

    def test_rejects_nan_latency(self):
        with pytest.raises(ConfigurationError):
            TierLinkConfig("x", 1, 16, 1e9, float("nan"))


class TestNonFiniteNetworkValues:
    def test_rejects_nan_sync_latency(self):
        with pytest.raises(ConfigurationError):
            PimnetNetworkConfig(sync_latency_s=float("nan"))

    def test_rejects_nan_dma_bandwidth(self):
        with pytest.raises(ConfigurationError):
            PimnetNetworkConfig(mram_wram_dma_bytes_per_s=float("nan"))

    def test_rejects_nan_unicast_efficiency(self):
        with pytest.raises(ConfigurationError):
            PimnetNetworkConfig(inter_rank_unicast_efficiency=float("nan"))

    def test_rejects_nan_host_links(self):
        with pytest.raises(ConfigurationError):
            HostLinkConfig(pim_to_cpu_bytes_per_s=float("nan"))

    def test_rejects_nan_buffer_chip(self):
        with pytest.raises(ConfigurationError):
            BufferChipConfig(chip_dq_bytes_per_s=float("nan"))
        with pytest.raises(ConfigurationError):
            BufferChipConfig(hop_latency_s=float("inf"))


class TestTableIvDefaults:
    def test_inter_bank_row(self):
        net = PimnetNetworkConfig()
        assert net.inter_bank.num_channels == 4
        assert net.inter_bank.width_bits == 16
        assert net.inter_bank.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(0.7e9)
        )

    def test_inter_chip_row(self):
        net = PimnetNetworkConfig()
        assert net.inter_chip.num_channels == 2
        assert net.inter_chip.width_bits == 4
        assert net.inter_chip.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(1.05e9)
        )

    def test_inter_rank_row(self):
        net = PimnetNetworkConfig()
        assert net.inter_rank.num_channels == 1
        assert net.inter_rank.width_bits == 64
        assert net.inter_rank.half_duplex
        assert net.inter_rank.broadcast_capable
        assert net.inter_rank.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(16.8e9)
        )

    def test_sync_latency_matches_paper(self):
        assert PimnetNetworkConfig().sync_latency_s == pytest.approx(15e-9)


class TestSweepHelpers:
    def test_with_inter_bank_bandwidth(self):
        net = PimnetNetworkConfig().with_inter_bank_bandwidth(0.1)
        assert net.inter_bank.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(0.1e9)
        )
        # other tiers untouched
        assert net.inter_chip.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(1.05e9)
        )

    def test_with_global_scale(self):
        net = PimnetNetworkConfig().with_global_bandwidth_scale(0.5)
        assert net.inter_chip.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(0.525e9)
        )
        assert net.inter_rank.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(8.4e9)
        )
        assert net.inter_bank.bandwidth_per_channel_bytes_per_s == (
            pytest.approx(0.7e9)
        )

    def test_global_scale_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            PimnetNetworkConfig().with_global_bandwidth_scale(0)

    def test_unicast_efficiency_validated(self):
        with pytest.raises(ConfigurationError):
            PimnetNetworkConfig(inter_rank_unicast_efficiency=0)
        with pytest.raises(ConfigurationError):
            PimnetNetworkConfig(inter_rank_unicast_efficiency=1.5)


class TestHostLinks:
    def test_measured_upmem_bandwidths(self):
        links = HostLinkConfig()
        assert links.pim_to_cpu_bytes_per_s == pytest.approx(4.74e9)
        assert links.cpu_to_pim_bytes_per_s == pytest.approx(6.68e9)
        assert links.cpu_to_pim_broadcast_bytes_per_s == (
            pytest.approx(16.88e9)
        )
        assert links.max_channel_bytes_per_s == pytest.approx(19.2e9)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            HostLinkConfig(pim_to_cpu_bytes_per_s=0)


class TestBufferChip:
    def test_defaults(self):
        cfg = BufferChipConfig()
        assert cfg.bank_to_buffer_bytes_per_s == pytest.approx(19.2e9)
        assert cfg.chip_dq_bytes_per_s == pytest.approx(2.4e9)
        assert cfg.inter_rank_link_bytes_per_s == pytest.approx(16.8e9)

    def test_chip_dq_is_one_eighth_of_rank(self):
        cfg = BufferChipConfig()
        assert cfg.chip_dq_bytes_per_s * 8 == pytest.approx(
            cfg.bank_to_buffer_bytes_per_s
        )

    def test_rejects_zero_dq(self):
        with pytest.raises(ConfigurationError):
            BufferChipConfig(chip_dq_bytes_per_s=0)
