"""Analytic hardware overhead model vs the paper's synthesis results."""

import pytest

from repro.analysis import (
    address_generator_estimate,
    hardware_overhead_report,
    interchip_switch_estimate,
    per_bank_overhead_estimate,
    pimnet_stop_estimate,
    ring_router_estimate,
    sync_propagation_latency_ns,
)
from repro.core import PimnetStopSpec
from repro.errors import ReproError


@pytest.fixture(scope="module")
def report():
    return hardware_overhead_report()


class TestPaperAnchors:
    def test_bank_area_overhead_near_0_09_percent(self, report):
        assert 0.05 <= report.bank_area_percent <= 0.2

    def test_bank_power_overhead_near_1_6_percent(self, report):
        assert 1.0 <= report.bank_power_percent <= 2.5

    def test_router_over_60x_larger_than_stop(self, report):
        assert report.router_to_stop_area_ratio >= 60

    def test_switch_near_paper_figures(self, report):
        # paper: 0.013 mm^2, 17 mW
        assert 0.005 <= report.switch.area_mm2 <= 0.025
        assert 10 <= report.switch.power_mw <= 25

    def test_sync_latency_near_15ns(self, report):
        assert 12 <= report.sync_latency_ns <= 20
        # ~6 DPU cycles at 350 MHz
        cycles = report.sync_latency_ns * 1e-9 * 350e6
        assert 4 <= cycles <= 8


class TestStructuralScaling:
    def test_stop_area_scales_with_width(self):
        narrow = pimnet_stop_estimate(PimnetStopSpec(channel_width_bits=8))
        wide = pimnet_stop_estimate(PimnetStopSpec(channel_width_bits=32))
        assert wide.area_mm2 > narrow.area_mm2

    def test_router_area_dominated_by_buffers(self):
        shallow = ring_router_estimate(buffer_flits_per_vc=2)
        deep = ring_router_estimate(buffer_flits_per_vc=16)
        assert deep.area_mm2 > 2 * shallow.area_mm2

    def test_router_needs_two_ports(self):
        with pytest.raises(ReproError):
            ring_router_estimate(num_ports=1)

    def test_per_bank_is_stop_plus_addrgen(self):
        total = per_bank_overhead_estimate()
        parts = (
            pimnet_stop_estimate().area_mm2
            + address_generator_estimate().area_mm2
        )
        assert total.area_mm2 == pytest.approx(parts)

    def test_switch_grows_with_radix(self):
        from repro.core import SwitchSpec

        small = interchip_switch_estimate(SwitchSpec(radix=4))
        large = interchip_switch_estimate(SwitchSpec(radix=16))
        assert large.area_mm2 > small.area_mm2


class TestSyncModel:
    def test_wire_term_scales_with_span(self):
        near = sync_propagation_latency_ns(dimm_span_mm=10)
        far = sync_propagation_latency_ns(dimm_span_mm=100)
        assert far > near

    def test_fraction_helpers(self, report):
        assert report.stop.area_fraction_of_bank() < 0.001
        assert 0 < report.per_bank.power_fraction_of_bank() < 0.05
