"""Host address interleaving across PIM banks."""

import pytest

from repro.config import PimSystemConfig
from repro.errors import MemoryModelError
from repro.memory import AddressMap


@pytest.fixture
def amap() -> AddressMap:
    return AddressMap(
        PimSystemConfig(
            banks_per_chip=2, chips_per_rank=2, ranks_per_channel=2
        ),
        interleave_bytes=64,
    )


class TestLocate:
    def test_first_block_lands_in_dpu_zero(self, amap):
        assert amap.locate(0) == (0, 0)
        assert amap.locate(63) == (0, 63)

    def test_blocks_rotate_across_dpus(self, amap):
        assert amap.locate(64) == (1, 0)
        assert amap.locate(64 * 7) == (7, 0)

    def test_second_stripe_returns_to_dpu_zero(self, amap):
        dpu, offset = amap.locate(64 * 8)
        assert dpu == 0
        assert offset == 64

    def test_out_of_space_rejected(self, amap):
        with pytest.raises(MemoryModelError):
            amap.locate(amap.total_bytes)


class TestSlices:
    def test_slices_cover_range_exactly(self, amap):
        slices = amap.slices(30, 300)
        assert sum(s.length for s in slices) == 300
        # host offsets are contiguous and ordered
        cursor = 0
        for s in slices:
            assert s.host_offset == cursor
            cursor += s.length

    def test_single_block_slice(self, amap):
        slices = amap.slices(0, 64)
        assert len(slices) == 1
        assert slices[0].dpu_id == 0

    def test_slice_respects_interleave_boundaries(self, amap):
        slices = amap.slices(32, 64)
        assert [s.length for s in slices] == [32, 32]
        assert [s.dpu_id for s in slices] == [0, 1]

    def test_zero_length_allowed(self, amap):
        assert amap.slices(0, 0) == []

    def test_negative_length_rejected(self, amap):
        with pytest.raises(MemoryModelError):
            amap.slices(0, -1)


class TestValidation:
    def test_interleave_must_be_multiple_of_eight(self):
        with pytest.raises(MemoryModelError):
            AddressMap(PimSystemConfig(), interleave_bytes=100)

    def test_total_bytes(self, amap):
        assert amap.total_bytes == 8 * 64 * 1024 * 1024
