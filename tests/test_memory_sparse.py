"""Sparse byte-addressable memory model."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.memory import SparseMemory


class TestBasicReadWrite:
    def test_unwritten_reads_zero(self):
        mem = SparseMemory(1024)
        assert np.all(mem.read(0, 100) == 0)

    def test_write_then_read(self):
        mem = SparseMemory(1024)
        mem.write(10, b"hello")
        assert bytes(mem.read(10, 5)) == b"hello"

    def test_write_across_page_boundary(self):
        mem = SparseMemory(16384, page_bytes=64)
        data = bytes(range(200)) + bytes(range(56))
        mem.write(30, data)
        assert bytes(mem.read(30, len(data))) == data

    def test_overwrite(self):
        mem = SparseMemory(256)
        mem.write(0, b"aaaa")
        mem.write(2, b"bb")
        assert bytes(mem.read(0, 4)) == b"aabb"

    def test_surrounding_bytes_untouched(self):
        mem = SparseMemory(256)
        mem.write(10, b"x")
        assert mem.read(9, 1)[0] == 0
        assert mem.read(11, 1)[0] == 0


class TestBoundsChecking:
    def test_read_past_capacity(self):
        mem = SparseMemory(64)
        with pytest.raises(MemoryModelError):
            mem.read(60, 8)

    def test_write_past_capacity(self):
        mem = SparseMemory(64)
        with pytest.raises(MemoryModelError):
            mem.write(63, b"ab")

    def test_negative_address(self):
        mem = SparseMemory(64)
        with pytest.raises(MemoryModelError):
            mem.read(-1, 4)

    def test_zero_capacity_rejected(self):
        with pytest.raises(MemoryModelError):
            SparseMemory(0)


class TestTypedInterface:
    def test_array_round_trip(self):
        mem = SparseMemory(4096)
        arr = np.arange(100, dtype=np.int64)
        mem.write_array(8, arr)
        assert np.array_equal(mem.read_array(8, 100, np.int64), arr)

    def test_dtype_preserved(self):
        mem = SparseMemory(4096)
        arr = np.array([1.5, -2.25, 3.75], dtype=np.float64)
        mem.write_array(0, arr)
        out = mem.read_array(0, 3, np.float64)
        assert out.dtype == np.float64
        assert np.array_equal(out, arr)

    def test_mixed_width_access(self):
        mem = SparseMemory(64)
        mem.write_array(0, np.array([0x01020304], dtype=np.uint32))
        raw = mem.read(0, 4)
        # little-endian layout
        assert list(raw) == [4, 3, 2, 1]


class TestResidency:
    def test_lazy_allocation(self):
        mem = SparseMemory(64 * 1024 * 1024)
        assert mem.resident_bytes == 0
        mem.write(63 * 1024 * 1024, b"x")
        assert mem.resident_bytes == mem.page_bytes

    def test_clear_drops_data(self):
        mem = SparseMemory(1024)
        mem.write(0, b"data")
        mem.clear()
        assert mem.resident_bytes == 0
        assert np.all(mem.read(0, 4) == 0)
