"""Instrumentation of the simulator itself: spans match the model.

The acceptance-critical properties live here: a traced AllReduce yields
phase spans whose simulated windows equal the Algorithm 1 timeline
offsets, the disabled path is bit-identical to an uninstrumented run,
and backend errors carry backend/request context.
"""

import pytest

from repro.collectives.backend import registry
from repro.collectives.patterns import Collective, CollectiveRequest
from repro.config.presets import pimnet_sim_system
from repro.config.trace import TraceConfig
from repro.core import Shape
from repro.core.timeline import allreduce_timeline
from repro.errors import BackendError, ConfigurationError
from repro.noc import Message, NocNetwork, NocSimulator
from repro.observability import (
    Instrumentation,
    MetricsRegistry,
    Tracer,
    build_instrumentation,
    use_metrics,
    use_tracer,
)

PAYLOAD = 1 << 20  # 1 MiB per DPU; divisible by 8 x 256


@pytest.fixture(scope="module")
def machine():
    return pimnet_sim_system()


class TestTimelineSpans:
    """Traced AllReduce spans == Fig 5(d) phase offsets."""

    def test_phase_spans_match_timeline_entries(self, machine):
        tracer = Tracer()
        with use_tracer(tracer):
            timeline = allreduce_timeline(PAYLOAD, machine)
        root = tracer.find("timeline/allreduce")
        assert root is not None
        assert root.sim_start_s == 0.0
        assert root.sim_end_s == pytest.approx(timeline.total_s)
        for entry in timeline.entries:
            span = root.find(f"{entry.domain}-{entry.phase}")
            assert span is not None, (entry.domain, entry.phase)
            assert span.sim_start_s == pytest.approx(entry.start_s)
            assert span.sim_duration_s == pytest.approx(entry.duration_s)

    def test_all_six_phases_plus_sync_present(self, machine):
        tracer = Tracer()
        with use_tracer(tracer):
            allreduce_timeline(PAYLOAD, machine)
        root = tracer.find("timeline/allreduce")
        names = [c.name for c in root.children]
        assert names == ["bank-RS", "chip-RS", "rank-RS",
                         "rank-AG", "chip-AG", "bank-AG", "sync"]

    def test_sync_span_starts_at_transport_end(self, machine):
        tracer = Tracer()
        with use_tracer(tracer):
            timeline = allreduce_timeline(PAYLOAD, machine)
        sync = tracer.find("sync")
        transport = max(e.end_s for e in timeline.entries)
        assert sync.sim_start_s == pytest.approx(transport)
        assert sync.sim_end_s == pytest.approx(transport + timeline.sync_s)

    def test_timeline_result_unchanged_by_tracing(self, machine):
        bare = allreduce_timeline(PAYLOAD, machine)
        with use_tracer(Tracer()):
            traced = allreduce_timeline(PAYLOAD, machine)
        assert traced == bare


class TestBackendSpans:
    def test_timing_span_carries_backend_and_sim_window(self, machine):
        tracer = Tracer()
        request = CollectiveRequest(Collective.ALL_REDUCE, PAYLOAD)
        with use_tracer(tracer):
            breakdown = registry.create("P", machine).timing(request)
        span = tracer.find("timing/P")
        assert span is not None
        assert span.attributes["backend"] == "P"
        assert span.attributes["request"] == request.summary()
        assert span.sim_duration_s == pytest.approx(breakdown.total_s)

    def test_metrics_record_payload_and_backend_time(self, machine):
        metrics = MetricsRegistry()
        request = CollectiveRequest(Collective.ALL_REDUCE, PAYLOAD)
        with use_metrics(metrics):
            breakdown = registry.create("P", machine).timing(request)
        assert metrics.counters["collective.requests"].value == 1
        assert metrics.counters["collective.payload_bytes"].value == PAYLOAD
        hist = metrics.histograms["backend.P.timing_s"]
        assert hist.samples == [pytest.approx(breakdown.total_s)]


class TestDisabledPathBitIdentical:
    """With instrumentation off, timing results must not change at all."""

    @pytest.mark.parametrize("key", ["B", "S", "D", "P"])
    def test_breakdowns_equal_with_and_without_tracer(self, machine, key):
        request = CollectiveRequest(Collective.ALL_REDUCE, PAYLOAD)
        backend = registry.create(key, machine)
        bare = backend.timing(request)
        with use_tracer(Tracer()), use_metrics(MetricsRegistry()):
            instrumented = backend.timing(request)
        # CommBreakdown is frozen with float fields: == is bit-exact.
        assert instrumented == bare
        assert backend.timing(request) == bare  # and off again afterwards


class TestErrorContext:
    def test_backend_error_names_backend_and_request(self, machine):
        request = CollectiveRequest(Collective.ALL_REDUCE, 2048)
        with pytest.raises(BackendError) as excinfo:
            registry.create("N", machine).timing(request)
        message = str(excinfo.value)
        assert "backend=N" in message
        assert "NDPBridge" in message
        assert "all_reduce" in message
        assert "2048B/DPU" in message

    def test_context_attached_once(self, machine):
        request = CollectiveRequest(Collective.ALL_REDUCE, 2048)
        with pytest.raises(BackendError) as excinfo:
            registry.create("N", machine).timing(request)
        assert str(excinfo.value).count("backend=N") == 1


class TestNocInstrumentation:
    def test_run_span_and_flit_counters(self):
        net = NocNetwork(Shape(4, 2, 1))
        msg = Message(msg_id=0, src=0, dst=net.shape.dpu(0, 0, 1),
                      num_flits=4)
        tracer, metrics = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_metrics(metrics):
            stats = NocSimulator(net, [msg]).run()
        span = tracer.find("noc/run")
        assert span is not None
        assert span.attributes["num_messages"] == 1
        assert span.attributes["cycles"] == stats.cycles
        assert metrics.counters["noc.flits_delivered"].value == 4
        assert metrics.counters["noc.cycles"].value == stats.cycles


class TestTraceConfig:
    def test_defaults_are_all_off(self):
        config = TraceConfig()
        assert not config.active

    def test_paths_require_their_flag(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(trace_path="t.json")
        with pytest.raises(ConfigurationError):
            TraceConfig(metrics_path="m.csv")

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigurationError, match="clock"):
            TraceConfig(enabled=True, clock="logical")


class TestInstrumentation:
    def test_build_respects_config(self):
        off = build_instrumentation(TraceConfig())
        assert off.tracer is None and off.metrics is None
        assert off.write() == []
        assert off.tree() == ""

        on = build_instrumentation(TraceConfig(enabled=True, metrics=True))
        assert on.tracer is not None and on.metrics is not None

    def test_activate_and_write_end_to_end(self, tmp_path, machine):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.csv"
        inst = Instrumentation.enabled(
            trace_path=str(trace_path), metrics_path=str(metrics_path)
        )
        request = CollectiveRequest(Collective.ALL_REDUCE, PAYLOAD)
        with inst.activate():
            registry.create("P", machine).timing(request)
        written = inst.write()
        assert written == [str(trace_path), str(metrics_path)]
        assert trace_path.exists() and metrics_path.exists()
        assert "timing/P" in inst.tree()
