"""Per-link NoC statistics."""

import pytest

from repro.core import Shape, allreduce_schedule, alltoall_schedule
from repro.noc import (
    Message,
    NocNetwork,
    NocSimulator,
    messages_from_schedule,
)


def run_scheduled(shape, schedule):
    net = NocNetwork(shape)
    messages, barriers = messages_from_schedule(schedule, net, "scheduled")
    sim = NocSimulator(net, messages)
    sim.set_barriers(barriers)
    return sim.run()


class TestLinkBusyAccounting:
    def test_single_message_busy_cycles(self):
        shape = Shape(4, 1, 1)
        net = NocNetwork(shape)
        msg = Message(msg_id=0, src=0, dst=shape.dpu(0, 0, 1), num_flits=10)
        stats = NocSimulator(net, [msg]).run()
        link = net.path(0, shape.dpu(0, 0, 1))[0]
        assert stats.link_busy_cycles[link.name] == (
            10 * link.cycles_per_flit
        )

    def test_utilization_bounded(self):
        shape = Shape(2, 2, 2)
        stats = run_scheduled(shape, allreduce_schedule(shape, 64))
        for name in stats.link_busy_cycles:
            assert 0.0 <= stats.link_utilization(name) <= 1.0

    def test_unused_link_reads_zero(self):
        shape = Shape(4, 1, 1)
        net = NocNetwork(shape)
        msg = Message(msg_id=0, src=0, dst=shape.dpu(0, 0, 1), num_flits=4)
        stats = NocSimulator(net, [msg]).run()
        assert stats.link_utilization("ring:0:0:2>E") == 0.0


class TestHotspots:
    def test_a2a_hotspots_are_dq_or_bus(self):
        """All-to-All saturates the chip DQ ports and the bus, not the
        rings — the structural bottleneck the paper's Fig 11 shows."""
        shape = Shape(2, 2, 2)
        stats = run_scheduled(shape, alltoall_schedule(shape, 64))
        hottest = stats.hottest_links(3)
        assert hottest, "no link stats collected"
        for name, _ in hottest:
            assert name.startswith(("dq:", "bus:")), name

    def test_allreduce_rings_do_real_work(self):
        shape = Shape(4, 2, 1)
        stats = run_scheduled(
            shape, allreduce_schedule(shape, shape.num_dpus * 8)
        )
        ring_busy = sum(
            cycles
            for name, cycles in stats.link_busy_cycles.items()
            if name.startswith("ring:")
        )
        assert ring_busy > 0

    def test_hottest_links_sorted(self):
        shape = Shape(2, 2, 2)
        stats = run_scheduled(shape, alltoall_schedule(shape, 64))
        utils = [u for _, u in stats.hottest_links(10)]
        assert utils == sorted(utils, reverse=True)
