"""Host-orchestrated functional collectives through MRAM state."""

import numpy as np
import pytest

from repro.collectives import ReduceOp
from repro.config import small_test_system
from repro.errors import CollectiveError
from repro.host import (
    PimRuntime,
    host_all_reduce,
    host_all_to_all,
    host_broadcast,
    host_reduce_scatter,
)


@pytest.fixture
def loaded_runtime(rng):
    runtime = PimRuntime(small_test_system())
    runtime.allocate("buf", 1024)
    arrays = [rng.integers(0, 100, 16, dtype=np.int64) for _ in range(8)]
    runtime.push("buf", arrays)
    return runtime, arrays


class TestHostAllReduce:
    def test_every_bank_holds_the_sum(self, loaded_runtime):
        runtime, arrays = loaded_runtime
        time_s = host_all_reduce(runtime, "buf", 16)
        assert time_s > 0
        expected = np.sum(arrays, axis=0)
        pulled, _ = runtime.pull("buf", 16, np.int64)
        for got in pulled:
            assert np.array_equal(got, expected)

    def test_min_operator(self, loaded_runtime):
        runtime, arrays = loaded_runtime
        host_all_reduce(runtime, "buf", 16, op=ReduceOp.MIN)
        pulled, _ = runtime.pull("buf", 16, np.int64)
        assert np.array_equal(pulled[0], np.min(arrays, axis=0))


class TestHostReduceScatter:
    def test_each_bank_gets_its_shard(self, loaded_runtime):
        runtime, arrays = loaded_runtime
        host_reduce_scatter(runtime, "buf", 16)
        total = np.sum(arrays, axis=0)
        pulled, _ = runtime.pull("buf", 2, np.int64)
        for d, got in enumerate(pulled):
            assert np.array_equal(got, total[d * 2 : (d + 1) * 2])

    def test_divisibility_checked(self, loaded_runtime):
        runtime, _ = loaded_runtime
        with pytest.raises(CollectiveError):
            host_reduce_scatter(runtime, "buf", 15)


class TestHostAllToAll:
    def test_chunk_transpose(self, loaded_runtime):
        runtime, arrays = loaded_runtime
        host_all_to_all(runtime, "buf", 16)
        pulled, _ = runtime.pull("buf", 16, np.int64)
        for dst in range(8):
            for src in range(8):
                assert np.array_equal(
                    pulled[dst][src * 2 : (src + 1) * 2],
                    arrays[src][dst * 2 : (dst + 1) * 2],
                )


class TestHostBroadcast:
    def test_root_data_everywhere(self, loaded_runtime):
        runtime, arrays = loaded_runtime
        host_broadcast(runtime, "buf", 16, root=5)
        pulled, _ = runtime.pull("buf", 16, np.int64)
        for got in pulled:
            assert np.array_equal(got, arrays[5])

    def test_root_validated(self, loaded_runtime):
        runtime, _ = loaded_runtime
        with pytest.raises(CollectiveError):
            host_broadcast(runtime, "buf", 16, root=8)


class TestConsistencyWithBackendModel:
    def test_functional_result_matches_backend_outputs(self, rng):
        """The MRAM path and the pure backend path agree on data."""
        from repro.collectives import (
            Collective,
            CollectiveRequest,
            registry,
        )

        machine = small_test_system()
        runtime = PimRuntime(machine)
        runtime.allocate("buf", 1024)
        arrays = [
            rng.integers(0, 100, 16, dtype=np.int64) for _ in range(8)
        ]
        runtime.push("buf", arrays)
        host_all_reduce(runtime, "buf", 16)
        via_mram, _ = runtime.pull("buf", 16, np.int64)

        backend = registry.create("B", machine)
        via_backend = backend.run(
            CollectiveRequest(
                Collective.ALL_REDUCE, 16 * 8, dtype=np.dtype(np.int64)
            ),
            arrays,
        ).outputs
        for a, b in zip(via_mram, via_backend):
            assert np.array_equal(a, b)
