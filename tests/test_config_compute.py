"""Compute profiles: UPMEM costs and alternative-PIM scaling."""

import pytest

from repro.config import (
    ALT_PIM_PROFILES,
    ComputeProfile,
    Op,
    UPMEM_OP_COSTS,
    gddr6_aim_profile,
    hbm_pim_profile,
    upmem_profile,
)
from repro.errors import ConfigurationError


class TestUpmemCosts:
    def test_emulated_multiply_is_expensive(self):
        assert UPMEM_OP_COSTS[Op.INT_MUL] == 32.0
        assert UPMEM_OP_COSTS[Op.INT_MUL] > 10 * UPMEM_OP_COSTS[Op.INT_ADD]

    def test_all_ops_have_costs(self):
        assert set(UPMEM_OP_COSTS) == set(Op)

    def test_float_is_emulated_too(self):
        assert UPMEM_OP_COSTS[Op.FLOAT_MUL] > UPMEM_OP_COSTS[Op.INT_MUL]


class TestComputeProfile:
    def test_slots_scale_with_count(self):
        profile = upmem_profile()
        assert profile.slots(Op.INT_ADD, 10) == pytest.approx(10.0)
        assert profile.slots(Op.INT_MUL, 2) == pytest.approx(64.0)

    def test_throughput_scale_divides_slots(self):
        fast = ComputeProfile(name="fast", throughput_scale=4.0)
        assert fast.slots(Op.INT_MUL, 1) == pytest.approx(8.0)

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            upmem_profile().slots(Op.INT_ADD, -1)

    def test_rejects_zero_scale(self):
        with pytest.raises(ConfigurationError):
            ComputeProfile(name="bad", throughput_scale=0)

    def test_rejects_missing_op(self):
        with pytest.raises(ConfigurationError):
            ComputeProfile(name="bad", op_costs={Op.INT_ADD: 1.0})

    def test_rejects_zero_memory_scale(self):
        with pytest.raises(ConfigurationError):
            ComputeProfile(name="bad", memory_scale=0)


class TestAlternativeProfiles:
    def test_registry_contents(self):
        assert set(ALT_PIM_PROFILES) >= {"UPMEM", "HBM-PIM", "GDDR6-AiM"}

    def test_aim_is_180x_upmem(self):
        assert gddr6_aim_profile().throughput_scale == pytest.approx(180.0)

    def test_ordering_of_throughput(self):
        assert (
            upmem_profile().throughput_scale
            < hbm_pim_profile().throughput_scale
            < gddr6_aim_profile().throughput_scale
        )

    def test_hw_mac_pims_have_wider_memory(self):
        assert hbm_pim_profile().memory_scale > 1
        assert gddr6_aim_profile().memory_scale > 1
