"""PrIM workload tier: references, decompositions, and properties.

The per-backend bit-exactness matrix lives in
``test_workloads_differential.py``; this file covers the functional
references themselves, the decomposition error paths, and the
hypothesis property suite (scan prefix property, histogram mass
conservation, select stability, binary search vs searchsorted, TS
brute force).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import registry
from repro.config import small_test_system
from repro.errors import WorkloadError
from repro.workloads import (
    BinarySearchWorkload,
    HistogramWorkload,
    ScanWorkload,
    SelectWorkload,
    TsSimilarityWorkload,
    binary_search_reference,
    comm_trace,
    distributed_binary_search,
    distributed_histogram,
    distributed_scan,
    distributed_select,
    distributed_tss,
    histogram_reference,
    prim_workloads,
    scan_reference,
    select_reference,
    tss_reference,
)

pytestmark = pytest.mark.workloads


@pytest.fixture(params=["P", "B", "S"])
def backend(request, tiny_machine):
    return registry.create(request.param, tiny_machine)


@pytest.fixture
def pim(tiny_machine):
    return registry.create("P", tiny_machine)


class TestHistogram:
    def test_matches_bincount(self, backend, rng):
        values = rng.integers(0, 32, 8 * backend.num_dpus).astype(np.int64)
        got = distributed_histogram(values, 32, backend)
        assert np.array_equal(got, histogram_reference(values, 32))

    def test_out_of_range_values_rejected(self):
        with pytest.raises(WorkloadError):
            histogram_reference(np.array([0, 7]), 4)
        with pytest.raises(WorkloadError):
            histogram_reference(np.array([-1]), 4)

    def test_shard_divisibility_checked(self, backend):
        values = np.zeros(backend.num_dpus + 1, dtype=np.int64)
        with pytest.raises(WorkloadError):
            distributed_histogram(values, 4, backend)

    def test_workload_validation(self):
        with pytest.raises(WorkloadError):
            HistogramWorkload(items=0)
        with pytest.raises(WorkloadError):
            HistogramWorkload(num_bins=0)

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=8,
            max_size=64,
        ).filter(lambda v: len(v) % 8 == 0)
    )
    @settings(max_examples=30, deadline=None)
    def test_mass_conservation(self, values):
        """Histogram bins sum to the input count; every input counted."""
        arr = np.array(values, dtype=np.int64)
        hist = histogram_reference(arr, 16)
        assert hist.sum() == arr.size
        assert np.all(hist >= 0)


class TestScan:
    def test_matches_cumsum(self, backend, rng):
        values = rng.integers(-50, 50, 8 * backend.num_dpus).astype(
            np.int64
        )
        got = distributed_scan(values, backend)
        assert np.array_equal(got, scan_reference(values))

    def test_workload_validation(self):
        with pytest.raises(WorkloadError):
            ScanWorkload(items=0)

    @given(
        values=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=8,
            max_size=64,
        ).filter(lambda v: len(v) % 8 == 0)
    )
    @settings(max_examples=30, deadline=None)
    def test_prefix_property(self, values):
        """scan[i] - scan[i-1] == values[i] and scan[0] == values[0]."""
        backend = registry.create("P", small_test_system())
        arr = np.array(values, dtype=np.int64)
        scan = distributed_scan(arr, backend)
        assert scan[0] == arr[0]
        assert np.array_equal(np.diff(scan), arr[1:])


class TestSelect:
    def test_matches_filter(self, backend, rng):
        values = rng.integers(-100, 100, 8 * backend.num_dpus).astype(
            np.int64
        )
        got = distributed_select(values, 0, backend)
        assert np.array_equal(got, select_reference(values, 0))

    def test_none_selected(self, backend):
        values = np.arange(8 * backend.num_dpus, dtype=np.int64)
        assert distributed_select(values, -1, backend).size == 0

    def test_all_selected(self, backend):
        values = np.arange(8 * backend.num_dpus, dtype=np.int64)
        got = distributed_select(values, 10**9, backend)
        assert np.array_equal(got, values)

    def test_workload_validation(self):
        with pytest.raises(WorkloadError):
            SelectWorkload(items=0)
        with pytest.raises(WorkloadError):
            SelectWorkload(selectivity=1.5)

    @given(
        values=st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=8,
            max_size=64,
        ).filter(lambda v: len(v) % 8 == 0),
        threshold=st.integers(min_value=-100, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_stable_and_complete(self, values, threshold):
        """Output preserves input order and contains exactly the hits."""
        backend = registry.create("P", small_test_system())
        arr = np.array(values, dtype=np.int64)
        got = distributed_select(arr, threshold, backend)
        assert np.array_equal(got, arr[arr < threshold])


class TestBinarySearch:
    def test_matches_searchsorted(self, backend, rng):
        haystack = np.sort(
            rng.integers(0, 1000, 8 * backend.num_dpus)
        ).astype(np.int64)
        queries = rng.integers(-5, 1005, 16).astype(np.int64)
        got = distributed_binary_search(haystack, queries, backend)
        assert np.array_equal(
            got, binary_search_reference(haystack, queries)
        )

    def test_unsorted_haystack_rejected(self, backend):
        haystack = np.array([3, 1, 2, 0] * 2 * backend.num_dpus)
        with pytest.raises(WorkloadError):
            distributed_binary_search(
                haystack, np.array([1], dtype=np.int64), backend
            )

    def test_needs_a_query(self, backend):
        haystack = np.zeros(8 * backend.num_dpus, dtype=np.int64)
        with pytest.raises(WorkloadError):
            distributed_binary_search(
                haystack, np.array([], dtype=np.int64), backend
            )

    def test_workload_validation(self):
        with pytest.raises(WorkloadError):
            BinarySearchWorkload(haystack_items=0)
        with pytest.raises(WorkloadError):
            BinarySearchWorkload(num_queries=0)

    @given(
        haystack=st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=8,
            max_size=64,
        ).filter(lambda v: len(v) % 8 == 0),
        queries=st.lists(
            st.integers(min_value=-10, max_value=110),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_insertion_index_property(self, haystack, queries):
        """Result i satisfies hay[:i] < q <= hay[i:] (left insertion)."""
        backend = registry.create("P", small_test_system())
        hay = np.sort(np.array(haystack, dtype=np.int64))
        qs = np.array(queries, dtype=np.int64)
        got = distributed_binary_search(hay, qs, backend)
        for q, i in zip(qs, got):
            assert np.all(hay[:i] < q)
            assert np.all(hay[i:] >= q)


class TestTsSimilarity:
    def test_matches_reference(self, backend, rng):
        n = backend.num_dpus
        query = rng.integers(0, 50, 4).astype(np.int64)
        series = rng.integers(0, 50, 8 * n + query.size - 1).astype(
            np.int64
        )
        assert distributed_tss(series, query, backend) == tss_reference(
            series, query
        )

    def test_exact_match_found(self, pim):
        n = pim.num_dpus
        query = np.array([7, 8, 9], dtype=np.int64)
        series = np.full(8 * n + 2, 100, dtype=np.int64)
        series[5 : 5 + 3] = query
        position, distance = distributed_tss(series, query, pim)
        assert (position, distance) == (5, 0)

    def test_tie_breaks_to_smallest_position(self, pim):
        n = pim.num_dpus
        query = np.array([1, 2], dtype=np.int64)
        series = np.full(8 * n + 1, 50, dtype=np.int64)
        # Plant the identical best window in two different shards.
        series[2:4] = query
        series[8 * n - 4 : 8 * n - 2] = query
        position, distance = distributed_tss(series, query, pim)
        assert (position, distance) == (2, 0)

    def test_workload_validation(self):
        with pytest.raises(WorkloadError):
            TsSimilarityWorkload(series_items=4, query_items=8)

    @given(
        per_dpu=st.integers(min_value=1, max_value=6),
        query_len=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_brute_force_property(self, per_dpu, query_len, seed):
        """Distributed minimum equals the brute-force SAD minimum."""
        backend = registry.create("P", small_test_system())
        rng = np.random.default_rng(seed)
        positions = per_dpu * backend.num_dpus
        series = rng.integers(0, 20, positions + query_len - 1).astype(
            np.int64
        )
        query = rng.integers(0, 20, query_len).astype(np.int64)
        position, distance = distributed_tss(series, query, backend)
        sads = [
            int(np.abs(series[p : p + query_len] - query).sum())
            for p in range(positions)
        ]
        assert distance == min(sads)
        assert position == sads.index(min(sads))


class TestTierDeclarations:
    def test_prim_workloads_cover_the_tier(self):
        assert set(prim_workloads()) == {"HST", "SCAN", "SEL", "BS", "TS"}

    def test_traces_match_closed_forms(self, tiny_machine):
        """Declared trace volume == closed-form expected_comm_volume."""
        for name, workload in prim_workloads().items():
            trace = comm_trace(workload, tiny_machine)
            assert trace, name
            volume: dict[str, int] = {}
            for entry in trace:
                volume[entry.pattern] = (
                    volume.get(entry.pattern, 0) + entry.total_bytes
                )
            assert volume == workload.expected_comm_volume(tiny_machine)
