"""Packaging-hierarchy topology: coordinates and neighbor math."""

import pytest

from repro.config import PimSystemConfig
from repro.errors import TopologyError
from repro.topology import BankCoord, Topology


@pytest.fixture
def topo() -> Topology:
    return Topology(PimSystemConfig())


class TestCoordinateRoundTrip:
    def test_every_dpu_round_trips(self, topo):
        for dpu in range(topo.config.total_dpus):
            assert topo.dpu_id(topo.coord(dpu)) == dpu

    def test_bank_is_fastest_axis(self, topo):
        assert topo.coord(0) == BankCoord(0, 0, 0, 0)
        assert topo.coord(1) == BankCoord(0, 0, 0, 1)
        assert topo.coord(8) == BankCoord(0, 0, 1, 0)
        assert topo.coord(64) == BankCoord(0, 1, 0, 0)

    def test_out_of_range_id_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.coord(topo.config.total_dpus)
        with pytest.raises(TopologyError):
            topo.coord(-1)

    def test_out_of_range_coord_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.dpu_id(BankCoord(0, 0, 0, 8))
        with pytest.raises(TopologyError):
            topo.dpu_id(BankCoord(1, 0, 0, 0))  # single channel

    def test_all_coords_enumeration(self, topo):
        coords = list(topo.all_coords())
        assert len(coords) == topo.config.total_dpus
        assert len(set(coords)) == topo.config.total_dpus


class TestGroupings:
    def test_chip_members_count(self, topo):
        members = topo.chip_members(0, 1, 2)
        assert len(members) == 8
        for dpu in members:
            c = topo.coord(dpu)
            assert (c.rank, c.chip) == (1, 2)

    def test_rank_members_count(self, topo):
        assert len(topo.rank_members(0, 3)) == 64

    def test_channel_members_cover_everything(self, topo):
        members = topo.channel_members(0)
        assert sorted(members) == list(range(256))


class TestRingMath:
    def test_ring_neighbor_wraps_east(self, topo):
        last_bank = topo.dpu_id(BankCoord(0, 0, 0, 7))
        assert topo.ring_neighbor(last_bank, +1) == topo.dpu_id(
            BankCoord(0, 0, 0, 0)
        )

    def test_ring_neighbor_wraps_west(self, topo):
        first = topo.dpu_id(BankCoord(0, 0, 0, 0))
        assert topo.ring_neighbor(first, -1) == topo.dpu_id(
            BankCoord(0, 0, 0, 7)
        )

    def test_ring_neighbor_stays_on_chip(self, topo):
        for dpu in topo.chip_members(0, 2, 3):
            neighbor = topo.coord(topo.ring_neighbor(dpu))
            assert (neighbor.rank, neighbor.chip) == (2, 3)

    def test_invalid_direction_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.ring_neighbor(0, 2)

    def test_ring_distance(self, topo):
        assert topo.ring_distance(0, 3) == 3
        assert topo.ring_distance(3, 0) == 5
        assert topo.ring_distance(5, 5) == 0

    def test_ring_distance_out_of_range(self, topo):
        with pytest.raises(TopologyError):
            topo.ring_distance(0, 8)

    def test_chip_ring_neighbor(self, topo):
        assert topo.chip_ring_neighbor(7, +1) == 0
        assert topo.chip_ring_neighbor(0, -1) == 7
