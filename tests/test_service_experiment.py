"""The tenant_service_load experiment and its CLI front-ends."""

import json

import pytest

from repro.cli import main
from repro.config import small_test_system
from repro.errors import ServiceError
from repro.experiments import tenant_service_load

pytestmark = pytest.mark.service

#: Small-but-real run: 2 tenants x 24 requests on the 8-DPU machine.
SMALL = dict(tenants=2, requests_per_tenant=24, concurrency=4, seed=5)


def small_run(**overrides):
    params = {**SMALL, **overrides}
    return tenant_service_load.run(machine=small_test_system(), **params)


class TestExperiment:
    def test_conserves_every_request(self):
        result = small_run()
        stats = result.stats
        submitted = SMALL["tenants"] * SMALL["requests_per_tenant"]
        assert stats["submitted"] == submitted
        assert stats["admitted"] + stats["rejected"] == submitted
        assert stats["queued"] == 0

    def test_burst_produces_explicit_rejections_then_none(self):
        result = small_run()
        # The opening burst (16) deliberately exceeds max_queued (8):
        # each tenant sees exactly 8 deterministic rejections, and the
        # paced steady state sees zero.
        for _, _, submitted, admitted, rejected, _, _ in result.tenant_rows:
            assert submitted == SMALL["requests_per_tenant"]
            assert rejected == 8
            assert admitted == submitted - 8

    def test_aligned_payloads_all_replay(self):
        stats = small_run().stats
        assert stats["fallbacks"] == 0
        assert stats["replayed"] == stats["admitted"]

    def test_percentiles_and_slos_come_from_the_latency_family(self):
        result = small_run()
        for tenant, _, _, admitted, _, p50, p99 in result.tenant_rows:
            assert admitted > 0
            assert 0 < p50 <= p99
        assert result.slo.ok, [
            check.objective.describe() for check in result.slo.violations
        ]
        # One p99 objective per tenant + the p999 and rejection-rate gates.
        assert len(result.slo.checks) == SMALL["tenants"] + 2

    def test_is_deterministic(self):
        first, second = small_run(), small_run()
        assert first.stats == second.stats
        assert first.tenant_rows == second.tenant_rows

    def test_seed_changes_the_mix(self):
        first, second = small_run(), small_run(seed=6)
        assert first.tenant_rows != second.tenant_rows

    def test_zero_rejections_is_rate_zero_not_missing_metric(self):
        # 8 requests fit inside max_queued=8, so nothing is rejected;
        # the rejection-rate SLO must read 0 (the counter family is
        # materialized at start), not fail on a missing metric.
        result = small_run(tenants=1, requests_per_tenant=8)
        assert result.stats["rejected"] == 0
        rate = [
            check for check in result.slo.checks
            if check.objective.name == "rejection rate <= 50%"
        ]
        assert len(rate) == 1
        assert rate[0].observed == 0.0
        assert rate[0].passed

    def test_wall_clock_timeout_fails_loudly(self):
        with pytest.raises(ServiceError, match="wall clock|deadlocked"):
            small_run(timeout_s=0.0)


class TestCli:
    ARGS = [
        "--tenants", "2", "--requests", "24", "--concurrency", "4",
        "--seed", "5",
    ]

    def test_serve_alias_prints_the_report(self, capsys):
        assert main(["serve", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "Tenant service load" in out
        assert "Service SLOs" in out
        assert "zero lost" in out

    def test_service_bench_json_is_machine_readable(self, capsys):
        assert main(["service", "bench", *self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["stats"]
        assert stats["admitted"] + stats["rejected"] == stats["submitted"]
        assert len(payload["tenants"]) == 2
        assert all(row["p99_s"] > 0 for row in payload["tenants"])
        assert payload["slo"]["ok"] is True

    def test_slo_file_failure_exits_nonzero(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        slo.write_text(json.dumps({"objectives": [
            {"metric": "service.admitted", "stat": "value", "op": "<",
             "threshold": 1, "name": "impossible"},
        ]}))
        assert main([
            "service", "bench", *self.ARGS,
            "--metrics", str(tmp_path / "m.json"), "--slo", str(slo),
        ]) == 1
        assert "FAIL impossible" in capsys.readouterr().out

    def test_bad_config_fails_cleanly(self, capsys):
        assert main(["serve", "--window", "0"]) == 1
        assert "service bench failed" in capsys.readouterr().err
