"""Event-driven cycle loop vs the naive reference loop.

The production loop (:meth:`NocSimulator.run`) fast-forwards between
heap-scheduled events and only touches routers holding flits; the
original busy-spinning loop survives as ``_run_reference``.  These
tests pin their equivalence byte-for-byte — including on randomized
workloads with dependencies and barriers — plus the precomputed
barrier-release ordering and the empty/degenerate-run contracts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Shape
from repro.errors import SimulationError
from repro.noc import Message, NocNetwork, NocSimulator

COMPARED_FIELDS = (
    "cycles",
    "flits_delivered",
    "messages_delivered",
    "total_flit_hops",
    "peak_buffer_occupancy",
    "arbitration_conflicts",
    "per_message_latency",
    "link_busy_cycles",
    "grant_log",
    "medium_grant_log",
)


def run_both(network, messages, barriers=None, max_cycles=200_000):
    """Run the same workload through both loops; return both stats."""

    def one(loop_name):
        sim = NocSimulator(network, list(messages), record_grants=True)
        if barriers is not None:
            sim.set_barriers(barriers)
        runner = sim.run if loop_name == "event" else sim._run_reference
        return runner(max_cycles)

    return one("event"), one("reference")


def assert_equivalent(network, messages, barriers=None):
    try:
        event, reference = run_both(network, messages, barriers)
    except SimulationError:
        # If one loop hits the guard (deadlock/max_cycles), both must.
        sim = NocSimulator(network, list(messages), record_grants=True)
        if barriers is not None:
            sim.set_barriers(barriers)
        with pytest.raises(SimulationError):
            sim.run(200_000)
        with pytest.raises(SimulationError):
            sim._run_reference(200_000)
        return
    for name in COMPARED_FIELDS:
        assert getattr(event, name) == getattr(reference, name), name
    # The messages themselves saw identical timelines.
    assert event.events_processed + event.idle_cycles_skipped == event.cycles
    assert reference.events_processed == reference.cycles
    assert reference.idle_cycles_skipped == 0


class TestEquivalenceDirected:
    def test_cross_rank_contention(self):
        shape = Shape(2, 2, 2)
        net = NocNetwork(shape)
        n = shape.num_dpus
        messages = [
            Message(msg_id=i, src=i % n, dst=(i * 3 + 1) % n or 1,
                    num_flits=3 + i % 4, ready_cycle=(i * 7) % 50)
            for i in range(20)
            if i % n != ((i * 3 + 1) % n or 1)
        ]
        assert_equivalent(net, messages)

    def test_dependency_chain(self):
        shape = Shape(4, 1, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=0, dst=1, num_flits=6),
            Message(msg_id=1, src=1, dst=2, num_flits=6, deps=(0,)),
            Message(msg_id=2, src=2, dst=3, num_flits=6, deps=(1,)),
            Message(msg_id=3, src=3, dst=0, num_flits=6, deps=(2,)),
        ]
        assert_equivalent(net, messages)

    def test_barriered_generations(self):
        shape = Shape(2, 2, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=i, src=i % 4, dst=(i + 1) % 4, num_flits=4)
            for i in range(8)
        ]
        barriers = {i: i // 4 for i in range(8)}
        assert_equivalent(net, messages, barriers)


@st.composite
def random_workload(draw):
    banks = draw(st.integers(1, 4))
    chips = draw(st.integers(1, 2))
    ranks = draw(st.integers(1, 2))
    shape = Shape(banks, chips, ranks)
    n = shape.num_dpus
    if n < 2:
        banks, n = 2, 2
        shape = Shape(2, 1, 1)
    count = draw(st.integers(1, 10))
    messages = []
    for msg_id in range(count):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 2))
        if dst >= src:
            dst += 1
        deps = ()
        if msg_id and draw(st.booleans()):
            deps = (draw(st.integers(0, msg_id - 1)),)
        messages.append(
            Message(
                msg_id=msg_id,
                src=src,
                dst=dst,
                num_flits=draw(st.integers(1, 5)),
                ready_cycle=draw(st.integers(0, 60)),
                deps=deps,
            )
        )
    use_barriers = draw(st.booleans())
    barriers = None
    if use_barriers:
        # Nondecreasing in msg_id, so deps (always to earlier ids)
        # never point into a later barrier generation.
        barriers = {m.msg_id: m.msg_id // 3 for m in messages}
    return shape, messages, barriers


@pytest.mark.slow
class TestEquivalenceRandomized:
    @settings(max_examples=50, deadline=None)
    @given(random_workload())
    def test_event_loop_matches_reference(self, workload):
        shape, messages, barriers = workload
        net = NocNetwork(shape)
        assert_equivalent(net, messages, barriers)


@st.composite
def link_faults(draw):
    """Per-link degradation for a network not yet built: indices into
    its sorted link-name list, plus the perturbation to install."""
    faults = []
    for _ in range(draw(st.integers(0, 4))):
        faults.append({
            "link": draw(st.integers(0, 63)),
            "factor": draw(st.integers(1, 3)),
            "outages": tuple(
                (start, start + draw(st.integers(1, 120)))
                for start in draw(
                    st.lists(st.integers(0, 300), max_size=2)
                )
            ),
            "corruption_rate": draw(
                st.sampled_from([0.0, 0.1, 0.5])
            ),
        })
    bus_stall = draw(st.booleans())
    return faults, bus_stall


@pytest.mark.slow
class TestEquivalenceUnderInjectedFaults:
    """Satellite of ``repro.faults``: the two loops must stay byte-equal
    on randomized workloads with link-degradation windows, serialization
    factors, bus stalls, and corruption coins active."""

    @settings(max_examples=50, deadline=None)
    @given(random_workload(), link_faults())
    def test_event_loop_matches_reference_with_faults(
        self, workload, fault_spec
    ):
        shape, messages, barriers = workload
        faults, bus_stall = fault_spec
        net = NocNetwork(shape)
        names = sorted(net.links)
        for fault in faults:
            link = net.links[names[fault["link"] % len(names)]]
            link.configure_faults(
                outages=fault["outages"],
                fault_factor=fault["factor"],
                corruption_rate=fault["corruption_rate"],
                retry_cycles=2 * link.cycles_per_flit,
                corruption_salt=7,
            )
        if bus_stall:
            net.bus_medium.stall_windows = ((10, 90), (150, 220))
        assert_equivalent(net, messages, barriers)

    def test_faulted_run_is_never_faster_than_clean(self):
        shape = Shape(2, 2, 2)
        messages = [
            Message(msg_id=i, src=i % 8, dst=(i * 3 + 1) % 8 or 1,
                    num_flits=3)
            for i in range(12)
            if i % 8 != ((i * 3 + 1) % 8 or 1)
        ]
        clean, _ = run_both(NocNetwork(shape), messages)
        net = NocNetwork(shape)
        for name in sorted(net.links):
            net.links[name].configure_faults(
                outages=((0, 50),), fault_factor=2
            )
        faulted, _ = run_both(net, messages)
        assert faulted.cycles >= clean.cycles


class TestBarrierReleaseOrdering:
    """The O(1) frontier over a precomputed release order must behave
    exactly like the old per-message scan over every barrier."""

    def test_noncontiguous_barrier_indices(self):
        shape = Shape(4, 1, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=0, dst=1, num_flits=4),
            Message(msg_id=1, src=1, dst=2, num_flits=4),
            Message(msg_id=2, src=2, dst=3, num_flits=4),
        ]
        sim = NocSimulator(net, messages)
        sim.set_barriers({0: 2, 1: 5, 2: 9})
        sim.run()
        assert messages[1].inject_start_cycle >= messages[0].complete_cycle
        assert messages[2].inject_start_cycle >= messages[1].complete_cycle

    def test_same_barrier_runs_concurrently(self):
        shape = Shape(4, 1, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=0, dst=1, num_flits=8),
            Message(msg_id=1, src=2, dst=3, num_flits=8),
        ]
        sim = NocSimulator(net, messages)
        sim.set_barriers({0: 1, 1: 1})
        sim.run()
        assert messages[0].inject_start_cycle == messages[1].inject_start_cycle

    def test_uncovered_message_defaults_to_barrier_zero(self):
        """A message without an explicit barrier injects immediately and
        contributes no outstanding count — it never gates later barriers
        (the original scan's semantics, preserved by the frontier)."""
        shape = Shape(4, 1, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=0, dst=1, num_flits=8),
            Message(msg_id=1, src=1, dst=2, num_flits=2),
        ]
        sim = NocSimulator(net, messages)
        sim.set_barriers({1: 3})
        sim.run()
        assert messages[0].inject_start_cycle == 0
        assert messages[1].inject_start_cycle == 0

    def test_barrier_release_order_is_sorted_not_insertion(self):
        shape = Shape(4, 1, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=0, dst=1, num_flits=4),
            Message(msg_id=1, src=1, dst=2, num_flits=4),
        ]
        sim = NocSimulator(net, messages)
        # Insertion order deliberately reversed vs barrier order.
        sim.set_barriers({1: 7, 0: 1})
        sim.run()
        assert messages[1].inject_start_cycle >= messages[0].complete_cycle


class TestDegenerateRuns:
    def test_empty_run_returns_clean_stats(self):
        net = NocNetwork(Shape(2, 1, 1))
        stats = NocSimulator(net, []).run()
        assert stats.cycles == 0
        assert stats.flits_delivered == 0
        assert stats.messages_delivered == 0
        assert stats.events_processed == 0
        assert stats.per_message_latency == {}

    def test_empty_reference_run_matches(self):
        net = NocNetwork(Shape(2, 1, 1))
        stats = NocSimulator(net, [])._run_reference()
        assert stats.cycles == 0
        assert stats.flits_delivered == 0

    def test_zero_flit_message_rejected_at_construction(self):
        net = NocNetwork(Shape(2, 1, 1))
        msg = Message(msg_id=0, src=0, dst=1, num_flits=1)
        msg.num_flits = 0  # mutated after the dataclass validation ran
        with pytest.raises(SimulationError, match="zero-flit"):
            NocSimulator(net, [msg])

    def test_unknown_dependency_rejected(self):
        net = NocNetwork(Shape(2, 1, 1))
        msg = Message(msg_id=0, src=0, dst=1, num_flits=1, deps=(42,))
        with pytest.raises(SimulationError, match="unknown"):
            NocSimulator(net, [msg])

    def test_self_dependency_rejected(self):
        net = NocNetwork(Shape(2, 1, 1))
        msg = Message(msg_id=0, src=0, dst=1, num_flits=1, deps=(0,))
        with pytest.raises(SimulationError, match="itself"):
            NocSimulator(net, [msg])

    def test_far_future_ready_cycle_hits_guard_without_spinning(self):
        """The event loop raises on a beyond-max_cycles event instead of
        busy-spinning its way there."""
        net = NocNetwork(Shape(2, 1, 1))
        msg = Message(msg_id=0, src=0, dst=1, num_flits=1,
                      ready_cycle=10**9)
        with pytest.raises(SimulationError, match="exceeded"):
            NocSimulator(net, [msg]).run(max_cycles=1000)


class TestEventAccounting:
    def test_idle_cycles_actually_skipped(self):
        """A sparse workload (two bursts far apart) must not be walked
        cycle by cycle."""
        shape = Shape(2, 1, 1)
        net = NocNetwork(shape)
        messages = [
            Message(msg_id=0, src=0, dst=1, num_flits=2),
            Message(msg_id=1, src=1, dst=0, num_flits=2,
                    ready_cycle=50_000),
        ]
        stats = NocSimulator(net, messages).run()
        assert stats.cycles > 50_000
        assert stats.idle_cycles_skipped > 40_000
        assert stats.events_processed < 1_000
        assert (
            stats.events_processed + stats.idle_cycles_skipped
            == stats.cycles
        )
