"""Registry-wide smoke test: every experiment runs one real point.

Parametrized over ``REGISTRY.ids()`` so a newly registered experiment is
smoke-covered automatically — if its sweep enumeration, first point, or
cacheability is broken, this file fails without anyone writing a test.
"""

import pytest

from repro.experiments.common import default_machine
from repro.runner import REGISTRY, canonical_json

MACHINE = default_machine()

ALL_IDS = REGISTRY.ids()


def test_registry_is_populated():
    # The repo ships 20 experiment drivers; the floor guards against an
    # import-order regression silently emptying the registry.
    assert len(ALL_IDS) >= 20


def test_prim_suite_registered():
    """The PrIM tier experiment sweeps its six workloads plus the
    served-mix point, in tier order."""
    from repro.experiments.prim_suite import WORKLOAD_KEYS

    spec = REGISTRY.get("prim_suite")
    points = spec.points(MACHINE)
    assert len(points) == len(WORKLOAD_KEYS) + 1
    assert [p.params.get("workload") for p in points[:-1]] == list(
        WORKLOAD_KEYS
    )
    assert points[-1].params == {"part": "service"}


@pytest.mark.parametrize("experiment_id", ALL_IDS)
class TestEverySpec:
    def test_spec_shape(self, experiment_id):
        spec = REGISTRY.get(experiment_id)
        assert spec.experiment_id == experiment_id
        assert spec.title.strip()

    def test_sweep_enumeration_is_a_permutation(self, experiment_id):
        spec = REGISTRY.get(experiment_id)
        points = spec.points(MACHINE)
        assert len(points) >= 1
        assert sorted(p.index for p in points) == list(range(len(points)))
        for point in points:
            # Params are one third of the cache key: must be JSON-able.
            canonical_json(point.params)

    def test_first_point_runs_and_is_cacheable(self, experiment_id):
        spec = REGISTRY.get(experiment_id)
        point = spec.points(MACHINE)[0]
        value = spec.point_fn(MACHINE, **point.params)
        # The value crosses the process boundary and the on-disk cache.
        canonical_json(value)
