"""CommBreakdown arithmetic and accumulation."""

import pytest

from repro.collectives import CollectiveResult, CommBreakdown, CommStats
from repro.errors import CollectiveError


class TestCommBreakdown:
    def test_total_sums_components(self):
        b = CommBreakdown(
            inter_bank_s=1, inter_chip_s=2, inter_rank_s=3,
            host_transfer_s=4, host_compute_s=5, sync_s=6, mem_s=7,
        )
        assert b.total_s == pytest.approx(28)

    def test_addition(self):
        a = CommBreakdown(inter_bank_s=1, sync_s=0.5)
        b = CommBreakdown(inter_bank_s=2, mem_s=1)
        c = a + b
        assert c.inter_bank_s == pytest.approx(3)
        assert c.sync_s == pytest.approx(0.5)
        assert c.mem_s == pytest.approx(1)

    def test_scaled(self):
        b = CommBreakdown(inter_rank_s=2).scaled(3)
        assert b.inter_rank_s == pytest.approx(6)

    def test_scaled_rejects_negative(self):
        with pytest.raises(CollectiveError):
            CommBreakdown().scaled(-1)

    def test_negative_component_rejected(self):
        with pytest.raises(CollectiveError):
            CommBreakdown(sync_s=-1)

    def test_as_dict_round_trip(self):
        b = CommBreakdown(inter_bank_s=1.5)
        d = b.as_dict()
        assert d["inter_bank_s"] == pytest.approx(1.5)
        assert set(d) == {
            "inter_bank_s", "inter_chip_s", "inter_rank_s",
            "host_transfer_s", "host_compute_s", "sync_s", "mem_s",
        }


class TestCommStats:
    def test_accumulates_results_and_breakdowns(self):
        stats = CommStats()
        stats.add(CommBreakdown(inter_bank_s=1))
        stats.add(
            CollectiveResult(breakdown=CommBreakdown(inter_chip_s=2))
        )
        assert stats.num_collectives == 2
        assert stats.total_s == pytest.approx(3)

    def test_collective_result_time(self):
        result = CollectiveResult(breakdown=CommBreakdown(sync_s=1e-6))
        assert result.time_s == pytest.approx(1e-6)
        assert result.outputs is None


class TestResilienceFields:
    def test_defaults_describe_a_clean_run(self):
        result = CollectiveResult(breakdown=CommBreakdown())
        assert result.status == "completed"
        assert result.completed
        assert result.retries == 0
        assert result.fault_time_s == 0.0
        assert result.critical_node == ""

    def test_aborted_is_not_completed(self):
        result = CollectiveResult(
            breakdown=CommBreakdown(), status="aborted",
            critical_node="bank:0:0:0",
        )
        assert not result.completed

    def test_degraded_still_delivers(self):
        result = CollectiveResult(
            breakdown=CommBreakdown(), status="degraded", retries=3,
        )
        assert result.completed

    def test_unknown_status_rejected(self):
        with pytest.raises(CollectiveError, match="status"):
            CollectiveResult(breakdown=CommBreakdown(), status="on-fire")

    def test_negative_retries_rejected(self):
        with pytest.raises(CollectiveError):
            CollectiveResult(breakdown=CommBreakdown(), retries=-1)

    def test_negative_fault_time_rejected(self):
        with pytest.raises(CollectiveError):
            CollectiveResult(breakdown=CommBreakdown(), fault_time_s=-1.0)
