"""Service config validation and the resolved time-slot cycle."""

import pytest

from repro.collectives.patterns import Collective
from repro.config.service import (
    KNOWN_PATTERNS,
    ServiceConfig,
    TenantQuotaConfig,
    TimeSlotConfig,
    default_service_config,
)
from repro.errors import ConfigurationError
from repro.service import SlotCycle

pytestmark = pytest.mark.service


class TestKnownPatterns:
    def test_matches_collective_enum_exactly(self):
        assert set(KNOWN_PATTERNS) == {c.value for c in Collective}


class TestTimeSlotConfig:
    def test_rejects_unknown_pattern(self):
        with pytest.raises(ConfigurationError, match="unknown pattern"):
            TimeSlotConfig("bad", ("all_redcue",))

    def test_rejects_duplicate_patterns(self):
        with pytest.raises(ConfigurationError, match="more than once"):
            TimeSlotConfig("dup", ("all_reduce", "all_reduce"))

    def test_rejects_non_positive_window(self):
        with pytest.raises(ConfigurationError, match="time_window_s"):
            TimeSlotConfig("w", time_window_s=0.0)
        with pytest.raises(ConfigurationError, match="finite"):
            TimeSlotConfig("w", time_window_s=float("inf"))

    def test_rejects_bad_multiplexing(self):
        with pytest.raises(ConfigurationError, match="max_multiplexing"):
            TimeSlotConfig("m", max_multiplexing=0)

    def test_empty_patterns_means_any(self):
        slot = TimeSlotConfig("any")
        assert slot.patterns == ()


class TestQuotaConfig:
    def test_rejects_non_positive_limits(self):
        with pytest.raises(ConfigurationError, match="max_queued"):
            TenantQuotaConfig(max_queued=0)
        with pytest.raises(ConfigurationError, match="max_per_slot"):
            TenantQuotaConfig(max_per_slot=-1)


class TestServiceConfig:
    def test_needs_at_least_one_slot(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ServiceConfig(slots=())

    def test_rejects_duplicate_slot_names(self):
        slot = TimeSlotConfig("s", ("all_reduce",))
        with pytest.raises(ConfigurationError, match="unique"):
            ServiceConfig(slots=(slot, slot))

    def test_rejects_negative_switch_time(self):
        with pytest.raises(ConfigurationError, match="switch_time_s"):
            ServiceConfig(
                slots=(TimeSlotConfig("s"),), switch_time_s=-1e-6
            )

    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ConfigurationError, match="queue_limit"):
            ServiceConfig(slots=(TimeSlotConfig("s"),), queue_limit=0)

    def test_rejects_duplicate_tenant_quota(self):
        with pytest.raises(ConfigurationError, match="duplicate tenant"):
            ServiceConfig(
                slots=(TimeSlotConfig("s"),),
                tenant_quotas=(
                    ("a", TenantQuotaConfig()),
                    ("a", TenantQuotaConfig(max_queued=2)),
                ),
            )

    def test_cycle_time_mirrors_static_schedule(self):
        # full_cycle_time = sum(windows) + n_slots * switch_time.
        config = ServiceConfig(
            slots=(
                TimeSlotConfig("a", time_window_s=1e-3),
                TimeSlotConfig("b", time_window_s=2e-3),
            ),
            switch_time_s=1e-6,
        )
        assert config.cycle_time_s == pytest.approx(3e-3 + 2e-6)

    def test_quota_lookup_falls_back_to_default(self):
        special = TenantQuotaConfig(max_queued=2, max_per_slot=1)
        config = ServiceConfig(
            slots=(TimeSlotConfig("s"),),
            default_quota=TenantQuotaConfig(max_queued=9),
            tenant_quotas=(("vip", special),),
        )
        assert config.quota_for("vip") == special
        assert config.quota_for("anyone") == config.default_quota

    def test_round_trips_through_dict(self):
        config = ServiceConfig(
            slots=(
                TimeSlotConfig("ar", ("all_reduce",), 2e-3, 2),
                TimeSlotConfig("rest", (), 1e-3, 1),
            ),
            switch_time_s=5e-6,
            queue_limit=32,
            default_quota=TenantQuotaConfig(max_queued=4, max_per_slot=2),
            tenant_quotas=(("vip", TenantQuotaConfig(max_queued=16)),),
        )
        assert ServiceConfig.from_dict(config.as_dict()) == config


class TestSlotCycle:
    def test_default_config_accepts_every_pattern(self):
        cycle = SlotCycle(default_service_config())
        for pattern in Collective:
            assert cycle.accepts(pattern)
            assert cycle.slots_for(pattern)

    def test_positions_wrap_around(self):
        cycle = SlotCycle(default_service_config(("all_reduce", "gather")))
        assert len(cycle) == 2
        assert cycle.slot_at(0).name == "all_reduce"
        assert cycle.slot_at(1).name == "gather"
        assert cycle.slot_at(2).name == "all_reduce"
        assert cycle.cycle_of(0) == 0
        assert cycle.cycle_of(3) == 1

    def test_wildcard_slot_accepts_everything(self):
        cycle = SlotCycle(
            ServiceConfig(slots=(TimeSlotConfig("any"),))
        )
        for pattern in Collective:
            assert cycle.slot_at(0).accepts(pattern)

    def test_restricted_slot_filters(self):
        cycle = SlotCycle(default_service_config(("broadcast",)))
        assert not cycle.accepts(Collective.ALL_REDUCE)
        assert cycle.accepts(Collective.BROADCAST)
