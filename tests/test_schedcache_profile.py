"""Payload-rescaling replay is EXACTLY ``schedule_timing``, not close.

The profile tier is only allowed to replace fresh compilation because
its analytic replay is bit-identical: within any step every transfer
shares one length that divides the payload, so the replayed aggregates
add the same integers in the same order as the slow path (see
``repro/schedcache/profile.py`` for the full argument).  These
properties pin that claim with ``==`` — no tolerance, no ``approx`` —
across the conformance matrix's shapes, every collective, both rooted
ends, and payloads far beyond the profile's base.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.patterns import Collective
from repro.config.conformance import ConformanceConfig
from repro.config.network import PimnetNetworkConfig
from repro.core.schedule import Shape, build_schedule, schedule_timing
from repro.errors import SchedCacheError
from repro.schedcache import (
    MAX_EXACT_BYTES,
    ScheduleCache,
    TimingProfile,
    extract_profile,
)

NETWORK = PimnetNetworkConfig()
CONFORMANCE = ConformanceConfig()
#: The conformance matrix's shapes — the acceptance surface of PR 5.
SHAPES = [Shape(banks=b, chips=c, ranks=r) for b, c, r in CONFORMANCE.shapes]
COLLECTIVES = list(Collective)
ROOTED = (Collective.BROADCAST, Collective.REDUCE, Collective.GATHER)


def _fresh_times(pattern, shape, num_elements, root=0, itemsize=8):
    return schedule_timing(
        build_schedule(pattern, shape, num_elements, root),
        NETWORK,
        itemsize=itemsize,
    )


def _profile_for(pattern, shape, root=0, itemsize=8):
    return extract_profile(
        build_schedule(pattern, shape, shape.num_dpus, root),
        itemsize=itemsize,
        root=root,
    )


class TestExactReplay:
    @given(
        shape_index=st.integers(min_value=0, max_value=len(SHAPES) - 1),
        pattern=st.sampled_from(COLLECTIVES),
        k=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=200, deadline=None)
    def test_replay_equals_fresh_compilation_exactly(
        self, shape_index, pattern, k
    ):
        shape = SHAPES[shape_index]
        profile = _profile_for(pattern, shape)
        num_elements = shape.num_dpus * k
        assert profile.exact_for(num_elements)
        assert profile.times(num_elements, NETWORK) == _fresh_times(
            pattern, shape, num_elements
        )

    @pytest.mark.parametrize("pattern", ROOTED)
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_nonzero_root_replays_exactly(self, pattern, shape):
        root = shape.num_dpus - 1
        profile = _profile_for(pattern, shape, root=root)
        for k in (1, 3, 64):
            num_elements = shape.num_dpus * k
            assert profile.times(num_elements, NETWORK) == _fresh_times(
                pattern, shape, num_elements, root=root
            )

    @pytest.mark.parametrize("payload_bytes", CONFORMANCE.payload_bytes)
    @pytest.mark.parametrize("pattern", COLLECTIVES)
    def test_conformance_matrix_payloads_replay_exactly(
        self, pattern, payload_bytes
    ):
        itemsize = CONFORMANCE.itemsize
        for shape in SHAPES:
            num_elements = payload_bytes // itemsize
            profile = _profile_for(pattern, shape, itemsize=itemsize)
            assert profile.times(num_elements, NETWORK) == _fresh_times(
                pattern, shape, num_elements, itemsize=itemsize
            )

    @given(
        shape_index=st.integers(min_value=0, max_value=len(SHAPES) - 1),
        pattern=st.sampled_from(COLLECTIVES),
        k=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_cache_timing_equals_fresh_compilation_exactly(
        self, shape_index, pattern, k
    ):
        """The same property through the full cache front door."""
        shape = SHAPES[shape_index]
        cache = ScheduleCache()
        cache.profile(pattern, shape, NETWORK)
        num_elements = shape.num_dpus * k
        assert cache.timing(
            pattern, shape, num_elements, NETWORK
        ) == _fresh_times(pattern, shape, num_elements)
        assert cache.counters.timing_replays == 1


class TestRoundTrip:
    @pytest.mark.parametrize("pattern", COLLECTIVES)
    def test_json_round_trip_preserves_replay_bits(self, pattern):
        shape = SHAPES[-1]
        profile = _profile_for(pattern, shape)
        revived = TimingProfile.from_dict(profile.to_dict())
        assert revived == profile
        for k in (1, 7, 1000):
            num_elements = shape.num_dpus * k
            assert revived.times(num_elements, NETWORK) == profile.times(
                num_elements, NETWORK
            )

    def test_version_mismatch_is_rejected(self):
        payload = _profile_for(Collective.ALL_REDUCE, SHAPES[0]).to_dict()
        payload["profile_version"] = 999
        with pytest.raises(SchedCacheError):
            TimingProfile.from_dict(payload)

    @pytest.mark.parametrize(
        "damage",
        [
            lambda d: d.pop("steps"),
            lambda d: d["steps"].append({"bogus": True}),
            lambda d: d.update(base_elements="four"),
        ],
        ids=["no-steps", "bogus-step", "non-int-base"],
    )
    def test_damaged_payload_is_rejected(self, damage):
        payload = _profile_for(Collective.ALL_REDUCE, SHAPES[0]).to_dict()
        damage(payload)
        with pytest.raises(SchedCacheError):
            TimingProfile.from_dict(payload)


class TestFallbackBoundaries:
    def test_out_of_model_payload_falls_back_to_fresh(self):
        """A payload past the float-exactness bound still gets the
        slow-path answer — through compilation, not replay."""
        shape = Shape(banks=2, chips=2, ranks=1)
        cache = ScheduleCache()
        cache.profile(Collective.ALL_REDUCE, shape, NETWORK)
        too_big = shape.num_dpus * (MAX_EXACT_BYTES // 8)
        assert cache.timing(
            Collective.ALL_REDUCE, shape, too_big, NETWORK
        ) == _fresh_times(Collective.ALL_REDUCE, shape, too_big)
        assert cache.counters.timing_fallbacks == 1
        assert cache.counters.timing_replays == 0

    def test_exactness_guard_rejects_astronomical_payloads(self):
        shape = SHAPES[0]
        profile = _profile_for(Collective.ALL_REDUCE, shape)
        too_big = shape.num_dpus * (MAX_EXACT_BYTES // 8)
        assert profile.supports(too_big)
        assert not profile.exact_for(too_big)

    def test_supports_rejects_non_multiples(self):
        profile = _profile_for(Collective.ALL_TO_ALL, SHAPES[-1])
        assert profile.supports(SHAPES[-1].num_dpus * 3)
        assert not profile.supports(SHAPES[-1].num_dpus * 3 + 1)
