"""System configuration: shape math and validation."""

import pytest

from repro.config import DpuConfig, HostConfig, PimSystemConfig
from repro.errors import ConfigurationError


class TestDpuConfig:
    def test_upmem_defaults(self):
        dpu = DpuConfig()
        assert dpu.frequency_hz == pytest.approx(350e6)
        assert dpu.num_hw_tasklets == 24
        assert dpu.wram_bytes == 64 * 1024
        assert dpu.iram_bytes == 24 * 1024
        assert dpu.mram_bytes == 64 * 1024 * 1024

    def test_cycle_time(self):
        assert DpuConfig().cycle_time_s == pytest.approx(1 / 350e6)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigurationError):
            DpuConfig(frequency_hz=0)

    def test_rejects_bad_tasklet_threshold(self):
        with pytest.raises(ConfigurationError):
            DpuConfig(min_tasklets_full_throughput=25)

    def test_rejects_zero_wram(self):
        with pytest.raises(ConfigurationError):
            DpuConfig(wram_bytes=0)

    def test_rejects_nan_and_inf_frequency(self):
        # NaN slips through a bare `<= 0` check (all NaN comparisons
        # are false) and would propagate into every cycle conversion.
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                DpuConfig(frequency_hz=bad)

    def test_rejects_nan_memory_sizes(self):
        with pytest.raises(ConfigurationError):
            DpuConfig(mram_bytes=float("nan"))


class TestPimSystemConfig:
    def test_table_vi_shape(self):
        system = PimSystemConfig()
        assert system.banks_per_chip == 8
        assert system.chips_per_rank == 8
        assert system.ranks_per_channel == 4
        assert system.banks_per_rank == 64
        assert system.banks_per_channel == 256
        assert system.total_dpus == 256

    def test_pim_memory_capacity(self):
        system = PimSystemConfig()
        assert system.pim_memory_bytes == 256 * 64 * 1024 * 1024

    def test_rejects_zero_banks(self):
        with pytest.raises(ConfigurationError):
            PimSystemConfig(banks_per_chip=0)

    def test_rejects_nan_counts(self):
        with pytest.raises(ConfigurationError):
            PimSystemConfig(chips_per_rank=float("nan"))

    @pytest.mark.parametrize(
        "dpus,expected",
        [
            (8, (8, 1, 1)),
            (16, (8, 2, 1)),
            (64, (8, 8, 1)),
            (128, (8, 8, 2)),
            (256, (8, 8, 4)),
            (4, (4, 1, 1)),
            (1, (1, 1, 1)),
        ],
    )
    def test_scaled_to_dpus(self, dpus, expected):
        scaled = PimSystemConfig().scaled_to_dpus(dpus)
        assert (
            scaled.banks_per_chip,
            scaled.chips_per_rank,
            scaled.ranks_per_channel,
        ) == expected
        assert scaled.total_dpus == dpus

    def test_scaled_beyond_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            PimSystemConfig().scaled_to_dpus(512)

    def test_scaled_uneven_rejected(self):
        with pytest.raises(ConfigurationError):
            PimSystemConfig().scaled_to_dpus(12)  # does not fill 8-bank chips

    def test_scaled_keeps_dpu_config(self):
        base = PimSystemConfig()
        assert base.scaled_to_dpus(8).dpu == base.dpu


class TestHostConfig:
    def test_defaults_are_positive(self):
        host = HostConfig()
        assert host.num_cores == 16
        assert host.frequency_hz == pytest.approx(4e9)
        assert host.reduce_bandwidth_bytes_per_s > 0

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            HostConfig(kernel_launch_overhead_s=-1e-6)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            HostConfig(num_cores=0)

    def test_rejects_nan_overheads_and_bandwidth(self):
        nan = float("nan")
        for kwargs in (
            {"frequency_hz": nan},
            {"reduce_bandwidth_bytes_per_s": nan},
            {"kernel_launch_overhead_s": nan},
            {"transfer_setup_overhead_s": nan},
            {"per_rank_transfer_overhead_s": nan},
        ):
            with pytest.raises(ConfigurationError):
                HostConfig(**kwargs)
