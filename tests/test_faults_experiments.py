"""Resilience experiments: degradation curves with the shapes the
common-random-numbers sampler guarantees by construction."""

import pytest

from repro.config import small_test_system
from repro.experiments import fault_sweep, straggler_tail

TRIALS = 8


@pytest.fixture(scope="module")
def sweep_result():
    return fault_sweep.run(machine=small_test_system(), trials=TRIALS)


@pytest.fixture(scope="module")
def tail_result():
    return straggler_tail.run(machine=small_test_system(), trials=TRIALS)


class TestFaultSweep:
    def test_bandwidth_monotone_non_increasing(self, sweep_result):
        assert sweep_result.monotone_bandwidth()

    def test_fault_free_point_is_clean(self, sweep_result):
        assert sweep_result.fault_free_point_clean()

    def test_completion_rate_never_recovers(self, sweep_result):
        rates = sweep_result.completion_rates
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_retries_grow_with_corruption_rate(self, sweep_result):
        retries = sweep_result.mean_retries
        assert retries[0] == 0
        assert all(b >= a for a, b in zip(retries, retries[1:]))

    def test_format_table_shape(self, sweep_result):
        text = fault_sweep.format_table(sweep_result)
        assert "fault_sweep" in text
        assert "rate factor" in text
        assert "monotone" in text

    def test_deterministic(self):
        machine = small_test_system()
        a = fault_sweep.run(machine=machine, trials=4)
        b = fault_sweep.run(machine=machine, trials=4)
        assert a == b


class TestStragglerTail:
    def test_tail_grows_with_severity(self, tail_result):
        assert tail_result.growing_tail()

    def test_severity_one_injects_no_visible_straggler(self, tail_result):
        assert tail_result.degraded_fractions[0] == 0.0

    def test_tail_amplification_at_least_one(self, tail_result):
        assert tail_result.tail_amplification() >= 1.0

    def test_p999_dominates_p50(self, tail_result):
        for p50, p999 in zip(tail_result.p50s, tail_result.p999s):
            assert p999 >= p50

    def test_format_table_shape(self, tail_result):
        text = straggler_tail.format_table(tail_result)
        assert "straggler_tail" in text
        assert "severity (x)" in text
