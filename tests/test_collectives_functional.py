"""Backend-independent functional semantics of every collective."""

import numpy as np
import pytest

from repro.collectives import (
    Collective,
    CollectiveRequest,
    ReduceOp,
    functional,
)
from repro.errors import CollectiveError

from .conftest import make_buffers

N = 8
E = 16  # elements per DPU


def request(pattern, op=ReduceOp.SUM, root=0):
    return CollectiveRequest(
        pattern, E * 8, dtype=np.dtype(np.int64), op=op, root=root
    )


class TestAllReduce:
    def test_every_dpu_gets_the_sum(self, rng):
        buffers = make_buffers(N, E, rng)
        total = np.sum(buffers, axis=0)
        outputs = functional.execute(request(Collective.ALL_REDUCE), buffers)
        assert len(outputs) == N
        for out in outputs:
            assert np.array_equal(out, total)

    def test_min_op(self, rng):
        buffers = make_buffers(N, E, rng)
        outputs = functional.execute(
            request(Collective.ALL_REDUCE, op=ReduceOp.MIN), buffers
        )
        assert np.array_equal(outputs[0], np.min(buffers, axis=0))

    def test_inputs_not_mutated(self, rng):
        buffers = make_buffers(N, E, rng)
        snapshots = [b.copy() for b in buffers]
        functional.execute(request(Collective.ALL_REDUCE), buffers)
        for buf, snap in zip(buffers, snapshots):
            assert np.array_equal(buf, snap)


class TestReduceScatter:
    def test_shards_partition_the_sum(self, rng):
        buffers = make_buffers(N, E, rng)
        total = np.sum(buffers, axis=0)
        outputs = functional.execute(
            request(Collective.REDUCE_SCATTER), buffers
        )
        assert np.array_equal(np.concatenate(outputs), total)
        for out in outputs:
            assert out.size == E // N


class TestAllGather:
    def test_everyone_gets_concatenation(self, rng):
        buffers = make_buffers(N, E, rng)
        outputs = functional.execute(request(Collective.ALL_GATHER), buffers)
        expected = np.concatenate(buffers)
        for out in outputs:
            assert np.array_equal(out, expected)


class TestAllToAll:
    def test_transpose_of_chunks(self, rng):
        buffers = make_buffers(N, E, rng)
        outputs = functional.execute(request(Collective.ALL_TO_ALL), buffers)
        chunk = E // N
        for dst in range(N):
            for src in range(N):
                assert np.array_equal(
                    outputs[dst][src * chunk : (src + 1) * chunk],
                    buffers[src][dst * chunk : (dst + 1) * chunk],
                )

    def test_alltoall_is_involution(self, rng):
        buffers = make_buffers(N, E, rng)
        once = functional.execute(request(Collective.ALL_TO_ALL), buffers)
        twice = functional.execute(request(Collective.ALL_TO_ALL), once)
        for a, b in zip(buffers, twice):
            assert np.array_equal(a, b)


class TestRooted:
    def test_broadcast(self, rng):
        buffers = make_buffers(N, E, rng)
        outputs = functional.execute(
            request(Collective.BROADCAST, root=3), buffers
        )
        for out in outputs:
            assert np.array_equal(out, buffers[3])

    def test_reduce_root_only(self, rng):
        buffers = make_buffers(N, E, rng)
        outputs = functional.execute(
            request(Collective.REDUCE, root=2), buffers
        )
        assert np.array_equal(outputs[2], np.sum(buffers, axis=0))
        for i, out in enumerate(outputs):
            if i != 2:
                assert out.size == 0

    def test_gather_root_only(self, rng):
        buffers = make_buffers(N, E, rng)
        outputs = functional.execute(
            request(Collective.GATHER, root=5), buffers
        )
        assert np.array_equal(outputs[5], np.concatenate(buffers))
        assert outputs[0].size == 0


class TestInputValidation:
    def test_empty_buffer_list(self):
        with pytest.raises(CollectiveError):
            functional.execute(request(Collective.ALL_REDUCE), [])

    def test_wrong_buffer_size(self, rng):
        buffers = make_buffers(N, E, rng)
        buffers[3] = buffers[3][:-1]
        with pytest.raises(CollectiveError):
            functional.execute(request(Collective.ALL_REDUCE), buffers)
