"""The fleet_resilience experiment, its bench scenarios, and the CLI."""

import json

import pytest

from repro.bench.scenarios import SCENARIOS
from repro.cli import main
from repro.experiments import EXPERIMENTS, fleet_resilience
from repro.fleet import home_shard

pytestmark = pytest.mark.fleet

#: One small trial shared by most assertions (kill + revive mid-run).
SMALL = dict(
    shards=3, tenants=3, requests_per_tenant=12, concurrency=4, seed=5
)


@pytest.fixture(scope="module")
def trial():
    return fleet_resilience.run_trial(**SMALL)


class TestRunTrial:
    def test_every_request_resolves_explicitly(self, trial):
        total = SMALL["tenants"] * SMALL["requests_per_tenant"]
        stats = trial["stats"]
        assert stats["submitted"] == total
        assert (
            stats["admitted"] + stats["rerouted"]
            + stats["rejected"] + stats["failed"]
        ) == total

    def test_outage_displaces_traffic_and_recovers(self, trial):
        assert trial["stats"]["rerouted"] > 0
        news = [t["new"] for t in trial["stats"]["transitions"]]
        assert news == ["down", "healthy"]
        # After the revive every shard serves again.
        assert set(trial["stats"]["health"].values()) == {"healthy"}

    def test_kill_lands_on_the_busiest_shard(self, trial):
        homes = [t["home"] for t in trial["tenants"].values()]
        loads = {shard: homes.count(shard) for shard in set(homes)}
        assert loads[trial["killed_shard"]] == max(loads.values())

    def test_unaffected_tenants_meet_the_slo(self, trial):
        assert trial["slo"]["ok"], trial["slo"]

    def test_tenant_summaries_conserve_requests(self, trial):
        for name, summary in trial["tenants"].items():
            resolved = (
                summary["admitted"] + summary["rerouted"]
                + summary["rejected"] + summary["failed"]
            )
            assert resolved == SMALL["requests_per_tenant"], name
            assert summary["home"] == home_shard(name, SMALL["shards"])

    def test_trial_is_deterministic(self, trial):
        again = fleet_resilience.run_trial(**SMALL)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            trial, sort_keys=True
        )

    def test_trials_differ_by_seed(self, trial):
        other = fleet_resilience.run_trial(trial=1, **SMALL)
        assert other["trial_seed"] != trial["trial_seed"]

    def test_result_is_json_serializable(self, trial):
        json.dumps(trial)


class TestDriver:
    def test_registered(self):
        assert EXPERIMENTS["fleet_resilience"] is fleet_resilience
        assert fleet_resilience.SPEC.experiment_id == "fleet_resilience"

    def test_run_returns_one_value_per_trial(self):
        values = fleet_resilience.run(trials=2, **SMALL)
        assert [v["trial"] for v in values] == [0, 1]

    def test_format_table_shows_all_panels(self, trial):
        text = fleet_resilience.format_table([trial])
        assert "fleet_resilience" in text
        assert "health transition" in text.lower()
        assert "slo" in text.lower()
        # The killed shard's tenants are starred in the load table.
        assert "*" in text


class TestBenchScenarios:
    def test_fleet_scenarios_registered(self):
        assert "service_steady_state" in SCENARIOS
        assert "fleet_degraded" in SCENARIOS

    def test_fleet_degraded_body_runs(self):
        scenario = SCENARIOS["fleet_degraded"]
        scenario.body(scenario.setup())


class TestCli:
    ARGS = [
        "fleet", "bench", "--shards", "3", "--tenants", "3",
        "--requests", "8", "--concurrency", "4", "--seed", "5",
    ]

    def test_bench_text_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert out.startswith("seed: 5")
        assert "fleet_resilience" in out

    def test_bench_json_output(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 5
        assert payload["stats"]["submitted"] == 24
        assert payload["slo"]["ok"] is True

    def test_status_reports_assignment(self, capsys):
        assert main(
            ["fleet", "status", "--shards", "3", "--tenants", "3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["shards"]) == {"shard-0", "shard-1", "shard-2"}
        for name, entry in payload["tenants"].items():
            assert entry["home"] == home_shard(name, 3)
            assert entry["routed_to"] == entry["home"]

    def test_status_with_killed_shard_reroutes(self, capsys):
        assert main(
            [
                "fleet", "status", "--shards", "3", "--tenants", "4",
                "--kill-shard", "0", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"]["shard-0"]["health"] == "down"
        for entry in payload["tenants"].values():
            assert entry["routed_to"] != 0

    def test_kill_shard_out_of_range_is_a_usage_error(self, capsys):
        assert main(
            ["fleet", "status", "--shards", "2", "--kill-shard", "5"]
        ) == 2
