"""NoC simulator determinism and conservation invariants."""

import pytest

from repro.core import Shape, allreduce_schedule, alltoall_schedule
from repro.noc import (
    NocNetwork,
    NocSimulator,
    compute_skew_cycles,
    messages_from_schedule,
)


def run_mode(shape, schedule, mode, seed=7):
    net = NocNetwork(shape)
    ready = compute_skew_cycles(shape.num_dpus, 500, seed=seed)
    messages, barriers = messages_from_schedule(
        schedule, net, mode, ready_cycles=ready
    )
    sim = NocSimulator(net, messages)
    if mode == "scheduled":
        sim.set_barriers(barriers)
    return sim.run()


class TestDeterminism:
    @pytest.mark.parametrize("mode", ["credit", "scheduled"])
    def test_identical_runs_identical_cycles(self, mode):
        shape = Shape(4, 2, 1)
        schedule = allreduce_schedule(shape, shape.num_dpus * 8)
        a = run_mode(shape, schedule, mode)
        b = run_mode(shape, schedule, mode)
        assert a.cycles == b.cycles
        assert a.link_busy_cycles == b.link_busy_cycles
        assert a.per_message_latency == b.per_message_latency

    def test_different_skew_seed_changes_credit_timing(self):
        shape = Shape(4, 2, 1)
        schedule = allreduce_schedule(shape, shape.num_dpus * 8)
        a = run_mode(shape, schedule, "credit", seed=1)
        b = run_mode(shape, schedule, "credit", seed=2)
        assert a.cycles != b.cycles

    def test_rerunning_same_simulator_is_stable(self):
        """run() resets all message/link state, so it is idempotent."""
        shape = Shape(2, 2, 1)
        net = NocNetwork(shape)
        schedule = alltoall_schedule(shape, shape.num_dpus * 4)
        messages, _ = messages_from_schedule(schedule, net, "credit")
        sim = NocSimulator(net, messages)
        first = sim.run().cycles
        second = sim.run().cycles
        assert first == second


class TestConservation:
    @pytest.mark.parametrize("mode", ["credit", "scheduled"])
    def test_all_flits_delivered(self, mode):
        shape = Shape(2, 2, 2)
        schedule = alltoall_schedule(shape, shape.num_dpus * 4)
        stats = run_mode(shape, schedule, mode)
        net = NocNetwork(shape)
        messages, _ = messages_from_schedule(schedule, net, mode)
        assert stats.flits_delivered == sum(m.num_flits for m in messages)

    def test_hop_count_at_least_flit_count(self):
        shape = Shape(4, 2, 1)
        schedule = allreduce_schedule(shape, shape.num_dpus * 8)
        stats = run_mode(shape, schedule, "scheduled")
        assert stats.total_flit_hops >= stats.flits_delivered

    def test_busy_cycles_bounded_by_runtime(self):
        shape = Shape(2, 2, 2)
        schedule = alltoall_schedule(shape, shape.num_dpus * 4)
        stats = run_mode(shape, schedule, "credit")
        for name, busy in stats.link_busy_cycles.items():
            assert busy <= stats.cycles, name
