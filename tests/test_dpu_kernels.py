"""Reference kernels executed on the interpreter."""

import numpy as np
import pytest

from repro.dpu import (
    Dpu,
    reduce_sum_kernel,
    vector_add_kernel,
    vector_scale_kernel,
)


def init_tasklets(num_tasklets, n, extra=None):
    """Caller-convention registers: r1 = tasklet count, r2 = n."""
    base = {1: num_tasklets, 2: n}
    if extra:
        base.update(extra)
    return {t: dict(base) for t in range(num_tasklets)}


class TestVectorAdd:
    @pytest.mark.parametrize("num_tasklets", [1, 3, 8, 16])
    def test_matches_numpy(self, num_tasklets, rng):
        n = 64
        dpu = Dpu()
        a = rng.integers(0, 1000, n).astype(np.uint32)
        b = rng.integers(0, 1000, n).astype(np.uint32)
        dpu.memory.wram.write_array(0, a)
        dpu.memory.wram.write_array(1024, b)
        program = vector_add_kernel(a_base=0, b_base=1024, out_base=2048)
        dpu.run(
            program,
            num_tasklets=num_tasklets,
            init_registers=init_tasklets(num_tasklets, n),
        )
        out = dpu.memory.wram.read_array(2048, n, np.uint32)
        assert np.array_equal(out, a + b)

    def test_ragged_length(self, rng):
        """n not divisible by the tasklet count still covers every element."""
        n = 37
        dpu = Dpu()
        a = rng.integers(0, 100, n).astype(np.uint32)
        b = rng.integers(0, 100, n).astype(np.uint32)
        dpu.memory.wram.write_array(0, a)
        dpu.memory.wram.write_array(512, b)
        program = vector_add_kernel(a_base=0, b_base=512, out_base=1024)
        dpu.run(program, num_tasklets=5, init_registers=init_tasklets(5, n))
        out = dpu.memory.wram.read_array(1024, n, np.uint32)
        assert np.array_equal(out, a + b)


class TestVectorScale:
    def test_matches_numpy(self, rng):
        n = 32
        dpu = Dpu()
        a = rng.integers(0, 100, n).astype(np.uint32)
        dpu.memory.wram.write_array(0, a)
        program = vector_scale_kernel(a_base=0, out_base=512)
        dpu.run(
            program,
            num_tasklets=4,
            init_registers=init_tasklets(4, n, extra={8: 7}),
        )
        out = dpu.memory.wram.read_array(512, n, np.uint32)
        assert np.array_equal(out, a * 7)

    def test_mul_kernel_slower_than_add_kernel(self, rng):
        """The emulated multiply makes scaling slower than adding."""
        n = 64
        dpu = Dpu()
        a = rng.integers(0, 100, n).astype(np.uint32)
        dpu.memory.wram.write_array(0, a)
        dpu.memory.wram.write_array(1024, a)
        add = dpu.run(
            vector_add_kernel(0, 1024, 2048),
            num_tasklets=8,
            init_registers=init_tasklets(8, n),
        )
        scale = dpu.run(
            vector_scale_kernel(0, 3072),
            num_tasklets=8,
            init_registers=init_tasklets(8, n, extra={8: 3}),
        )
        assert scale.issue_slots > add.issue_slots


class TestReduceSum:
    @pytest.mark.parametrize("num_tasklets", [1, 2, 8])
    def test_partials_sum_to_total(self, num_tasklets, rng):
        n = 48
        dpu = Dpu()
        a = rng.integers(0, 1000, n).astype(np.uint32)
        dpu.memory.wram.write_array(0, a)
        program = reduce_sum_kernel(a_base=0, out_base=4096)
        dpu.run(
            program,
            num_tasklets=num_tasklets,
            init_registers=init_tasklets(num_tasklets, n),
        )
        partials = dpu.memory.wram.read_array(
            4096, num_tasklets, np.uint32
        )
        assert partials.sum() == a.sum()
