"""Declarative SLOs: objective parsing, evaluation, report rendering."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    MetricsRegistry,
    SloObjective,
    evaluate_slos,
    load_objectives,
)


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    hist = reg.histogram("latency_s", {"tenant": "CC"})
    for value in (0.001, 0.002, 0.003, 0.004, 0.100):
        hist.observe(value)
    reg.counter("errors").inc(2)
    reg.counter("requests").inc(100)
    reg.gauge("queue.peak").max(7)
    return reg


class TestObjective:
    def test_round_trips_through_dict(self):
        objective = SloObjective(
            "latency_s", "p99", "<", 0.05,
            labels={"tenant": "CC"}, per=None, name="cc-tail",
        )
        clone = SloObjective.from_dict(
            json.loads(json.dumps(objective.to_dict()))
        )
        assert clone == objective

    def test_describe_names_the_expression(self):
        objective = SloObjective("errors", "value", "<=", 0.05,
                                 per="requests")
        assert objective.describe() == (
            "value(errors) / value(requests) <= 0.05"
        )

    def test_rejects_unknown_op_and_fields(self):
        with pytest.raises(ObservabilityError, match="SLO op"):
            SloObjective("m", "value", "!=", 1.0)
        with pytest.raises(ObservabilityError, match="unknown SLO"):
            SloObjective.from_dict(
                {"metric": "m", "op": "<", "threshold": 1, "color": "red"}
            )
        with pytest.raises(ObservabilityError, match="missing required"):
            SloObjective.from_dict({"metric": "m", "op": "<"})


class TestEvaluate:
    def test_histogram_percentile_objective(self):
        report = evaluate_slos(_registry(), [
            SloObjective("latency_s", "p50", "<", 0.01,
                         labels={"tenant": "CC"}),
            SloObjective("latency_s", "p99", "<", 0.01,
                         labels={"tenant": "CC"}),
        ])
        assert not report.ok
        passed, failed = report.checks
        assert passed.passed and passed.observed == pytest.approx(0.003)
        assert not failed.passed
        assert failed.observed == pytest.approx(0.100)
        assert report.violations == (failed,)

    def test_rate_objective_divides_by_denominator(self):
        report = evaluate_slos(_registry(), [
            SloObjective("errors", "value", "<=", 0.05, per="requests"),
        ])
        assert report.ok
        assert report.checks[0].observed == pytest.approx(0.02)

    def test_missing_metric_fails_loudly(self):
        report = evaluate_slos(_registry(), [
            SloObjective("latency_s", "p99", "<", 1.0),  # unlabeled: absent
        ])
        assert not report.ok
        assert report.checks[0].detail == "metric not recorded"

    def test_zero_denominator_fails(self):
        reg = _registry()
        reg.counter("zero")
        report = evaluate_slos(reg, [
            SloObjective("errors", "value", "<", 1.0, per="zero"),
        ])
        assert not report.ok
        assert "zero" in report.checks[0].detail

    def test_plain_dicts_are_accepted(self):
        report = evaluate_slos(_registry(), [
            {"metric": "queue.peak", "op": "<=", "threshold": 10},
        ])
        assert report.ok
        assert report.checks[0].observed == 7.0

    def test_format_lists_every_check(self):
        report = evaluate_slos(_registry(), [
            SloObjective("latency_s", "p99", "<", 0.01,
                         labels={"tenant": "CC"}),
            SloObjective("requests", "value", ">", 1.0),
        ])
        text = report.format()
        assert "1 of 2 objectives violated" in text
        assert "FAIL" in text and "ok" in text


class TestLoadObjectives:
    def test_loads_list_and_wrapped_forms(self, tmp_path):
        objectives = [
            {"metric": "latency_s", "stat": "p99", "op": "<",
             "threshold": 0.05, "labels": {"tenant": "CC"}},
        ]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(objectives))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"objectives": objectives}))
        assert load_objectives(str(bare)) == load_objectives(str(wrapped))
        assert load_objectives(str(bare))[0].stat == "p99"

    def test_rejects_non_list_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"latency"')
        with pytest.raises(ObservabilityError, match="list of objectives"):
            load_objectives(str(path))
