"""Declarative SLOs: objective parsing, evaluation, report rendering."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.observability import (
    LogBucketSketch,
    MetricsRegistry,
    SloObjective,
    evaluate_slos,
    load_objectives,
)
from repro.observability.histo import nearest_rank
from repro.observability.slo import _HISTOGRAM_STATS


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    hist = reg.histogram("latency_s", {"tenant": "CC"})
    for value in (0.001, 0.002, 0.003, 0.004, 0.100):
        hist.observe(value)
    reg.counter("errors").inc(2)
    reg.counter("requests").inc(100)
    reg.gauge("queue.peak").max(7)
    return reg


class TestObjective:
    def test_round_trips_through_dict(self):
        objective = SloObjective(
            "latency_s", "p99", "<", 0.05,
            labels={"tenant": "CC"}, per=None, name="cc-tail",
        )
        clone = SloObjective.from_dict(
            json.loads(json.dumps(objective.to_dict()))
        )
        assert clone == objective

    def test_describe_names_the_expression(self):
        objective = SloObjective("errors", "value", "<=", 0.05,
                                 per="requests")
        assert objective.describe() == (
            "value(errors) / value(requests) <= 0.05"
        )

    def test_rejects_unknown_op_and_fields(self):
        with pytest.raises(ObservabilityError, match="SLO op"):
            SloObjective("m", "value", "!=", 1.0)
        with pytest.raises(ObservabilityError, match="unknown SLO"):
            SloObjective.from_dict(
                {"metric": "m", "op": "<", "threshold": 1, "color": "red"}
            )
        with pytest.raises(ObservabilityError, match="missing required"):
            SloObjective.from_dict({"metric": "m", "op": "<"})


class TestEvaluate:
    def test_histogram_percentile_objective(self):
        report = evaluate_slos(_registry(), [
            SloObjective("latency_s", "p50", "<", 0.01,
                         labels={"tenant": "CC"}),
            SloObjective("latency_s", "p99", "<", 0.01,
                         labels={"tenant": "CC"}),
        ])
        assert not report.ok
        passed, failed = report.checks
        assert passed.passed and passed.observed == pytest.approx(0.003)
        assert not failed.passed
        assert failed.observed == pytest.approx(0.100)
        assert report.violations == (failed,)

    def test_rate_objective_divides_by_denominator(self):
        report = evaluate_slos(_registry(), [
            SloObjective("errors", "value", "<=", 0.05, per="requests"),
        ])
        assert report.ok
        assert report.checks[0].observed == pytest.approx(0.02)

    def test_missing_metric_fails_loudly(self):
        report = evaluate_slos(_registry(), [
            SloObjective("latency_s", "p99", "<", 1.0),  # unlabeled: absent
        ])
        assert not report.ok
        assert report.checks[0].detail == "metric not recorded"

    def test_zero_denominator_fails(self):
        reg = _registry()
        reg.counter("zero")
        report = evaluate_slos(reg, [
            SloObjective("errors", "value", "<", 1.0, per="zero"),
        ])
        assert not report.ok
        assert "zero" in report.checks[0].detail

    def test_plain_dicts_are_accepted(self):
        report = evaluate_slos(_registry(), [
            {"metric": "queue.peak", "op": "<=", "threshold": 10},
        ])
        assert report.ok
        assert report.checks[0].observed == 7.0

    def test_format_lists_every_check(self):
        report = evaluate_slos(_registry(), [
            SloObjective("latency_s", "p99", "<", 0.01,
                         labels={"tenant": "CC"}),
            SloObjective("requests", "value", ">", 1.0),
        ])
        text = report.format()
        assert "1 of 2 objectives violated" in text
        assert "FAIL" in text and "ok" in text


class TestLoadObjectives:
    def test_loads_list_and_wrapped_forms(self, tmp_path):
        objectives = [
            {"metric": "latency_s", "stat": "p99", "op": "<",
             "threshold": 0.05, "labels": {"tenant": "CC"}},
        ]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(objectives))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"objectives": objectives}))
        assert load_objectives(str(bare)) == load_objectives(str(wrapped))
        assert load_objectives(str(bare))[0].stat == "p99"

    def test_rejects_non_list_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"latency"')
        with pytest.raises(ObservabilityError, match="list of objectives"):
            load_objectives(str(path))


class TestHistogramStatResolution:
    """Every _HISTOGRAM_STATS name must resolve against a known sample
    set to exactly the value computed directly from the data — in
    particular ``p999`` means the 99.9th percentile (q=99.9), never
    ``q=999``."""

    SAMPLES = [float(i) for i in range(1, 1001)]  # 1..1000, exact path

    def _report(self, stat):
        reg = MetricsRegistry()
        hist = reg.histogram("sample_s")
        for value in self.SAMPLES:
            hist.observe(value)
        report = evaluate_slos(
            reg, [SloObjective("sample_s", stat, "<=", float("inf"))]
        )
        return report.checks[0]

    @pytest.mark.parametrize("stat", list(_HISTOGRAM_STATS))
    def test_every_stat_resolves_without_detail(self, stat):
        check = self._report(stat)
        assert check.passed, check.detail
        assert check.observed is not None
        assert check.detail == ""

    @pytest.mark.parametrize(
        "stat,expected_q",
        [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9)],
    )
    def test_quantile_stats_hit_nearest_rank(self, stat, expected_q):
        check = self._report(stat)
        expected = nearest_rank(self.SAMPLES, expected_q)
        assert check.observed == expected

    def test_p999_is_the_99_9th_percentile(self):
        # p999 resolves to q=99.9 — above p99, and q=999 would not even
        # be a legal percentile (nearest_rank rejects it outright).
        observed = self._report("p999").observed
        assert observed == nearest_rank(self.SAMPLES, 99.9)
        assert observed >= nearest_rank(self.SAMPLES, 99.0)
        with pytest.raises(ObservabilityError):
            nearest_rank(self.SAMPLES, 999.0)

    def test_non_quantile_stats_match_direct_computation(self):
        n = len(self.SAMPLES)
        expected = {
            "mean": sum(self.SAMPLES) / n,
            "min": min(self.SAMPLES),
            "max": max(self.SAMPLES),
            "count": float(n),
            "sum": float(sum(self.SAMPLES)),
        }
        for stat, value in expected.items():
            assert self._report(stat).observed == pytest.approx(value)

    @given(
        samples=st.lists(
            st.floats(
                min_value=1e-9, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=200,
        )
    )
    @settings(deadline=None, max_examples=50)
    def test_quantiles_match_sketch_on_random_samples(self, samples):
        reg = MetricsRegistry()
        hist = reg.histogram("rand_s")
        sketch = LogBucketSketch()
        for value in samples:
            hist.observe(value)
            sketch.observe(value)
        for stat, q in (("p50", 50.0), ("p90", 90.0),
                        ("p99", 99.0), ("p999", 99.9)):
            report = evaluate_slos(
                reg, [SloObjective("rand_s", stat, "<=", float("inf"))]
            )
            assert report.checks[0].observed == sketch.quantile(q)


class TestEmptySketchFailsLoudly:
    """A valid stat over a histogram nothing observed must fail the
    objective with an explicit detail — silence is not success."""

    def test_empty_histogram_fails_with_detail(self):
        reg = MetricsRegistry()
        reg.histogram("noop_s")  # registered, never observed
        report = evaluate_slos(
            reg, [SloObjective("noop_s", "p99", "<", 1.0)]
        )
        check = report.checks[0]
        assert not report.ok
        assert not check.passed
        assert check.observed is None
        assert check.detail == "histogram has no observations"

    def test_empty_histogram_fails_for_every_quantile_stat(self):
        reg = MetricsRegistry()
        reg.histogram("noop_s")
        for stat in ("p50", "p90", "p99", "p999", "mean", "min", "max"):
            report = evaluate_slos(
                reg, [SloObjective("noop_s", stat, "<", 1.0)]
            )
            assert not report.ok, stat
            assert report.checks[0].detail == (
                "histogram has no observations"
            ), stat
