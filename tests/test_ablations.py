"""Ablation-study drivers."""

import pytest

from repro.experiments import ablations


@pytest.fixture(scope="module")
def results():
    return ablations.run()


class TestHierarchy:
    def test_hierarchy_is_the_load_bearing_choice(self, results):
        by_name = {r.name: r for r in results}
        entry = by_name["hierarchical vs flat ring"]
        assert entry.benefit > 3

    def test_flat_ring_pays_the_bus(self, results):
        by_name = {r.name: r for r in results}
        entry = by_name["hierarchical vs flat ring"]
        assert entry.alternative_s > entry.pimnet_s


class TestRingConfiguration:
    def test_unidirectional_wins_for_pure_allreduce(self, results):
        """Honest trade: ring RS/AG drives one direction, so the 2x32b
        repartition is faster for AllReduce (the paper keeps the
        bidirectional default for A2A/broadcast routing)."""
        by_name = {r.name: r for r in results}
        entry = by_name["bidirectional 4x16b vs unidirectional 2x32b"]
        assert entry.benefit < 1.0
        assert entry.benefit > 0.5


class TestBusBroadcast:
    def test_broadcast_never_hurts(self, results):
        by_name = {r.name: r for r in results}
        entry = by_name["bus broadcast vs unicast AllGather leg"]
        assert entry.benefit >= 1.0


class TestInterChannelBridge:
    def test_direct_bridge_helps_but_modestly_for_allreduce(self, results):
        """Channel-local reduction leaves little cross-channel data, so
        the future-work direct link buys little for AllReduce."""
        by_name = {r.name: r for r in results}
        entry = by_name[
            "inter-channel via host vs direct link (future work)"
        ]
        assert 1.0 < entry.benefit < 2.0


class TestFormatting:
    def test_table_renders(self, results):
        text = ablations.format_table(results)
        assert "Ablations" in text
        assert "hierarchical vs flat ring" in text
