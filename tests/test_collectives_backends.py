"""Comparison backends: support matrix, timing structure, orderings."""

import numpy as np
import pytest

from repro.collectives import (
    Collective,
    CollectiveRequest,
    REDUCING_PATTERNS,
    host_path_volumes,
    registry,
)
from repro.config import pimnet_sim_system, small_test_system
from repro.errors import BackendError, CollectiveError

from .conftest import make_buffers

ALL_KEYS = ("B", "S", "MaxBW", "D", "N", "P")


def req(pattern, payload=32 * 1024):
    return CollectiveRequest(pattern, payload, dtype=np.dtype(np.int64))


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(registry.keys()) >= set(ALL_KEYS)

    def test_unknown_key_rejected(self, machine):
        with pytest.raises(BackendError):
            registry.create("bogus", machine)

    def test_duplicate_registration_rejected(self):
        from repro.collectives.host_baseline import HostBaselineBackend

        with pytest.raises(BackendError):
            registry.register("B", HostBaselineBackend)

    def test_create_many(self, machine):
        backends = registry.create_many(["B", "P"], machine)
        assert backends["B"].name == "Baseline PIM"
        assert backends["P"].name == "PIMnet"

    def test_multi_channel_machine_rejected(self):
        machine = pimnet_sim_system(num_channels=2)
        with pytest.raises(BackendError):
            registry.create("B", machine)


class TestSupportMatrix:
    def test_ndpbridge_has_no_reductions(self, machine):
        backend = registry.create("N", machine)
        for pattern in REDUCING_PATTERNS:
            assert not backend.supports(pattern)
        assert backend.supports(Collective.ALL_TO_ALL)

    def test_ndpbridge_raises_on_allreduce(self, machine):
        backend = registry.create("N", machine)
        with pytest.raises(BackendError):
            backend.run(req(Collective.ALL_REDUCE))

    @pytest.mark.parametrize("key", ["B", "S", "MaxBW", "D", "P"])
    def test_others_support_everything(self, machine, key):
        backend = registry.create(key, machine)
        for pattern in Collective:
            assert backend.supports(pattern)


class TestFunctionalEquivalence:
    """Every backend must produce the exact same outputs."""

    @pytest.mark.parametrize(
        "pattern",
        [
            Collective.ALL_REDUCE,
            Collective.REDUCE_SCATTER,
            Collective.ALL_GATHER,
            Collective.ALL_TO_ALL,
            Collective.BROADCAST,
        ],
    )
    def test_outputs_match_across_backends(self, tiny_machine, rng, pattern):
        n = tiny_machine.system.banks_per_channel
        buffers = make_buffers(n, 16, rng)
        request = req(pattern, payload=16 * 8)
        reference = None
        for key in ALL_KEYS:
            backend = registry.create(key, tiny_machine)
            if not backend.supports(pattern):
                continue
            outputs = backend.run(request, buffers).outputs
            if reference is None:
                reference = outputs
            else:
                for a, b in zip(reference, outputs):
                    assert np.array_equal(a, b), key

    def test_buffer_count_checked(self, tiny_machine, rng):
        backend = registry.create("B", tiny_machine)
        with pytest.raises(CollectiveError):
            backend.run(req(Collective.ALL_REDUCE), make_buffers(3, 16, rng))


class TestTimingStructure:
    def test_host_backends_spend_time_on_host(self, machine):
        for key in ("B", "S", "MaxBW"):
            breakdown = registry.create(key, machine).timing(
                req(Collective.ALL_REDUCE)
            )
            assert breakdown.host_transfer_s > 0
            assert breakdown.inter_bank_s == 0
            assert breakdown.inter_rank_s == 0

    def test_pimnet_never_touches_host(self, machine):
        breakdown = registry.create("P", machine).timing(
            req(Collective.ALL_REDUCE)
        )
        assert breakdown.host_transfer_s == 0
        assert breakdown.host_compute_s == 0
        assert breakdown.inter_bank_s > 0
        assert breakdown.sync_s > 0

    def test_baseline_charges_host_compute(self, machine):
        b = registry.create("B", machine).timing(req(Collective.ALL_REDUCE))
        s = registry.create("S", machine).timing(req(Collective.ALL_REDUCE))
        assert b.host_compute_s > 0
        assert s.host_compute_s == 0

    def test_dimm_link_stays_off_host(self, machine):
        breakdown = registry.create("D", machine).timing(
            req(Collective.ALL_REDUCE)
        )
        assert breakdown.host_transfer_s == 0
        assert breakdown.inter_chip_s > 0

    def test_ndpbridge_crosses_host_between_ranks(self, machine):
        breakdown = registry.create("N", machine).timing(
            req(Collective.ALL_TO_ALL)
        )
        assert breakdown.host_transfer_s > 0
        assert breakdown.inter_chip_s > 0


class TestPaperOrderings:
    """The qualitative orderings every figure depends on."""

    @pytest.mark.parametrize(
        "pattern",
        [Collective.ALL_REDUCE, Collective.REDUCE_SCATTER],
    )
    def test_p_beats_s_beats_b_at_full_scale(self, machine, pattern):
        times = {
            key: registry.create(key, machine).timing(req(pattern)).total_s
            for key in ("B", "S", "P")
        }
        assert times["P"] < times["S"] < times["B"]

    def test_allreduce_speedup_magnitude(self, machine):
        """PIMnet's 256-DPU AllReduce gain is tens of x (paper: up to 85x
        across collectives; AllReduce lands in the 30-60x band)."""
        b = registry.create("B", machine).timing(req(Collective.ALL_REDUCE))
        p = registry.create("P", machine).timing(req(Collective.ALL_REDUCE))
        assert 20 < b.total_s / p.total_s < 80

    def test_reduce_scatter_hits_headline_speedup(self, machine):
        """Reduce-Scatter is the pattern that reaches the ~85x headline."""
        b = registry.create("B", machine).timing(
            req(Collective.REDUCE_SCATTER)
        )
        p = registry.create("P", machine).timing(
            req(Collective.REDUCE_SCATTER)
        )
        assert 50 < b.total_s / p.total_s < 120

    def test_alltoall_gain_is_much_smaller(self, machine):
        """A2A is bus-bound: the PIMnet gain is far below AllReduce's."""
        ar_ratio = (
            registry.create("B", machine).timing(req(Collective.ALL_REDUCE)).total_s
            / registry.create("P", machine).timing(req(Collective.ALL_REDUCE)).total_s
        )
        a2a_ratio = (
            registry.create("B", machine).timing(req(Collective.ALL_TO_ALL)).total_s
            / registry.create("P", machine).timing(req(Collective.ALL_TO_ALL)).total_s
        )
        assert a2a_ratio < ar_ratio / 2

    def test_maxbw_beats_measured_software(self, machine):
        s = registry.create("S", machine).timing(req(Collective.ALL_REDUCE))
        maxbw = registry.create("MaxBW", machine).timing(
            req(Collective.ALL_REDUCE)
        )
        assert maxbw.total_s < s.total_s

    def test_timing_scales_with_payload(self, machine):
        for key in ("B", "S", "D", "P"):
            backend = registry.create(key, machine)
            small = backend.timing(req(Collective.ALL_REDUCE, 8 * 1024))
            large = backend.timing(req(Collective.ALL_REDUCE, 64 * 1024))
            assert large.total_s > small.total_s


class TestHostPathVolumes:
    def test_allreduce_volumes(self):
        v = host_path_volumes(req(Collective.ALL_REDUCE, 1024), 8)
        assert v.up_bytes == 8 * 1024
        assert v.down_broadcast_bytes == 1024
        assert v.down_bytes == 0
        assert v.host_processed_bytes == 8 * 1024

    def test_alltoall_volumes(self):
        v = host_path_volumes(req(Collective.ALL_TO_ALL, 1024), 8)
        assert v.up_bytes == 8 * 1024
        assert v.down_bytes == 8 * 1024

    def test_gather_has_no_downstream(self):
        v = host_path_volumes(req(Collective.REDUCE, 1024), 8)
        assert v.down_broadcast_bytes == 0
