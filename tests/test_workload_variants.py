"""Table VII configuration variants (GEMV sizes, MLP layer sizes)."""

import pytest

from repro.config import pimnet_sim_system
from repro.workloads import (
    compare_backends,
    gemv_1024x64,
    gemv_2048x128,
    mlp_configs,
)


@pytest.fixture(scope="module")
def machine():
    return pimnet_sim_system()


class TestGemvVariants:
    def test_paper_configurations(self):
        small = gemv_1024x64()
        large = gemv_2048x128()
        assert (small.rows, small.cols_per_dpu) == (1024, 64)
        assert (large.rows, large.cols_per_dpu) == (2048, 128)

    def test_both_benefit_from_pimnet(self, machine):
        for workload in (gemv_1024x64(), gemv_2048x128()):
            results = compare_backends(workload, machine, ["B", "P"])
            assert results["P"].speedup_over(results["B"]) > 1.3

    def test_larger_tile_is_more_compute_bound(self, machine):
        """The 2048x128 tile quadruples compute but only doubles the RS
        payload, so its comm fraction — and PIMnet gain — is smaller."""
        small = compare_backends(gemv_1024x64(), machine, ["B", "P"])
        large = compare_backends(gemv_2048x128(), machine, ["B", "P"])
        assert (
            large["B"].comm_fraction < small["B"].comm_fraction
        )
        assert large["P"].speedup_over(large["B"]) < small[
            "P"
        ].speedup_over(small["B"])


class TestMlpVariants:
    def test_three_paper_sizes(self):
        configs = mlp_configs()
        assert set(configs) == {"MLP-256", "MLP-512", "MLP-1024"}
        assert configs["MLP-1024"].layer_sizes == (1024, 1024, 1024)

    def test_speedup_shrinks_with_layer_size(self, machine):
        """Bigger square layers mean quadratically more emulated
        multiplies against linearly more AllReduce payload."""
        speedups = {}
        for name, workload in mlp_configs().items():
            results = compare_backends(workload, machine, ["B", "P"])
            speedups[name] = results["P"].speedup_over(results["B"])
        assert speedups["MLP-256"] > speedups["MLP-512"] > speedups["MLP-1024"]

    def test_all_above_one(self, machine):
        for workload in mlp_configs().values():
            results = compare_backends(workload, machine, ["B", "P"])
            assert results["P"].speedup_over(results["B"]) > 1.0
