"""Public API surface: the contract a downstream user imports against."""

import numpy as np
import pytest

import repro
from repro import (
    pimnet_gather,
    pimnet_reduce,
)
from repro.collectives import ReduceOp

from .conftest import make_buffers


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_exported(self):
        for name in (
            "pimnet_all_reduce", "pimnet_reduce_scatter",
            "pimnet_all_gather", "pimnet_all_to_all",
            "pimnet_broadcast", "pimnet_reduce", "pimnet_gather",
            "PimMachine", "PimnetBackend", "registry",
            "pimnet_sim_system", "upmem_server",
        ):
            assert name in repro.__all__, name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.collectives
        import repro.config
        import repro.core
        import repro.dpu
        import repro.experiments
        import repro.host
        import repro.memory
        import repro.noc
        import repro.topology
        import repro.workloads

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.core
        import repro.workloads

        for module in (repro.analysis, repro.core, repro.workloads):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestRootedApis:
    def test_pimnet_reduce(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        result = pimnet_reduce(buffers, tiny_machine, root=3)
        assert np.array_equal(result.outputs[3], np.sum(buffers, axis=0))
        assert result.outputs[0].size == 0
        assert result.time_s > 0

    def test_pimnet_reduce_min(self, tiny_machine, rng):
        buffers = make_buffers(8, 16, rng)
        result = pimnet_reduce(
            buffers, tiny_machine, op=ReduceOp.MIN, root=0
        )
        assert np.array_equal(result.outputs[0], np.min(buffers, axis=0))

    def test_pimnet_gather(self, tiny_machine, rng):
        buffers = make_buffers(8, 4, rng)
        result = pimnet_gather(buffers, tiny_machine, root=5)
        assert np.array_equal(result.outputs[5], np.concatenate(buffers))
        assert result.outputs[1].size == 0

    def test_reduce_cheaper_than_allreduce(self, tiny_machine, rng):
        from repro import pimnet_all_reduce

        buffers = make_buffers(8, 512, rng)
        reduce_t = pimnet_reduce(buffers, tiny_machine).time_s
        allreduce_t = pimnet_all_reduce(buffers, tiny_machine).time_s
        assert reduce_t < allreduce_t * 1.5  # same order of magnitude
