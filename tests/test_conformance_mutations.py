"""Seeded mutations: the engine detects every injected defect class,
shrinks it to a minimal reproducer, and the reproducer replays.

This is the sensitivity proof for the conformance engine — an engine
that cannot see a planted divergence is not checking anything.
"""

import pytest

from repro.config import ConformanceConfig
from repro.conformance import (
    MUTATION_MODES,
    ConformancePoint,
    Mutation,
    load_reproducer,
    replay_reproducer,
    reproducer_payload,
    run_point,
    shrink_point,
    write_reproducer,
)
from repro.errors import ConformanceError

CONFIG = ConformanceConfig()

#: A mid-sized matrix cell with traffic on every tier, so every
#: mutation mode has a target.
POINT = ConformancePoint("all_reduce", 2, 2, 2, 1024)

#: Which check must trip per mode.  ``offset`` may surface through the
#: structural validators instead of the functional diff when the shifted
#: write leaves the buffer.
EXPECTED_CHECKS = {
    "offset": {"functional", "validators"},
    "drop-transfer": {"functional"},
    "drop-flit": {"conservation"},
    "stall": {"latency"},
}


def failed_checks(report):
    return {
        name
        for name, check in report["checks"].items()
        if not check["ok"]
    }


class TestMutationModel:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConformanceError, match="unknown mutation"):
            Mutation("swap-bytes")

    def test_negative_seed_rejected(self):
        with pytest.raises(ConformanceError, match="seed"):
            Mutation("stall", seed=-1)

    def test_dict_round_trip(self):
        mutation = Mutation("drop-flit", seed=3)
        assert Mutation.from_dict(mutation.as_dict()) == mutation

    def test_rng_is_stable_per_point(self):
        mutation = Mutation("offset", seed=7)
        a = mutation.rng(POINT.label())
        b = mutation.rng(POINT.label())
        assert [a.random() for _ in range(4)] == [
            b.random() for _ in range(4)
        ]

    def test_rng_differs_across_points(self):
        mutation = Mutation("offset", seed=7)
        other = ConformancePoint("all_reduce", 2, 2, 1, 1024)
        assert mutation.rng(POINT.label()).random() != (
            mutation.rng(other.label()).random()
        )


@pytest.mark.parametrize("mode", MUTATION_MODES)
class TestEveryModeIsDetected:
    def test_mutation_trips_its_check(self, mode):
        report = run_point(POINT, CONFIG, mutation=Mutation(mode))
        assert not report["ok"], f"{mode} went undetected"
        failed = failed_checks(report)
        assert failed & EXPECTED_CHECKS[mode], (
            f"{mode} tripped {failed}, expected one of "
            f"{EXPECTED_CHECKS[mode]}"
        )
        assert report["mutation"] == {"mode": mode, "seed": 0}

    def test_detection_is_deterministic(self, mode):
        mutation = Mutation(mode, seed=1)
        assert run_point(POINT, CONFIG, mutation=mutation) == (
            run_point(POINT, CONFIG, mutation=mutation)
        )

    def test_failure_shrinks_to_a_smaller_point(self, mode):
        result = shrink_point(POINT, CONFIG, mutation=Mutation(mode))
        assert not result.report["ok"]
        assert result.attempts >= 1
        assert result.point.num_dpus <= POINT.num_dpus
        assert result.point.payload_bytes <= POINT.payload_bytes
        assert result.shrunk
        # Minimality: every halved neighbor of the shrunk point either
        # passes or is infeasible — otherwise shrinking would have
        # continued.
        from repro.conformance.shrink import _candidates

        for candidate in _candidates(result.point):
            try:
                replay = run_point(
                    candidate, CONFIG, mutation=Mutation(mode)
                )
            except ConformanceError:
                continue
            assert replay["ok"], (
                f"{candidate.label()} still fails; "
                f"{result.point.label()} was not minimal"
            )

    def test_reproducer_round_trips_and_replays(self, mode, tmp_path):
        mutation = Mutation(mode)
        result = shrink_point(POINT, CONFIG, mutation=mutation)
        path = write_reproducer(
            tmp_path / "repro.json", result, CONFIG, mutation
        )
        data = load_reproducer(path)
        assert data["point"] == result.point.params
        assert data["original_point"] == POINT.params
        assert data["mutation"] == mutation.as_dict()
        replayed = replay_reproducer(data)
        assert replayed == result.report


class TestShrinker:
    def test_passing_point_refuses_to_shrink(self):
        with pytest.raises(ConformanceError, match="nothing to shrink"):
            shrink_point(POINT, CONFIG)

    def test_payload_is_shrunk_before_the_shape(self):
        result = shrink_point(POINT, CONFIG, mutation=Mutation("stall"))
        # The stall defect survives at any payload, so the shrinker
        # must drive the payload down to the feasibility floor: one
        # element per surviving DPU.
        assert result.point.payload_bytes == (
            result.point.num_dpus * CONFIG.itemsize
        )

    def test_shrink_respects_max_attempts(self):
        result = shrink_point(
            POINT, CONFIG, mutation=Mutation("stall"), max_attempts=1
        )
        assert result.attempts == 1


class TestReproducerFiles:
    def test_payload_is_self_contained(self):
        mutation = Mutation("drop-flit")
        result = shrink_point(POINT, CONFIG, mutation=mutation)
        payload = reproducer_payload(result, CONFIG, mutation)
        assert payload["format"] == "repro-conformance-reproducer"
        assert payload["config"] == CONFIG.as_dict()
        assert payload["report"] == result.report

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ConformanceError, match="not a conformance"):
            load_reproducer(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            '{"format": "repro-conformance-reproducer", "version": 99}'
        )
        with pytest.raises(ConformanceError, match="version"):
            load_reproducer(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ConformanceError, match="cannot read"):
            load_reproducer(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(ConformanceError, match="cannot read"):
            load_reproducer(bad)
