"""Number Theoretic Transform for homomorphic encryption on PIM.

Usage::

    python examples/homomorphic_ntt.py

Part 1 runs the 2D (four-step) NTT *functionally*: column NTTs on each
DPU, a real All-to-All transpose through the PIMnet backend, row NTTs —
verified against a direct Cooley-Tukey transform.  Part 2 times the
paper's N = 2^16 configuration on every backend, and Part 3 shows how
the PIMnet benefit grows with HBM-PIM / GDDR6-AiM-class compute
(Fig 15's point: faster MACs make communication the bottleneck).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import pimnet_sim_system, registry, small_test_system
from repro.config import ALT_PIM_PROFILES
from repro.config.units import fmt_seconds
from repro.workloads import (
    MODULUS,
    NttWorkload,
    compare_backends,
    distributed_ntt_2d,
    ntt_reference,
)


def functional_demo() -> None:
    print("=== functional 2D NTT (8-DPU machine, N = 64) ===")
    machine = small_test_system()
    backend = registry.create("P", machine)
    rng = np.random.default_rng(5)
    n = backend.num_dpus
    coefficients = rng.integers(0, MODULUS, n * n).astype(np.int64)
    transformed = distributed_ntt_2d(coefficients, backend)
    assert np.array_equal(transformed, ntt_reference(coefficients))
    print(
        f"{n * n}-point NTT over Z_{MODULUS} via column-NTT -> twiddle -> "
        "All-to-All transpose -> row-NTT: matches the direct transform"
    )


def paper_scale_timing() -> None:
    print("\n=== paper configuration (N = 2^16, 256 DPUs) ===")
    machine = pimnet_sim_system()
    results = compare_backends(
        NttWorkload(), machine, ["B", "S", "N", "D", "P"]
    )
    base = results["B"]
    for key, result in results.items():
        print(
            f"  {key:6s} total {fmt_seconds(result.total_s):>10s}  "
            f"compute {fmt_seconds(result.compute_s):>10s}  "
            f"comm {fmt_seconds(result.comm_s):>10s}  "
            f"speedup {result.speedup_over(base):5.2f}x"
        )
    print(
        "(NTT is compute-bound on UPMEM — the emulated 32-bit modular "
        "multiply — so the end-to-end gain is modest, matching Fig 10)"
    )


def alternative_pim() -> None:
    print("\n=== with hardware-MAC PIM compute (Fig 15) ===")
    base_machine = pimnet_sim_system()
    for profile_name in ("UPMEM", "HBM-PIM", "GDDR6-AiM"):
        machine = replace(
            base_machine, compute=ALT_PIM_PROFILES[profile_name]
        )
        results = compare_backends(NttWorkload(), machine, ["B", "P"])
        speedup = results["P"].speedup_over(results["B"])
        print(f"  {profile_name:10s} PIMnet speedup {speedup:6.2f}x")


if __name__ == "__main__":
    functional_demo()
    paper_scale_timing()
    alternative_pim()
