"""Graph analytics (BFS and connected components) on PIM.

Usage::

    python examples/graph_analytics.py

Part 1 runs vertex-partitioned BFS and label-propagation CC
*functionally* on a synthetic R-MAT graph, exchanging frontiers/labels
through real MAX/MIN AllReduces, checked against single-node references.
Part 2 times the paper's loc-gowalla-sized configurations and prints
the Fig 10/11 style breakdowns (graph workloads are the most
communication-bound: AllReduce is up to ~83% of baseline time).
"""

from __future__ import annotations

import numpy as np

from repro import pimnet_sim_system, registry, small_test_system
from repro.analysis import format_breakdown_row
from repro.config.units import fmt_seconds
from repro.workloads import (
    BfsWorkload,
    CcWorkload,
    bfs_reference,
    compare_backends,
    connected_components_reference,
    distributed_bfs,
    distributed_connected_components,
    rmat_graph,
)


def functional_demo() -> None:
    print("=== functional graph algorithms (8-DPU machine) ===")
    machine = small_test_system()
    backend = registry.create("P", machine)
    graph = rmat_graph(num_vertices=1000, num_edges=4000, seed=13)
    print(
        f"R-MAT graph: {graph.num_vertices} vertices, "
        f"{graph.num_edges} undirected edges"
    )

    depth = distributed_bfs(graph, 0, backend)
    assert np.array_equal(depth, bfs_reference(graph, 0))
    reached = int((depth >= 0).sum())
    print(
        f"BFS from vertex 0: reached {reached} vertices in "
        f"{int(depth.max())} levels (matches reference)"
    )

    labels = distributed_connected_components(graph, backend)
    assert np.array_equal(labels, connected_components_reference(graph))
    print(f"CC: {len(np.unique(labels))} components (matches reference)")


def paper_scale_timing() -> None:
    print("\n=== paper-scale timing (loc-gowalla-sized, 256 DPUs) ===")
    machine = pimnet_sim_system()
    for workload in (BfsWorkload(), CcWorkload()):
        results = compare_backends(workload, machine, ["B", "S", "D", "P"])
        base = results["B"]
        print(f"\n{workload.name} ({workload.comm} per iteration):")
        for key, result in results.items():
            print(
                f"  {key:3s} total {fmt_seconds(result.total_s):>10s} "
                f"({100 * result.comm_fraction:4.1f}% comm)  "
                f"speedup {result.speedup_over(base):5.2f}x"
            )
        print(
            "  PIMnet comm breakdown: "
            + format_breakdown_row(workload.name, results["P"].comm)
        )


if __name__ == "__main__":
    functional_demo()
    paper_scale_timing()
