"""End-to-end pipeline on the full functional machine (Fig 5(b) flow).

Usage::

    python examples/end_to_end_pipeline.py

Drives the complete stack with real data on an 8-DPU machine:

1. the host pushes per-DPU vectors into MRAM;
2. every DPU runs a reduction kernel on the mini-ISA interpreter,
   producing per-tasklet partial sums in WRAM;
3. partials move WRAM -> MRAM via the per-bank DMA engines;
4. a PIMnet AllReduce combines the partials directly between banks —
   no host involvement;
5. the host pulls the (identical) global results back.

Every stage is functional *and* timed, and the final number is checked
against plain numpy.
"""

from __future__ import annotations

import numpy as np

from repro import small_test_system
from repro.collectives import Collective
from repro.config.units import fmt_seconds
from repro.dpu import reduce_sum_kernel
from repro.machine import PimMachine


def main() -> None:
    machine = PimMachine(small_test_system())
    n_elements = 64
    tasklets = 4
    rng = np.random.default_rng(3)
    per_dpu = [
        rng.integers(0, 1000, n_elements).astype(np.uint32)
        for _ in range(machine.num_dpus)
    ]
    expected = sum(int(v.sum()) for v in per_dpu)
    print(
        f"{machine.num_dpus} DPUs, {n_elements} elements each; "
        f"expected global sum = {expected}"
    )

    # 1. host -> MRAM -> WRAM
    machine.runtime.allocate("input", 1024)
    machine.runtime.allocate("partials", 64)
    t_push = machine.runtime.push("input", per_dpu)
    t_stage = machine.stage_to_wram("input", n_elements * 4)
    print(f"[1] push {fmt_seconds(t_push)}, stage-in {fmt_seconds(t_stage)}")

    # 2. per-DPU reduction kernel on the ISA interpreter
    launch = machine.run_kernel(
        reduce_sum_kernel(a_base=0, out_base=2048),
        num_tasklets=tasklets,
        init_registers={
            t: {1: tasklets, 2: n_elements} for t in range(tasklets)
        },
    )
    slots = launch.per_dpu[0].issue_slots
    print(
        f"[2] kernel: {slots} issue slots/DPU, "
        f"{fmt_seconds(launch.time_s)} incl. launch overhead"
    )

    # 3. WRAM partials -> MRAM buffer
    partials_offset = machine.runtime.buffer("partials").mram_offset
    t_out = max(
        bank.dma_to_mram(
            2048, partials_offset, max(8, tasklets * 4)
        ).time_s
        for bank in machine.runtime.banks
    )
    print(f"[3] stage-out {fmt_seconds(t_out)}")

    # 4. PIMnet AllReduce of the per-tasklet partials (no host!)
    t_net = machine.pimnet_collective(
        Collective.ALL_REDUCE, "partials", tasklets, dtype=np.uint32
    )
    print(f"[4] PIMnet AllReduce {fmt_seconds(t_net)}")

    # 5. host pulls the results
    pulled, t_pull = machine.runtime.pull("partials", tasklets, np.uint32)
    print(f"[5] pull {fmt_seconds(t_pull)}")

    for d, got in enumerate(pulled):
        assert int(got.sum()) == expected, f"DPU {d} disagrees"
    print(
        f"\nevery DPU holds the global per-tasklet sums; total = "
        f"{int(pulled[0].sum())} (matches numpy)"
    )
    print(f"modeled host-side time: {fmt_seconds(machine.runtime.elapsed_s)}")


if __name__ == "__main__":
    main()
