"""Quickstart: run a PIMnet AllReduce and compare against the baselines.

Usage::

    python examples/quickstart.py

Builds the paper's 256-DPU single-channel system (Table VI), runs a
32 KB-per-DPU AllReduce functionally through the PIMnet backend, and
prints the timing comparison against the host-mediated alternatives.
"""

from __future__ import annotations

import numpy as np

from repro import (
    Collective,
    CollectiveRequest,
    pimnet_all_reduce,
    pimnet_sim_system,
    registry,
)
from repro.config.units import fmt_seconds


def main() -> None:
    machine = pimnet_sim_system()
    num_dpus = machine.system.banks_per_channel
    print(
        f"machine: {num_dpus} DPUs "
        f"({machine.system.banks_per_chip} banks x "
        f"{machine.system.chips_per_rank} chips x "
        f"{machine.system.ranks_per_channel} ranks)"
    )

    # 1. Functional AllReduce through the PIMnet API (Fig 5(b)).
    rng = np.random.default_rng(7)
    elements = 4096  # 32 KB of int64 per DPU
    buffers = [
        rng.integers(0, 1000, elements, dtype=np.int64)
        for _ in range(num_dpus)
    ]
    result = pimnet_all_reduce(buffers, machine)
    expected = np.sum(buffers, axis=0)
    assert all(np.array_equal(out, expected) for out in result.outputs)
    print(f"\nPIMnet AllReduce of {elements * 8 // 1024} KB/DPU: "
          f"{fmt_seconds(result.time_s)}")
    for name, value in result.breakdown.as_dict().items():
        if value:
            print(f"  {name:16s} {fmt_seconds(value)}")

    # 2. The same collective on every comparison backend.
    request = CollectiveRequest(
        Collective.ALL_REDUCE, elements * 8, dtype=np.dtype(np.int64)
    )
    print("\nbackend comparison (same collective):")
    times = {}
    for key in ("B", "S", "MaxBW", "D", "P"):
        backend = registry.create(key, machine)
        times[key] = backend.timing(request).total_s
        print(
            f"  {backend.name:18s} {fmt_seconds(times[key]):>12s}   "
            f"({times['B'] / times[key]:5.1f}x vs baseline)"
        )
    print(
        f"\nPIMnet speedup over the baseline PIM: "
        f"{times['B'] / times['P']:.1f}x"
    )

    # 3. The Algorithm 1 phase timeline behind the PIMnet number.
    from repro.core import allreduce_timeline, format_timeline

    print()
    print(format_timeline(allreduce_timeline(elements * 8, machine)))


if __name__ == "__main__":
    main()
