"""DLRM embedding-table lookup on PIM (the paper's EMB workload).

Usage::

    python examples/dlrm_embedding_lookup.py

Part 1 runs a *functional* distributed pooled lookup on a small machine
— real table, real indices, Reduce-Scatter through the PIMnet backend —
and checks it against dense numpy.  Part 2 times the paper-scale
configurations (EMB_Synth and the RM1-RM3 production shapes) on all
backends, reproducing the Fig 10 EMB bars.
"""

from __future__ import annotations

import numpy as np

from repro import pimnet_sim_system, registry, small_test_system
from repro.config.units import fmt_seconds
from repro.workloads import (
    EMB_VARIANTS,
    compare_backends,
    distributed_embedding_lookup,
    embedding_reference,
)


def functional_demo() -> None:
    print("=== functional check (8-DPU machine) ===")
    machine = small_test_system()
    backend = registry.create("P", machine)
    rng = np.random.default_rng(11)
    table = rng.integers(0, 100, (4096, 16)).astype(np.int64)
    indices = rng.integers(0, 4096, (32, 8))  # batch 32, pooling 8
    pooled = distributed_embedding_lookup(table, indices, backend)
    assert np.array_equal(pooled, embedding_reference(table, indices))
    print(
        f"pooled {indices.shape[0]} samples x pooling {indices.shape[1]} "
        f"over {backend.num_dpus} DPUs: matches dense numpy"
    )


def paper_scale_timing() -> None:
    print("\n=== paper-scale timing (256 DPUs) ===")
    machine = pimnet_sim_system()
    header = f"{'variant':10s} {'Baseline':>12s} {'PIMnet':>12s} {'speedup':>8s}"
    print(header)
    print("-" * len(header))
    for name, factory in EMB_VARIANTS.items():
        results = compare_backends(factory(), machine, ["B", "P"])
        b, p = results["B"], results["P"]
        print(
            f"{name:10s} {fmt_seconds(b.total_s):>12s} "
            f"{fmt_seconds(p.total_s):>12s} "
            f"{p.speedup_over(b):7.1f}x"
        )
    print(
        "\n(RM3 shows the largest gain: widest embeddings = most "
        "communication per unit of compute, as in the paper)"
    )


if __name__ == "__main__":
    functional_demo()
    paper_scale_timing()
