"""Multi-tenant PIM with bandwidth isolation (the paper's Fig 17).

Usage::

    python examples/multi_tenant_isolation.py

Two tenants — a graph workload and a recommendation workload — are
spatially mapped onto disjoint halves of one channel.  With host-based
collectives both share the single host link and slow each other down;
with PIMnet the per-rank tiers are physically private, so co-location
costs (almost) nothing.
"""

from __future__ import annotations

from repro import pimnet_sim_system
from repro.analysis import run_multitenancy
from repro.config.units import fmt_seconds
from repro.workloads import CcWorkload, emb_synth


def main() -> None:
    machine = pimnet_sim_system()
    result = run_multitenancy(CcWorkload(), emb_synth(), machine)

    print("two tenants, each on 2 of the channel's 4 ranks\n")
    for label, pair in (
        ("host-based collectives (Baseline)", result.baseline),
        ("PIMnet collectives", result.pimnet),
    ):
        print(label)
        for tenant in pair:
            print(
                f"  {tenant.workload:4s} alone {fmt_seconds(tenant.alone_s):>10s}"
                f"  co-located {fmt_seconds(tenant.shared_s):>10s}"
                f"  slowdown {tenant.interference_slowdown:5.2f}x"
            )
        print()
    print(
        f"PIMnet reduces co-location interference by "
        f"{result.isolation_benefit():.2f}x (geomean) — the bandwidth-"
        "isolation property of Fig 17"
    )


if __name__ == "__main__":
    main()
