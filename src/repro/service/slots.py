"""Runtime time-slot cycle resolved from :class:`ServiceConfig`.

The config layer stores patterns as strings; here they are resolved to
:class:`Collective` members once, and the cycle exposes the position
arithmetic the scheduler loop needs (slot at position, cycle length,
which slots accept a pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.patterns import Collective
from ..config.service import ServiceConfig, TimeSlotConfig

__all__ = ["SlotCycle", "TimeSlot"]


@dataclass(frozen=True)
class TimeSlot:
    """One resolved slot: pattern filter, window, multiplexing cap."""

    index: int
    name: str
    patterns: frozenset[Collective]
    time_window_s: float
    max_multiplexing: int

    def accepts(self, pattern: Collective) -> bool:
        """Empty pattern set means the slot takes any collective."""
        return not self.patterns or pattern in self.patterns


def _resolve(index: int, config: TimeSlotConfig) -> TimeSlot:
    return TimeSlot(
        index=index,
        name=config.name,
        patterns=frozenset(Collective(p) for p in config.patterns),
        time_window_s=config.time_window_s,
        max_multiplexing=config.max_multiplexing,
    )


class SlotCycle:
    """The repeating admission schedule: slots + switch dead time."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.slots: tuple[TimeSlot, ...] = tuple(
            _resolve(i, slot) for i, slot in enumerate(config.slots)
        )
        self.switch_time_s = config.switch_time_s
        self.cycle_time_s = config.cycle_time_s

    def __len__(self) -> int:
        return len(self.slots)

    def slot_at(self, position: int) -> TimeSlot:
        """The slot serving occurrence ``position`` (wraps around)."""
        return self.slots[position % len(self.slots)]

    def cycle_of(self, position: int) -> int:
        """Which full pass over the schema ``position`` falls in."""
        return position // len(self.slots)

    def accepts(self, pattern: Collective) -> bool:
        return any(slot.accepts(pattern) for slot in self.slots)

    def slots_for(self, pattern: Collective) -> tuple[TimeSlot, ...]:
        return tuple(s for s in self.slots if s.accepts(pattern))
