"""Asyncio multi-tenant collective service over the PIMnet machine.

:class:`CollectiveService` accepts concurrent :class:`CollectiveRequest`
submissions from named tenants and admits them through the time-slot
cycle of :mod:`repro.service.slots` — squidasm's
``StaticScheduleProtocol`` adapted to PIMnet's static schedules.  The
scheduler advances a **simulated clock** (never the wall clock): each
slot occurrence selects admissible requests FIFO (see
:mod:`repro.service.admission`), batches the ones sharing a schedule
structure onto one compiled schedule
(:func:`repro.schedcache.cached_build_schedule` — compiled once per
structure, then payload-scaling replay via
:func:`~repro.schedcache.cached_schedule_timing`), stamps each request's
completion time, and resolves its future.  Requests whose payload the
static-schedule compiler cannot take (element count not divisible by
the DPU count) fall back to the closed-form timing model; the response
records which path priced it.

Determinism: there is no real I/O and no wall-clock dependence, so a
given submission interleaving produces byte-identical responses, which
is what lets ``tenant_service_load`` keep a golden fixture.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Mapping

from ..collectives.patterns import Collective, CollectiveRequest
from ..config.presets import MachineConfig, pimnet_sim_system
from ..config.service import ServiceConfig, default_service_config
from ..core.pimnet import PimnetBackend
from ..errors import CollectiveError, ScheduleError, ServiceError
from ..observability import (
    LogBucketSketch,
    metric_counter,
    metric_gauge,
    metric_histogram,
    metrics_active,
)
from .admission import AdmissionQueue, Outcome, QueueEntry
from .slots import SlotCycle, TimeSlot

__all__ = [
    "CLOSED_REASON",
    "CollectiveService",
    "OccurrenceRecord",
    "ServiceResponse",
    "TenantStats",
]

#: Substrate label under which service latencies land in the existing
#: ``tenant.request_latency_s{substrate=..., tenant=...}`` family.
SERVICE_SUBSTRATE = "Service"

#: Rejection reason stamped on requests still queued when the service
#: closes.  The fleet router (:mod:`repro.fleet`) matches on this exact
#: string to tell a shard outage (retryable on another shard) apart
#: from admission backpressure, so change it in lockstep.
CLOSED_REASON = "service closed before the request was admitted"


@dataclass(frozen=True)
class ServiceResponse:
    """The explicit outcome of one submission (never a silent drop)."""

    tenant: str
    sequence: int
    outcome: Outcome
    pattern: str
    payload_bytes: int
    reason: str = ""
    arrival_s: float = 0.0
    start_s: float | None = None
    finish_s: float | None = None
    service_s: float | None = None
    cycle: int | None = None
    slot: str | None = None
    #: True when the service time came from the cached-schedule replay
    #: path; False when the closed-form timing model priced it.
    replayed: bool | None = None

    @property
    def admitted(self) -> bool:
        return self.outcome is Outcome.ADMITTED

    @property
    def wait_s(self) -> float | None:
        if self.start_s is None:
            return None
        return self.start_s - self.arrival_s

    @property
    def latency_s(self) -> float | None:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "sequence": self.sequence,
            "outcome": self.outcome.value,
            "pattern": self.pattern,
            "payload_bytes": self.payload_bytes,
            "reason": self.reason,
            "arrival_s": self.arrival_s,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "service_s": self.service_s,
            "latency_s": self.latency_s,
            "cycle": self.cycle,
            "slot": self.slot,
            "replayed": self.replayed,
        }


@dataclass(frozen=True)
class OccurrenceRecord:
    """One slot occurrence, for invariant checks and the occurrence log."""

    position: int
    cycle: int
    slot: str
    start_s: float
    window_s: float
    consumed_s: float
    entries: tuple[tuple[str, int, Hashable], ...]
    structures: tuple[Hashable, ...]

    @property
    def overrun(self) -> bool:
        return self.consumed_s > self.window_s


@dataclass
class TenantStats:
    """Mutable per-tenant accounting (sketch always on, metrics gated)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    sketch: LogBucketSketch = field(default_factory=LogBucketSketch)

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "p50_s": self.sketch.quantile(50.0),
            "p99_s": self.sketch.quantile(99.0),
        }


class CollectiveService:
    """Admission-controlled asyncio front-end over one PIMnet machine.

    Use as an async context manager::

        async with CollectiveService(machine, config) as service:
            response = await service.submit("tenant-a", request)
    """

    def __init__(
        self,
        machine: MachineConfig | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        self.machine = machine or pimnet_sim_system()
        self.config = config or default_service_config()
        self.cycle = SlotCycle(self.config)
        self.backend = PimnetBackend(self.machine)
        self.num_dpus = self.backend.shape.num_dpus
        self._queue = AdmissionQueue(self.config)
        self._work = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._now_s = 0.0
        self._position = 0
        self._sequence = 0
        self._peak_depth = 0
        self._tenants: dict[str, TenantStats] = {}
        self._totals = {"submitted": 0, "admitted": 0, "rejected": 0}
        self._replayed = 0
        self._fallbacks = 0
        #: (pattern, num_elements, root, itemsize) -> (seconds, replayed)
        self._time_memo: dict[tuple, tuple[float, bool]] = {}
        #: Structures already compiled via cached_build_schedule.
        self._compiled: set[Hashable] = set()
        self.occurrences: list[OccurrenceRecord] = []

    # -- lifecycle ----------------------------------------------------

    async def __aenter__(self) -> "CollectiveService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def start(self) -> None:
        if self._task is not None:
            raise ServiceError("service already started")
        if self._closed:
            raise ServiceError("service was closed; build a new one")
        if metrics_active():
            # Materialize the counter family at zero so a run with no
            # rejections reads as rejection rate 0, not a missing metric.
            for name in ("service.submitted", "service.admitted",
                         "service.rejected", "service.occurrences"):
                metric_counter(name)
        loop = asyncio.get_running_loop()
        self._task = loop.create_task(self._run(), name="collective-service")

    @property
    def running(self) -> bool:
        return self._task is not None and not self._closed

    async def close(self) -> None:
        """Stop the scheduler; reject anything still queued, loudly."""
        if self._closed:
            return
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for entry in self._queue.drain_all():
            response = self._reject_response(
                entry.tenant, entry.sequence, entry.request,
                CLOSED_REASON,
                arrival_s=entry.arrival_s,
            )
            if entry.handle is not None and not entry.handle.done():
                entry.handle.set_result(response)

    async def drain(self) -> None:
        """Wait (in simulated occurrences) until the queue is empty."""
        while self._queue.depth:
            await asyncio.sleep(0)

    # -- submission ---------------------------------------------------

    async def submit(
        self, tenant: str, request: CollectiveRequest
    ) -> ServiceResponse:
        """Submit one request; resolves when served or rejected."""
        if not self.running:
            raise ServiceError(
                "service is not running; enter it with 'async with' first"
            )
        if not tenant or not isinstance(tenant, str):
            raise ServiceError("tenant name must be a non-empty string")
        sequence = self._sequence
        self._sequence += 1
        stats = self._tenant(tenant)
        stats.submitted += 1
        self._totals["submitted"] += 1
        if metrics_active():
            metric_counter("service.submitted").inc()
        try:
            request.validate_for(self.num_dpus)
        except CollectiveError as exc:
            return self._reject_response(tenant, sequence, request, str(exc))
        if not self.cycle.accepts(request.pattern):
            return self._reject_response(
                tenant, sequence, request,
                f"no slot in the cycle accepts pattern "
                f"{request.pattern.value!r}",
            )
        entry = QueueEntry(
            sequence=sequence,
            tenant=tenant,
            request=request,
            arrival_s=self._now_s,
            handle=asyncio.get_running_loop().create_future(),
        )
        reason = self._queue.try_enqueue(entry)
        if reason is not None:
            return self._reject_response(tenant, sequence, request, reason)
        self._peak_depth = max(self._peak_depth, self._queue.depth)
        self._work.set()
        return await entry.handle

    # -- scheduler ----------------------------------------------------

    async def _run(self) -> None:
        while True:
            if self._queue.depth == 0:
                self._work.clear()
                await self._work.wait()
            slot = self.cycle.slot_at(self._position)
            self._occurrence(slot)
            # Yield once so resolved futures wake their submitters (a
            # closed-loop driver re-enqueues before the next occurrence).
            await asyncio.sleep(0)

    def _occurrence(self, slot: TimeSlot) -> None:
        start_s = self._now_s
        selection = self._queue.select(
            slot, self.structure_key, lambda r: self._service_time(r)[0]
        )
        cycle_index = self.cycle.cycle_of(self._position)
        entries_log = []
        elapsed = 0.0
        for entry in selection.entries:
            structure = self.structure_key(entry.request)
            self._compile(structure, entry.request)
            service_s, replayed = self._service_time(entry.request)
            elapsed += service_s
            finish_s = start_s + elapsed
            response = ServiceResponse(
                tenant=entry.tenant,
                sequence=entry.sequence,
                outcome=Outcome.ADMITTED,
                pattern=entry.request.pattern.value,
                payload_bytes=entry.request.payload_bytes,
                arrival_s=entry.arrival_s,
                start_s=finish_s - service_s,
                finish_s=finish_s,
                service_s=service_s,
                cycle=cycle_index,
                slot=slot.name,
                replayed=replayed,
            )
            self._record_admitted(response)
            entries_log.append((entry.tenant, entry.sequence, structure))
            if not entry.handle.done():
                entry.handle.set_result(response)
        self.occurrences.append(
            OccurrenceRecord(
                position=self._position,
                cycle=cycle_index,
                slot=slot.name,
                start_s=start_s,
                window_s=slot.time_window_s,
                consumed_s=selection.consumed_s,
                entries=tuple(entries_log),
                structures=selection.structures,
            )
        )
        if metrics_active():
            metric_counter("service.occurrences").inc()
        # The occurrence holds the fabric for its window (or its overrun,
        # for a single oversized admission), then pays the switch time.
        self._now_s = start_s + max(
            slot.time_window_s, selection.consumed_s
        ) + self.cycle.switch_time_s
        self._position += 1

    # -- pricing ------------------------------------------------------

    def structure_key(self, request: CollectiveRequest) -> Hashable:
        """Payload-independent schedule structure (batching key)."""
        return (request.pattern, request.root, request.dtype.itemsize)

    def _schedulable(self, request: CollectiveRequest) -> bool:
        pattern = request.pattern
        if pattern in (Collective.REDUCE_SCATTER, Collective.ALL_TO_ALL,
                       Collective.ALL_REDUCE, Collective.ALL_GATHER):
            return request.num_elements % self.num_dpus == 0
        return True

    def _compile(self, structure: Hashable, request: CollectiveRequest) -> None:
        """Compile the structure's schedule once (cache-warmed batching)."""
        if structure in self._compiled or not self._schedulable(request):
            return
        from ..schedcache import cached_build_schedule

        cached_build_schedule(
            request.pattern, self.backend.shape, request.num_elements,
            request.root,
        )
        self._compiled.add(structure)

    def _service_time(self, request: CollectiveRequest) -> tuple[float, bool]:
        """(seconds, replayed) for one request, memoized per payload."""
        key = (
            request.pattern, request.num_elements, request.root,
            request.dtype.itemsize,
        )
        cached = self._time_memo.get(key)
        if cached is not None:
            return cached
        if self._schedulable(request):
            try:
                times = self.backend.schedule_times(request)
                value = (sum(times.values()), True)
            except ScheduleError:
                value = (self.backend.timing(request).total_s, False)
        else:
            value = (self.backend.timing(request).total_s, False)
        self._time_memo[key] = value
        return value

    # -- accounting ---------------------------------------------------

    def _tenant(self, tenant: str) -> TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = TenantStats()
            self._tenants[tenant] = stats
        return stats

    def _reject_response(
        self,
        tenant: str,
        sequence: int,
        request: CollectiveRequest,
        reason: str,
        arrival_s: float | None = None,
    ) -> ServiceResponse:
        stats = self._tenant(tenant)
        stats.rejected += 1
        self._totals["rejected"] += 1
        if metrics_active():
            metric_counter("service.rejected").inc()
        return ServiceResponse(
            tenant=tenant,
            sequence=sequence,
            outcome=Outcome.REJECTED,
            pattern=request.pattern.value,
            payload_bytes=request.payload_bytes,
            reason=reason,
            arrival_s=self._now_s if arrival_s is None else arrival_s,
        )

    def _record_admitted(self, response: ServiceResponse) -> None:
        stats = self._tenant(response.tenant)
        stats.admitted += 1
        self._totals["admitted"] += 1
        latency = response.latency_s
        assert latency is not None
        stats.sketch.observe(latency)
        if response.replayed:
            self._replayed += 1
        else:
            self._fallbacks += 1
        if metrics_active():
            metric_counter("service.admitted").inc()
            metric_histogram(
                "tenant.request_latency_s",
                {"substrate": SERVICE_SUBSTRATE, "tenant": response.tenant},
            ).observe(latency)

    def check_conservation(self) -> None:
        """submitted == admitted + rejected + still-queued, or raise."""
        total = self._totals
        accounted = total["admitted"] + total["rejected"] + self._queue.depth
        if total["submitted"] != accounted:
            raise ServiceError(
                f"lost requests: submitted={total['submitted']} but "
                f"admitted={total['admitted']} + "
                f"rejected={total['rejected']} + "
                f"queued={self._queue.depth} = {accounted}"
            )

    def tenant_stats(self) -> Mapping[str, TenantStats]:
        return dict(self._tenants)

    def stats(self) -> dict[str, Any]:
        self.check_conservation()
        if metrics_active():
            metric_gauge("service.queue_depth_peak").set(self._peak_depth)
        return {
            "submitted": self._totals["submitted"],
            "admitted": self._totals["admitted"],
            "rejected": self._totals["rejected"],
            "queued": self._queue.depth,
            "occurrences": len(self.occurrences),
            "peak_queue_depth": self._peak_depth,
            "replayed": self._replayed,
            "fallbacks": self._fallbacks,
            "now_s": self._now_s,
            "tenants": {
                tenant: stats.to_dict()
                for tenant, stats in sorted(self._tenants.items())
            },
        }

    def iter_occurrences(self) -> Iterator[OccurrenceRecord]:
        return iter(self.occurrences)
