"""Multi-tenant async collective service with time-sliced admission.

An asyncio front-end over the PIMnet machine: named tenants submit
collective requests concurrently; a repeating cycle of time slots
(squidasm's ``StaticScheduleProtocol`` adapted to PIMnet's static
schedules) admits them under per-tenant quotas and a bounded queue;
batched same-structure requests compile once through the schedule
cache and replay per payload.  See ``docs/SERVICE.md``.

Typical use::

    from repro.config import default_service_config
    from repro.service import CollectiveService

    async with CollectiveService(machine, default_service_config()) as svc:
        response = await svc.submit("tenant-a", request)
        assert response.outcome.value in ("admitted", "rejected")
"""

from .admission import AdmissionQueue, Outcome, QueueEntry, Selection
from .service import (
    CLOSED_REASON,
    SERVICE_SUBSTRATE,
    CollectiveService,
    OccurrenceRecord,
    ServiceResponse,
    TenantStats,
)
from .slots import SlotCycle, TimeSlot

__all__ = [
    "AdmissionQueue",
    "CLOSED_REASON",
    "CollectiveService",
    "OccurrenceRecord",
    "Outcome",
    "QueueEntry",
    "SERVICE_SUBSTRATE",
    "Selection",
    "ServiceResponse",
    "SlotCycle",
    "TenantStats",
    "TimeSlot",
]
