"""Bounded admission queue with per-tenant quotas.

Every submission gets an explicit outcome — ``REJECTED`` at the door
(queue full, tenant over quota, pattern no slot serves), ``QUEUED``
while waiting, ``ADMITTED`` once a slot occurrence serves it.  There is
no silent-drop path: a request leaves the queue only by admission, and
rejection always carries a reason string.

Selection for one slot occurrence scans the queue in FIFO order and
admits entries subject to four checks:

* the slot's pattern filter,
* the tenant's ``max_per_slot`` quota,
* the slot's ``max_multiplexing`` cap on *distinct* schedule
  structures (same-structure requests batch onto one compiled
  schedule and replay with their own payloads), and
* the slot's time-window budget — with a single-oversize allowance:
  a request whose service time alone exceeds the window is still
  admitted when the window is empty (the occurrence overruns and the
  overrun is recorded), otherwise it could never be served.

The scan stops at the first entry that fails the *budget* check, so
admission is strictly FIFO with respect to service order: an entry is
never overtaken by a later entry merely because the later one is
smaller.  Pattern/quota/multiplexing skips do not reorder same-tenant,
same-structure entries (the skip decision is identical for all of them
within one occurrence), which is the invariant the hypothesis suite
pins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from ..collectives.patterns import CollectiveRequest
from ..config.service import ServiceConfig, TenantQuotaConfig
from .slots import TimeSlot

__all__ = ["AdmissionQueue", "Outcome", "QueueEntry", "Selection"]

#: Relative slack on the window-budget comparison, so float roundoff in
#: accumulated service times never flips an admission decision.
_BUDGET_SLACK = 1e-12


class Outcome(enum.Enum):
    """The explicit fate of one submission."""

    REJECTED = "rejected"
    QUEUED = "queued"
    ADMITTED = "admitted"


@dataclass
class QueueEntry:
    """One queued request, in arrival order."""

    sequence: int
    tenant: str
    request: CollectiveRequest
    arrival_s: float
    #: Opaque completion handle (an asyncio future in the live service;
    #: tests drive the queue without one).
    handle: Any = None


@dataclass(frozen=True)
class Selection:
    """What one slot occurrence admitted, and its time accounting."""

    entries: tuple[QueueEntry, ...]
    consumed_s: float
    structures: tuple[Hashable, ...]

    @property
    def count(self) -> int:
        return len(self.entries)


@dataclass
class _TenantAccount:
    queued: int = 0
    quota: TenantQuotaConfig = field(default_factory=TenantQuotaConfig)


class AdmissionQueue:
    """FIFO queue bounded globally and per tenant."""

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config
        self._entries: list[QueueEntry] = []
        self._accounts: dict[str, _TenantAccount] = {}

    def _account(self, tenant: str) -> _TenantAccount:
        account = self._accounts.get(tenant)
        if account is None:
            account = _TenantAccount(quota=self._config.quota_for(tenant))
            self._accounts[tenant] = account
        return account

    @property
    def depth(self) -> int:
        return len(self._entries)

    def tenant_depth(self, tenant: str) -> int:
        account = self._accounts.get(tenant)
        return account.queued if account else 0

    def try_enqueue(self, entry: QueueEntry) -> str | None:
        """Queue ``entry``; the rejection reason if it cannot be held."""
        if len(self._entries) >= self._config.queue_limit:
            return (
                f"admission queue full "
                f"(queue_limit={self._config.queue_limit})"
            )
        account = self._account(entry.tenant)
        if account.queued >= account.quota.max_queued:
            return (
                f"tenant {entry.tenant!r} over quota "
                f"(max_queued={account.quota.max_queued})"
            )
        self._entries.append(entry)
        account.queued += 1
        return None

    def select(
        self,
        slot: TimeSlot,
        structure_key: Callable[[CollectiveRequest], Hashable],
        service_time_s: Callable[[CollectiveRequest], float],
    ) -> Selection:
        """Admit entries for one occurrence of ``slot`` (see module doc)."""
        admitted: list[QueueEntry] = []
        structures: list[Hashable] = []
        seen: set[Hashable] = set()
        per_tenant: dict[str, int] = {}
        consumed = 0.0
        budget = slot.time_window_s * (1.0 + _BUDGET_SLACK)
        for entry in self._entries:
            if not slot.accepts(entry.request.pattern):
                continue
            quota = self._account(entry.tenant).quota
            if per_tenant.get(entry.tenant, 0) >= quota.max_per_slot:
                continue
            key = structure_key(entry.request)
            if key not in seen and len(seen) >= slot.max_multiplexing:
                continue
            cost = service_time_s(entry.request)
            if admitted and consumed + cost > budget:
                # Strict FIFO fill: once the window cannot take the next
                # eligible entry, the occurrence is closed.
                break
            admitted.append(entry)
            if key not in seen:
                seen.add(key)
                structures.append(key)
            per_tenant[entry.tenant] = per_tenant.get(entry.tenant, 0) + 1
            consumed += cost
        if admitted:
            chosen = set(id(entry) for entry in admitted)
            self._entries = [
                entry for entry in self._entries if id(entry) not in chosen
            ]
            for entry in admitted:
                self._accounts[entry.tenant].queued -= 1
        return Selection(
            entries=tuple(admitted),
            consumed_s=consumed,
            structures=tuple(structures),
        )

    def drain_all(self) -> tuple[QueueEntry, ...]:
        """Remove and return everything still queued (service shutdown)."""
        entries = tuple(self._entries)
        self._entries.clear()
        for account in self._accounts.values():
            account.queued = 0
        return entries
