"""Coordinate algebra for the PIM packaging hierarchy.

A DPU (equivalently, a PIM bank) is addressed by a four-level coordinate
``(channel, rank, chip, bank)``.  Flat DPU ids enumerate banks first, then
chips, then ranks, then channels — the same order the weak-scaling
experiments use to grow the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..config.system import PimSystemConfig
from ..errors import TopologyError


@dataclass(frozen=True, order=True)
class BankCoord:
    """Position of one PIM bank in the packaging hierarchy."""

    channel: int
    rank: int
    chip: int
    bank: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ch{self.channel}/r{self.rank}/c{self.chip}/b{self.bank}"


class Topology:
    """Bidirectional mapping between flat DPU ids and :class:`BankCoord`.

    Also provides the neighbor math for the three PIMnet tiers: ring
    neighbors within a chip, crossbar ports within a rank, and bus drops
    within a channel.
    """

    def __init__(self, config: PimSystemConfig) -> None:
        self.config = config

    # -- id <-> coordinate ----------------------------------------------------
    def coord(self, dpu_id: int) -> BankCoord:
        """Decode a flat DPU id into its packaging coordinate."""
        if not 0 <= dpu_id < self.config.total_dpus:
            raise TopologyError(
                f"DPU id {dpu_id} out of range [0, {self.config.total_dpus})"
            )
        cfg = self.config
        bank = dpu_id % cfg.banks_per_chip
        rest = dpu_id // cfg.banks_per_chip
        chip = rest % cfg.chips_per_rank
        rest //= cfg.chips_per_rank
        rank = rest % cfg.ranks_per_channel
        channel = rest // cfg.ranks_per_channel
        return BankCoord(channel=channel, rank=rank, chip=chip, bank=bank)

    def dpu_id(self, coord: BankCoord) -> int:
        """Encode a packaging coordinate into its flat DPU id."""
        cfg = self.config
        if not 0 <= coord.bank < cfg.banks_per_chip:
            raise TopologyError(f"bank {coord.bank} out of range")
        if not 0 <= coord.chip < cfg.chips_per_rank:
            raise TopologyError(f"chip {coord.chip} out of range")
        if not 0 <= coord.rank < cfg.ranks_per_channel:
            raise TopologyError(f"rank {coord.rank} out of range")
        if not 0 <= coord.channel < cfg.num_channels:
            raise TopologyError(f"channel {coord.channel} out of range")
        return (
            (
                (coord.channel * cfg.ranks_per_channel + coord.rank)
                * cfg.chips_per_rank
                + coord.chip
            )
            * cfg.banks_per_chip
            + coord.bank
        )

    def all_coords(self) -> Iterator[BankCoord]:
        """All bank coordinates in flat-id order."""
        for dpu in range(self.config.total_dpus):
            yield self.coord(dpu)

    # -- tier groupings ---------------------------------------------------------
    def chip_members(self, channel: int, rank: int, chip: int) -> list[int]:
        """Flat ids of the banks on one DRAM chip (one inter-bank ring)."""
        return [
            self.dpu_id(BankCoord(channel, rank, chip, bank))
            for bank in range(self.config.banks_per_chip)
        ]

    def rank_members(self, channel: int, rank: int) -> list[int]:
        """Flat ids of all banks in one rank (one inter-chip crossbar scope)."""
        return [
            dpu
            for chip in range(self.config.chips_per_rank)
            for dpu in self.chip_members(channel, rank, chip)
        ]

    def channel_members(self, channel: int) -> list[int]:
        """Flat ids of all banks on one memory channel (one PIMnet scope)."""
        return [
            dpu
            for rank in range(self.config.ranks_per_channel)
            for dpu in self.rank_members(channel, rank)
        ]

    # -- tier neighbors -----------------------------------------------------------
    def ring_neighbor(self, dpu_id: int, direction: int = +1) -> int:
        """Next bank on the same chip's inter-bank ring.

        ``direction`` is +1 (east) or -1 (west); the ring wraps within the
        chip, matching the partitioned bank-group I/O bus of Fig 7.
        """
        if direction not in (+1, -1):
            raise TopologyError("ring direction must be +1 or -1")
        c = self.coord(dpu_id)
        nb = (c.bank + direction) % self.config.banks_per_chip
        return self.dpu_id(BankCoord(c.channel, c.rank, c.chip, nb))

    def chip_ring_neighbor(self, chip: int, direction: int = +1) -> int:
        """Next chip index on the logical inter-chip ring of a rank."""
        if direction not in (+1, -1):
            raise TopologyError("ring direction must be +1 or -1")
        return (chip + direction) % self.config.chips_per_rank

    def ring_distance(self, src_bank: int, dst_bank: int) -> int:
        """Hop count from ``src_bank`` to ``dst_bank`` going east."""
        n = self.config.banks_per_chip
        if not (0 <= src_bank < n and 0 <= dst_bank < n):
            raise TopologyError("bank index out of range")
        return (dst_bank - src_bank) % n
