"""Packaging-hierarchy topology: coordinates and tier neighbor math."""

from .coordinates import BankCoord, Topology

__all__ = ["BankCoord", "Topology"]
