"""Unit constants and conversion helpers.

The library uses SI base units everywhere: **bytes** for data sizes,
**seconds** for time, **bytes/second** for bandwidth, and **hertz** for
clock frequencies.  DRAM-marketing units (KiB vs KB) are a classic source
of silent 2.4% errors, so all conversions go through this module.
"""

from __future__ import annotations

import math

# --- data sizes (binary, as used for memory capacities) -------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# --- data sizes (decimal, as used for link bandwidths) --------------------
KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB

# --- time ------------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

# --- frequency -------------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def is_finite_number(value: object) -> bool:
    """Whether ``value`` is a real, finite number.

    Config validators guard with this before range checks: a bare
    ``value <= 0`` lets NaN through (every comparison with NaN is
    false), and NaN/inf then propagate as garbage timings instead of a
    clear configuration error.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return math.isfinite(value)


def bytes_per_second(gigabytes_per_second: float) -> float:
    """Convert a GB/s figure (decimal gigabytes) to bytes/second."""
    return gigabytes_per_second * GB


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Number of clock cycles elapsed in ``seconds`` at ``frequency_hz``."""
    return seconds * frequency_hz


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Wall-clock duration of ``cycles`` ticks at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def transfer_time(num_bytes: float, bandwidth_bytes_per_s: float) -> float:
    """Serialization time of ``num_bytes`` over a link.

    Zero-byte transfers take zero time; a non-positive bandwidth is a
    configuration error rather than an infinite transfer.
    """
    if num_bytes < 0:
        raise ValueError(f"cannot transfer a negative size: {num_bytes}")
    if num_bytes == 0:
        return 0.0
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(
            f"bandwidth must be positive, got {bandwidth_bytes_per_s}"
        )
    return num_bytes / bandwidth_bytes_per_s


#: Suffixes accepted by :func:`parse_bytes`.  Collective payloads are
#: power-of-two shaped (they must divide across 2^k DPUs), so the short
#: forms KB/MB/GB parse as their binary siblings — "1MB" is 1 MiB.
_SIZE_MULTIPLIERS = {
    "": 1,
    "B": 1,
    "K": KIB,
    "KB": KIB,
    "KIB": KIB,
    "M": MIB,
    "MB": MIB,
    "MIB": MIB,
    "G": GIB,
    "GB": GIB,
    "GIB": GIB,
}


def parse_bytes(text: str) -> int:
    """Parse a human size string ("1MB", "32KiB", "4096") into bytes."""
    cleaned = str(text).strip()
    digits = cleaned
    suffix = ""
    for i, ch in enumerate(cleaned):
        if ch.isalpha():
            digits, suffix = cleaned[:i], cleaned[i:]
            break
    suffix = suffix.strip().upper()
    if suffix not in _SIZE_MULTIPLIERS:
        raise ValueError(
            f"unknown size suffix {suffix!r} in {text!r} "
            f"(known: {sorted(s for s in _SIZE_MULTIPLIERS if s)})"
        )
    try:
        value = float(digits.strip())
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None
    if not math.isfinite(value):
        raise ValueError(f"size {text!r} is not a finite number")
    num_bytes = value * _SIZE_MULTIPLIERS[suffix]
    if not math.isfinite(num_bytes):
        raise ValueError(f"size {text!r} overflows to infinity")
    if num_bytes <= 0 or num_bytes != int(num_bytes):
        raise ValueError(
            f"size {text!r} must be a positive whole number of bytes"
        )
    return int(num_bytes)


def fmt_bytes(num_bytes: float) -> str:
    """Human-readable byte count (binary units), for reports and logs."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.4g} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration, for reports and logs."""
    if seconds == 0:
        return "0 s"
    if abs(seconds) < US:
        return f"{seconds / NS:.4g} ns"
    if abs(seconds) < MS:
        return f"{seconds / US:.4g} us"
    if abs(seconds) < 1:
        return f"{seconds / MS:.4g} ms"
    return f"{seconds:.4g} s"
