"""Configuration of the cross-model conformance matrix.

Like :class:`RunnerConfig` and :class:`FaultCampaignConfig`, this is
plain eagerly-validated data: the CLI and tests thread it into
:mod:`repro.conformance` without importing the engine machinery.

The matrix is the cartesian product ``collectives x shapes x
payload_bytes``.  Default shapes keep ``ranks <= 2`` on purpose: the
analytic rank-tier model counts a broadcast's bus payload once (the bus
is physically broadcast-capable) while the flit simulator models it as
per-destination unicasts, so shapes with more than two ranks diverge by
construction, not by bug.  See ``docs/CONFORMANCE.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from ..errors import ConformanceError

#: Collective patterns checked by the default matrix (the five Table V
#: patterns with non-trivial multi-tier schedules).
DEFAULT_COLLECTIVES = (
    "all_reduce",
    "reduce_scatter",
    "all_gather",
    "all_to_all",
    "broadcast",
)

#: Machine shapes as (banks, chips, ranks).  All have ``ranks <= 2``
#: (see the module docstring) and every nested ring segment divides.
DEFAULT_SHAPES = ((2, 2, 1), (2, 2, 2), (4, 2, 2))

#: Per-DPU payload sizes in bytes (int64 elements: 32, 128, 512).
DEFAULT_PAYLOADS = (256, 1024, 4096)


def _finite(value: object) -> bool:
    """Whether ``value`` is a real, finite number (no NaN/inf/str)."""
    return isinstance(value, (int, float)) and math.isfinite(value)


@dataclass(frozen=True)
class ConformanceConfig:
    """One conformance run: the matrix plus agreement tolerances.

    The latency check asserts, per point::

        min_ratio * analytic - slack <= noc <= (1 + rel_tol) * analytic + slack

    (all in cycles).  The analytic model is a contention-free lower
    bound; the flit simulator adds per-hop pipelining, flit
    quantization, and arbitration, empirically 1.0x-1.9x on the default
    matrix — hence ``rel_tol`` of 1.0 with a small absolute slack for
    near-zero points.  ``seed`` feeds the per-point payload RNG (and the
    mutation RNG), so a run is reproducible from this config alone.
    """

    collectives: tuple[str, ...] = DEFAULT_COLLECTIVES
    shapes: tuple[tuple[int, int, int], ...] = DEFAULT_SHAPES
    payload_bytes: tuple[int, ...] = DEFAULT_PAYLOADS
    latency_rel_tol: float = 1.0
    latency_min_ratio: float = 0.9
    latency_abs_slack_cycles: float = 200.0
    itemsize: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.collectives:
            raise ConformanceError("need at least one collective")
        from ..collectives.patterns import Collective

        known = {p.value for p in Collective}
        for name in self.collectives:
            if name not in known:
                raise ConformanceError(
                    f"unknown collective {name!r} "
                    f"(known: {', '.join(sorted(known))})"
                )
        if not self.shapes:
            raise ConformanceError("need at least one machine shape")
        for shape in self.shapes:
            if len(shape) != 3 or any(
                not isinstance(d, int) or d < 1 for d in shape
            ):
                raise ConformanceError(
                    f"shape {shape!r} must be three positive ints "
                    "(banks, chips, ranks)"
                )
        if not self.payload_bytes:
            raise ConformanceError("need at least one payload size")
        if not isinstance(self.itemsize, int) or self.itemsize < 1:
            raise ConformanceError(
                f"itemsize must be a positive int, got {self.itemsize!r}"
            )
        for payload in self.payload_bytes:
            if not isinstance(payload, int) or payload < 1:
                raise ConformanceError(
                    f"payload {payload!r} must be a positive int"
                )
            if payload % self.itemsize:
                raise ConformanceError(
                    f"payload {payload} is not a multiple of the "
                    f"{self.itemsize}-byte element size"
                )
        if not _finite(self.latency_rel_tol) or self.latency_rel_tol < 0:
            raise ConformanceError(
                f"latency_rel_tol must be finite and >= 0, "
                f"got {self.latency_rel_tol}"
            )
        if (
            not _finite(self.latency_min_ratio)
            or not 0 <= self.latency_min_ratio <= 1
        ):
            raise ConformanceError(
                f"latency_min_ratio must be in [0, 1], "
                f"got {self.latency_min_ratio}"
            )
        if (
            not _finite(self.latency_abs_slack_cycles)
            or self.latency_abs_slack_cycles < 0
        ):
            raise ConformanceError(
                f"latency_abs_slack_cycles must be finite and >= 0, "
                f"got {self.latency_abs_slack_cycles}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConformanceError(f"seed must be >= 0, got {self.seed!r}")

    @property
    def num_points(self) -> int:
        return (
            len(self.collectives)
            * len(self.shapes)
            * len(self.payload_bytes)
        )

    def as_dict(self) -> dict:
        """JSON form (tuples become lists), inverse of :meth:`from_dict`."""
        return {
            "collectives": list(self.collectives),
            "shapes": [list(s) for s in self.shapes],
            "payload_bytes": list(self.payload_bytes),
            "latency_rel_tol": self.latency_rel_tol,
            "latency_min_ratio": self.latency_min_ratio,
            "latency_abs_slack_cycles": self.latency_abs_slack_cycles,
            "itemsize": self.itemsize,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConformanceConfig":
        if not isinstance(data, dict):
            raise ConformanceError("conformance config must be an object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConformanceError(
                f"unknown conformance config field(s): {', '.join(unknown)}"
            )
        payload = dict(data)
        if "collectives" in payload:
            payload["collectives"] = tuple(payload["collectives"])
        if "shapes" in payload:
            try:
                payload["shapes"] = tuple(
                    tuple(int(d) for d in s) for s in payload["shapes"]
                )
            except (TypeError, ValueError) as exc:
                raise ConformanceError(
                    f"invalid shapes in conformance config: {exc}"
                ) from exc
        if "payload_bytes" in payload:
            payload["payload_bytes"] = tuple(payload["payload_bytes"])
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConformanceError(
                f"invalid conformance config: {exc}"
            ) from exc
