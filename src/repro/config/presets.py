"""Named system presets matching the paper's configuration tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from .compute import ComputeProfile, upmem_profile
from .network import BufferChipConfig, HostLinkConfig, PimnetNetworkConfig
from .system import HostConfig, PimSystemConfig


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate a simulated PIM machine."""

    system: PimSystemConfig = field(default_factory=PimSystemConfig)
    host: HostConfig = field(default_factory=HostConfig)
    host_links: HostLinkConfig = field(default_factory=HostLinkConfig)
    pimnet: PimnetNetworkConfig = field(default_factory=PimnetNetworkConfig)
    buffer_chip: BufferChipConfig = field(default_factory=BufferChipConfig)
    compute: ComputeProfile = field(default_factory=upmem_profile)


def pimnet_sim_system(num_channels: int = 1) -> MachineConfig:
    """The simulated system of Table VI.

    DDR4-2400, 4 ranks per channel, 64 DPUs per rank (8 banks x 8 chips),
    350 MHz DPUs with 24 KB IRAM / 64 KB WRAM, measured UPMEM host-link
    bandwidths, and a 19.2 GB/s buffer-chip link for prior-work baselines.
    """
    return MachineConfig(
        system=PimSystemConfig(
            banks_per_chip=8,
            chips_per_rank=8,
            ranks_per_channel=4,
            num_channels=num_channels,
        )
    )


def upmem_server() -> MachineConfig:
    """The real UPMEM server of Table II (characterization platform).

    20 PIM DIMMs = 20 ranks of 128 DPUs... the production server exposes
    2560 DPUs across 10 channels (2 ranks per channel, 8 chips per rank,
    16 banks per chip-pair); we model it as 10 channels x 2 ranks x 8 chips
    x 16 banks = 2560 DPUs, which preserves both the total DPU count and
    the per-channel bandwidth constraints that drive scalability.
    """
    return MachineConfig(
        system=PimSystemConfig(
            banks_per_chip=16,
            chips_per_rank=8,
            ranks_per_channel=2,
            num_channels=10,
        )
    )


def small_test_system() -> MachineConfig:
    """A tiny 2x2x2 (8-DPU) machine for fast unit tests."""
    return MachineConfig(
        system=PimSystemConfig(
            banks_per_chip=2,
            chips_per_rank=2,
            ranks_per_channel=2,
            num_channels=1,
        )
    )
