"""Multi-tenant collective-service configuration.

The serving layer (:mod:`repro.service`) admits concurrent collective
requests through a repeating **cycle of time slots** — the structure of
squidasm's ``StaticScheduleProtocol`` adapted to PIMnet's static
schedules.  Each :class:`TimeSlotConfig` opens a window for a set of
collective patterns; slots are separated by a switch (dead) time during
which the fabric reconfigures; ``max_multiplexing`` bounds how many
distinct schedule *structures* may share one window (requests with the
same structure batch onto one compiled schedule and differ only in
payload, which the schedule cache replays exactly).

Pattern names are stored as plain strings (the :class:`Collective` enum
values) so configs stay JSON-serializable and this module stays below
:mod:`repro.collectives` in the import layering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError

__all__ = [
    "KNOWN_PATTERNS",
    "ServiceConfig",
    "TenantQuotaConfig",
    "TimeSlotConfig",
    "default_service_config",
]

#: The seven collective patterns, mirroring ``Collective`` values
#: (pinned by a test so the two can never drift apart).
KNOWN_PATTERNS = (
    "reduce_scatter",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "broadcast",
    "reduce",
    "gather",
)
_KNOWN = frozenset(KNOWN_PATTERNS)


def _require_finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return value


@dataclass(frozen=True)
class TimeSlotConfig:
    """One slot of the admission cycle.

    ``patterns`` lists the collective patterns the slot accepts (empty
    means *any* pattern); ``time_window_s`` is the slot's service
    budget per occurrence; ``max_multiplexing`` caps the number of
    distinct schedule structures admitted into one occurrence.
    """

    name: str
    patterns: tuple[str, ...] = ()
    time_window_s: float = 1e-3
    max_multiplexing: int = 1

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("time slot name must be a non-empty string")
        object.__setattr__(self, "patterns", tuple(self.patterns))
        for pattern in self.patterns:
            if pattern not in _KNOWN:
                raise ConfigurationError(
                    f"slot {self.name!r} names unknown pattern {pattern!r}; "
                    f"known patterns: {', '.join(KNOWN_PATTERNS)}"
                )
        if len(set(self.patterns)) != len(self.patterns):
            raise ConfigurationError(
                f"slot {self.name!r} lists a pattern more than once"
            )
        window = _require_finite(f"slot {self.name!r} time_window_s",
                                 self.time_window_s)
        if window <= 0:
            raise ConfigurationError(
                f"slot {self.name!r} time_window_s must be > 0, got {window!r}"
            )
        object.__setattr__(self, "time_window_s", window)
        if not isinstance(self.max_multiplexing, int) or self.max_multiplexing < 1:
            raise ConfigurationError(
                f"slot {self.name!r} max_multiplexing must be an int >= 1, "
                f"got {self.max_multiplexing!r}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "patterns": list(self.patterns),
            "time_window_s": self.time_window_s,
            "max_multiplexing": self.max_multiplexing,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimeSlotConfig":
        return cls(
            name=str(data["name"]),
            patterns=tuple(data.get("patterns", ())),
            time_window_s=float(data.get("time_window_s", 1e-3)),
            max_multiplexing=int(data.get("max_multiplexing", 1)),
        )


@dataclass(frozen=True)
class TenantQuotaConfig:
    """Per-tenant admission limits.

    ``max_queued`` bounds how many of one tenant's requests may wait in
    the admission queue at once (excess submissions are *rejected*, with
    a reason — the backpressure signal); ``max_per_slot`` bounds how
    many of the tenant's requests one slot occurrence may serve.
    """

    max_queued: int = 64
    max_per_slot: int = 8

    def __post_init__(self) -> None:
        for attr in ("max_queued", "max_per_slot"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"tenant quota {attr} must be an int >= 1, got {value!r}"
                )

    def as_dict(self) -> dict[str, Any]:
        return {"max_queued": self.max_queued, "max_per_slot": self.max_per_slot}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantQuotaConfig":
        return cls(
            max_queued=int(data.get("max_queued", 64)),
            max_per_slot=int(data.get("max_per_slot", 8)),
        )


@dataclass(frozen=True)
class ServiceConfig:
    """The admission cycle plus global and per-tenant backpressure.

    ``switch_time_s`` is the dead time between consecutive slots (fabric
    reconfiguration); the full cycle time is
    ``sum(slot windows) + len(slots) * switch_time_s``, mirroring
    squidasm's ``full_cycle_time``.  ``queue_limit`` bounds the total
    admission queue across all tenants.
    """

    slots: tuple[TimeSlotConfig, ...]
    switch_time_s: float = 50e-6
    queue_limit: int = 256
    default_quota: TenantQuotaConfig = field(default_factory=TenantQuotaConfig)
    #: (tenant name, quota) overrides, kept as a sorted tuple of pairs
    #: so the config stays hashable and canonically serializable.
    tenant_quotas: tuple[tuple[str, TenantQuotaConfig], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "slots", tuple(self.slots))
        if not self.slots:
            raise ConfigurationError("service needs at least one time slot")
        names = [slot.name for slot in self.slots]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"slot names must be unique, got {names}"
            )
        switch = _require_finite("switch_time_s", self.switch_time_s)
        if switch < 0:
            raise ConfigurationError(
                f"switch_time_s must be >= 0, got {switch!r}"
            )
        object.__setattr__(self, "switch_time_s", switch)
        if not isinstance(self.queue_limit, int) or self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be an int >= 1, got {self.queue_limit!r}"
            )
        quotas = tuple(sorted(
            ((str(tenant), quota) for tenant, quota in self.tenant_quotas),
            key=lambda pair: pair[0],
        ))
        for tenant, _ in quotas:
            if not tenant:
                raise ConfigurationError("tenant quota name must be non-empty")
        if len({tenant for tenant, _ in quotas}) != len(quotas):
            raise ConfigurationError("duplicate tenant quota override")
        object.__setattr__(self, "tenant_quotas", quotas)

    @property
    def cycle_time_s(self) -> float:
        """One full pass over the cycle, switch times included."""
        return (
            sum(slot.time_window_s for slot in self.slots)
            + len(self.slots) * self.switch_time_s
        )

    def quota_for(self, tenant: str) -> TenantQuotaConfig:
        for name, quota in self.tenant_quotas:
            if name == tenant:
                return quota
        return self.default_quota

    def as_dict(self) -> dict[str, Any]:
        return {
            "slots": [slot.as_dict() for slot in self.slots],
            "switch_time_s": self.switch_time_s,
            "queue_limit": self.queue_limit,
            "default_quota": self.default_quota.as_dict(),
            "tenant_quotas": {
                tenant: quota.as_dict()
                for tenant, quota in self.tenant_quotas
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceConfig":
        return cls(
            slots=tuple(
                TimeSlotConfig.from_dict(slot) for slot in data["slots"]
            ),
            switch_time_s=float(data.get("switch_time_s", 50e-6)),
            queue_limit=int(data.get("queue_limit", 256)),
            default_quota=TenantQuotaConfig.from_dict(
                data.get("default_quota", {})
            ),
            tenant_quotas=tuple(
                (tenant, TenantQuotaConfig.from_dict(quota))
                for tenant, quota in dict(
                    data.get("tenant_quotas", {})
                ).items()
            ),
        )


def default_service_config(
    patterns: Sequence[str] | None = None,
    time_window_s: float = 1e-3,
    switch_time_s: float = 50e-6,
    max_multiplexing: int = 1,
    queue_limit: int = 256,
    default_quota: TenantQuotaConfig | None = None,
) -> ServiceConfig:
    """One slot per pattern — the static TDM schedule squidasm calls a
    "schema", covering every collective the machine serves."""
    chosen = tuple(patterns) if patterns is not None else KNOWN_PATTERNS
    if not chosen:
        raise ConfigurationError("default_service_config needs >= 1 pattern")
    slots = tuple(
        TimeSlotConfig(
            name=pattern,
            patterns=(pattern,),
            time_window_s=time_window_s,
            max_multiplexing=max_multiplexing,
        )
        for pattern in chosen
    )
    return ServiceConfig(
        slots=slots,
        switch_time_s=switch_time_s,
        queue_limit=queue_limit,
        default_quota=default_quota or TenantQuotaConfig(),
    )
