"""Tracing/metrics configuration for instrumented simulator runs.

A :class:`TraceConfig` is plain data — which instrumentation to enable
and where the dumps go.  :func:`repro.observability.build_instrumentation`
turns it into live tracer/registry objects; keeping the dataclass here
(with the other configuration) means experiment drivers and the CLI can
thread it around without importing the observability machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Valid values for :attr:`TraceConfig.clock`.
TRACE_CLOCKS = ("auto", "sim", "wall")


@dataclass(frozen=True)
class TraceConfig:
    """What to record during a run, and where to write it.

    ``enabled`` turns span tracing on; ``metrics`` turns the metrics
    registry on (independently — metrics without spans is a valid,
    cheaper mode).  ``clock`` selects the Chrome-trace time axis:
    ``"sim"`` (simulated seconds), ``"wall"`` (host-side elapsed time),
    or ``"auto"`` (simulated where a span has a window, wall otherwise).
    """

    enabled: bool = False
    metrics: bool = False
    clock: str = "auto"
    trace_path: str | None = None
    metrics_path: str | None = None

    def __post_init__(self) -> None:
        if self.clock not in TRACE_CLOCKS:
            raise ConfigurationError(
                f"trace clock must be one of {TRACE_CLOCKS}, "
                f"got {self.clock!r}"
            )
        if self.trace_path is not None and not self.enabled:
            raise ConfigurationError(
                "trace_path set but tracing is disabled"
            )
        if self.metrics_path is not None and not self.metrics:
            raise ConfigurationError(
                "metrics_path set but metrics are disabled"
            )

    @property
    def active(self) -> bool:
        """Whether any instrumentation is requested at all."""
        return self.enabled or self.metrics
