"""Execution policy for the parallel experiment runner.

Like :class:`TraceConfig`, this is plain data kept with the rest of the
configuration so the CLI and library callers can thread it around
without importing the runner machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .units import is_finite_number

#: Default on-disk cache location (kept in sync with repro.runner.cache).
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class RunnerConfig:
    """How to execute an experiment's sweep points.

    ``jobs`` is the process fan-out (1 = in-process serial execution);
    ``point_timeout_s`` bounds the wait for any single point when
    running in parallel (``None`` = no bound; ignored on the serial
    path, which cannot preempt a running point).
    """

    jobs: int = 1
    cache_enabled: bool = True
    cache_dir: str = DEFAULT_CACHE_DIR
    point_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.point_timeout_s is not None and (
            not is_finite_number(self.point_timeout_s)
            or self.point_timeout_s <= 0
        ):
            raise ConfigurationError(
                f"point_timeout_s must be positive, got "
                f"{self.point_timeout_s}"
            )
        if not self.cache_dir:
            raise ConfigurationError("cache_dir must be non-empty")
