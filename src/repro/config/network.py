"""Network configuration: PIMnet tiers, host links, and prior-work links.

All bandwidth constants default to the paper's Tables IV and VI:

* inter-bank ring: 4 channels x 16 bit over the partitioned bank I/O bus,
  0.7 GB/s per channel;
* inter-chip crossbar: DQ pins split 4-send/4-receive, 2 channels x 4 bit,
  1.05 GB/s per channel, routed through the DIMM buffer chip;
* inter-rank bus: the multi-drop 64-bit DDR bus, half-duplex, 16.8 GB/s,
  broadcast-capable;
* host links: 4.74 GB/s PIM->CPU, 6.68 GB/s CPU->PIM, 16.88 GB/s CPU->PIM
  broadcast (measured on real UPMEM hardware [39]);
* buffer-chip <-> PIM bandwidth for DIMM-Link/NDPBridge: 19.2 GB/s [89].
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from . import units


@dataclass(frozen=True)
class TierLinkConfig:
    """One PIMnet tier's physical-channel parameters (one row of Table IV)."""

    name: str
    num_channels: int
    width_bits: int
    bandwidth_per_channel_bytes_per_s: float
    hop_latency_s: float
    half_duplex: bool = False
    broadcast_capable: bool = False

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ConfigurationError(f"{self.name}: need >= 1 channel")
        if self.width_bits < 1:
            raise ConfigurationError(f"{self.name}: width must be positive")
        if not units.is_finite_number(
            self.bandwidth_per_channel_bytes_per_s
        ) or self.bandwidth_per_channel_bytes_per_s <= 0:
            raise ConfigurationError(
                f"{self.name}: bandwidth must be positive, "
                f"got {self.bandwidth_per_channel_bytes_per_s}"
            )
        if not units.is_finite_number(self.hop_latency_s) or (
            self.hop_latency_s < 0
        ):
            raise ConfigurationError(
                f"{self.name}: latency must be >= 0, "
                f"got {self.hop_latency_s}"
            )

    @property
    def link_bandwidth_bytes_per_s(self) -> float:
        """Usable per-node send bandwidth in one direction.

        For a half-duplex medium (the inter-rank bus) the single channel is
        time-shared between directions, so the one-direction figure *is* the
        channel bandwidth; for full-duplex tiers each direction gets one
        channel's worth.
        """
        return self.bandwidth_per_channel_bytes_per_s


@dataclass(frozen=True)
class PimnetNetworkConfig:
    """Full PIMnet fabric configuration (Table IV plus sync parameters)."""

    inter_bank: TierLinkConfig = TierLinkConfig(
        name="inter-bank",
        num_channels=4,
        width_bits=16,
        bandwidth_per_channel_bytes_per_s=0.7 * units.GB,
        hop_latency_s=2 * units.NS,
    )
    inter_chip: TierLinkConfig = TierLinkConfig(
        name="inter-chip",
        num_channels=2,
        width_bits=4,
        bandwidth_per_channel_bytes_per_s=1.05 * units.GB,
        hop_latency_s=4 * units.NS,
    )
    inter_rank: TierLinkConfig = TierLinkConfig(
        name="inter-rank",
        num_channels=1,
        width_bits=64,
        bandwidth_per_channel_bytes_per_s=16.8 * units.GB,
        hop_latency_s=5 * units.NS,
        half_duplex=True,
        broadcast_capable=True,
    )
    # Worst-case READY/START propagation across the whole fabric (paper:
    # ~15 ns, about 6 DPU cycles at 350 MHz).
    sync_latency_s: float = 15 * units.NS
    # Efficiency of point-to-point (unicast) transfers on the multi-drop
    # inter-rank bus.  Unlike the long reduction/broadcast streams of
    # AllReduce, All-to-All's rank tier issues many short rank-pair
    # bursts, each paying bus ownership turnaround; Section V-C's
    # "approximately 2x improvement" framing corresponds to roughly half
    # the raw bus rate being achievable for unicast traffic.
    inter_rank_unicast_efficiency: float = 0.5
    # MRAM<->WRAM DMA bandwidth per DPU, used for the "Mem" component of
    # Fig 11 when a payload does not fit in WRAM and must be staged.
    mram_wram_dma_bytes_per_s: float = 0.63 * units.GB

    def __post_init__(self) -> None:
        if not units.is_finite_number(self.sync_latency_s) or (
            self.sync_latency_s < 0
        ):
            raise ConfigurationError(
                f"sync latency must be >= 0, got {self.sync_latency_s}"
            )
        if not units.is_finite_number(self.mram_wram_dma_bytes_per_s) or (
            self.mram_wram_dma_bytes_per_s <= 0
        ):
            raise ConfigurationError(
                f"DMA bandwidth must be positive, "
                f"got {self.mram_wram_dma_bytes_per_s}"
            )
        if not 0 < self.inter_rank_unicast_efficiency <= 1:
            raise ConfigurationError(
                "inter_rank_unicast_efficiency must be in (0, 1]"
            )

    def with_inter_bank_bandwidth(self, gb_per_s: float) -> "PimnetNetworkConfig":
        """Copy with a different inter-bank channel bandwidth (Fig 14a)."""
        return replace(
            self,
            inter_bank=replace(
                self.inter_bank,
                bandwidth_per_channel_bytes_per_s=gb_per_s * units.GB,
            ),
        )

    def with_global_bandwidth_scale(self, scale: float) -> "PimnetNetworkConfig":
        """Copy with inter-chip and inter-rank bandwidth scaled (Fig 14b)."""
        if scale <= 0:
            raise ConfigurationError("bandwidth scale must be positive")
        return replace(
            self,
            inter_chip=replace(
                self.inter_chip,
                bandwidth_per_channel_bytes_per_s=(
                    self.inter_chip.bandwidth_per_channel_bytes_per_s * scale
                ),
            ),
            inter_rank=replace(
                self.inter_rank,
                bandwidth_per_channel_bytes_per_s=(
                    self.inter_rank.bandwidth_per_channel_bytes_per_s * scale
                ),
            ),
        )


@dataclass(frozen=True)
class HostLinkConfig:
    """Host <-> PIM channel bandwidths measured on real UPMEM [39]."""

    pim_to_cpu_bytes_per_s: float = 4.74 * units.GB
    cpu_to_pim_bytes_per_s: float = 6.68 * units.GB
    cpu_to_pim_broadcast_bytes_per_s: float = 16.88 * units.GB
    max_channel_bytes_per_s: float = 19.2 * units.GB

    def __post_init__(self) -> None:
        for name in (
            "pim_to_cpu_bytes_per_s",
            "cpu_to_pim_bytes_per_s",
            "cpu_to_pim_broadcast_bytes_per_s",
            "max_channel_bytes_per_s",
        ):
            value = getattr(self, name)
            if not units.is_finite_number(value) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}"
                )


@dataclass(frozen=True)
class BufferChipConfig:
    """Buffer-chip link used by DIMM-Link [89] and NDPBridge [85].

    Banks of one rank reach their buffer chip over a shared 19.2 GB/s link;
    DIMM-Link adds dedicated rank-to-rank bridges whose bandwidth we set
    equal to PIMnet's global (inter-rank) bandwidth for the paper's
    fair-comparison assumption.
    """

    bank_to_buffer_bytes_per_s: float = 19.2 * units.GB
    #: One DRAM chip's DQ share of the internal DIMM bus.  PIM data is
    #: not striped across chips, so the buffer chip's sequential
    #: collective stream moves at one chip's width regardless of how
    #: many chips the rank has.
    chip_dq_bytes_per_s: float = 2.4 * units.GB
    inter_rank_link_bytes_per_s: float = 16.8 * units.GB
    hop_latency_s: float = 10 * units.NS

    def __post_init__(self) -> None:
        for name in (
            "bank_to_buffer_bytes_per_s",
            "chip_dq_bytes_per_s",
            "inter_rank_link_bytes_per_s",
        ):
            value = getattr(self, name)
            if not units.is_finite_number(value) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}"
                )
        if not units.is_finite_number(self.hop_latency_s) or (
            self.hop_latency_s < 0
        ):
            raise ConfigurationError(
                f"hop latency must be >= 0, got {self.hop_latency_s}"
            )
