"""Compute-throughput profiles for the PIM logic.

The UPMEM DPU has no native multiplier: 32-bit multiplies are emulated in
software (shift/add), which is why MLP and NTT are compute-bound in the
paper (Section VI-B).  HBM-PIM [59] and GDDR6-AiM [58] instead provide
hardware MAC units; Fig 15 models them by scaling compute throughput.

Costs are expressed in *issue slots* (pipeline-occupying instructions).
With >= 11 resident tasklets the DPU retires one slot per cycle, so a
cost of 32 means a 32-bit multiply occupies the pipeline for 32 cycles
spread across its emulation instruction sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigurationError


class Op(Enum):
    """Abstract operation classes used by workload cost models."""

    INT_ADD = "int_add"
    INT_MUL = "int_mul"
    INT_MOD = "int_mod"
    FLOAT_ADD = "float_add"
    FLOAT_MUL = "float_mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    COMPARE = "compare"
    LOGIC = "logic"


#: Issue-slot costs of the UPMEM DPU (32-bit datapath, software-emulated
#: multiply/divide, software-emulated floating point).
UPMEM_OP_COSTS: dict[Op, float] = {
    Op.INT_ADD: 1.0,
    Op.INT_MUL: 32.0,
    Op.INT_MOD: 64.0,
    Op.FLOAT_ADD: 5.0,
    Op.FLOAT_MUL: 46.0,
    Op.LOAD: 1.0,
    Op.STORE: 1.0,
    Op.BRANCH: 1.0,
    Op.COMPARE: 1.0,
    Op.LOGIC: 1.0,
}


@dataclass(frozen=True)
class ComputeProfile:
    """Per-PIM-implementation compute model.

    ``throughput_scale`` multiplies the effective rate at which arithmetic
    operation slots retire, which is how Fig 15 models swapping the UPMEM
    DPU for PIM logic with hardware MACs while keeping the rest of the
    system identical.
    """

    name: str
    op_costs: dict[Op, float] = field(
        default_factory=lambda: dict(UPMEM_OP_COSTS)
    )
    throughput_scale: float = 1.0
    #: Internal bank-to-compute bandwidth relative to the UPMEM
    #: MRAM<->WRAM DMA; PIMs with hardware MACs also have much wider
    #: internal datapaths (HBM-PIM/AiM stream operands at bank width).
    memory_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.throughput_scale <= 0:
            raise ConfigurationError("throughput_scale must be positive")
        if self.memory_scale <= 0:
            raise ConfigurationError("memory_scale must be positive")
        missing = [op for op in Op if op not in self.op_costs]
        if missing:
            raise ConfigurationError(f"op_costs missing entries for {missing}")
        for op, cost in self.op_costs.items():
            if cost <= 0:
                raise ConfigurationError(f"cost of {op} must be positive")

    def slots(self, op: Op, count: float = 1.0) -> float:
        """Issue slots consumed by ``count`` operations of class ``op``."""
        if count < 0:
            raise ConfigurationError("operation count must be >= 0")
        return self.op_costs[op] * count / self.throughput_scale


def upmem_profile() -> ComputeProfile:
    """The baseline UPMEM DPU compute profile."""
    return ComputeProfile(name="UPMEM")


def hbm_pim_profile() -> ComputeProfile:
    """Samsung HBM-PIM (FIMDRAM): hardware FP16 MACs.

    The paper cites roughly two orders of magnitude higher arithmetic
    throughput than the UPMEM DPU for MAC-heavy kernels.
    """
    return ComputeProfile(name="HBM-PIM", throughput_scale=64.0, memory_scale=16.0)


def gddr6_aim_profile() -> ComputeProfile:
    """SK hynix GDDR6-AiM: ~180x UPMEM arithmetic throughput [39]."""
    return ComputeProfile(name="GDDR6-AiM", throughput_scale=180.0, memory_scale=32.0)


def next_gen_dpu_profile() -> ComputeProfile:
    """UPMEM's announced next-generation DPU with native FP (Section VI-B)."""
    return ComputeProfile(name="UPMEM-NG", throughput_scale=1000.0, memory_scale=16.0)


ALT_PIM_PROFILES: dict[str, ComputeProfile] = {
    "UPMEM": upmem_profile(),
    "HBM-PIM": hbm_pim_profile(),
    "GDDR6-AiM": gddr6_aim_profile(),
    "UPMEM-NG": next_gen_dpu_profile(),
}
