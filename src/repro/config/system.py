"""System-level configuration of the PIM machine being modeled.

The hierarchy mirrors UPMEM packaging (Fig 1 of the paper): a *bank* is the
unit of compute (one DPU + its 64 MB MRAM), 8 banks share a DRAM *chip*,
8 chips form a *rank* (one PIM DIMM side), several ranks share a memory
*channel*, and a server has several channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from . import units


@dataclass(frozen=True)
class DpuConfig:
    """Per-DPU microarchitecture parameters (UPMEM DPU defaults).

    ``pipeline_depth`` and ``min_tasklets_full_throughput`` encode the
    UPMEM revolving pipeline: one instruction issues per cycle only when at
    least 11 tasklets are resident; below that the pipeline round-robins
    with bubbles.
    """

    frequency_hz: float = 350 * units.MHZ
    pipeline_depth: int = 14
    num_hw_tasklets: int = 24
    min_tasklets_full_throughput: int = 11
    wram_bytes: int = 64 * units.KIB
    iram_bytes: int = 24 * units.KIB
    mram_bytes: int = 64 * units.MIB

    def __post_init__(self) -> None:
        if not units.is_finite_number(self.frequency_hz) or (
            self.frequency_hz <= 0
        ):
            raise ConfigurationError(
                f"DPU frequency must be a positive finite number, "
                f"got {self.frequency_hz}"
            )
        if self.num_hw_tasklets < 1:
            raise ConfigurationError("a DPU needs at least one tasklet")
        if not 1 <= self.min_tasklets_full_throughput <= self.num_hw_tasklets:
            raise ConfigurationError(
                "min_tasklets_full_throughput must lie within "
                f"[1, {self.num_hw_tasklets}]"
            )
        for name in ("wram_bytes", "iram_bytes", "mram_bytes"):
            value = getattr(self, name)
            if not units.is_finite_number(value) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}"
                )

    @property
    def cycle_time_s(self) -> float:
        """Duration of one DPU clock cycle in seconds."""
        return 1.0 / self.frequency_hz


@dataclass(frozen=True)
class PimSystemConfig:
    """Shape of the PIM system: banks/chips/ranks/channels.

    Defaults correspond to the paper's simulated system (Table VI):
    8 banks per chip, 8 chips per rank, 4 ranks per channel — i.e. 256
    DPUs per memory channel, the scope of one PIMnet instance.
    """

    banks_per_chip: int = 8
    chips_per_rank: int = 8
    ranks_per_channel: int = 4
    num_channels: int = 1
    dpu: DpuConfig = field(default_factory=DpuConfig)

    def __post_init__(self) -> None:
        for name in (
            "banks_per_chip",
            "chips_per_rank",
            "ranks_per_channel",
            "num_channels",
        ):
            value = getattr(self, name)
            if not units.is_finite_number(value) or value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")

    # -- derived counts -----------------------------------------------------
    @property
    def banks_per_rank(self) -> int:
        return self.banks_per_chip * self.chips_per_rank

    @property
    def banks_per_channel(self) -> int:
        return self.banks_per_rank * self.ranks_per_channel

    @property
    def total_dpus(self) -> int:
        return self.banks_per_channel * self.num_channels

    @property
    def pim_memory_bytes(self) -> int:
        """Total PIM-attached DRAM capacity across all channels."""
        return self.total_dpus * self.dpu.mram_bytes

    def scaled_to_dpus(self, num_dpus: int) -> "PimSystemConfig":
        """Return a copy resized to ``num_dpus`` on a single channel.

        Used by the weak-scaling experiments (Figs 3 and 12), which grow the
        system 8 → 256 DPUs.  DPUs fill banks first, then chips, then ranks,
        matching how a real server would be populated.
        """
        if num_dpus < 1:
            raise ConfigurationError("need at least one DPU")
        banks = min(num_dpus, self.banks_per_chip)
        if num_dpus % banks != 0:
            raise ConfigurationError(
                f"{num_dpus} DPUs do not evenly fill {banks}-bank chips"
            )
        chips_needed = num_dpus // banks
        chips = min(chips_needed, self.chips_per_rank)
        if chips_needed % chips != 0:
            raise ConfigurationError(
                f"{num_dpus} DPUs do not evenly fill {chips}-chip ranks"
            )
        ranks = chips_needed // chips
        if ranks > self.ranks_per_channel:
            raise ConfigurationError(
                f"{num_dpus} DPUs exceed one channel "
                f"({self.banks_per_channel} banks)"
            )
        return PimSystemConfig(
            banks_per_chip=banks,
            chips_per_rank=chips,
            ranks_per_channel=ranks,
            num_channels=1,
            dpu=self.dpu,
        )


@dataclass(frozen=True)
class HostConfig:
    """Host CPU model used for host-mediated (baseline) collectives.

    The reduce bandwidth is the sustained rate at which the host can combine
    gathered partial results in memory; launch/receive overheads model the
    per-API-call costs that PID-Comm attacks (and that Software(Ideal)
    removes entirely).
    """

    num_cores: int = 16
    frequency_hz: float = 4 * units.GHZ
    reduce_bandwidth_bytes_per_s: float = 25 * units.GB
    kernel_launch_overhead_s: float = 20 * units.US
    transfer_setup_overhead_s: float = 10 * units.US
    per_rank_transfer_overhead_s: float = 2 * units.US

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("host needs at least one core")
        if not units.is_finite_number(self.frequency_hz) or (
            self.frequency_hz <= 0
        ):
            raise ConfigurationError(
                f"host frequency must be a positive finite number, "
                f"got {self.frequency_hz}"
            )
        if not units.is_finite_number(
            self.reduce_bandwidth_bytes_per_s
        ) or self.reduce_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(
                f"host reduce bandwidth must be positive, "
                f"got {self.reduce_bandwidth_bytes_per_s}"
            )
        for name in (
            "kernel_launch_overhead_s",
            "transfer_setup_overhead_s",
            "per_rank_transfer_overhead_s",
        ):
            value = getattr(self, name)
            if not units.is_finite_number(value) or value < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {value}"
                )
