"""Fault-model and campaign configuration (plain data, eagerly validated).

Like :class:`TraceConfig` and :class:`RunnerConfig`, these dataclasses
are pure configuration: the CLI and library callers thread them around
without importing the fault-injection machinery in
:mod:`repro.faults`.  Validation is eager — a rate outside [0, 1] or a
campaign target naming a component outside the machine topology fails
where the spec is built, not later inside a sweep point.

Component names follow the NoC router convention:

* ``bank:{rank}:{chip}:{bank}`` — one bank (DPU);
* ``chip:{rank}:{chip}`` — one chip and its DQ link to the crossbar;
* ``rank:{rank}`` — one rank;
* ``bus`` — the shared inter-rank DDR bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..errors import FaultConfigError
from .system import PimSystemConfig
from .units import is_finite_number

#: Fault kinds the engine knows how to sample and inject.
FAULT_KINDS = (
    "bank_fail_stop",
    "bank_straggler",
    "chip_link_degraded",
    "chip_link_failed",
    "rank_bus_stall",
    "flit_corruption",
)

#: Fields of :class:`FaultModelConfig` that are probabilities in [0, 1].
_RATE_FIELDS = (
    "bank_fail_stop_rate",
    "bank_straggler_rate",
    "chip_link_fail_rate",
    "chip_link_degrade_rate",
    "rank_bus_stall_rate",
    "flit_corruption_rate",
)


@dataclass(frozen=True)
class FaultModelConfig:
    """Per-tier fault rates and severities for one campaign.

    Rates are independent per-component probabilities; severities are
    multipliers (>= 1) applied to affected components.  All zeros — the
    default — is the ideal fault-free machine, and every injection hook
    must then be a strict no-op.
    """

    #: Probability a bank (DPU) is dead for the whole run (fail-stop).
    bank_fail_stop_rate: float = 0.0
    #: Probability a bank is a straggler (slow but alive).
    bank_straggler_rate: float = 0.0
    #: Timing-jitter multiplier for the slowest straggler (>= 1).
    straggler_severity: float = 1.0
    #: Probability a chip's DQ link has failed outright.
    chip_link_fail_rate: float = 0.0
    #: Probability a chip's DQ link is degraded (marginal pins).
    chip_link_degrade_rate: float = 0.0
    #: Serialization multiplier on a degraded link (>= 1).
    chip_link_degrade_factor: float = 2.0
    #: Probability the inter-rank bus stalls during the collective.
    rank_bus_stall_rate: float = 0.0
    #: Duration of one bus stall, in seconds.
    rank_bus_stall_s: float = 1e-6
    #: Per-flit transient corruption probability.
    flit_corruption_rate: float = 0.0
    #: Detection + retransmission cost of one corrupted flit, in flit
    #: serialization times.
    retry_penalty_flits: int = 2
    #: READY/START sync-tree timeout (seconds); a fail-stopped bank is
    #: detected when its READY never arrives within this window.
    sync_timeout_s: float = 100e-6
    #: Abort retries: how many timeout rounds the controller spends
    #: before declaring the collective aborted.
    max_retries: int = 3

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        for name in ("straggler_severity", "chip_link_degrade_factor"):
            value = getattr(self, name)
            if not is_finite_number(value) or value < 1.0:
                raise FaultConfigError(
                    f"{name} is a slowdown multiplier and must be >= 1, "
                    f"got {value}"
                )
        if not is_finite_number(self.rank_bus_stall_s) or (
            self.rank_bus_stall_s < 0
        ):
            raise FaultConfigError(
                f"rank_bus_stall_s must be >= 0, got {self.rank_bus_stall_s}"
            )
        if self.retry_penalty_flits < 0:
            raise FaultConfigError("retry_penalty_flits must be >= 0")
        if not is_finite_number(self.sync_timeout_s) or (
            self.sync_timeout_s <= 0
        ):
            raise FaultConfigError(
                f"sync_timeout_s must be positive, got {self.sync_timeout_s}"
            )
        if self.max_retries < 0:
            raise FaultConfigError("max_retries must be >= 0")

    @property
    def fault_free(self) -> bool:
        """Whether this model can never inject anything."""
        return all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)

    def scaled(self, rate_factor: float) -> "FaultModelConfig":
        """All rates multiplied by ``rate_factor`` (clamped to 1.0).

        Campaign sweeps use this to turn one model into a fault-rate
        axis; severities are left untouched so the sweep varies *how
        many* components fail, not how badly.
        """
        if rate_factor < 0:
            raise FaultConfigError("rate_factor must be >= 0")
        from dataclasses import replace

        return replace(
            self,
            **{
                name: min(1.0, getattr(self, name) * rate_factor)
                for name in _RATE_FIELDS
            },
        )

    def as_dict(self) -> dict[str, float | int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultModelConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultConfigError(
                f"unknown fault model field(s): {', '.join(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class FaultCampaignConfig:
    """One resilience campaign: a fault model plus how to exercise it.

    A campaign is reproducible from ``(seed, machine config, this
    spec)`` alone — trials derive their RNG streams from ``seed`` and
    the trial index, never from wall-clock state.  ``targets``
    optionally pins the faults to named components instead of sampling;
    every target must exist in the machine the campaign is bound to
    (checked by :meth:`validate_for`).
    """

    name: str
    model: FaultModelConfig = field(default_factory=FaultModelConfig)
    seed: int = 0
    trials: int = 32
    payload_bytes: int = 1 << 20
    collective: str = "all_reduce"
    backend: str = "P"
    targets: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultConfigError("campaign name must be non-empty")
        if self.seed < 0:
            raise FaultConfigError("seed must be >= 0")
        if self.trials < 1:
            raise FaultConfigError("a campaign needs at least one trial")
        if self.payload_bytes < 1:
            raise FaultConfigError("payload_bytes must be positive")
        for target in self.targets:
            _parse_target(target)

    def validate_for(self, system: PimSystemConfig) -> None:
        """Reject targets that name components outside ``system``.

        Eager, like :class:`ExperimentTable` width validation: a
        campaign bound to the wrong machine fails here, before any
        sweep point runs.
        """
        for target in self.targets:
            kind, coords = _parse_target(target)
            limits = {
                "bank": (
                    system.ranks_per_channel,
                    system.chips_per_rank,
                    system.banks_per_chip,
                ),
                "chip": (
                    system.ranks_per_channel,
                    system.chips_per_rank,
                ),
                "rank": (system.ranks_per_channel,),
                "bus": (),
            }[kind]
            for axis, (value, limit) in enumerate(zip(coords, limits)):
                if not 0 <= value < limit:
                    raise FaultConfigError(
                        f"campaign {self.name!r}: target {target!r} "
                        f"coordinate {value} out of range [0, {limit}) "
                        f"on axis {axis} of the machine topology"
                    )

    @classmethod
    def from_dict(cls, data: dict) -> "FaultCampaignConfig":
        """Build a campaign from its JSON file form (``docs/FAULTS.md``)."""
        if not isinstance(data, dict):
            raise FaultConfigError("campaign spec must be a JSON object")
        payload = dict(data)
        model = payload.pop("model", {})
        if not isinstance(model, dict):
            raise FaultConfigError("campaign 'model' must be an object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultConfigError(
                f"unknown campaign field(s): {', '.join(unknown)}"
            )
        if "targets" in payload:
            payload["targets"] = tuple(payload["targets"])
        try:
            return cls(model=FaultModelConfig.from_dict(model), **payload)
        except TypeError as exc:
            raise FaultConfigError(f"invalid campaign spec: {exc}") from exc


def _parse_target(target: str) -> tuple[str, tuple[int, ...]]:
    """Split ``"bank:0:1:2"`` into its kind and integer coordinates."""
    parts = target.split(":")
    kind = parts[0]
    expected = {"bank": 3, "chip": 2, "rank": 1, "bus": 0}
    if kind not in expected:
        raise FaultConfigError(
            f"unknown fault target kind {kind!r} in {target!r} "
            f"(expected one of {sorted(expected)})"
        )
    if len(parts) - 1 != expected[kind]:
        raise FaultConfigError(
            f"target {target!r} needs {expected[kind]} coordinate(s) "
            f"for kind {kind!r}, got {len(parts) - 1}"
        )
    try:
        coords = tuple(int(p) for p in parts[1:])
    except ValueError as exc:
        raise FaultConfigError(
            f"non-integer coordinate in fault target {target!r}"
        ) from exc
    if any(c < 0 for c in coords):
        raise FaultConfigError(
            f"negative coordinate in fault target {target!r}"
        )
    return kind, coords
