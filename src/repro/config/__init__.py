"""Configuration layer: units, machine shape, network tiers, compute profiles.

The defaults throughout this package reproduce the paper's evaluated
system (Tables II, IV, and VI); experiments construct variations through
the dataclasses' ``replace``-style helpers rather than by mutation.
"""

from . import units
from .compute import (
    ALT_PIM_PROFILES,
    ComputeProfile,
    Op,
    UPMEM_OP_COSTS,
    gddr6_aim_profile,
    hbm_pim_profile,
    next_gen_dpu_profile,
    upmem_profile,
)
from .conformance import ConformanceConfig
from .network import (
    BufferChipConfig,
    HostLinkConfig,
    PimnetNetworkConfig,
    TierLinkConfig,
)
from .faults import (
    FAULT_KINDS,
    FaultCampaignConfig,
    FaultModelConfig,
)
from .fleet import (
    FleetConfig,
    ShardOutageConfig,
    default_fleet_config,
    kill_shard_outage,
)
from .presets import (
    MachineConfig,
    pimnet_sim_system,
    small_test_system,
    upmem_server,
)
from .runner import RunnerConfig
from .service import (
    ServiceConfig,
    TenantQuotaConfig,
    TimeSlotConfig,
    default_service_config,
)
from .system import DpuConfig, HostConfig, PimSystemConfig
from .trace import TRACE_CLOCKS, TraceConfig

__all__ = [
    "units",
    "ALT_PIM_PROFILES",
    "ComputeProfile",
    "Op",
    "UPMEM_OP_COSTS",
    "gddr6_aim_profile",
    "hbm_pim_profile",
    "next_gen_dpu_profile",
    "upmem_profile",
    "BufferChipConfig",
    "ConformanceConfig",
    "HostLinkConfig",
    "PimnetNetworkConfig",
    "TierLinkConfig",
    "FAULT_KINDS",
    "FaultCampaignConfig",
    "FaultModelConfig",
    "FleetConfig",
    "ShardOutageConfig",
    "default_fleet_config",
    "kill_shard_outage",
    "MachineConfig",
    "pimnet_sim_system",
    "small_test_system",
    "upmem_server",
    "DpuConfig",
    "HostConfig",
    "PimSystemConfig",
    "RunnerConfig",
    "ServiceConfig",
    "TenantQuotaConfig",
    "TimeSlotConfig",
    "default_service_config",
    "TRACE_CLOCKS",
    "TraceConfig",
]
