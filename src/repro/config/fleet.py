"""Sharded-fleet configuration: N service shards plus outage plans.

A fleet (:mod:`repro.fleet`) fronts ``shards`` independent
:class:`~repro.service.CollectiveService` instances with a router that
assigns tenants to shards by rendezvous hashing and retries around
unhealthy shards.  :class:`ShardOutageConfig` describes a deterministic
mid-run outage: once the fleet-wide submission counter reaches
``after_submissions``, a fault set sampled from ``model`` (via
:mod:`repro.faults.model`) is injected into the named shard; a fatal
set takes the shard down, a non-fatal one degrades it.  With
``duration_submissions > 0`` the shard is revived (a fresh service on
the same machine) that many submissions later.

Everything here is JSON-round-trippable and eagerly validated, matching
:mod:`repro.config.service`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ConfigurationError
from .faults import FaultModelConfig
from .service import ServiceConfig, default_service_config

__all__ = [
    "FleetConfig",
    "ShardOutageConfig",
    "default_fleet_config",
    "kill_shard_outage",
]


@dataclass(frozen=True)
class ShardOutageConfig:
    """One deterministic fault-injection window against one shard.

    The trigger is the *fleet* submission counter, not wall or simulated
    time, so an outage lands at the same request boundary on every run
    regardless of event-loop interleaving.
    """

    shard: int
    after_submissions: int
    #: 0 means the shard stays out for the rest of the run.
    duration_submissions: int = 0
    #: Sampled against the shard's machine; the all-banks fail-stop
    #: default makes the sampled set fatal, i.e. a hard kill.
    model: FaultModelConfig = field(
        default_factory=lambda: FaultModelConfig(bank_fail_stop_rate=1.0)
    )
    seed: int = 0
    targets: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.shard, int) or self.shard < 0:
            raise ConfigurationError(
                f"outage shard must be an int >= 0, got {self.shard!r}"
            )
        for attr in ("after_submissions", "duration_submissions"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"outage {attr} must be an int >= 0, got {value!r}"
                )
        if not isinstance(self.seed, int):
            raise ConfigurationError(
                f"outage seed must be an int, got {self.seed!r}"
            )
        object.__setattr__(
            self, "targets", tuple(str(t) for t in self.targets)
        )

    @property
    def revive_at(self) -> int | None:
        """Submission count at which the shard comes back (None = never)."""
        if self.duration_submissions == 0:
            return None
        return self.after_submissions + self.duration_submissions

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "after_submissions": self.after_submissions,
            "duration_submissions": self.duration_submissions,
            "model": self.model.as_dict(),
            "seed": self.seed,
            "targets": list(self.targets),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardOutageConfig":
        return cls(
            shard=int(data["shard"]),
            after_submissions=int(data["after_submissions"]),
            duration_submissions=int(data.get("duration_submissions", 0)),
            model=FaultModelConfig.from_dict(dict(data.get("model", {}))),
            seed=int(data.get("seed", 0)),
            targets=tuple(data.get("targets", ())),
        )


@dataclass(frozen=True)
class FleetConfig:
    """N identical service shards behind the rendezvous router.

    ``max_reroutes`` bounds how many *additional* shards the router may
    try after the first choice rejects or goes down; the candidate list
    is the tenant's rendezvous ranking, so retry targets are as stable
    as the primary assignment.
    """

    shards: int = 3
    service: ServiceConfig = field(default_factory=default_service_config)
    max_reroutes: int = 2
    outages: tuple[ShardOutageConfig, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ConfigurationError(
                f"fleet shards must be an int >= 1, got {self.shards!r}"
            )
        if not isinstance(self.max_reroutes, int) or self.max_reroutes < 0:
            raise ConfigurationError(
                f"max_reroutes must be an int >= 0, got {self.max_reroutes!r}"
            )
        outages = tuple(self.outages)
        for outage in outages:
            if outage.shard >= self.shards:
                raise ConfigurationError(
                    f"outage targets shard {outage.shard} but the fleet "
                    f"has only {self.shards} shard(s)"
                )
        if len({o.shard for o in outages}) != len(outages):
            raise ConfigurationError(
                "at most one outage plan per shard is supported"
            )
        object.__setattr__(
            self,
            "outages",
            tuple(sorted(outages, key=lambda o: (o.after_submissions,
                                                 o.shard))),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "service": self.service.as_dict(),
            "max_reroutes": self.max_reroutes,
            "outages": [o.as_dict() for o in self.outages],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetConfig":
        return cls(
            shards=int(data.get("shards", 3)),
            service=ServiceConfig.from_dict(
                data.get("service", default_service_config().as_dict())
            ),
            max_reroutes=int(data.get("max_reroutes", 2)),
            outages=tuple(
                ShardOutageConfig.from_dict(o)
                for o in data.get("outages", ())
            ),
        )


def kill_shard_outage(
    shard: int,
    after_submissions: int,
    duration_submissions: int = 0,
    seed: int = 0,
) -> ShardOutageConfig:
    """A hard fail-stop outage (every bank dead => fatal fault set)."""
    return ShardOutageConfig(
        shard=shard,
        after_submissions=after_submissions,
        duration_submissions=duration_submissions,
        model=FaultModelConfig(bank_fail_stop_rate=1.0),
        seed=seed,
    )


def default_fleet_config(
    shards: int = 3,
    service: ServiceConfig | None = None,
    max_reroutes: int = 2,
    outages: tuple[ShardOutageConfig, ...] = (),
) -> FleetConfig:
    """A small homogeneous fleet over the default admission cycle."""
    return FleetConfig(
        shards=shards,
        service=service or default_service_config(),
        max_reroutes=max_reroutes,
        outages=outages,
    )
