"""All-pairs shortest paths following PIM-FW's blocked Floyd–Warshall.

PIM-FW ("Hardware-Software Co-Design of All-pairs Shortest Paths in
DRAM") shows that blocked Floyd–Warshall is the broadcast stress case
for an inter-rank bus: every pivot round, the pivot *rows* must reach
every DPU (a Broadcast rooted at the changing owner) and the updated
pivot-*column* blocks — one slice per DPU — must be shared back (an
AllGather).  This module reproduces that structure three ways:

* :func:`floyd_warshall_reference` — the textbook O(n³) recurrence;
* :func:`distributed_floyd_warshall` — row-sharded blocked FW over a
  collective backend, bit-exact against the reference;
* :class:`ApspWorkload` — the per-round phase list whose chained
  Broadcast + AllGather compiles to a
  :class:`~repro.core.schedule.ScheduleChain` via
  :func:`apsp_round_chain`.

Distances are int64; unreachable is the *finite* sentinel
:data:`INFINITE_DISTANCE`, chosen so that a min-plus sum involving it
always exceeds it — the sentinel survives both algorithms untouched and
bit-exact comparison is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.patterns import Collective, CollectiveRequest
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase
from .graphs import rmat_graph

_INT64 = np.dtype(np.int64)

#: Finite "unreachable" distance.  Any min-plus sum with one INFINITE
#: operand is strictly larger than INFINITE (edge weights are
#: nonnegative and path sums stay far below 2**40), so min() never
#: replaces a sentinel with a sentinel-derived sum and both the
#: reference and the blocked algorithm preserve it exactly.
INFINITE_DISTANCE = np.int64(1) << 40


def rmat_weighted_dist(
    num_vertices: int,
    num_edges: int,
    max_weight: int = 64,
    seed: int = 42,
) -> np.ndarray:
    """Dense int64 distance matrix of a weighted R-MAT graph.

    Edges come from :func:`~repro.workloads.graphs.rmat_graph` (so the
    degree skew matches the graph tier); weights are seeded uniform
    integers in ``[1, max_weight]``, symmetric.  Diagonal is 0, missing
    edges are :data:`INFINITE_DISTANCE`.
    """
    if max_weight < 1:
        raise WorkloadError("max_weight must be >= 1")
    graph = rmat_graph(num_vertices, num_edges, seed=seed)
    rng = np.random.default_rng(seed + 1)
    dist = np.full(
        (num_vertices, num_vertices), INFINITE_DISTANCE, dtype=_INT64
    )
    np.fill_diagonal(dist, 0)
    heads = np.repeat(
        np.arange(num_vertices, dtype=_INT64), np.diff(graph.indptr)
    )
    tails = graph.indices
    # One weight per undirected edge: draw on the canonical direction
    # and mirror it.
    canonical = heads < tails
    weights = np.full(heads.size, 0, dtype=_INT64)
    weights[canonical] = rng.integers(
        1, max_weight + 1, size=int(canonical.sum()), dtype=_INT64
    )
    dist[heads[canonical], tails[canonical]] = weights[canonical]
    dist[tails[canonical], heads[canonical]] = weights[canonical]
    return dist


def _check_square(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist, dtype=_INT64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise WorkloadError(f"distance matrix must be square, got {dist.shape}")
    if dist.shape[0] < 1:
        raise WorkloadError("distance matrix must be non-empty")
    if np.any(dist < 0):
        raise WorkloadError("Floyd–Warshall needs nonnegative weights")
    return dist


def floyd_warshall_reference(dist: np.ndarray) -> np.ndarray:
    """Textbook Floyd–Warshall; returns a new closed distance matrix."""
    dist = _check_square(dist).copy()
    n = dist.shape[0]
    for k in range(n):
        np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :], out=dist)
    return dist


def _min_plus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Min-plus product: ``out[i, j] = min_k a[i, k] + b[k, j]``."""
    return np.min(a[:, :, None] + b[None, :, :], axis=1)


def _close_tile(tile: np.ndarray) -> np.ndarray:
    """Floyd–Warshall restricted to one diagonal tile."""
    tile = tile.copy()
    for k in range(tile.shape[0]):
        np.minimum(
            tile, tile[:, k : k + 1] + tile[k : k + 1, :], out=tile
        )
    return tile


def apsp_shard_geometry(
    num_vertices: int, block: int, num_dpus: int
) -> tuple[int, int]:
    """(rows per DPU, pivot rounds) for one APSP configuration.

    Requires ``num_vertices`` divisible by the DPU count and the block
    size dividing the per-DPU row slab, so every pivot block lives
    entirely on one owner DPU.
    """
    if block < 1:
        raise WorkloadError("APSP block size must be >= 1")
    if num_vertices % num_dpus != 0:
        raise WorkloadError(
            f"APSP: {num_vertices} vertices not divisible by "
            f"{num_dpus} DPUs"
        )
    rows_per = num_vertices // num_dpus
    if rows_per % block != 0:
        raise WorkloadError(
            f"APSP: block {block} does not divide the {rows_per}-row slab"
        )
    return rows_per, num_vertices // block


def distributed_floyd_warshall(
    dist: np.ndarray, block: int, backend
) -> np.ndarray:
    """PIM-FW blocked Floyd–Warshall over a collective backend.

    Rows are sharded contiguously.  Per pivot round ``t`` (pivot rows
    ``K = [t*block, (t+1)*block)``, owned by one DPU):

    1. the owner closes the diagonal tile ``D[K, K]`` and updates its
       pivot rows ``D[K, :]``;
    2. **Broadcast** the pivot rows from the owner (``block * n`` int64);
    3. every DPU updates its pivot-column slice ``D[rows, K]`` locally;
    4. **AllGather** the updated column slices (``rows_per * block``
       int64 each), sharing the full pivot column PIM-FW-style;
    5. every DPU applies the remainder min-plus update to its slab.

    The phase-3/5 updates are deliberately uniform — re-applying them to
    already-closed pivot rows/columns is idempotent — so the code has no
    owner special-casing beyond step 1, mirroring the SPMD kernel.
    """
    dist = _check_square(dist)
    n_dpus = backend.num_dpus
    n = dist.shape[0]
    rows_per, rounds = apsp_shard_geometry(n, block, n_dpus)
    slabs = [
        dist[d * rows_per : (d + 1) * rows_per].copy()
        for d in range(n_dpus)
    ]

    for t in range(rounds):
        lo = t * block
        owner = lo // rows_per
        local = lo - owner * rows_per

        # 1. Owner closes the pivot tile and its pivot rows.
        rows = slabs[owner][local : local + block, :]
        tile = _close_tile(rows[:, lo : lo + block])
        rows = np.minimum(rows, _min_plus(tile, rows))
        slabs[owner][local : local + block, :] = rows

        # 2. Broadcast the pivot rows.
        bcast = backend.run(
            CollectiveRequest(
                Collective.BROADCAST,
                payload_bytes=block * n * _INT64.itemsize,
                dtype=_INT64,
                root=owner,
            ),
            [
                rows.ravel().copy()
                if d == owner
                else np.zeros(block * n, dtype=_INT64)
                for d in range(n_dpus)
            ],
        )
        assert bcast.outputs is not None

        # 3. Local pivot-column update on every DPU.
        pivot_rows = [
            bcast.outputs[d].reshape(block, n) for d in range(n_dpus)
        ]
        contributions = []
        for d in range(n_dpus):
            tile_d = pivot_rows[d][:, lo : lo + block]
            colblk = slabs[d][:, lo : lo + block]
            colblk = np.minimum(colblk, _min_plus(colblk, tile_d))
            slabs[d][:, lo : lo + block] = colblk
            contributions.append(colblk.ravel().copy())

        # 4. AllGather the pivot-column slices.
        gathered = backend.run(
            CollectiveRequest(
                Collective.ALL_GATHER,
                payload_bytes=rows_per * block * _INT64.itemsize,
                dtype=_INT64,
            ),
            contributions,
        )
        assert gathered.outputs is not None

        # 5. Remainder update from the gathered column + broadcast rows.
        for d in range(n_dpus):
            full_col = gathered.outputs[d].reshape(n, block)
            own_col = full_col[d * rows_per : (d + 1) * rows_per]
            slabs[d] = np.minimum(
                slabs[d], _min_plus(own_col, pivot_rows[d])
            )

    return np.vstack(slabs)


def apsp_round_chain(shape, num_vertices: int, block: int, round_index: int):
    """Compile one pivot round's collectives as a ScheduleChain.

    The Broadcast (pivot rows, rooted at the round's owner DPU) and the
    AllGather (pivot-column slices) are barrier-separated links of one
    chain; schedules come from the active schedule cache, so sweeping
    rounds re-compiles nothing but the per-root broadcasts.
    """
    from ..core.schedule import ScheduleChain
    from ..schedcache import cached_build_schedule

    rows_per, rounds = apsp_shard_geometry(
        num_vertices, block, shape.num_dpus
    )
    if not 0 <= round_index < rounds:
        raise WorkloadError(
            f"APSP round {round_index} out of range [0, {rounds})"
        )
    owner = (round_index * block) // rows_per
    bcast = cached_build_schedule(
        Collective.BROADCAST, shape, block * num_vertices, root=owner
    )
    gather = cached_build_schedule(
        Collective.ALL_GATHER, shape, rows_per * block
    )
    return ScheduleChain(
        (bcast, gather), name=f"apsp-round-{round_index}"
    )


@dataclass(frozen=True)
class ApspWorkload(Workload):
    """PIM-FW APSP: per-round pivot-row Broadcast + column AllGather."""

    num_vertices: int = 1024
    block: int = 4
    #: Min-plus cycles per (row element, pivot) pair: load, add,
    #: compare, conditional store.
    cycles_per_update: float = 4.0

    name = "APSP"
    comm = "BC"

    def __post_init__(self) -> None:
        if self.num_vertices < 1:
            raise WorkloadError("APSP needs at least one vertex")
        if self.block < 1:
            raise WorkloadError("APSP block size must be >= 1")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n_dpus = machine.system.banks_per_channel
        n = self.num_vertices
        rows_per, rounds = apsp_shard_geometry(n, self.block, n_dpus)
        row_bytes = self.block * n * _INT64.itemsize
        col_bytes = rows_per * self.block * _INT64.itemsize

        phases: list[WorkloadPhase] = []
        for t in range(rounds):
            owner = (t * self.block) // rows_per
            pivot_updates = (
                self.block**3 + self.block * self.block * n
            )
            col_updates = rows_per * self.block * self.block
            inner_updates = rows_per * self.block * n
            phases.extend(
                [
                    ComputePhase(
                        OpCounts(
                            counts={
                                Op.INT_ADD: (
                                    self.cycles_per_update * pivot_updates
                                )
                            },
                            mram_read_bytes=float(row_bytes),
                        ),
                        name=f"pivot[{t}]",
                    ),
                    CommPhase(
                        CollectiveRequest(
                            Collective.BROADCAST,
                            payload_bytes=row_bytes,
                            dtype=_INT64,
                            root=owner,
                        ),
                        name=f"rows-BC[{t}]",
                    ),
                    ComputePhase(
                        OpCounts(
                            counts={
                                Op.INT_ADD: (
                                    self.cycles_per_update * col_updates
                                )
                            },
                            mram_read_bytes=float(col_bytes),
                            mram_write_bytes=float(col_bytes),
                        ),
                        name=f"col[{t}]",
                    ),
                    CommPhase(
                        CollectiveRequest(
                            Collective.ALL_GATHER,
                            payload_bytes=col_bytes,
                            dtype=_INT64,
                        ),
                        name=f"col-AG[{t}]",
                    ),
                    ComputePhase(
                        OpCounts(
                            counts={
                                Op.INT_ADD: (
                                    self.cycles_per_update * inner_updates
                                )
                            },
                            mram_read_bytes=float(rows_per * n * 8),
                            mram_write_bytes=float(rows_per * n * 8),
                        ),
                        name=f"inner[{t}]",
                    ),
                ]
            )
        return phases

    def expected_comm_volume(
        self, machine: MachineConfig
    ) -> dict[str, int]:
        n_dpus = machine.system.banks_per_channel
        n = self.num_vertices
        rows_per, rounds = apsp_shard_geometry(n, self.block, n_dpus)
        return {
            "BC": rounds * self.block * n * _INT64.itemsize,
            "AG": rounds * rows_per * self.block * _INT64.itemsize,
        }
