"""GEMV: tensor-parallel matrix-vector multiplication (Table VII).

The paper's configurations ("1024x64", "2048x128") are per-DPU weight
tiles: the weight matrix's columns are partitioned across DPUs (tensor
parallelism, as in PID-Comm), each DPU multiplies its tile against its
input slice, and a Reduce-Scatter combines the per-DPU partial output
vectors.  Weights are 8-bit quantized (UPMEM has a native 8x8 multiplier,
which is how real UPMEM GEMV kernels are written), accumulating in 32
bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase


@dataclass(frozen=True)
class GemvWorkload(Workload):
    """Quantized GEMV with column-partitioned weights and RS combine."""

    rows: int = 1024          # output length (partials reduced across DPUs)
    cols_per_dpu: int = 64    # weight-tile columns held by each DPU
    batch: int = 8            # input vectors processed back to back

    name = "GEMV"
    comm = "RS"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols_per_dpu < 1 or self.batch < 1:
            raise WorkloadError("GEMV dimensions must be positive")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        tile = self.rows * self.cols_per_dpu
        # Per element: int8 load + hardware 8x8 multiply + 32-bit
        # accumulate; weights stream from MRAM once per batch item.
        work = OpCounts(
            counts={
                Op.LOAD: float(tile),
                Op.INT_ADD: 2.0 * tile,  # 8x8 mul (1 slot) + accumulate
            },
            mram_read_bytes=float(tile),
        )
        request = CollectiveRequest(
            Collective.REDUCE_SCATTER,
            payload_bytes=self.rows * 4,
            dtype=np.dtype(np.int32),
        )
        phases: list[WorkloadPhase] = []
        for _ in range(self.batch):
            phases.append(ComputePhase(work, name="gemv-tile"))
            phases.append(CommPhase(request, name="partial-RS"))
        return phases


def distributed_gemv(
    weights: np.ndarray,
    x: np.ndarray,
    backend: CollectiveBackend,
) -> np.ndarray:
    """Functional tensor-parallel GEMV through a collective backend.

    ``weights`` is (rows, cols) with cols divisible by the backend's DPU
    count; returns the full y = W @ x, reassembled from the
    Reduce-Scatter shards each DPU ends up owning.
    """
    n = backend.num_dpus
    rows, cols = weights.shape
    if cols % n != 0:
        raise WorkloadError(f"{cols} columns not divisible by {n} DPUs")
    if rows % n != 0:
        raise WorkloadError(
            f"{rows} rows not divisible by {n} DPUs (RS shards)"
        )
    if x.shape != (cols,):
        raise WorkloadError("input vector shape mismatch")
    slice_width = cols // n
    partials = []
    for d in range(n):
        lo = d * slice_width
        hi = lo + slice_width
        partials.append(
            (weights[:, lo:hi].astype(np.int64) @ x[lo:hi].astype(np.int64))
        )
    request = CollectiveRequest(
        Collective.REDUCE_SCATTER, payload_bytes=rows * 8,
        dtype=np.dtype(np.int64),
    )
    result = backend.run(request, partials)
    assert result.outputs is not None
    return np.concatenate(result.outputs)


def gemv_1024x64() -> GemvWorkload:
    """Table VII first GEMV configuration (per-DPU tile 1024x64)."""
    return GemvWorkload(rows=1024, cols_per_dpu=64)


def gemv_2048x128() -> GemvWorkload:
    """Table VII second GEMV configuration (per-DPU tile 2048x128)."""
    return GemvWorkload(rows=2048, cols_per_dpu=128)
