"""EMB: DLRM embedding-table lookup (Table VII).

Embedding tables are partitioned Cx-Ry (x column-wise slices of the
embedding dimension times y row-wise slices of the vocabulary, as in
RecNMP); each DPU pools the rows it owns for every batch sample, then
the per-DPU partial pooled vectors are combined with Reduce-Scatter.

``EMB_Synth`` is the paper's synthetic table (4M rows, dim 64, pooling
8, batch 256); RM1-RM3 follow the production-model shapes of [63] —
increasing dimension and pooling factor, which is why RM3 shows the
largest PIMnet benefit (most communication per unit of compute).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase


@dataclass(frozen=True)
class EmbeddingWorkload(Workload):
    """Pooled embedding lookup with Cx-Ry partitioning and RS combine."""

    table_rows: int = 4_000_000
    dim: int = 64
    pooling: int = 8
    batch: int = 256
    column_partitions: int = 8
    #: DPU cycles per pooled row: one random MRAM DMA (engine setup +
    #: DRAM access) plus the accumulate loop over the dim slice.
    cycles_per_row: float = 500.0
    variant: str = "EMB_Synth"

    name = "EMB"
    comm = "RS"

    def __post_init__(self) -> None:
        if min(self.table_rows, self.dim, self.pooling, self.batch) < 1:
            raise WorkloadError("embedding parameters must be positive")
        if self.column_partitions < 1:
            raise WorkloadError("need at least one column partition")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        row_partitions = max(1, n // self.column_partitions)
        rows_touched = self.batch * self.pooling / row_partitions
        dim_slice = max(1, self.dim // self.column_partitions)
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_row * rows_touched},
            mram_read_bytes=4.0 * dim_slice * rows_touched,
        )
        payload = self.batch * dim_slice * 4
        request = CollectiveRequest(
            Collective.REDUCE_SCATTER,
            payload_bytes=max(payload // n, 4) * n,
            dtype=np.dtype(np.int32),
        )
        return [
            ComputePhase(work, name="pooled-lookup"),
            CommPhase(request, name="partials-RS"),
        ]


def emb_synth() -> EmbeddingWorkload:
    """The paper's synthetic table: 4M rows, dim 64, pooling 8, batch 256."""
    return EmbeddingWorkload(cycles_per_row=800.0)


def rm1() -> EmbeddingWorkload:
    """RM1: small tables, light pooling (compute-leaning)."""
    return EmbeddingWorkload(
        table_rows=2_000_000, dim=32, pooling=40, batch=256,
        column_partitions=4, variant="RM1",
    )


def rm2() -> EmbeddingWorkload:
    """RM2: mid-sized tables and pooling."""
    return EmbeddingWorkload(
        table_rows=4_000_000, dim=64, pooling=32, batch=256,
        column_partitions=8, variant="RM2",
    )


def rm3() -> EmbeddingWorkload:
    """RM3: wide embeddings, heavy communication (largest PIMnet gain)."""
    return EmbeddingWorkload(
        table_rows=8_000_000, dim=128, pooling=20, batch=512,
        column_partitions=8, variant="RM3",
    )


EMB_VARIANTS = {
    "EMB_Synth": emb_synth,
    "RM1": rm1,
    "RM2": rm2,
    "RM3": rm3,
}


def distributed_embedding_lookup(
    table: np.ndarray,
    indices: np.ndarray,
    backend: CollectiveBackend,
) -> np.ndarray:
    """Functional row-partitioned pooled lookup through Reduce-Scatter.

    ``table`` is (rows, dim); ``indices`` is (batch, pooling).  Rows are
    partitioned round-robin across DPUs; each DPU sums the rows it owns
    per sample and RS combines the partials.  Returns the (batch, dim)
    pooled output, identical to a dense numpy gather-sum.
    """
    n = backend.num_dpus
    rows, dim = table.shape
    batch, pooling = indices.shape
    if (batch * dim) % n != 0:
        raise WorkloadError(
            f"batch*dim = {batch * dim} not divisible by {n} DPUs"
        )
    partials = []
    for d in range(n):
        partial = np.zeros((batch, dim), dtype=np.int64)
        owned = indices % n == d
        for s in range(batch):
            mine = indices[s][owned[s]]
            if mine.size:
                partial[s] = table[mine].astype(np.int64).sum(axis=0)
        partials.append(partial.ravel())
    request = CollectiveRequest(
        Collective.REDUCE_SCATTER, payload_bytes=batch * dim * 8,
        dtype=np.dtype(np.int64),
    )
    result = backend.run(request, partials)
    assert result.outputs is not None
    return np.concatenate(result.outputs).reshape(batch, dim)


def embedding_reference(table: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Dense pooled-lookup reference."""
    return table.astype(np.int64)[indices].sum(axis=1)
