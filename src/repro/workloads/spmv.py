"""SpMV: 2D-partitioned sparse matrix-vector multiplication (Table VII).

Follows SparseP's DBCOO scheme: the matrix is cut into a grid of
``vertical_partitions`` column strips times enough row strips to cover
all DPUs; each DPU multiplies its COO block, and the partial output
vectors of the DPUs sharing a row strip are combined with Reduce-Scatter
before the host retrieves the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase


@dataclass(frozen=True)
class SpmvWorkload(Workload):
    """DBCOO SpMV with 32 vertical partitions (paper configuration)."""

    rows: int = 106_496
    nnz: int = 10_000_000
    vertical_partitions: int = 32

    name = "SpMV"
    comm = "RS"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.nnz < 1:
            raise WorkloadError("SpMV dimensions must be positive")
        if self.vertical_partitions < 1:
            raise WorkloadError("need at least one vertical partition")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        nnz_per_dpu = self.nnz / n
        # Per nonzero: stream (row, col, value) from MRAM, gather the
        # dense-vector operand, emulated 32-bit multiply, accumulate.
        work = OpCounts(
            counts={
                Op.LOAD: 2.0 * nnz_per_dpu,
                Op.INT_MUL: nnz_per_dpu,
                Op.INT_ADD: nnz_per_dpu,
            },
            mram_read_bytes=12.0 * nnz_per_dpu,
        )
        # Partial outputs cover this DPU's row strip; reduced across the
        # vertical partitions sharing it.
        row_strip = max(
            1, self.rows * self.vertical_partitions // max(n, 1)
        )
        request = CollectiveRequest(
            Collective.REDUCE_SCATTER,
            payload_bytes=max(8, row_strip * 4 // self.vertical_partitions)
            * self.vertical_partitions,
            dtype=np.dtype(np.int32),
        )
        return [
            ComputePhase(work, name="block-spmv"),
            CommPhase(request, name="partial-RS"),
        ]


def random_coo_matrix(
    rows: int, cols: int, nnz: int, seed: int = 3
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A random COO matrix (row, col, value int arrays), deduplicated."""
    if nnz < 1:
        raise WorkloadError("need at least one nonzero")
    rng = np.random.default_rng(seed)
    r = rng.integers(0, rows, nnz, dtype=np.int64)
    c = rng.integers(0, cols, nnz, dtype=np.int64)
    packed = np.unique(r * cols + c)
    r, c = packed // cols, packed % cols
    v = rng.integers(1, 10, r.size, dtype=np.int64)
    return r, c, v


def distributed_spmv(
    coo: tuple[np.ndarray, np.ndarray, np.ndarray],
    cols: int,
    rows: int,
    x: np.ndarray,
    backend: CollectiveBackend,
) -> np.ndarray:
    """Functional DBCOO SpMV: per-DPU COO blocks + Reduce-Scatter.

    The grid is ``num_dpus`` blocks: column strips by DPU id modulo the
    strip count, each DPU accumulating partials over the full row range
    (a 1D-vertical special case of DBCOO that keeps the functional path
    simple while exercising the same RS combine).
    """
    n = backend.num_dpus
    if rows % n != 0:
        raise WorkloadError(f"{rows} rows not divisible by {n} DPUs")
    if cols % n != 0:
        raise WorkloadError(f"{cols} cols not divisible by {n} DPUs")
    r, c, v = coo
    strip = cols // n
    partials = []
    for d in range(n):
        mask = (c >= d * strip) & (c < (d + 1) * strip)
        partial = np.zeros(rows, dtype=np.int64)
        np.add.at(partial, r[mask], v[mask] * x[c[mask]])
        partials.append(partial)
    request = CollectiveRequest(
        Collective.REDUCE_SCATTER, payload_bytes=rows * 8,
        dtype=np.dtype(np.int64),
    )
    result = backend.run(request, partials)
    assert result.outputs is not None
    return np.concatenate(result.outputs)


def spmv_reference(
    coo: tuple[np.ndarray, np.ndarray, np.ndarray],
    rows: int,
    x: np.ndarray,
) -> np.ndarray:
    """Dense reference for :func:`distributed_spmv`."""
    r, c, v = coo
    y = np.zeros(rows, dtype=np.int64)
    np.add.at(y, r, v * x[c])
    return y
