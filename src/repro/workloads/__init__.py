"""The paper's Table VII workloads: functional + timing models."""

from .base import (
    AppResult,
    CommPhase,
    ComputePhase,
    ExecutionEngine,
    PATTERN_LABEL,
    Workload,
    WorkloadPhase,
    compare_backends,
)
from .bfs import BfsWorkload, distributed_bfs, verify_distributed_bfs
from .cc import (
    CcWorkload,
    distributed_connected_components,
    verify_distributed_cc,
)
from .embedding import (
    EMB_VARIANTS,
    EmbeddingWorkload,
    distributed_embedding_lookup,
    embedding_reference,
    emb_synth,
    rm1,
    rm2,
    rm3,
)
from .gemv import (
    GemvWorkload,
    distributed_gemv,
    gemv_1024x64,
    gemv_2048x128,
)
from .graphs import (
    Graph,
    bfs_levels,
    bfs_reference,
    connected_components_reference,
    rmat_graph,
)
from .join import JoinWorkload, distributed_hash_join, join_reference
from .mlp import MlpWorkload, distributed_mlp, mlp_configs, mlp_reference
from .ntt import (
    MODULUS,
    NttWorkload,
    distributed_ntt_2d,
    ntt_reference,
    root_of_unity,
)
from .verification import (
    VerificationResult,
    all_passed,
    verify_all,
)
from .spmv import (
    SpmvWorkload,
    distributed_spmv,
    random_coo_matrix,
    spmv_reference,
)


def paper_workloads() -> dict[str, Workload]:
    """The Fig 10 application set with the paper's configurations."""
    return {
        "BFS": BfsWorkload(),
        "CC": CcWorkload(),
        "MLP": MlpWorkload(),
        "GEMV": GemvWorkload(),
        "SpMV": SpmvWorkload(),
        "EMB_Synth": emb_synth(),
        "RM1": rm1(),
        "RM2": rm2(),
        "RM3": rm3(),
        "NTT": NttWorkload(),
        "Join": JoinWorkload(),
    }


__all__ = [
    "AppResult",
    "CommPhase",
    "ComputePhase",
    "ExecutionEngine",
    "PATTERN_LABEL",
    "Workload",
    "WorkloadPhase",
    "compare_backends",
    "BfsWorkload",
    "distributed_bfs",
    "verify_distributed_bfs",
    "CcWorkload",
    "distributed_connected_components",
    "verify_distributed_cc",
    "EMB_VARIANTS",
    "EmbeddingWorkload",
    "distributed_embedding_lookup",
    "embedding_reference",
    "emb_synth",
    "rm1",
    "rm2",
    "rm3",
    "GemvWorkload",
    "distributed_gemv",
    "gemv_1024x64",
    "gemv_2048x128",
    "Graph",
    "bfs_levels",
    "bfs_reference",
    "connected_components_reference",
    "rmat_graph",
    "JoinWorkload",
    "distributed_hash_join",
    "join_reference",
    "MlpWorkload",
    "distributed_mlp",
    "mlp_configs",
    "mlp_reference",
    "MODULUS",
    "NttWorkload",
    "distributed_ntt_2d",
    "ntt_reference",
    "root_of_unity",
    "SpmvWorkload",
    "distributed_spmv",
    "random_coo_matrix",
    "spmv_reference",
    "paper_workloads",
    "VerificationResult",
    "all_passed",
    "verify_all",
]
