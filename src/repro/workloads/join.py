"""Join: hash join with global tuple partitioning (Table VII, [61]).

Phase 1 hashes every tuple to its owning DPU and redistributes with an
All-to-All; phase 2 builds and probes local hash tables.  On bank-level
PIM the partitioning All-to-All crosses every tier, which is what the
paper accelerates (36% with 64M tuples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase


@dataclass(frozen=True)
class JoinWorkload(Workload):
    """Partitioned hash join over 64M 8-byte tuples."""

    num_tuples: int = 64_000_000
    tuple_bytes: int = 8
    #: DPU cycles per tuple for hash + bucket insert/probe: dominated by
    #: random MRAM accesses through the per-bank DMA engine.
    cycles_per_tuple: float = 700.0

    name = "Join"
    comm = "A2A"

    def __post_init__(self) -> None:
        if self.num_tuples < 1:
            raise WorkloadError("need at least one tuple")
        if self.tuple_bytes < 1:
            raise WorkloadError("tuples must have positive size")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        tuples_per_dpu = self.num_tuples / n
        partition = OpCounts(
            counts={Op.INT_ADD: 12.0 * tuples_per_dpu},  # hash + bin
            mram_read_bytes=self.tuple_bytes * tuples_per_dpu,
            mram_write_bytes=self.tuple_bytes * tuples_per_dpu,
        )
        build_probe = OpCounts(
            counts={
                Op.INT_ADD: 2.0 * self.cycles_per_tuple * tuples_per_dpu
            },
            mram_read_bytes=2.0 * self.tuple_bytes * tuples_per_dpu,
        )
        payload = int(tuples_per_dpu * self.tuple_bytes)
        shuffle = CollectiveRequest(
            Collective.ALL_TO_ALL,
            payload_bytes=max(payload // n, 8) * n,
            dtype=np.dtype(np.int64),
        )
        return [
            ComputePhase(partition, name="hash-partition"),
            CommPhase(shuffle, name="tuple-A2A"),
            ComputePhase(build_probe, name="build-probe"),
        ]


def distributed_hash_join(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    backend: CollectiveBackend,
) -> int:
    """Functional partitioned hash join; returns the match count.

    Keys are hashed to owner DPUs (modulo), redistributed with padded
    All-to-All exchanges, joined locally, and the per-DPU counts summed.
    Matches ``np.intersect1d``-based counting on the raw inputs.
    """
    n = backend.num_dpus
    count = 0
    shuffled: list[list[np.ndarray]] = []
    for keys in (left_keys, right_keys):
        keys = np.asarray(keys, dtype=np.int64)
        owner = keys % n
        # Pad each DPU-to-DPU chunk to a common size for the collective
        # (sentinel -1 entries are dropped after the exchange).
        chunks = [keys[owner == d] for d in range(n)]
        chunk_len = max((c.size for c in chunks), default=0) or 1
        buffers = []
        for src in range(n):
            # Every source sends the same global partition in this
            # functional model (sources hold row slices in reality; the
            # collective semantics are identical).
            buf = np.full(n * chunk_len, -1, dtype=np.int64)
            src_slice = np.array_split(keys, n)[src]
            src_owner = src_slice % n
            for dst in range(n):
                mine = src_slice[src_owner == dst]
                buf[dst * chunk_len : dst * chunk_len + mine.size] = mine
            buffers.append(buf)
        request = CollectiveRequest(
            Collective.ALL_TO_ALL,
            payload_bytes=n * chunk_len * 8,
            dtype=np.dtype(np.int64),
        )
        result = backend.run(request, buffers)
        assert result.outputs is not None
        shuffled.append(
            [out[out >= 0] for out in result.outputs]
        )
    left_parts, right_parts = shuffled
    for d in range(n):
        build = set(left_parts[d].tolist())
        count += sum(1 for k in right_parts[d].tolist() if k in build)
    return count


def join_reference(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Reference join count (unique-key matches)."""
    left = set(np.asarray(left_keys, dtype=np.int64).tolist())
    return sum(
        1 for k in np.asarray(right_keys, dtype=np.int64).tolist()
        if k in left
    )
