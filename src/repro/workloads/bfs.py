"""BFS: level-synchronous breadth-first search on a partitioned graph.

Vertices are partitioned across DPUs; each level expands the local
frontier against locally owned adjacency lists, then the new frontier
bitmap is AllReduced (bitwise OR realized as MAX over packed words) so
every DPU sees the global frontier — the structure used by the PrIM BFS
the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest, ReduceOp
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase
from .graphs import Graph, bfs_reference


@dataclass(frozen=True)
class BfsWorkload(Workload):
    """BFS on a loc-gowalla-sized graph (AllReduce of frontier bitmaps)."""

    num_vertices: int = 196_591
    num_edges: int = 950_327
    iterations: int = 10
    #: Average DPU cycles per traversed edge: random MRAM adjacency
    #: reads, visited-bitmap checks, and atomic frontier updates
    #: (calibrated to PrIM-class per-edge costs on real UPMEM).
    cycles_per_edge: float = 120.0

    name = "BFS"
    comm = "AR"

    def __post_init__(self) -> None:
        if self.num_vertices < 1 or self.num_edges < 1:
            raise WorkloadError("graph must be non-empty")
        if self.iterations < 1:
            raise WorkloadError("need at least one BFS level")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        edges_per_dpu = self.num_edges / n
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_edge * edges_per_dpu},
            mram_read_bytes=8.0 * edges_per_dpu,
        )
        bitmap_bytes = max(8, -(-self.num_vertices // 64) * 8)
        request = CollectiveRequest(
            Collective.ALL_REDUCE,
            payload_bytes=bitmap_bytes,
            dtype=np.dtype(np.uint64),
            op=ReduceOp.MAX,
        )
        phases: list[WorkloadPhase] = []
        for level in range(self.iterations):
            phases.append(ComputePhase(work, name=f"expand-{level}"))
            phases.append(CommPhase(request, name=f"frontier-AR-{level}"))
        return phases


def distributed_bfs(
    graph: Graph, source: int, backend: CollectiveBackend
) -> np.ndarray:
    """Functional vertex-partitioned BFS through a collective backend.

    Returns per-vertex depths, validated against
    :func:`repro.workloads.graphs.bfs_reference` in the tests.  The
    frontier is exchanged as an int64 0/1 vector with MAX-AllReduce
    (bitwise OR equivalent for 0/1 words).
    """
    n = backend.num_dpus
    v = graph.num_vertices
    padded = -(-v // n) * n
    if not 0 <= source < v:
        raise WorkloadError("source out of range")
    depth = np.full(v, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.zeros(padded, dtype=np.int64)
    frontier[source] = 1
    per_dpu = padded // n
    level = 0
    while frontier.any():
        level += 1
        partials = []
        active = np.flatnonzero(frontier[:v])
        for d in range(n):
            lo, hi = d * per_dpu, (d + 1) * per_dpu
            local_next = np.zeros(padded, dtype=np.int64)
            # this DPU expands the active vertices it owns
            owned = active[(active >= lo) & (active < hi)]
            for vertex in owned:
                neighbors = graph.neighbors(int(vertex))
                unvisited = neighbors[depth[neighbors] < 0]
                local_next[unvisited] = 1
            partials.append(local_next)
        request = CollectiveRequest(
            Collective.ALL_REDUCE,
            payload_bytes=padded * 8,
            dtype=np.dtype(np.int64),
            op=ReduceOp.MAX,
        )
        result = backend.run(request, partials)
        assert result.outputs is not None
        frontier = result.outputs[0]
        newly = np.flatnonzero(frontier[:v])
        newly = newly[depth[newly] < 0]
        depth[newly] = level
        # clear already-visited bits so termination is reachable
        mask = np.zeros(padded, dtype=np.int64)
        mask[newly] = 1
        frontier = mask
    return depth


def verify_distributed_bfs(
    graph: Graph, source: int, backend: CollectiveBackend
) -> bool:
    """True when the distributed BFS matches the reference depths."""
    return bool(
        np.array_equal(
            distributed_bfs(graph, source, backend),
            bfs_reference(graph, source),
        )
    )
