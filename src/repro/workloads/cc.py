"""CC: connected components by label propagation (Table VII).

Each DPU propagates minimum labels over its edge partition, then the
updated labels are combined with a MIN-AllReduce.  CC exchanges label
words rather than frontier bits — more communication per iteration than
BFS, which is why the paper reports a larger PIMnet gain for CC (5.6x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest, ReduceOp
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase
from .graphs import Graph, connected_components_reference


@dataclass(frozen=True)
class CcWorkload(Workload):
    """Connected components on a loc-gowalla-sized graph."""

    num_vertices: int = 196_591
    num_edges: int = 950_327
    iterations: int = 16
    #: Average DPU cycles per relaxed edge (two label loads, compare,
    #: conditional store; mostly sequential MRAM streaming).
    cycles_per_edge: float = 70.0
    #: Fraction of labels exchanged per iteration: implementations send
    #: delta-compressed updates, not the full label array.
    update_fraction: float = 1.0 / 32.0

    name = "CC"
    comm = "AR"

    def __post_init__(self) -> None:
        if self.num_vertices < 1 or self.num_edges < 1:
            raise WorkloadError("graph must be non-empty")
        if self.iterations < 1:
            raise WorkloadError("need at least one iteration")
        if not 0 < self.update_fraction <= 1:
            raise WorkloadError("update_fraction must be in (0, 1]")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        edges_per_dpu = self.num_edges / n
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_edge * edges_per_dpu},
            mram_read_bytes=8.0 * edges_per_dpu,
        )
        update_bytes = max(
            8, int(self.num_vertices * 4 * self.update_fraction) // 8 * 8
        )
        request = CollectiveRequest(
            Collective.ALL_REDUCE,
            payload_bytes=update_bytes,
            dtype=np.dtype(np.int64),
            op=ReduceOp.MIN,
        )
        phases: list[WorkloadPhase] = []
        for i in range(self.iterations):
            phases.append(ComputePhase(work, name=f"propagate-{i}"))
            phases.append(CommPhase(request, name=f"labels-AR-{i}"))
        return phases


def distributed_connected_components(
    graph: Graph, backend: CollectiveBackend, max_iterations: int = 1000
) -> np.ndarray:
    """Functional label propagation through MIN-AllReduce.

    Edges are partitioned across DPUs; every iteration each DPU relaxes
    its edges against the current global labels and the proposals are
    MIN-AllReduced.  Converges to the same labels as the single-node
    reference.
    """
    n = backend.num_dpus
    v = graph.num_vertices
    heads = np.repeat(
        np.arange(v, dtype=np.int64), np.diff(graph.indptr)
    )
    tails = graph.indices
    num_directed = heads.size
    bounds = np.linspace(0, num_directed, n + 1, dtype=np.int64)
    labels = np.arange(v, dtype=np.int64)
    for _ in range(max_iterations):
        partials = []
        for d in range(n):
            lo, hi = bounds[d], bounds[d + 1]
            proposal = labels.copy()
            np.minimum.at(proposal, heads[lo:hi], labels[tails[lo:hi]])
            partials.append(proposal)
        request = CollectiveRequest(
            Collective.ALL_REDUCE,
            payload_bytes=v * 8,
            dtype=np.dtype(np.int64),
            op=ReduceOp.MIN,
        )
        result = backend.run(request, partials)
        assert result.outputs is not None
        new_labels = result.outputs[0]
        if np.array_equal(new_labels, labels):
            return labels
        labels = new_labels
    raise WorkloadError("label propagation failed to converge")


def verify_distributed_cc(graph: Graph, backend: CollectiveBackend) -> bool:
    """True when distributed CC matches the single-node reference."""
    return bool(
        np.array_equal(
            distributed_connected_components(graph, backend),
            connected_components_reference(graph),
        )
    )
