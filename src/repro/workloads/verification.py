"""Self-verification harness: every workload's distributed algorithm
checked against its single-node reference on small instances.

``verify_all`` is the downstream user's one-call sanity check that the
library's collectives and workload decompositions compute correct
answers on their machine configuration (scaled down to an 8-DPU
instance so the check runs in seconds).  Exposed on the CLI as
``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..collectives.backend import CollectiveBackend, registry
from ..config.presets import MachineConfig, small_test_system
from .apsp import (
    distributed_floyd_warshall,
    floyd_warshall_reference,
    rmat_weighted_dist,
)
from .bfs import verify_distributed_bfs
from .cc import verify_distributed_cc
from .embedding import (
    distributed_embedding_lookup,
    embedding_reference,
)
from .gemv import distributed_gemv
from .graphs import rmat_graph
from .join import distributed_hash_join, join_reference
from .mlp import distributed_mlp, mlp_reference
from .ntt import MODULUS, distributed_ntt_2d, ntt_reference
from .prim import (
    binary_search_reference,
    distributed_binary_search,
    distributed_histogram,
    distributed_scan,
    distributed_select,
    distributed_tss,
    histogram_reference,
    scan_reference,
    select_reference,
    tss_reference,
)
from .spmv import distributed_spmv, random_coo_matrix, spmv_reference


@dataclass(frozen=True)
class VerificationResult:
    workload: str
    passed: bool
    detail: str = ""


def _verify_gemv(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    weights = rng.integers(-9, 9, (4 * n, 8 * n)).astype(np.int64)
    x = rng.integers(-9, 9, 8 * n).astype(np.int64)
    return bool(
        np.array_equal(distributed_gemv(weights, x, backend), weights @ x)
    )


def _verify_mlp(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    layers = [
        rng.integers(-3, 3, (2 * n, 2 * n)).astype(np.int64)
        for _ in range(3)
    ]
    x = rng.integers(0, 4, 2 * n).astype(np.int64)
    return bool(
        np.array_equal(
            distributed_mlp(layers, x, backend), mlp_reference(layers, x)
        )
    )


def _verify_spmv(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    size = 8 * n
    coo = random_coo_matrix(size, size, 6 * size, seed=17)
    x = rng.integers(0, 9, size).astype(np.int64)
    return bool(
        np.array_equal(
            distributed_spmv(coo, size, size, x, backend),
            spmv_reference(coo, size, x),
        )
    )


def _verify_ntt(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    values = rng.integers(0, MODULUS, n * n).astype(np.int64)
    return bool(
        np.array_equal(
            distributed_ntt_2d(values, backend), ntt_reference(values)
        )
    )


def _verify_embedding(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    table = rng.integers(0, 50, (16 * n, n)).astype(np.int64)
    indices = rng.integers(0, 16 * n, (n, 4))
    return bool(
        np.array_equal(
            distributed_embedding_lookup(table, indices, backend),
            embedding_reference(table, indices),
        )
    )


def _verify_join(backend: CollectiveBackend, rng) -> bool:
    left = rng.choice(4096, 256, replace=False)
    right = rng.choice(4096, 192, replace=False)
    return distributed_hash_join(left, right, backend) == join_reference(
        left, right
    )


def _verify_bfs(backend: CollectiveBackend, rng) -> bool:
    return verify_distributed_bfs(rmat_graph(128, 400, seed=23), 0, backend)


def _verify_cc(backend: CollectiveBackend, rng) -> bool:
    return verify_distributed_cc(rmat_graph(96, 300, seed=24), backend)


def _verify_histogram(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    values = rng.integers(0, 64, 16 * n).astype(np.int64)
    return bool(
        np.array_equal(
            distributed_histogram(values, 64, backend),
            histogram_reference(values, 64),
        )
    )


def _verify_scan(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    values = rng.integers(-500, 500, 16 * n).astype(np.int64)
    return bool(
        np.array_equal(
            distributed_scan(values, backend), scan_reference(values)
        )
    )


def _verify_select(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    values = rng.integers(-100, 100, 16 * n).astype(np.int64)
    return bool(
        np.array_equal(
            distributed_select(values, 0, backend),
            select_reference(values, 0),
        )
    )


def _verify_binary_search(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    haystack = np.sort(rng.integers(0, 5000, 16 * n)).astype(np.int64)
    queries = rng.integers(-50, 5050, 32).astype(np.int64)
    return bool(
        np.array_equal(
            distributed_binary_search(haystack, queries, backend),
            binary_search_reference(haystack, queries),
        )
    )


def _verify_tss(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    query = rng.integers(0, 40, 6).astype(np.int64)
    series = rng.integers(0, 40, 8 * n + query.size - 1).astype(np.int64)
    return distributed_tss(series, query, backend) == tss_reference(
        series, query
    )


def _verify_apsp(backend: CollectiveBackend, rng) -> bool:
    n = backend.num_dpus
    dist = rmat_weighted_dist(4 * n, 12 * n, seed=25)
    return bool(
        np.array_equal(
            distributed_floyd_warshall(dist, 2, backend),
            floyd_warshall_reference(dist),
        )
    )


VERIFIERS: dict[str, Callable[[CollectiveBackend, object], bool]] = {
    "GEMV": _verify_gemv,
    "MLP": _verify_mlp,
    "SpMV": _verify_spmv,
    "NTT": _verify_ntt,
    "EMB": _verify_embedding,
    "Join": _verify_join,
    "BFS": _verify_bfs,
    "CC": _verify_cc,
    "HST": _verify_histogram,
    "SCAN": _verify_scan,
    "SEL": _verify_select,
    "BS": _verify_binary_search,
    "TS": _verify_tss,
    "APSP": _verify_apsp,
}


def verify_all(
    machine: MachineConfig | None = None,
    backend_key: str = "P",
    seed: int = 99,
) -> list[VerificationResult]:
    """Run every workload's functional self-check; returns all results."""
    machine = machine or small_test_system()
    backend = registry.create(backend_key, machine)
    rng = np.random.default_rng(seed)
    results = []
    for name, verifier in VERIFIERS.items():
        try:
            passed = verifier(backend, rng)
            detail = "" if passed else "result mismatch vs reference"
        except Exception as error:  # noqa: BLE001 - report, don't crash
            passed = False
            detail = f"{type(error).__name__}: {error}"
        results.append(VerificationResult(name, passed, detail))
    return results


def all_passed(results: list[VerificationResult]) -> bool:
    return all(r.passed for r in results)
