"""PrIM-inspired workload tier (Gómez-Luna et al.'s UPMEM suite).

The two PrIM benchmarking papers define the canonical UPMEM workload
set; this module reproduces the five whose communication structure adds
something the Table VII applications do not cover:

* **Histogram (HST)** — local binning then a SUM-AllReduce of the bins;
* **Inclusive scan (SCAN)** — local prefix sums plus an AllGather of the
  per-DPU totals (the SSA formulation);
* **Select (SEL)** — a predicated filter: local compaction, an AllGather
  of the survivor counts, then a Gather of padded shards to the root;
* **Binary search (BS)** — queries broadcast to every shard, per-shard
  ``searchsorted`` counts SUM-AllReduced into global insertion indices;
* **Time-series similarity search (TS)** — query broadcast, local SAD
  minima combined by a MIN-AllReduce over (distance, position) keys.

Each workload ships three coupled views that the differential harness
(:mod:`repro.workloads.differential`) holds against each other:

1. a numpy **functional reference** (``*_reference``),
2. a **distributed decomposition** over a collective backend
   (``distributed_*``) that must match the reference bit-exactly, and
3. a **phase list** (the :class:`~repro.workloads.base.Workload`
   subclass) whose collective trace must equal, request by request, the
   traffic the distributed decomposition actually issues — with the
   per-pattern byte totals matching the closed form in
   ``expected_comm_volume``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.patterns import Collective, CollectiveRequest, ReduceOp
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase

_INT64 = np.dtype(np.int64)

#: Position encoding width for the TS (min, argmin) AllReduce key:
#: ``distance * 2**32 + position``.  Positions and distances must stay
#: below 2**31 for the packed int64 ordering to equal lexicographic
#: (distance, position) order.
_TS_POS_BITS = 32


def _shards(values: np.ndarray, n: int, what: str) -> list[np.ndarray]:
    """Split a 1-D int64 array into n equal contiguous shards."""
    values = np.asarray(values, dtype=_INT64).ravel()
    if values.size == 0 or values.size % n != 0:
        raise WorkloadError(
            f"{what}: {values.size} elements not divisible by {n} DPUs"
        )
    return list(values.reshape(n, values.size // n))


# --------------------------------------------------------------------------
# Histogram (HST)
# --------------------------------------------------------------------------

def histogram_reference(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Integer histogram: counts of values in ``[0, num_bins)``."""
    values = np.asarray(values, dtype=_INT64).ravel()
    if num_bins < 1:
        raise WorkloadError("histogram needs at least one bin")
    if values.size and (values.min() < 0 or values.max() >= num_bins):
        raise WorkloadError(
            f"histogram values must lie in [0, {num_bins})"
        )
    return np.bincount(values, minlength=num_bins).astype(_INT64)


def distributed_histogram(
    values: np.ndarray, num_bins: int, backend
) -> np.ndarray:
    """PrIM HST: per-DPU local binning, then SUM-AllReduce of the bins."""
    shards = _shards(values, backend.num_dpus, "histogram")
    partials = [histogram_reference(shard, num_bins) for shard in shards]
    request = CollectiveRequest(
        Collective.ALL_REDUCE,
        payload_bytes=num_bins * _INT64.itemsize,
        dtype=_INT64,
        op=ReduceOp.SUM,
    )
    result = backend.run(request, partials)
    assert result.outputs is not None
    return result.outputs[0]


@dataclass(frozen=True)
class HistogramWorkload(Workload):
    """PrIM histogram: local binning + one AllReduce of the bin array."""

    items: int = 1 << 20
    num_bins: int = 256
    #: DPU cycles per input item: MRAM-streamed load, bin index
    #: computation, and a WRAM counter update.
    cycles_per_item: float = 6.0

    name = "HST"
    comm = "AR"

    def __post_init__(self) -> None:
        if self.items < 1 or self.num_bins < 1:
            raise WorkloadError("histogram size/bins must be positive")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        per_dpu = self.items / n
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_item * per_dpu},
            mram_read_bytes=8.0 * per_dpu,
        )
        request = CollectiveRequest(
            Collective.ALL_REDUCE,
            payload_bytes=self.num_bins * _INT64.itemsize,
            dtype=_INT64,
            op=ReduceOp.SUM,
        )
        return [
            ComputePhase(work, name="bin"),
            CommPhase(request, name="bins-AR"),
        ]

    def expected_comm_volume(
        self, machine: MachineConfig
    ) -> dict[str, int]:
        return {"AR": self.num_bins * _INT64.itemsize}


# --------------------------------------------------------------------------
# Inclusive scan (SCAN-SSA)
# --------------------------------------------------------------------------

def scan_reference(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum (int64, wrapping like the distributed one)."""
    return np.cumsum(np.asarray(values, dtype=_INT64).ravel(), dtype=_INT64)


def distributed_scan(values: np.ndarray, backend) -> np.ndarray:
    """PrIM SCAN-SSA: local scans + an AllGather of the per-DPU totals.

    Every DPU scans its shard, AllGathers the shard totals, sums the
    totals of lower-ranked DPUs into its offset, and shifts its local
    scan — the concatenated shards are the global inclusive scan.
    """
    n = backend.num_dpus
    shards = _shards(values, n, "scan")
    local_scans = [scan_reference(shard) for shard in shards]
    totals = [scan[-1:].copy() for scan in local_scans]
    request = CollectiveRequest(
        Collective.ALL_GATHER, payload_bytes=_INT64.itemsize, dtype=_INT64
    )
    result = backend.run(request, totals)
    assert result.outputs is not None
    pieces = []
    for d in range(n):
        all_totals = result.outputs[d]
        offset = all_totals[:d].sum(dtype=np.int64)
        pieces.append(local_scans[d] + offset)
    return np.concatenate(pieces)


@dataclass(frozen=True)
class ScanWorkload(Workload):
    """PrIM inclusive scan: local prefix sums + a totals AllGather."""

    items: int = 1 << 22
    #: Cycles per item: two passes (local scan, offset add) over WRAM
    #: tiles streamed from MRAM.
    cycles_per_item: float = 4.0

    name = "SCAN"
    comm = "AG"

    def __post_init__(self) -> None:
        if self.items < 1:
            raise WorkloadError("scan size must be positive")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        per_dpu = self.items / n
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_item * per_dpu},
            mram_read_bytes=8.0 * per_dpu,
            mram_write_bytes=8.0 * per_dpu,
        )
        request = CollectiveRequest(
            Collective.ALL_GATHER, payload_bytes=_INT64.itemsize,
            dtype=_INT64,
        )
        return [
            ComputePhase(work, name="local-scan"),
            CommPhase(request, name="totals-AG"),
        ]

    def expected_comm_volume(
        self, machine: MachineConfig
    ) -> dict[str, int]:
        return {"AG": _INT64.itemsize}


# --------------------------------------------------------------------------
# Select (SEL): predicated filter with stable compaction.
# --------------------------------------------------------------------------

#: Values strictly below the threshold survive the SEL predicate.
SELECT_SENTINEL = np.int64(np.iinfo(np.int64).max)


def select_reference(values: np.ndarray, threshold: int) -> np.ndarray:
    """Stable filter: the values strictly below ``threshold``, in order."""
    values = np.asarray(values, dtype=_INT64).ravel()
    return values[values < threshold].copy()


def distributed_select(
    values: np.ndarray, threshold: int, backend
) -> np.ndarray:
    """PrIM SEL: local compaction, counts AllGather, padded Gather.

    Each DPU filters its shard into a sentinel-padded buffer of shard
    length, AllGathers the survivor counts (so every DPU — and the
    harness — knows the output offsets), then the root Gathers the
    padded shards and concatenates each DPU's valid prefix.
    """
    n = backend.num_dpus
    shards = _shards(values, n, "select")
    shard_len = shards[0].size
    padded, counts = [], []
    for shard in shards:
        kept = shard[shard < threshold]
        buf = np.full(shard_len, SELECT_SENTINEL, dtype=_INT64)
        buf[: kept.size] = kept
        padded.append(buf)
        counts.append(np.array([kept.size], dtype=_INT64))

    count_request = CollectiveRequest(
        Collective.ALL_GATHER, payload_bytes=_INT64.itemsize, dtype=_INT64
    )
    count_result = backend.run(count_request, counts)
    assert count_result.outputs is not None
    all_counts = count_result.outputs[0]

    gather_request = CollectiveRequest(
        Collective.GATHER,
        payload_bytes=shard_len * _INT64.itemsize,
        dtype=_INT64,
        root=0,
    )
    gather_result = backend.run(gather_request, padded)
    assert gather_result.outputs is not None
    gathered = gather_result.outputs[0]
    return np.concatenate(
        [
            gathered[d * shard_len : d * shard_len + int(all_counts[d])]
            for d in range(n)
        ]
    )


@dataclass(frozen=True)
class SelectWorkload(Workload):
    """PrIM select: local filter + counts AllGather + padded Gather."""

    items: int = 1 << 22
    #: Modeled fraction of survivors (drives MRAM write volume only;
    #: the communication payload is the padded shard either way).
    selectivity: float = 0.5
    cycles_per_item: float = 5.0

    name = "SEL"
    comm = "G"

    def __post_init__(self) -> None:
        if self.items < 1:
            raise WorkloadError("select size must be positive")
        if not 0.0 <= self.selectivity <= 1.0:
            raise WorkloadError("selectivity must be in [0, 1]")

    def _shard_len(self, machine: MachineConfig) -> int:
        n = machine.system.banks_per_channel
        if self.items % n != 0:
            raise WorkloadError(
                f"select: {self.items} items not divisible by {n} DPUs"
            )
        return self.items // n

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        shard_len = self._shard_len(machine)
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_item * shard_len},
            mram_read_bytes=8.0 * shard_len,
            mram_write_bytes=8.0 * shard_len * self.selectivity,
        )
        count_request = CollectiveRequest(
            Collective.ALL_GATHER, payload_bytes=_INT64.itemsize,
            dtype=_INT64,
        )
        gather_request = CollectiveRequest(
            Collective.GATHER,
            payload_bytes=shard_len * _INT64.itemsize,
            dtype=_INT64,
            root=0,
        )
        return [
            ComputePhase(work, name="filter"),
            CommPhase(count_request, name="counts-AG"),
            CommPhase(gather_request, name="shards-G"),
        ]

    def expected_comm_volume(
        self, machine: MachineConfig
    ) -> dict[str, int]:
        return {
            "AG": _INT64.itemsize,
            "G": self._shard_len(machine) * _INT64.itemsize,
        }


# --------------------------------------------------------------------------
# Binary search (BS)
# --------------------------------------------------------------------------

def binary_search_reference(
    haystack: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """Left insertion index of each query in the sorted haystack."""
    haystack = np.asarray(haystack, dtype=_INT64).ravel()
    queries = np.asarray(queries, dtype=_INT64).ravel()
    if haystack.size and np.any(np.diff(haystack) < 0):
        raise WorkloadError("binary search haystack must be sorted")
    return np.searchsorted(haystack, queries, side="left").astype(_INT64)


def distributed_binary_search(
    haystack: np.ndarray, queries: np.ndarray, backend
) -> np.ndarray:
    """PrIM BS: Broadcast the queries, SUM-AllReduce per-shard counts.

    The sorted haystack is partitioned contiguously; each DPU counts the
    elements of its shard strictly left of every query
    (``searchsorted``), and because the shards are globally sorted, the
    SUM of the per-shard counts *is* the global insertion index.
    """
    queries = np.asarray(queries, dtype=_INT64).ravel()
    if queries.size == 0:
        raise WorkloadError("binary search needs at least one query")
    shards = _shards(haystack, backend.num_dpus, "binary search")
    for shard in shards:
        if shard.size and np.any(np.diff(shard) < 0):
            raise WorkloadError("binary search haystack must be sorted")

    bcast_request = CollectiveRequest(
        Collective.BROADCAST,
        payload_bytes=queries.size * _INT64.itemsize,
        dtype=_INT64,
        root=0,
    )
    bcast_buffers = [
        queries if d == 0 else np.zeros(queries.size, dtype=_INT64)
        for d in range(backend.num_dpus)
    ]
    bcast = backend.run(bcast_request, bcast_buffers)
    assert bcast.outputs is not None

    partial_counts = [
        np.searchsorted(shard, bcast.outputs[d], side="left").astype(_INT64)
        for d, shard in enumerate(shards)
    ]
    reduce_request = CollectiveRequest(
        Collective.ALL_REDUCE,
        payload_bytes=queries.size * _INT64.itemsize,
        dtype=_INT64,
        op=ReduceOp.SUM,
    )
    result = backend.run(reduce_request, partial_counts)
    assert result.outputs is not None
    return result.outputs[0]


@dataclass(frozen=True)
class BinarySearchWorkload(Workload):
    """PrIM binary search: query Broadcast + counts AllReduce."""

    haystack_items: int = 1 << 24
    num_queries: int = 4096
    #: Cycles per query per shard: log2(shard) MRAM-resident probes.
    cycles_per_probe: float = 24.0

    name = "BS"
    comm = "BC"

    def __post_init__(self) -> None:
        if self.haystack_items < 1 or self.num_queries < 1:
            raise WorkloadError("binary search sizes must be positive")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        shard = max(2.0, self.haystack_items / n)
        probes = self.num_queries * float(np.ceil(np.log2(shard)))
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_probe * probes},
            mram_read_bytes=8.0 * probes,
        )
        query_bytes = self.num_queries * _INT64.itemsize
        bcast = CollectiveRequest(
            Collective.BROADCAST, payload_bytes=query_bytes,
            dtype=_INT64, root=0,
        )
        combine = CollectiveRequest(
            Collective.ALL_REDUCE, payload_bytes=query_bytes,
            dtype=_INT64, op=ReduceOp.SUM,
        )
        return [
            CommPhase(bcast, name="queries-BC"),
            ComputePhase(work, name="probe"),
            CommPhase(combine, name="counts-AR"),
        ]

    def expected_comm_volume(
        self, machine: MachineConfig
    ) -> dict[str, int]:
        query_bytes = self.num_queries * _INT64.itemsize
        return {"BC": query_bytes, "AR": query_bytes}


# --------------------------------------------------------------------------
# Time-series similarity search (TS)
# --------------------------------------------------------------------------

def tss_reference(
    series: np.ndarray, query: np.ndarray
) -> tuple[int, int]:
    """(best position, best SAD) of ``query`` against ``series``.

    SAD = sum of absolute differences; ties resolve to the smallest
    position, matching the packed-key MIN-AllReduce of the distributed
    version.
    """
    series = np.asarray(series, dtype=_INT64).ravel()
    query = np.asarray(query, dtype=_INT64).ravel()
    if query.size < 1 or series.size < query.size:
        raise WorkloadError("series must be at least as long as the query")
    positions = series.size - query.size + 1
    windows = np.lib.stride_tricks.sliding_window_view(series, query.size)
    distances = np.abs(windows - query).sum(axis=1)
    best = int(np.argmin(distances))
    return best, int(distances[best])


def _ts_pack(distance: np.int64, position: int) -> np.int64:
    return np.int64(int(distance) * (1 << _TS_POS_BITS) + position)


def distributed_tss(
    series: np.ndarray, query: np.ndarray, backend
) -> tuple[int, int]:
    """PrIM TS: Broadcast the query, MIN-AllReduce packed local minima.

    Alignment positions are partitioned across DPUs; each DPU scans its
    overlapping series slice (the PrIM host replicates the m-1 boundary
    elements at transfer time, so no halo collective is needed), packs
    its local (SAD, position) minimum into one int64 key, and a
    MIN-AllReduce yields the global minimum with smallest-position ties.
    """
    series = np.asarray(series, dtype=_INT64).ravel()
    query = np.asarray(query, dtype=_INT64).ravel()
    if query.size < 1 or series.size < query.size:
        raise WorkloadError("series must be at least as long as the query")
    n = backend.num_dpus
    positions = series.size - query.size + 1
    if positions % n != 0:
        raise WorkloadError(
            f"time series: {positions} positions not divisible by {n} DPUs"
        )
    per_dpu = positions // n

    bcast_request = CollectiveRequest(
        Collective.BROADCAST,
        payload_bytes=query.size * _INT64.itemsize,
        dtype=_INT64,
        root=0,
    )
    bcast_buffers = [
        query if d == 0 else np.zeros(query.size, dtype=_INT64)
        for d in range(n)
    ]
    bcast = backend.run(bcast_request, bcast_buffers)
    assert bcast.outputs is not None

    keys = []
    for d in range(n):
        lo = d * per_dpu
        local_slice = series[lo : lo + per_dpu + query.size - 1]
        windows = np.lib.stride_tricks.sliding_window_view(
            local_slice, query.size
        )
        distances = np.abs(windows - bcast.outputs[d]).sum(axis=1)
        local_best = int(np.argmin(distances))
        keys.append(
            np.array(
                [_ts_pack(distances[local_best], lo + local_best)],
                dtype=_INT64,
            )
        )
    reduce_request = CollectiveRequest(
        Collective.ALL_REDUCE, payload_bytes=_INT64.itemsize,
        dtype=_INT64, op=ReduceOp.MIN,
    )
    result = backend.run(reduce_request, keys)
    assert result.outputs is not None
    packed = int(result.outputs[0][0])
    return packed % (1 << _TS_POS_BITS), packed >> _TS_POS_BITS


@dataclass(frozen=True)
class TsSimilarityWorkload(Workload):
    """PrIM time series: query Broadcast + packed-minimum AllReduce."""

    series_items: int = 1 << 22
    query_items: int = 256
    #: Cycles per (position, query element) pair: load, subtract,
    #: absolute value, accumulate.
    cycles_per_element: float = 4.0

    name = "TS"
    comm = "BC"

    def __post_init__(self) -> None:
        if self.series_items < 1 or self.query_items < 1:
            raise WorkloadError("time-series sizes must be positive")
        if self.series_items < self.query_items:
            raise WorkloadError("series must be at least query length")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        positions_per_dpu = self.series_items / n
        pairs = positions_per_dpu * self.query_items
        work = OpCounts(
            counts={Op.INT_ADD: self.cycles_per_element * pairs},
            mram_read_bytes=8.0 * (positions_per_dpu + self.query_items),
        )
        bcast = CollectiveRequest(
            Collective.BROADCAST,
            payload_bytes=self.query_items * _INT64.itemsize,
            dtype=_INT64,
            root=0,
        )
        combine = CollectiveRequest(
            Collective.ALL_REDUCE, payload_bytes=_INT64.itemsize,
            dtype=_INT64, op=ReduceOp.MIN,
        )
        return [
            CommPhase(bcast, name="query-BC"),
            ComputePhase(work, name="sad-scan"),
            CommPhase(combine, name="min-AR"),
        ]

    def expected_comm_volume(
        self, machine: MachineConfig
    ) -> dict[str, int]:
        return {
            "BC": self.query_items * _INT64.itemsize,
            "AR": _INT64.itemsize,
        }


def prim_workloads() -> dict[str, Workload]:
    """The PrIM tier with its default (paper-scale) configurations."""
    return {
        "HST": HistogramWorkload(),
        "SCAN": ScanWorkload(),
        "SEL": SelectWorkload(),
        "BS": BinarySearchWorkload(),
        "TS": TsSimilarityWorkload(),
    }
