"""Workload framework: phases, results, and the execution engine.

A workload describes its per-DPU work as an alternating list of compute
phases (operation counts for the DPU model) and communication phases
(collective requests).  The engine times compute with the
:class:`~repro.dpu.compute.ComputeModel` and communication with any
registered backend, producing the execution breakdowns of Figs 10/11.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..collectives.backend import CollectiveBackend, registry
from ..collectives.patterns import Collective, CollectiveRequest
from ..collectives.result import CommBreakdown, CommStats
from ..config.presets import MachineConfig
from ..dpu.compute import ComputeModel, OpCounts
from ..errors import WorkloadError

#: Table VII communication-pattern labels.
PATTERN_LABEL = {
    Collective.REDUCE_SCATTER: "RS",
    Collective.ALL_REDUCE: "AR",
    Collective.ALL_TO_ALL: "A2A",
    Collective.ALL_GATHER: "AG",
    Collective.BROADCAST: "BC",
    Collective.REDUCE: "R",
    Collective.GATHER: "G",
}


@dataclass(frozen=True)
class ComputePhase:
    """Per-DPU compute work, repeated ``repeat`` times."""

    work: OpCounts
    repeat: int = 1
    name: str = "compute"

    def __post_init__(self) -> None:
        if self.repeat < 0:
            raise WorkloadError("repeat must be >= 0")


@dataclass(frozen=True)
class CommPhase:
    """One collective, repeated ``repeat`` times."""

    request: CollectiveRequest
    repeat: int = 1
    name: str = "comm"

    def __post_init__(self) -> None:
        if self.repeat < 0:
            raise WorkloadError("repeat must be >= 0")


WorkloadPhase = ComputePhase | CommPhase


class Workload(ABC):
    """One of the paper's Table VII applications."""

    #: Short name used in figures ("BFS", "CC", "MLP", ...).
    name: str = "?"
    #: Main communication pattern label ("RS", "AR", "A2A").
    comm: str = "?"

    @abstractmethod
    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        """The workload's phase list for ``machine``."""

    def description(self) -> str:
        return self.__doc__.strip().splitlines()[0] if self.__doc__ else ""

    def expected_comm_volume(
        self, machine: MachineConfig
    ) -> dict[str, int] | None:
        """Closed-form per-pattern payload bytes, or ``None``.

        Workloads with an analytically known communication volume (the
        PrIM tier, APSP) return ``{pattern label: total payload bytes}``
        computed *from their parameters alone* — never by walking
        :meth:`phases` — so the differential harness can hold the phase
        list and the functional decomposition against an independent
        closed form.
        """
        return None


@dataclass(frozen=True)
class CommTraceEntry:
    """One collective of a workload's trace, in phase order."""

    phase: str
    pattern: str          # Table VII label ("AR", "AG", "BC", ...)
    payload_bytes: int    # per-DPU contribution of one repeat
    repeat: int
    root: int = 0

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes * self.repeat


def comm_trace(
    workload: Workload, machine: MachineConfig
) -> tuple[CommTraceEntry, ...]:
    """The workload's per-phase collective trace on ``machine``."""
    entries = []
    for phase in workload.phases(machine):
        if isinstance(phase, CommPhase):
            request = phase.request
            entries.append(
                CommTraceEntry(
                    phase=phase.name,
                    pattern=PATTERN_LABEL[request.pattern],
                    payload_bytes=request.payload_bytes,
                    repeat=phase.repeat,
                    root=request.root,
                )
            )
    return tuple(entries)


def collective_volume(
    workload: Workload, machine: MachineConfig
) -> dict[str, int]:
    """Total payload bytes per pattern label, summed over the trace."""
    volume: dict[str, int] = {}
    for entry in comm_trace(workload, machine):
        volume[entry.pattern] = (
            volume.get(entry.pattern, 0) + entry.total_bytes
        )
    return volume


@dataclass(frozen=True)
class AppResult:
    """Execution-time breakdown of one workload on one backend."""

    workload: str
    backend: str
    compute_s: float
    comm: CommBreakdown
    num_collectives: int
    phase_times: tuple[tuple[str, float], ...] = ()

    @property
    def comm_s(self) -> float:
        return self.comm.total_s

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    @property
    def comm_fraction(self) -> float:
        total = self.total_s
        return self.comm_s / total if total > 0 else 0.0

    def speedup_over(self, other: "AppResult") -> float:
        if self.total_s <= 0:
            raise WorkloadError("cannot compute speedup of a zero-time run")
        return other.total_s / self.total_s


class ExecutionEngine:
    """Times a workload's phases on one machine with one backend."""

    def __init__(
        self,
        machine: MachineConfig,
        backend: CollectiveBackend | str,
        num_tasklets: int = 16,
    ) -> None:
        self.machine = machine
        if isinstance(backend, str):
            backend = registry.create(backend, machine)
        self.backend = backend
        self.compute_model = ComputeModel(
            dpu=machine.system.dpu,
            profile=machine.compute,
            num_tasklets=num_tasklets,
            dma_bandwidth_bytes_per_s=(
                machine.pimnet.mram_wram_dma_bytes_per_s
            ),
        )

    def run(self, workload: Workload) -> AppResult:
        compute_s = 0.0
        stats = CommStats()
        phase_times: list[tuple[str, float]] = []
        for phase in workload.phases(self.machine):
            if isinstance(phase, ComputePhase):
                t = self.compute_model.phase_time_s(phase.work) * phase.repeat
                compute_s += t
                phase_times.append((phase.name, t))
            elif isinstance(phase, CommPhase):
                breakdown = self.backend.timing(phase.request).scaled(
                    phase.repeat
                )
                stats.add(breakdown)
                phase_times.append((phase.name, breakdown.total_s))
            else:  # pragma: no cover - type-guarded
                raise WorkloadError(f"unknown phase type {type(phase)}")
        return AppResult(
            workload=workload.name,
            backend=getattr(self.backend, "key", "?"),
            compute_s=compute_s,
            comm=stats.breakdown,
            num_collectives=stats.num_collectives,
            phase_times=tuple(phase_times),
        )


def compare_backends(
    workload: Workload,
    machine: MachineConfig,
    backend_keys: list[str],
    num_tasklets: int = 16,
) -> dict[str, AppResult]:
    """Run one workload across several backends (a Fig 10 bar group).

    Backends that cannot execute the workload's collectives (NDPBridge
    on reducing patterns) are silently skipped, mirroring the paper's
    per-workload backend selection.
    """
    results: dict[str, AppResult] = {}
    for key in backend_keys:
        backend = registry.create(key, machine)
        patterns = {
            phase.request.pattern
            for phase in workload.phases(machine)
            if isinstance(phase, CommPhase)
        }
        if not all(backend.supports(p) for p in patterns):
            continue
        engine = ExecutionEngine(machine, backend, num_tasklets)
        results[key] = engine.run(workload)
    return results
