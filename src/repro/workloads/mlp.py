"""MLP: tensor-parallel fully connected layers (Table VII).

Three square layers (256, 512, 1024 neurons) with 32-bit weights, so the
multiply is software-emulated — the reason the paper's MLP sees only a
modest end-to-end speedup (compute dominates).  Each layer's activations
are combined with an AllReduce (tensor parallelism keeps weights
column-sliced per DPU).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase


@dataclass(frozen=True)
class MlpWorkload(Workload):
    """3-layer MLP with AllReduce after every layer."""

    layer_sizes: tuple[int, ...] = (256, 512, 1024)
    #: Fraction of a layer's columns each DPU holds (tensor-parallel
    #: degree 32: the slice that fits WRAM alongside activations).
    cols_fraction: float = 1.0 / 32.0
    batch: int = 4

    name = "MLP"
    comm = "AR"

    def __post_init__(self) -> None:
        if not self.layer_sizes:
            raise WorkloadError("MLP needs at least one layer")
        if any(n < 1 for n in self.layer_sizes):
            raise WorkloadError("layer sizes must be positive")
        if not 0 < self.cols_fraction <= 1:
            raise WorkloadError("cols_fraction must be in (0, 1]")
        if self.batch < 1:
            raise WorkloadError("batch must be positive")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        phases: list[WorkloadPhase] = []
        for _ in range(self.batch):
            for n in self.layer_sizes:
                cols = max(1, int(n * self.cols_fraction))
                tile = n * cols
                work = OpCounts(
                    counts={
                        Op.LOAD: float(tile),
                        Op.INT_MUL: float(tile),   # emulated 32-bit multiply
                        Op.INT_ADD: float(tile),
                    },
                    mram_read_bytes=4.0 * tile,
                )
                phases.append(ComputePhase(work, name=f"layer-{n}"))
                phases.append(
                    CommPhase(
                        CollectiveRequest(
                            Collective.ALL_REDUCE,
                            payload_bytes=n * 4,
                            dtype=np.dtype(np.int32),
                        ),
                        name=f"activations-AR-{n}",
                    )
                )
        return phases


def distributed_mlp(
    weight_stack: list[np.ndarray],
    x: np.ndarray,
    backend: CollectiveBackend,
) -> np.ndarray:
    """Functional tensor-parallel MLP forward pass (integer, no bias).

    Each layer's weight matrix is (out, in) with ``in`` divisible by the
    DPU count; activations are AllReduced after every layer, so every
    DPU holds the full activation vector entering the next layer.
    A ReLU-like clamp keeps values positive between layers.
    """
    n = backend.num_dpus
    activation = x.astype(np.int64)
    for weights in weight_stack:
        out_dim, in_dim = weights.shape
        if in_dim % n != 0:
            raise WorkloadError(
                f"layer input {in_dim} not divisible by {n} DPUs"
            )
        if activation.shape != (in_dim,):
            raise WorkloadError("activation/layer shape mismatch")
        width = in_dim // n
        partials = []
        for d in range(n):
            lo = d * width
            partials.append(
                weights[:, lo : lo + width].astype(np.int64)
                @ activation[lo : lo + width]
            )
        request = CollectiveRequest(
            Collective.ALL_REDUCE, payload_bytes=out_dim * 8,
            dtype=np.dtype(np.int64),
        )
        result = backend.run(request, partials)
        assert result.outputs is not None
        activation = np.maximum(result.outputs[0], 0)
    return activation


def mlp_reference(weight_stack: list[np.ndarray], x: np.ndarray) -> np.ndarray:
    """Single-node reference for :func:`distributed_mlp`."""
    activation = x.astype(np.int64)
    for weights in weight_stack:
        activation = np.maximum(weights.astype(np.int64) @ activation, 0)
    return activation


def mlp_configs() -> dict[str, "MlpWorkload"]:
    """Table VII MLP configurations as individual square layers."""
    return {
        "MLP-256": MlpWorkload(layer_sizes=(256,) * 3),
        "MLP-512": MlpWorkload(layer_sizes=(512,) * 3),
        "MLP-1024": MlpWorkload(layer_sizes=(1024,) * 3),
    }
