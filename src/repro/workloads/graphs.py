"""Synthetic graph generation (the loc-gowalla substitute).

The paper's graph workloads use the log-scaled Gowalla check-in graph
(~197k vertices, ~950k edges).  That dataset is not redistributable
here, so a seeded R-MAT generator produces a graph with the same vertex
and edge counts and a comparable skewed degree distribution — the two
properties that set BFS/CC iteration counts and communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, WorkloadError


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph in CSR form."""

    num_vertices: int
    indptr: np.ndarray   # int64, len = num_vertices + 1
    indices: np.ndarray  # int64, len = 2 * num_edges (both directions)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size) // 2

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


def rmat_graph(
    num_vertices: int = 196_591,
    num_edges: int = 950_327,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 42,
) -> Graph:
    """Generate an R-MAT graph (Chakrabarti et al.) with numpy batching.

    Default probabilities are the standard skewed setting; defaults for
    the size match loc-gowalla.  Self-loops and duplicate edges are
    removed, so the realized edge count lands slightly under the target
    (as with real R-MAT usage).
    """
    if num_vertices < 2:
        raise ConfigurationError("graph needs at least two vertices")
    if num_edges < 1:
        raise ConfigurationError("graph needs at least one edge")
    for name, p in (("a", a), ("b", b), ("c", c)):
        # Check each probability individually: a negative one can hide
        # inside a sum that still lands in (0, 1).
        if not 0.0 < p < 1.0:
            raise ConfigurationError(
                f"RMAT probability {name}={p} must be in (0, 1)"
            )
    if not a + b + c < 1:
        raise ConfigurationError("RMAT probabilities must leave room for d")
    rng = np.random.default_rng(seed)
    scale = int(np.ceil(np.log2(num_vertices)))
    n_pow2 = 1 << scale

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        # quadrant choice: [a | b / c | d]
        right = r >= a + b  # dst bit below, src bit depends
        down = (r >= a) & (r < a + b) | (r >= a + b + c)
        bit = 1 << (scale - 1 - level)
        src += bit * ((r >= a + b)).astype(np.int64)
        dst += bit * (((r >= a) & (r < a + b)) | (r >= a + b + c)).astype(
            np.int64
        )
        del right, down

    # Fold into the requested vertex range and clean up.
    src %= num_vertices
    dst %= num_vertices
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # undirected: canonical order then dedupe
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    packed = lo * num_vertices + hi
    packed = np.unique(packed)
    lo = packed // num_vertices
    hi = packed % num_vertices

    # CSR over both directions
    heads = np.concatenate([lo, hi])
    tails = np.concatenate([hi, lo])
    order = np.argsort(heads, kind="stable")
    heads, tails = heads[order], tails[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    counts = np.bincount(heads, minlength=num_vertices)
    indptr[1:] = np.cumsum(counts)
    return Graph(
        num_vertices=num_vertices, indptr=indptr, indices=tails
    )


def bfs_reference(graph: Graph, source: int = 0) -> np.ndarray:
    """Level-synchronous BFS; returns per-vertex depth (-1 unreachable)."""
    if not 0 <= source < graph.num_vertices:
        raise WorkloadError("BFS source out of range")
    depth = np.full(graph.num_vertices, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbor_lists = [graph.neighbors(int(v)) for v in frontier]
        if not neighbor_lists:
            break
        candidates = np.unique(np.concatenate(neighbor_lists))
        new = candidates[depth[candidates] < 0]
        depth[new] = level
        frontier = new
    return depth


def connected_components_reference(graph: Graph) -> np.ndarray:
    """Label propagation to a fixed point; returns per-vertex labels."""
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    heads = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64),
        np.diff(graph.indptr),
    )
    tails = graph.indices
    while True:
        proposed = labels.copy()
        np.minimum.at(proposed, heads, labels[tails])
        if np.array_equal(proposed, labels):
            return labels
        labels = proposed


def bfs_levels(graph: Graph, source: int = 0) -> int:
    """Number of BFS levels (iterations of the distributed algorithm)."""
    depth = bfs_reference(graph, source)
    reachable = depth[depth >= 0]
    return int(reachable.max()) + 1 if reachable.size else 0
