"""Differential workload harness: three views of one workload, compared.

Every workload in the PrIM/APSP tier exists in three coupled forms — a
numpy functional reference, a distributed decomposition over a
collective backend, and a declarative phase list.  This module runs the
parametrized matrix (workload × machine shape × payload scale,
mirroring :mod:`repro.conformance`) and holds the three views against
each other:

1. **Functional** — the distributed output equals the reference
   bit-exactly on seeded inputs;
2. **Trace** — the collectives the decomposition actually issued equal
   the workload's declared :func:`~repro.workloads.base.comm_trace`,
   request by request (pattern, payload bytes, root, order);
3. **Conservation** — bytes moved per pattern match the workload's
   closed-form ``expected_comm_volume``, computed from its parameters
   alone.

Used by ``tests/test_workloads_differential.py`` (the tier-1 matrix) and
by the CI ``workloads`` job, which renders :func:`summarize_by_workload`
as a pass/fail table.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from ..collectives.backend import registry
from ..collectives.patterns import CollectiveRequest
from ..config.presets import MachineConfig, small_test_system
from ..config.system import PimSystemConfig
from ..errors import WorkloadError
from .apsp import (
    ApspWorkload,
    distributed_floyd_warshall,
    floyd_warshall_reference,
    rmat_weighted_dist,
)
from .base import PATTERN_LABEL, Workload, comm_trace, collective_volume
from .prim import (
    BinarySearchWorkload,
    HistogramWorkload,
    ScanWorkload,
    SelectWorkload,
    TsSimilarityWorkload,
    binary_search_reference,
    distributed_binary_search,
    distributed_histogram,
    distributed_scan,
    distributed_select,
    distributed_tss,
    histogram_reference,
    scan_reference,
    select_reference,
    tss_reference,
)

#: The differential matrix axes: ≥3 shapes × ≥3 payload scales.
DEFAULT_SHAPES: tuple[tuple[int, int, int], ...] = (
    (2, 2, 2),   # the tiny test machine
    (4, 2, 2),   # bank-heavy
    (2, 2, 4),   # rank-heavy (full-depth rank bus)
)
DEFAULT_SCALES: tuple[str, ...] = ("S", "M", "L")
_SCALE_FACTOR = {"S": 1, "M": 4, "L": 16}

#: Workload keys of the differential tier, in matrix order.
DIFFERENTIAL_KEYS: tuple[str, ...] = (
    "HST", "SCAN", "SEL", "BS", "TS", "APSP",
)


@dataclass(frozen=True)
class DifferentialCase:
    """One cell of the matrix: workload × machine shape × payload."""

    workload_key: str
    shape: tuple[int, int, int]  # (banks/chip, chips/rank, ranks)
    scale: str
    backend_key: str = "P"

    @property
    def case_id(self) -> str:
        banks, chips, ranks = self.shape
        return (
            f"{self.workload_key}-{banks}x{chips}x{ranks}-{self.scale}"
            f"-{self.backend_key}"
        )

    @property
    def seed(self) -> int:
        # Deterministic per-cell seed (not ``hash()``, which is
        # per-process randomized) so every cell sees distinct data.
        return zlib.crc32(self.case_id.encode())

    def machine(self) -> MachineConfig:
        banks, chips, ranks = self.shape
        return replace(
            small_test_system(),
            system=PimSystemConfig(
                banks_per_chip=banks,
                chips_per_rank=chips,
                ranks_per_channel=ranks,
            ),
        )


@dataclass(frozen=True)
class CaseReport:
    """Outcome of one differential cell, check by check."""

    case: DifferentialCase
    functional_ok: bool
    trace_ok: bool
    volume_ok: bool
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.functional_ok and self.trace_ok and self.volume_ok


class TraceRecordingBackend:
    """Backend wrapper recording every collective request it executes.

    Duck-typed against the two members the distributed decompositions
    use (``num_dpus`` and ``run``), so it composes with any registered
    backend.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.trace: list[CollectiveRequest] = []

    @property
    def num_dpus(self) -> int:
        return self.inner.num_dpus

    def run(self, request: CollectiveRequest, buffers=None):
        self.trace.append(request)
        return self.inner.run(request, buffers)


def _run_hst(case, backend, rng):
    n = backend.num_dpus
    m = _SCALE_FACTOR[case.scale]
    num_bins = 16 * m
    items = 8 * n * m
    values = rng.integers(0, num_bins, items).astype(np.int64)
    got = distributed_histogram(values, num_bins, backend)
    want = histogram_reference(values, num_bins)
    workload = HistogramWorkload(items=items, num_bins=num_bins)
    return workload, np.array_equal(got, want)


def _run_scan(case, backend, rng):
    n = backend.num_dpus
    m = _SCALE_FACTOR[case.scale]
    items = 8 * n * m
    values = rng.integers(-1000, 1000, items).astype(np.int64)
    got = distributed_scan(values, backend)
    want = scan_reference(values)
    return ScanWorkload(items=items), np.array_equal(got, want)


def _run_sel(case, backend, rng):
    n = backend.num_dpus
    m = _SCALE_FACTOR[case.scale]
    items = 8 * n * m
    values = rng.integers(-1000, 1000, items).astype(np.int64)
    got = distributed_select(values, 0, backend)
    want = select_reference(values, 0)
    return SelectWorkload(items=items), np.array_equal(got, want)


def _run_bs(case, backend, rng):
    n = backend.num_dpus
    m = _SCALE_FACTOR[case.scale]
    haystack_items = 8 * n * m
    num_queries = 4 * m
    haystack = np.sort(
        rng.integers(0, 10_000, haystack_items).astype(np.int64)
    )
    queries = rng.integers(-10, 10_010, num_queries).astype(np.int64)
    got = distributed_binary_search(haystack, queries, backend)
    want = binary_search_reference(haystack, queries)
    workload = BinarySearchWorkload(
        haystack_items=haystack_items, num_queries=num_queries
    )
    return workload, np.array_equal(got, want)


def _run_ts(case, backend, rng):
    n = backend.num_dpus
    m = _SCALE_FACTOR[case.scale]
    query_items = 4 * m
    positions = 8 * n * m
    series = rng.integers(0, 100, positions + query_items - 1).astype(
        np.int64
    )
    query = rng.integers(0, 100, query_items).astype(np.int64)
    got = distributed_tss(series, query, backend)
    want = tss_reference(series, query)
    workload = TsSimilarityWorkload(
        series_items=series.size, query_items=query_items
    )
    return workload, got == want


def _run_apsp(case, backend, rng):
    n = backend.num_dpus
    m = _SCALE_FACTOR[case.scale]
    # rows per DPU: 2 / 4 / 8; block 2 (4 at the largest scale).
    rows_per = {1: 2, 4: 4, 16: 8}[m]
    block = 2 if m < 16 else 4
    num_vertices = rows_per * n
    dist = rmat_weighted_dist(
        num_vertices, 3 * num_vertices, seed=case.seed
    )
    got = distributed_floyd_warshall(dist, block, backend)
    want = floyd_warshall_reference(dist)
    workload = ApspWorkload(num_vertices=num_vertices, block=block)
    return workload, np.array_equal(got, want)


_RUNNERS = {
    "HST": _run_hst,
    "SCAN": _run_scan,
    "SEL": _run_sel,
    "BS": _run_bs,
    "TS": _run_ts,
    "APSP": _run_apsp,
}


def _expand_trace(
    workload: Workload, machine: MachineConfig
) -> list[tuple[str, int, int]]:
    """The declared trace as a flat (pattern, bytes, root) sequence."""
    flat = []
    for entry in comm_trace(workload, machine):
        flat.extend(
            [(entry.pattern, entry.payload_bytes, entry.root)]
            * entry.repeat
        )
    return flat


def run_case(case: DifferentialCase) -> CaseReport:
    """Run one matrix cell: functional, trace, and conservation checks."""
    if case.workload_key not in _RUNNERS:
        raise WorkloadError(
            f"unknown differential workload {case.workload_key!r}; "
            f"known: {sorted(_RUNNERS)}"
        )
    machine = case.machine()
    backend = TraceRecordingBackend(
        registry.create(case.backend_key, machine)
    )
    rng = np.random.default_rng(case.seed)

    workload, functional_ok = _RUNNERS[case.workload_key](
        case, backend, rng
    )
    details = []
    if not functional_ok:
        details.append("distributed output != functional reference")

    declared = _expand_trace(workload, machine)
    recorded = [
        (PATTERN_LABEL[r.pattern], r.payload_bytes, r.root)
        for r in backend.trace
    ]
    trace_ok = declared == recorded
    if not trace_ok:
        details.append(
            f"trace mismatch: declared {len(declared)} collectives "
            f"{declared[:3]}..., recorded {len(recorded)} "
            f"{recorded[:3]}..."
        )

    expected = workload.expected_comm_volume(machine)
    declared_volume = collective_volume(workload, machine)
    recorded_volume: dict[str, int] = {}
    for pattern, payload, _root in recorded:
        recorded_volume[pattern] = (
            recorded_volume.get(pattern, 0) + payload
        )
    volume_ok = expected == declared_volume == recorded_volume
    if not volume_ok:
        details.append(
            f"volume mismatch: closed-form {expected}, "
            f"declared {declared_volume}, recorded {recorded_volume}"
        )

    return CaseReport(
        case=case,
        functional_ok=functional_ok,
        trace_ok=trace_ok,
        volume_ok=volume_ok,
        detail="; ".join(details),
    )


def enumerate_cases(
    keys: tuple[str, ...] = DIFFERENTIAL_KEYS,
    shapes: tuple[tuple[int, int, int], ...] = DEFAULT_SHAPES,
    scales: tuple[str, ...] = DEFAULT_SCALES,
    backend_key: str = "P",
) -> list[DifferentialCase]:
    """The full matrix, workload-major."""
    return [
        DifferentialCase(key, shape, scale, backend_key)
        for key in keys
        for shape in shapes
        for scale in scales
    ]


def run_differential_matrix(
    cases: list[DifferentialCase] | None = None,
) -> list[CaseReport]:
    """Run the whole matrix (or a subset) and return every report."""
    return [run_case(case) for case in (cases or enumerate_cases())]


def summarize_by_workload(
    reports: list[CaseReport],
) -> list[dict[str, object]]:
    """Per-workload pass/fail rows for the CI step-summary table."""
    rows = []
    for key in DIFFERENTIAL_KEYS:
        mine = [r for r in reports if r.case.workload_key == key]
        if not mine:
            continue
        failed = [r for r in mine if not r.passed]
        rows.append(
            {
                "workload": key,
                "cases": len(mine),
                "passed": len(mine) - len(failed),
                "failed": len(failed),
                "status": "ok" if not failed else "FAIL",
                "detail": failed[0].detail if failed else "",
            }
        )
    return rows
