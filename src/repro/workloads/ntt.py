"""NTT: the Number Theoretic Transform used in homomorphic encryption.

Implements the paper's 2D (four-step / Bailey) decomposition of an
N = 2^16 NTT: column NTTs, twiddle scaling, an All-to-All transpose, and
row NTTs.  Arithmetic is over Z_p with p = 65537 (p - 1 = 2^16, so every
power-of-two size up to 2^16 has a root of unity), with 3 as primitive
root — the classic Fermat-prime NTT setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.backend import CollectiveBackend
from ..collectives.patterns import Collective, CollectiveRequest
from ..config.compute import Op
from ..config.presets import MachineConfig
from ..dpu.compute import OpCounts
from ..errors import WorkloadError
from .base import CommPhase, ComputePhase, Workload, WorkloadPhase

#: Fermat prime and its primitive root.
MODULUS = 65537
PRIMITIVE_ROOT = 3


def root_of_unity(size: int) -> int:
    """A principal ``size``-th root of unity modulo :data:`MODULUS`."""
    if size < 1 or (MODULUS - 1) % size != 0:
        raise WorkloadError(
            f"no {size}-th root of unity mod {MODULUS}"
        )
    return pow(PRIMITIVE_ROOT, (MODULUS - 1) // size, MODULUS)


def ntt_reference(values: np.ndarray) -> np.ndarray:
    """Iterative radix-2 Cooley-Tukey NTT (bit-reversal + butterflies)."""
    a = np.asarray(values, dtype=np.int64) % MODULUS
    n = a.size
    if n & (n - 1) != 0:
        raise WorkloadError("NTT size must be a power of two")
    # bit-reversal permutation
    indices = np.arange(n)
    bits = n.bit_length() - 1
    reversed_indices = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        reversed_indices |= ((indices >> b) & 1) << (bits - 1 - b)
    a = a[reversed_indices].copy()
    length = 2
    while length <= n:
        w_len = root_of_unity(length)
        half = length // 2
        twiddles = np.ones(half, dtype=np.int64)
        for i in range(1, half):
            twiddles[i] = twiddles[i - 1] * w_len % MODULUS
        blocks = a.reshape(n // length, length)
        even = blocks[:, :half].copy()  # copy: the in-place write below
        odd = blocks[:, half:] * twiddles % MODULUS
        blocks[:, :half] = (even + odd) % MODULUS
        blocks[:, half:] = (even - odd) % MODULUS
        a = blocks.reshape(n)
        length *= 2
    return a


def distributed_ntt_2d(
    values: np.ndarray, backend: CollectiveBackend
) -> np.ndarray:
    """Four-step NTT with the transpose done as an All-to-All.

    ``values`` has n1 * n2 elements with n1 = n2 = the backend's DPU
    count; DPU i2 initially holds column i2 (elements ``i1*n2 + i2``).
    Returns the full transform, identical to :func:`ntt_reference`.
    """
    n = backend.num_dpus
    n1 = n2 = n
    if values.size != n1 * n2:
        raise WorkloadError(
            f"need {n1 * n2} elements for a {n1}x{n2} 2D NTT"
        )
    x = np.asarray(values, dtype=np.int64).reshape(n1, n2) % MODULUS
    omega = root_of_unity(n1 * n2)

    # Step 1: n1-point NTT on each column (done by the column's DPU).
    columns = [ntt_reference(x[:, i2].copy()) for i2 in range(n2)]
    # Step 2: twiddle scaling A[k1, i2] *= omega^(i2 * k1).
    k1 = np.arange(n1, dtype=np.int64)
    for i2 in range(n2):
        twiddle = np.array(
            [pow(omega, int(i2 * k), MODULUS) for k in k1], dtype=np.int64
        )
        columns[i2] = columns[i2] * twiddle % MODULUS
    # Step 3: All-to-All transpose so DPU k1 holds A[k1, :].
    request = CollectiveRequest(
        Collective.ALL_TO_ALL, payload_bytes=n1 * 8,
        dtype=np.dtype(np.int64),
    )
    result = backend.run(request, columns)
    assert result.outputs is not None
    rows = result.outputs
    # Step 4: n2-point NTT on each row; output index is k1 + n1*k2.
    out = np.zeros(n1 * n2, dtype=np.int64)
    for idx in range(n1):
        transformed = ntt_reference(rows[idx])
        out[idx::n1] = transformed
    return out


@dataclass(frozen=True)
class NttWorkload(Workload):
    """2D NTT with N = 2^16 (256 x 256) and 16 tasklets per DPU."""

    size: int = 1 << 16
    batch: int = 16  # polynomials transformed back to back (one/tasklet)

    name = "NTT"
    comm = "A2A"

    def __post_init__(self) -> None:
        if self.size & (self.size - 1) != 0:
            raise WorkloadError("NTT size must be a power of two")
        if self.batch < 1:
            raise WorkloadError("batch must be positive")

    def phases(self, machine: MachineConfig) -> list[WorkloadPhase]:
        n = machine.system.banks_per_channel
        side = int(round(self.size ** 0.5))
        ntts_per_dpu = self.batch * max(1.0, side / n)
        butterflies = side / 2 * max(1, side.bit_length() - 1)
        # modmul = emulated 32-bit multiply + Barrett-style reduction;
        # two modular add/subs per butterfly.
        per_step = OpCounts(
            counts={
                Op.INT_MUL: butterflies * ntts_per_dpu,
                Op.INT_MOD: butterflies * ntts_per_dpu,
                Op.INT_ADD: 4.0 * butterflies * ntts_per_dpu,
            },
            mram_read_bytes=4.0 * side * ntts_per_dpu,
            mram_write_bytes=4.0 * side * ntts_per_dpu,
        )
        twiddle = OpCounts(
            counts={
                Op.INT_MUL: side * ntts_per_dpu,
                Op.INT_MOD: side * ntts_per_dpu,
            }
        )
        payload = int(self.batch * side * 4)
        transpose = CollectiveRequest(
            Collective.ALL_TO_ALL,
            payload_bytes=max(payload // n, 4) * n,
            dtype=np.dtype(np.int32),
        )
        return [
            ComputePhase(per_step, name="column-NTT"),
            ComputePhase(twiddle, name="twiddle"),
            CommPhase(transpose, name="transpose-A2A"),
            ComputePhase(per_step, name="row-NTT"),
        ]
