"""The full functional machine: host + DPUs + PIMnet, end to end.

:class:`PimMachine` ties every substrate together so a program can be
driven exactly like the paper's Fig 5(b) flow with *real data*:

1. the host pushes buffers into per-bank MRAM (``PimRuntime``);
2. each bank's DMA stages data into WRAM and its DPU executes a kernel
   on the mini ISA interpreter;
3. a PIMnet collective combines the MRAM-resident results directly
   between banks (never touching the host);
4. the host pulls the final buffers back.

Every step is functional (bytes actually move) *and* timed (the step
returns its modeled duration), which is what the end-to-end integration
tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .collectives.patterns import Collective, CollectiveRequest, ReduceOp
from .config.presets import MachineConfig, pimnet_sim_system
from .core.pimnet import PimnetBackend
from .dpu.interpreter import Dpu, RunResult
from .dpu.isa import Program
from .errors import WorkloadError
from .host.runtime import PimRuntime


@dataclass(frozen=True)
class KernelLaunch:
    """Outcome of one kernel launch across all DPUs."""

    per_dpu: tuple[RunResult, ...]
    time_s: float

    @property
    def slowest_s(self) -> float:
        return max(r.time_s for r in self.per_dpu)


class PimMachine:
    """A functional UPMEM-style machine with a PIMnet fabric."""

    def __init__(
        self, config: MachineConfig | None = None, ideal_host: bool = False
    ) -> None:
        self.config = config or pimnet_sim_system()
        self.runtime = PimRuntime(self.config, ideal=ideal_host)
        self.dpus = [
            Dpu(self.config.system.dpu, memory=bank)
            for bank in self.runtime.banks
        ]
        self.pimnet = PimnetBackend(self.config)

    @property
    def num_dpus(self) -> int:
        return len(self.dpus)

    # -- staging ------------------------------------------------------------------
    def stage_to_wram(
        self, buffer_name: str, length: int, wram_address: int = 0
    ) -> float:
        """DMA ``length`` bytes of a buffer into WRAM on every bank.

        Banks stage in parallel; returns the (common) DMA time.
        """
        buffer = self.runtime.buffer(buffer_name)
        if length > buffer.bytes_per_dpu:
            raise WorkloadError("stage length exceeds buffer")
        times = [
            bank.dma_to_wram(
                buffer.mram_offset, wram_address, length
            ).time_s
            for bank in self.runtime.banks
        ]
        return max(times)

    def stage_to_mram(
        self, buffer_name: str, length: int, wram_address: int = 0
    ) -> float:
        """DMA WRAM results back into a buffer on every bank."""
        buffer = self.runtime.buffer(buffer_name)
        if length > buffer.bytes_per_dpu:
            raise WorkloadError("stage length exceeds buffer")
        times = [
            bank.dma_to_mram(
                wram_address, buffer.mram_offset, length
            ).time_s
            for bank in self.runtime.banks
        ]
        return max(times)

    # -- execution -----------------------------------------------------------------
    def run_kernel(
        self,
        program: Program,
        num_tasklets: int = 16,
        init_registers: dict[int, dict[int, int]] | None = None,
    ) -> KernelLaunch:
        """Execute one kernel on every DPU (same program, same registers)."""
        results = tuple(
            dpu.run(
                program,
                num_tasklets=num_tasklets,
                init_registers=init_registers,
            )
            for dpu in self.dpus
        )
        slowest = max(r.time_s for r in results)
        time_s = self.runtime.launch("kernel", slowest)
        return KernelLaunch(per_dpu=results, time_s=time_s)

    # -- PIMnet collectives on MRAM-resident data ---------------------------------------
    def pimnet_collective(
        self,
        pattern: Collective,
        buffer_name: str,
        count: int,
        dtype: np.dtype | type = np.int64,
        op: ReduceOp = ReduceOp.SUM,
        root: int = 0,
    ) -> float:
        """Run a collective directly between banks (no host involvement).

        Reads each bank's buffer, executes the collective functionally
        through the PIMnet backend, writes the results back into the same
        buffers, and returns the modeled PIMnet time.
        """
        buffer = self.runtime.buffer(buffer_name)
        dt = np.dtype(dtype)
        if count * dt.itemsize > buffer.bytes_per_dpu:
            raise WorkloadError("collective exceeds buffer size")
        inputs = [
            bank.mram.read_array(buffer.mram_offset, count, dt)
            for bank in self.runtime.banks
        ]
        request = CollectiveRequest(
            pattern, count * dt.itemsize, dtype=dt, op=op, root=root
        )
        result = self.pimnet.run(request, inputs)
        assert result.outputs is not None
        for bank, output in zip(self.runtime.banks, result.outputs):
            if output.size:
                bank.mram.write_array(buffer.mram_offset, output)
        return result.time_s
