"""Seeded divergence injection: proof the engine catches real bugs.

A conformance engine that only ever reports agreement is
indistinguishable from one that checks nothing.  Each mutation mode
injects exactly one deterministic defect into one model's view of a
point, chosen so a *specific* check must trip:

* ``offset`` — shift one scheduled transfer's destination offset by its
  length.  The schedule now lands data in the wrong slot: caught by the
  functional bit-exactness check, or by the structural validators when
  the shift leaves the buffer.
* ``drop-transfer`` — delete one scheduled transfer outright: the
  functional result misses a contribution.
* ``drop-flit`` — remove one flit from one NoC message (the schedule is
  untouched): caught by flit conservation against the schedule-derived
  expected count.
* ``stall`` — delay one NoC message's injection far beyond the analytic
  bound: caught by the latency-agreement check.

Everything derives from ``(mode, seed, point)`` via a string-seeded
:class:`random.Random`, so a failure shrinks and replays bit-identically
on any machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..core.schedule import CommSchedule, Phase, Step, Tier
from ..errors import ConformanceError
from ..noc.flit import Message

#: The supported mutation modes, in documentation order.
MUTATION_MODES = ("offset", "drop-transfer", "drop-flit", "stall")

#: Modes that rewrite the schedule (vs. the NoC message list).
SCHEDULE_MODES = ("offset", "drop-transfer")


@dataclass(frozen=True)
class Mutation:
    """One seeded defect: which mode, and which RNG stream picks the
    target."""

    mode: str
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MUTATION_MODES:
            raise ConformanceError(
                f"unknown mutation mode {self.mode!r} "
                f"(known: {', '.join(MUTATION_MODES)})"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConformanceError(
                f"mutation seed must be >= 0, got {self.seed!r}"
            )

    def rng(self, point_label: str) -> random.Random:
        """Deterministic stream for this (mutation, point) pair.

        String seeds hash via the seed bytes themselves (not the
        process-salted ``hash()``), so the stream is stable across
        processes and platforms.
        """
        return random.Random(f"{self.mode}:{self.seed}:{point_label}")

    def as_dict(self) -> dict:
        return {"mode": self.mode, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict) -> "Mutation":
        if not isinstance(data, dict):
            raise ConformanceError("mutation must be an object")
        unknown = sorted(set(data) - {"mode", "seed"})
        if unknown:
            raise ConformanceError(
                f"unknown mutation field(s): {', '.join(unknown)}"
            )
        if "mode" not in data:
            raise ConformanceError("mutation is missing 'mode'")
        return cls(**data)


def _transfer_sites(
    schedule: CommSchedule,
) -> list[tuple[int, int, int]]:
    """(phase, step, transfer) indices of every network-visible
    transfer."""
    return [
        (p, s, t)
        for p, phase in enumerate(schedule.phases)
        if phase.tier is not Tier.LOCAL
        for s, step in enumerate(phase.steps)
        for t in range(len(step.transfers))
    ]


def mutate_schedule(
    schedule: CommSchedule, mutation: Mutation, rng: random.Random
) -> CommSchedule:
    """Apply a schedule-level mutation; returns a new schedule.

    Raises :class:`ConformanceError` when the schedule has no
    network-visible transfer to corrupt (degenerate single-DPU shapes),
    so the shrinker treats such candidates as infeasible rather than as
    silently-passing points.
    """
    if mutation.mode not in SCHEDULE_MODES:
        raise ConformanceError(
            f"mutation {mutation.mode!r} does not target the schedule"
        )
    sites = _transfer_sites(schedule)
    if not sites:
        raise ConformanceError(
            "schedule has no network-visible transfer to mutate"
        )
    target = rng.choice(sites)
    phases = []
    for p, phase in enumerate(schedule.phases):
        if p != target[0]:
            phases.append(phase)
            continue
        steps = []
        for s, step in enumerate(phase.steps):
            if s != target[1]:
                steps.append(step)
                continue
            transfers = list(step.transfers)
            victim = transfers[target[2]]
            if mutation.mode == "offset":
                transfers[target[2]] = replace(
                    victim, dst_offset=victim.dst_offset + victim.length
                )
            else:  # drop-transfer
                del transfers[target[2]]
            if transfers:
                steps.append(Step(tuple(transfers)))
        if steps:
            phases.append(Phase(phase.tier, phase.name, tuple(steps),
                                phase.algorithm))
    return CommSchedule(
        schedule.pattern, schedule.shape, schedule.num_elements,
        tuple(phases),
    )


def mutate_messages(
    messages: list[Message],
    barriers: dict[int, int],
    mutation: Mutation,
    rng: random.Random,
    stall_cycles: int,
) -> tuple[list[Message], dict[int, int]]:
    """Apply a message-level mutation; returns (messages, barriers).

    ``stall_cycles`` is the injection delay for ``stall`` mode — the
    engine sizes it from the point's analytic upper bound so the breach
    is unambiguous at any shrink level.
    """
    if mutation.mode in SCHEDULE_MODES:
        raise ConformanceError(
            f"mutation {mutation.mode!r} does not target the message list"
        )
    if not messages:
        raise ConformanceError("point generates no NoC messages to mutate")
    victim = rng.choice(messages)
    if mutation.mode == "stall":
        victim.ready_cycle += stall_cycles
        return messages, barriers
    # drop-flit: shave one flit; a single-flit message vanishes whole.
    if victim.num_flits > 1:
        victim.num_flits -= 1
        return messages, barriers
    kept = [m for m in messages if m.msg_id != victim.msg_id]
    kept_barriers = {
        msg_id: step
        for msg_id, step in barriers.items()
        if msg_id != victim.msg_id
    }
    return kept, kept_barriers
