"""The differential engine: one point, three models, four checks.

For every :class:`~repro.conformance.matrix.ConformancePoint` the engine
builds the static schedule and holds the three independent
implementations against each other:

* **validators** — ``core.validate.validate_schedule`` must pass on the
  generated schedule (bounds, tier locality, contention freedom, write
  races);
* **functional** — replaying the schedule on random int64 buffers
  (``core.schedule.execute_schedule``) must match the numpy reference
  semantics (``collectives.functional.execute``) bit-exactly;
* **latency** — the flit-level simulation of the schedule must land
  within the configured band around the analytic link-load time
  (``core.schedule.schedule_timing``), both in cycles (1 cycle = 1 ns);
* **conservation** — the simulator must deliver exactly the flits and
  messages the schedule implies.

Disagreement is *data*: the point report marks the failing check and
the matrix run keeps going.  Only infeasible points (payload does not
divide the shape) raise :class:`ConformanceError` — the shrinker uses
that distinction to skip invalid candidates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..collectives import functional
from ..collectives.patterns import Collective
from ..config.conformance import ConformanceConfig
from ..config.network import PimnetNetworkConfig
from ..config.runner import DEFAULT_CACHE_DIR
from ..core.schedule import (
    CommSchedule,
    execute_schedule,
    owned_range,
    schedule_timing,
)
from ..core.validate import validate_schedule
from ..errors import CollectiveError, ConformanceError, ScheduleError
from ..noc.network import NocNetwork
from ..noc.simulator import NocSimulator
from ..noc.workload import messages_from_schedule
from ..observability import metric_counter, trace_span
from ..schedcache import cached_build_schedule
from .matrix import ConformancePoint, enumerate_matrix
from .mutate import (
    SCHEDULE_MODES,
    Mutation,
    mutate_messages,
    mutate_schedule,
)

#: 1 simulator cycle = 1 ns (the NoC convention).
_CYCLE_S = 1e-9

#: Check names in report order.
CHECKS = ("validators", "functional", "latency", "conservation")


def _point_buffers(
    point: ConformancePoint, config: ConformanceConfig
) -> list[np.ndarray]:
    """Deterministic per-DPU int64 payloads for the functional check.

    The stream is derived from the config seed *and* the full point
    identity, so shrunk candidates get fresh data (a mutation cannot
    hide behind a buffer coincidence carried over from the parent
    point).
    """
    num_elements = point.num_elements(config.itemsize)
    rng = np.random.default_rng(
        [
            config.seed,
            list(Collective).index(point.pattern),
            point.banks,
            point.chips,
            point.ranks,
            num_elements,
        ]
    )
    return [
        rng.integers(-(2**31), 2**31, num_elements, dtype=np.int64)
        for _ in range(point.num_dpus)
    ]


def _functional_detail(
    point: ConformancePoint,
    schedule: CommSchedule,
    config: ConformanceConfig,
) -> str:
    """Empty string when schedule replay matches the reference
    bit-exactly; otherwise a description of the first divergence."""
    buffers = _point_buffers(point, config)
    request = point.request(config.itemsize)
    out = execute_schedule(schedule, buffers)
    ref = functional.execute(request, buffers)
    pattern = point.pattern
    shape = point.shape
    num_elements = point.num_elements(config.itemsize)

    def mismatch(dpu: int, got: np.ndarray, want: np.ndarray) -> str:
        bad = np.flatnonzero(got != want)
        where = int(bad[0]) if bad.size else -1
        return (
            f"dpu {dpu}: {bad.size}/{want.size} elements differ "
            f"(first at index {where})"
        )

    if pattern is Collective.REDUCE_SCATTER:
        for dpu in range(shape.num_dpus):
            off, length = owned_range(shape, num_elements, dpu)
            got = out[dpu][off : off + length]
            if not np.array_equal(got, ref[dpu]):
                return mismatch(dpu, got, ref[dpu])
        return ""
    if pattern in (Collective.REDUCE, Collective.GATHER):
        root = request.root
        if not np.array_equal(out[root], ref[root]):
            return mismatch(root, out[root], ref[root])
        return ""
    for dpu in range(shape.num_dpus):
        if not np.array_equal(out[dpu], ref[dpu]):
            return mismatch(dpu, out[dpu], ref[dpu])
    return ""


def run_point(
    point: ConformancePoint,
    config: ConformanceConfig | None = None,
    network: PimnetNetworkConfig | None = None,
    mutation: Mutation | None = None,
) -> dict:
    """Run all checks on one point; returns a JSON-ready report.

    Raises :class:`ConformanceError` only for *infeasible* points
    (payload/shape divisibility) or inapplicable mutations; model
    disagreement is reported in the returned dict, never raised.
    """
    config = config or ConformanceConfig()
    network = network or PimnetNetworkConfig()
    label = point.label()
    with trace_span(
        "conformance/point",
        category="conformance",
        point=label,
        mutation=mutation.mode if mutation else "",
    ) as span:
        num_elements = point.num_elements(config.itemsize)
        request = point.request(config.itemsize)
        try:
            request.validate_for(point.num_dpus)
            # Served from the schedule-compilation cache: schedules are
            # frozen, and mutations below construct fresh objects, so a
            # shared cached schedule is safe.  The latency check's
            # analytic time and flit simulation stay on the slow path —
            # they are the independent oracles the cache is tested
            # against, so they must never be served *from* it.
            schedule = cached_build_schedule(
                point.pattern, point.shape, num_elements
            )
        except (ScheduleError, CollectiveError) as exc:
            raise ConformanceError(
                f"infeasible conformance point {label}: {exc}"
            ) from exc

        rng = mutation.rng(label) if mutation else None
        if mutation and mutation.mode in SCHEDULE_MODES:
            schedule = mutate_schedule(schedule, mutation, rng)

        checks: dict[str, dict] = {}

        try:
            validate_schedule(schedule)
            checks["validators"] = {"ok": True, "detail": ""}
        except ScheduleError as exc:
            checks["validators"] = {"ok": False, "detail": str(exc)}

        try:
            detail = _functional_detail(point, schedule, config)
        except Exception as exc:  # replay can crash on corrupt offsets
            detail = f"schedule replay failed: {exc}"
        checks["functional"] = {"ok": not detail, "detail": detail}

        checks["latency"], checks["conservation"] = _noc_checks(
            schedule, config, network, mutation, rng
        )

        ok = all(check["ok"] for check in checks.values())
        metric_counter("conformance.points").inc()
        if not ok:
            metric_counter("conformance.failures").inc()
        span.set_attributes(
            ok=ok,
            failed=",".join(
                name for name in CHECKS if not checks[name]["ok"]
            ),
        )
        return {
            "point": point.params,
            "ok": ok,
            "checks": checks,
            "mutation": mutation.as_dict() if mutation else None,
        }


def _noc_checks(
    schedule: CommSchedule,
    config: ConformanceConfig,
    network: PimnetNetworkConfig,
    mutation: Mutation | None,
    rng,
) -> tuple[dict, dict]:
    """The latency-agreement and flit-conservation reports."""
    analytic_s = sum(
        schedule_timing(schedule, network, itemsize=config.itemsize).values()
    )
    analytic_cycles = analytic_s / _CYCLE_S
    slack = config.latency_abs_slack_cycles
    lower = config.latency_min_ratio * analytic_cycles - slack
    upper = (1.0 + config.latency_rel_tol) * analytic_cycles + slack

    net = NocNetwork(schedule.shape, network=network)
    messages, barriers = messages_from_schedule(
        schedule, net, "scheduled", itemsize=config.itemsize
    )
    # Expected totals are fixed *before* message-level mutations, so a
    # dropped flit shows up as a conservation deficit.
    expected_flits = sum(m.num_flits for m in messages)
    expected_messages = len(messages)
    if mutation and mutation.mode not in SCHEDULE_MODES:
        messages, barriers = mutate_messages(
            messages, barriers, mutation, rng,
            stall_cycles=int(upper) + 1000,
        )

    if messages:
        sim = NocSimulator(net, messages)
        if barriers:
            sim.set_barriers(barriers)
        stats = sim.run()
        cycles = stats.cycles
        delivered_flits = stats.flits_delivered
        delivered_messages = stats.messages_delivered
    else:
        cycles = 0
        delivered_flits = delivered_messages = 0

    latency_ok = lower <= cycles <= upper
    latency = {
        "ok": latency_ok,
        "analytic_cycles": round(analytic_cycles, 3),
        "noc_cycles": cycles,
        "lower_cycles": round(lower, 3),
        "upper_cycles": round(upper, 3),
        "detail": ""
        if latency_ok
        else (
            f"NoC took {cycles} cycles, outside "
            f"[{lower:.1f}, {upper:.1f}] around the analytic "
            f"{analytic_cycles:.1f}"
        ),
    }
    conservation_ok = (
        delivered_flits == expected_flits
        and delivered_messages == expected_messages
    )
    conservation = {
        "ok": conservation_ok,
        "expected_flits": expected_flits,
        "delivered_flits": delivered_flits,
        "expected_messages": expected_messages,
        "delivered_messages": delivered_messages,
        "detail": ""
        if conservation_ok
        else (
            f"delivered {delivered_flits}/{expected_flits} flits, "
            f"{delivered_messages}/{expected_messages} messages"
        ),
    }
    return latency, conservation


@dataclass
class MatrixReport:
    """One full matrix run: per-point reports plus cache accounting."""

    reports: tuple[dict, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0
    config: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(report["ok"] for report in self.reports)

    @property
    def failures(self) -> tuple[dict, ...]:
        return tuple(r for r in self.reports if not r["ok"])

    def format(self) -> str:
        lines = [
            f"{'point':42s} {'result':8s} {'analytic':>10s} {'noc':>8s}"
        ]
        for report in self.reports:
            point = ConformancePoint.from_params(report["point"])
            checks = report["checks"]
            failed = [n for n in CHECKS if not checks[n]["ok"]]
            status = "ok" if report["ok"] else "FAIL " + ",".join(failed)
            lines.append(
                f"{point.label():42s} {status:8s} "
                f"{checks['latency']['analytic_cycles']:>10.1f} "
                f"{checks['latency']['noc_cycles']:>8d}"
            )
        lines.append(
            f"{len(self.reports)} point(s), "
            f"{len(self.failures)} failure(s); "
            f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)"
        )
        return "\n".join(lines)


def _cache_params(
    point: ConformancePoint, config: ConformanceConfig
) -> dict:
    """Everything besides the network config that determines a point's
    report.  The matrix axes are deliberately excluded: a point's
    result does not depend on which other points ran beside it."""
    return {
        **point.params,
        "seed": config.seed,
        "itemsize": config.itemsize,
        "latency_rel_tol": config.latency_rel_tol,
        "latency_min_ratio": config.latency_min_ratio,
        "latency_abs_slack_cycles": config.latency_abs_slack_cycles,
    }


def run_matrix(
    config: ConformanceConfig | None = None,
    network: PimnetNetworkConfig | None = None,
    mutation: Mutation | None = None,
    cache_enabled: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
) -> MatrixReport:
    """Run every matrix point; mutated runs never touch the cache."""
    from ..runner.cache import ResultCache, cache_key, code_fingerprint

    config = config or ConformanceConfig()
    network = network or PimnetNetworkConfig()
    start = time.perf_counter()
    cache = None
    code = None
    if cache_enabled and mutation is None:
        cache = ResultCache(cache_dir)
        code = code_fingerprint()

    reports: list[dict] = []
    hits = misses = 0
    with trace_span(
        "conformance/matrix",
        category="conformance",
        points=config.num_points,
        mutation=mutation.mode if mutation else "",
    ):
        for point in enumerate_matrix(config):
            key = None
            if cache is not None:
                key = cache_key(
                    "conformance",
                    network,
                    _cache_params(point, config),
                    code=code,
                )
                hit, value = cache.get("conformance", key)
                if hit:
                    reports.append(value)
                    hits += 1
                    metric_counter("conformance.cache.hits").inc()
                    continue
            report = run_point(
                point, config, network=network, mutation=mutation
            )
            if cache is not None:
                cache.put(
                    "conformance", key, report, params=point.params
                )
                misses += 1
                metric_counter("conformance.cache.misses").inc()
            reports.append(report)

    return MatrixReport(
        reports=tuple(reports),
        cache_hits=hits,
        cache_misses=misses,
        elapsed_s=time.perf_counter() - start,
        config=config.as_dict(),
    )
