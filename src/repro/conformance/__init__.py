"""Cross-model conformance: differential validation of the three
collective implementations.

The repo models PIMnet collectives three independent ways — analytic
static schedules (:mod:`repro.core.schedule` / :mod:`repro.core.timing`),
the flit-level NoC simulator (:mod:`repro.noc`), and the functional
numpy reference (:mod:`repro.collectives.functional`).  This package
holds them against each other over a collective x shape x payload
matrix, shrinks any disagreement to a minimal reproducer, and proves
its own sensitivity with seeded mutations.  See ``docs/CONFORMANCE.md``
and ``repro conformance --help``.
"""

from .engine import CHECKS, MatrixReport, run_matrix, run_point
from .matrix import ConformancePoint, enumerate_matrix
from .mutate import MUTATION_MODES, Mutation
from .shrink import (
    ShrinkResult,
    load_reproducer,
    replay_reproducer,
    reproducer_payload,
    shrink_point,
    write_reproducer,
)

__all__ = [
    "CHECKS",
    "MUTATION_MODES",
    "ConformancePoint",
    "MatrixReport",
    "Mutation",
    "ShrinkResult",
    "enumerate_matrix",
    "load_reproducer",
    "replay_reproducer",
    "reproducer_payload",
    "run_matrix",
    "run_point",
    "shrink_point",
    "write_reproducer",
]
