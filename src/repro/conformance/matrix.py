"""The conformance matrix: points and their enumeration.

A :class:`ConformancePoint` is one cell of the collective x shape x
payload product.  It is deliberately tiny and JSON-friendly — the
shrinker serializes points into reproducer files and the runner cache
keys on their ``params`` dict — so everything heavier (schedules,
buffers, NoC networks) is derived on demand by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.patterns import Collective, CollectiveRequest
from ..config.conformance import ConformanceConfig
from ..core.schedule import Shape
from ..errors import ConformanceError


@dataclass(frozen=True)
class ConformancePoint:
    """One matrix cell: a collective on a machine shape at a payload."""

    collective: str
    banks: int
    chips: int
    ranks: int
    payload_bytes: int

    def __post_init__(self) -> None:
        for name in ("banks", "chips", "ranks", "payload_bytes"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConformanceError(
                    f"point {name} must be a positive int, got {value!r}"
                )
        self.pattern  # validates the collective name

    @property
    def pattern(self) -> Collective:
        try:
            return Collective(self.collective)
        except ValueError:
            raise ConformanceError(
                f"unknown collective {self.collective!r}"
            ) from None

    @property
    def shape(self) -> Shape:
        return Shape(self.banks, self.chips, self.ranks)

    @property
    def num_dpus(self) -> int:
        return self.banks * self.chips * self.ranks

    def num_elements(self, itemsize: int) -> int:
        if self.payload_bytes % itemsize:
            raise ConformanceError(
                f"payload {self.payload_bytes} is not a multiple of "
                f"the {itemsize}-byte element size"
            )
        return self.payload_bytes // itemsize

    def request(self, itemsize: int = 8) -> CollectiveRequest:
        return CollectiveRequest(
            self.pattern, self.num_elements(itemsize) * 8
        )

    @property
    def params(self) -> dict[str, int | str]:
        """Cache-key / JSON form; inverse of :meth:`from_params`."""
        return {
            "collective": self.collective,
            "banks": self.banks,
            "chips": self.chips,
            "ranks": self.ranks,
            "payload_bytes": self.payload_bytes,
        }

    @classmethod
    def from_params(cls, data: dict) -> "ConformancePoint":
        if not isinstance(data, dict):
            raise ConformanceError("conformance point must be an object")
        known = {"collective", "banks", "chips", "ranks", "payload_bytes"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConformanceError(
                f"unknown point field(s): {', '.join(unknown)}"
            )
        missing = sorted(known - set(data))
        if missing:
            raise ConformanceError(
                f"point is missing field(s): {', '.join(missing)}"
            )
        return cls(**data)

    def label(self) -> str:
        return (
            f"{self.collective}@{self.banks}x{self.chips}x{self.ranks}"
            f"/{self.payload_bytes}B"
        )


def enumerate_matrix(
    config: ConformanceConfig,
) -> tuple[ConformancePoint, ...]:
    """All matrix cells, in deterministic (collective, shape, payload)
    order — the order is load-bearing for per-point RNG derivation."""
    return tuple(
        ConformancePoint(
            collective=collective,
            banks=banks,
            chips=chips,
            ranks=ranks,
            payload_bytes=payload,
        )
        for collective in config.collectives
        for banks, chips, ranks in config.shapes
        for payload in config.payload_bytes
    )
