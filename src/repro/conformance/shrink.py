"""Delta-debugging shrinker and self-contained JSON reproducers.

When a matrix point fails, the raw coordinates are rarely the minimal
story — a 16-DPU, 4 KiB divergence is usually also a 2-DPU, 256 B
divergence, and the small one is the one a human can stare at.  The
shrinker greedily halves each axis (payload, banks, chips, ranks) and
keeps any candidate on which the failure *persists*, looping until no
halving reproduces it.  Candidates that are structurally infeasible
(payload no longer divides the shape, mutation has no target) are
skipped, not counted as passes.

The result is written as a self-contained reproducer: point, config,
mutation, and the failing report, replayable via
``repro conformance shrink file.json`` or :func:`replay_reproducer`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from ..config.conformance import ConformanceConfig
from ..config.network import PimnetNetworkConfig
from ..errors import ConformanceError
from ..observability import metric_counter, trace_span
from .engine import run_point
from .matrix import ConformancePoint
from .mutate import Mutation

#: Identifies a reproducer file; bump ``REPRODUCER_VERSION`` on schema
#: changes.
REPRODUCER_FORMAT = "repro-conformance-reproducer"
REPRODUCER_VERSION = 1


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink: where it started, where it landed."""

    original: ConformancePoint
    point: ConformancePoint
    report: dict
    attempts: int

    @property
    def shrunk(self) -> bool:
        return self.point != self.original


def _candidates(point: ConformancePoint) -> list[ConformancePoint]:
    """The halved neighbors of ``point``, smallest-axis-impact first."""
    out = []
    if point.payload_bytes >= 2:
        out.append(replace(point, payload_bytes=point.payload_bytes // 2))
    for axis in ("banks", "chips", "ranks"):
        value = getattr(point, axis)
        if value >= 2:
            out.append(replace(point, **{axis: value // 2}))
    return out


def shrink_point(
    point: ConformancePoint,
    config: ConformanceConfig | None = None,
    network: PimnetNetworkConfig | None = None,
    mutation: Mutation | None = None,
    max_attempts: int = 128,
) -> ShrinkResult:
    """Minimize a failing point while the failure persists.

    ``point`` itself must fail its checks (or raise for infeasibility —
    that is a :class:`ConformanceError` here too, since there is nothing
    to shrink).  Deterministic: candidate order is fixed and every
    replay derives its RNG streams from ``(config, mutation, point)``.
    """
    config = config or ConformanceConfig()
    first = run_point(point, config, network=network, mutation=mutation)
    if first["ok"]:
        raise ConformanceError(
            f"point {point.label()} passes all checks; nothing to shrink"
        )
    with trace_span(
        "conformance/shrink", category="conformance", point=point.label()
    ) as span:
        current, report = point, first
        attempts = 0
        progressed = True
        while progressed and attempts < max_attempts:
            progressed = False
            for candidate in _candidates(current):
                if attempts >= max_attempts:
                    break
                attempts += 1
                try:
                    result = run_point(
                        candidate, config, network=network,
                        mutation=mutation,
                    )
                except ConformanceError:
                    continue  # infeasible candidate, not a pass
                if not result["ok"]:
                    current, report = candidate, result
                    progressed = True
                    break
        metric_counter("conformance.shrink.attempts").inc(attempts)
        span.set_attributes(
            attempts=attempts, minimized=current.label()
        )
        return ShrinkResult(
            original=point, point=current, report=report, attempts=attempts
        )


def reproducer_payload(
    result: ShrinkResult,
    config: ConformanceConfig,
    mutation: Mutation | None = None,
) -> dict:
    """The self-contained JSON form of a shrunk failure."""
    return {
        "format": REPRODUCER_FORMAT,
        "version": REPRODUCER_VERSION,
        "point": result.point.params,
        "original_point": result.original.params,
        "config": config.as_dict(),
        "mutation": mutation.as_dict() if mutation else None,
        "attempts": result.attempts,
        "report": result.report,
    }


def write_reproducer(
    path: str | Path,
    result: ShrinkResult,
    config: ConformanceConfig,
    mutation: Mutation | None = None,
) -> Path:
    """Write the reproducer for ``result`` to ``path``; returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = reproducer_payload(result, config, mutation)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def load_reproducer(path: str | Path) -> dict:
    """Read and structurally validate a reproducer file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ConformanceError(
            f"cannot read reproducer {path}: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ConformanceError(f"reproducer {path} is not a JSON object")
    if data.get("format") != REPRODUCER_FORMAT:
        raise ConformanceError(
            f"{path} is not a conformance reproducer "
            f"(format {data.get('format')!r})"
        )
    if data.get("version") != REPRODUCER_VERSION:
        raise ConformanceError(
            f"reproducer {path} has version {data.get('version')!r}, "
            f"expected {REPRODUCER_VERSION}"
        )
    if "point" not in data:
        raise ConformanceError(f"reproducer {path} is missing 'point'")
    return data


def replay_reproducer(
    data: dict, network: PimnetNetworkConfig | None = None
) -> dict:
    """Re-run the checks a reproducer pins; returns the fresh report.

    Uses only the reproducer's point/config/mutation — the stored
    ``report`` is what the failure looked like when captured, the
    return value is what it looks like now.
    """
    point = ConformancePoint.from_params(data["point"])
    config = ConformanceConfig.from_dict(data.get("config") or {})
    mutation_data = data.get("mutation")
    mutation = (
        Mutation.from_dict(mutation_data) if mutation_data else None
    )
    return run_point(point, config, network=network, mutation=mutation)
