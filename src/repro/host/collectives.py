"""Host-orchestrated collectives executed *functionally* through MRAM.

This is the executable form of Fig 5(a): gather per-bank buffers over
the channel, combine on the host, push results back.  The timing this
path accumulates in the runtime trace is what
:class:`~repro.collectives.host_baseline.HostBaselineBackend` models in
closed form; the integration tests check both views stay consistent in
structure (gather + compute + return) and in data.
"""

from __future__ import annotations

import numpy as np

from ..collectives.patterns import Collective, ReduceOp
from ..errors import CollectiveError
from .runtime import PimRuntime


def host_all_reduce(
    runtime: PimRuntime,
    buffer_name: str,
    count: int,
    dtype: np.dtype | type = np.int64,
    op: ReduceOp = ReduceOp.SUM,
) -> float:
    """AllReduce through the host: gather -> reduce -> broadcast back."""
    arrays, gather_s = runtime.pull(buffer_name, count, dtype)
    total = arrays[0]
    for arr in arrays[1:]:
        total = op.apply(total, arr)
    broadcast_s = runtime.broadcast(buffer_name, total)
    return gather_s + broadcast_s


def host_reduce_scatter(
    runtime: PimRuntime,
    buffer_name: str,
    count: int,
    dtype: np.dtype | type = np.int64,
    op: ReduceOp = ReduceOp.SUM,
) -> float:
    """Reduce-Scatter through the host: each bank gets its shard back."""
    n = len(runtime.banks)
    if count % n != 0:
        raise CollectiveError(
            f"{count} elements not divisible across {n} banks"
        )
    arrays, gather_s = runtime.pull(buffer_name, count, dtype)
    total = arrays[0]
    for arr in arrays[1:]:
        total = op.apply(total, arr)
    shards = np.split(total, n)
    # pad each shard into a full-size buffer image (shard at offset 0)
    push_s = runtime.push(buffer_name, [shard.copy() for shard in shards])
    return gather_s + push_s


def host_all_to_all(
    runtime: PimRuntime,
    buffer_name: str,
    count: int,
    dtype: np.dtype | type = np.int64,
) -> float:
    """All-to-All through the host: gather, transpose chunks, scatter."""
    n = len(runtime.banks)
    if count % n != 0:
        raise CollectiveError(
            f"{count} elements not divisible across {n} banks"
        )
    arrays, gather_s = runtime.pull(buffer_name, count, dtype)
    chunk = count // n
    outputs = [
        np.concatenate(
            [arrays[src][dst * chunk : (dst + 1) * chunk] for src in range(n)]
        )
        for dst in range(n)
    ]
    push_s = runtime.push(buffer_name, outputs)
    return gather_s + push_s


def host_broadcast(
    runtime: PimRuntime,
    buffer_name: str,
    count: int,
    dtype: np.dtype | type = np.int64,
    root: int = 0,
) -> float:
    """Broadcast the root bank's buffer to everyone via the host."""
    if not 0 <= root < len(runtime.banks):
        raise CollectiveError(f"root {root} out of range")
    buffer = runtime.buffer(buffer_name)
    dt = np.dtype(dtype)
    data = runtime.banks[root].mram.read_array(
        buffer.mram_offset, count, dt
    )
    up_s = runtime.channel.pim_to_cpu(count * dt.itemsize).time_s
    down_s = runtime.broadcast(buffer_name, data)
    return up_s + down_s


HOST_COLLECTIVES = {
    Collective.ALL_REDUCE: host_all_reduce,
    Collective.REDUCE_SCATTER: host_reduce_scatter,
    Collective.ALL_TO_ALL: host_all_to_all,
    Collective.BROADCAST: host_broadcast,
}
