"""Host runtime: buffer management and host<->PIM data movement.

Models the host side of the UPMEM SDK (Fig 5(a)): the host allocates
named PIM buffers, pushes/pulls data over the DDR channel (functionally,
into each bank's MRAM model; timed, via the channel model), broadcasts
common data, and launches kernels.  The baseline collective backend is
the *timing* view of this machinery; this module is the *functional*
view, so tests can round-trip real bytes through the whole data path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config.presets import MachineConfig
from ..errors import MemoryModelError, WorkloadError
from ..memory.bank import BankMemory
from ..memory.channel import DdrChannel
from ..topology.coordinates import Topology


@dataclass(frozen=True)
class PimBuffer:
    """A named per-DPU MRAM allocation (same offset on every bank)."""

    name: str
    mram_offset: int
    bytes_per_dpu: int


@dataclass
class HostEvent:
    """One timed host-side action, for execution traces."""

    kind: str      # "push" | "pull" | "broadcast" | "launch"
    detail: str
    time_s: float


class PimRuntime:
    """Functional host runtime over a machine's banks.

    Owns one :class:`~repro.memory.bank.BankMemory` per DPU and a DDR
    channel timing model; accumulates a host-side event trace whose
    total time mirrors what the baseline backend charges.
    """

    def __init__(self, machine: MachineConfig, ideal: bool = False) -> None:
        self.machine = machine
        self.topology = Topology(machine.system)
        self.banks: list[BankMemory] = [
            BankMemory(
                machine.system.dpu,
                dma_bandwidth_bytes_per_s=(
                    machine.pimnet.mram_wram_dma_bytes_per_s
                ),
            )
            for _ in range(machine.system.total_dpus)
        ]
        self.channel = DdrChannel(
            machine.host_links, machine.host, ideal=ideal
        )
        self.events: list[HostEvent] = []
        self._buffers: dict[str, PimBuffer] = {}
        self._next_offset = 0

    # -- allocation -------------------------------------------------------------
    def allocate(self, name: str, bytes_per_dpu: int) -> PimBuffer:
        """Reserve ``bytes_per_dpu`` of MRAM at the same offset everywhere."""
        if name in self._buffers:
            raise WorkloadError(f"buffer {name!r} already allocated")
        if bytes_per_dpu <= 0 or bytes_per_dpu % 8 != 0:
            raise MemoryModelError(
                "allocation must be a positive multiple of 8 bytes"
            )
        capacity = self.machine.system.dpu.mram_bytes
        if self._next_offset + bytes_per_dpu > capacity:
            raise MemoryModelError("MRAM exhausted")
        buffer = PimBuffer(name, self._next_offset, bytes_per_dpu)
        self._next_offset += bytes_per_dpu
        self._buffers[name] = buffer
        return buffer

    def buffer(self, name: str) -> PimBuffer:
        if name not in self._buffers:
            raise WorkloadError(f"unknown buffer {name!r}")
        return self._buffers[name]

    # -- data movement -----------------------------------------------------------
    def push(self, name: str, per_dpu_data: list[np.ndarray]) -> float:
        """Scatter distinct per-DPU arrays into the named buffer.

        Returns the modeled transfer time and records the event.
        """
        buffer = self.buffer(name)
        if len(per_dpu_data) != len(self.banks):
            raise WorkloadError(
                f"need {len(self.banks)} arrays, got {len(per_dpu_data)}"
            )
        total = 0
        for bank, data in zip(self.banks, per_dpu_data):
            raw = np.ascontiguousarray(data).view(np.uint8).ravel()
            if raw.size > buffer.bytes_per_dpu:
                raise MemoryModelError(
                    f"{raw.size} bytes exceed buffer {name!r} "
                    f"({buffer.bytes_per_dpu})"
                )
            bank.mram.write(buffer.mram_offset, raw)
            total += raw.size
        time_s = self.channel.cpu_to_pim(
            total, num_ranks=self.machine.system.ranks_per_channel
        ).time_s
        self.events.append(HostEvent("push", name, time_s))
        return time_s

    def broadcast(self, name: str, data: np.ndarray) -> float:
        """Write the same array into every bank's buffer (parallel mode)."""
        buffer = self.buffer(name)
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        if raw.size > buffer.bytes_per_dpu:
            raise MemoryModelError("broadcast payload exceeds buffer")
        for bank in self.banks:
            bank.mram.write(buffer.mram_offset, raw)
        time_s = self.channel.cpu_to_pim_broadcast(
            raw.size, num_ranks=self.machine.system.ranks_per_channel
        ).time_s
        self.events.append(HostEvent("broadcast", name, time_s))
        return time_s

    def pull(
        self, name: str, count: int, dtype: np.dtype | type
    ) -> tuple[list[np.ndarray], float]:
        """Gather ``count`` elements of ``dtype`` from every bank."""
        buffer = self.buffer(name)
        dt = np.dtype(dtype)
        nbytes = count * dt.itemsize
        if nbytes > buffer.bytes_per_dpu:
            raise MemoryModelError("pull exceeds buffer size")
        arrays = [
            bank.mram.read_array(buffer.mram_offset, count, dt)
            for bank in self.banks
        ]
        time_s = self.channel.pim_to_cpu(
            nbytes * len(self.banks),
            num_ranks=self.machine.system.ranks_per_channel,
        ).time_s
        self.events.append(HostEvent("pull", name, time_s))
        return arrays, time_s

    # -- kernels -----------------------------------------------------------------
    def launch(self, description: str, per_dpu_time_s: float) -> float:
        """Record a kernel launch; DPUs run in parallel, so the cost is
        the launch overhead plus the slowest DPU's time."""
        if per_dpu_time_s < 0:
            raise WorkloadError("kernel time must be >= 0")
        time_s = (
            self.machine.host.kernel_launch_overhead_s + per_dpu_time_s
        )
        self.events.append(HostEvent("launch", description, time_s))
        return time_s

    # -- accounting ---------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        """Total modeled wall-clock of all recorded host events."""
        return sum(e.time_s for e in self.events)

    def reset_trace(self) -> None:
        self.events.clear()
