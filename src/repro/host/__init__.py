"""Host substrate: runtime, buffer management, host-side collectives."""

from .collectives import (
    HOST_COLLECTIVES,
    host_all_reduce,
    host_all_to_all,
    host_broadcast,
    host_reduce_scatter,
)
from .runtime import HostEvent, PimBuffer, PimRuntime

__all__ = [
    "HOST_COLLECTIVES",
    "host_all_reduce",
    "host_all_to_all",
    "host_broadcast",
    "host_reduce_scatter",
    "HostEvent",
    "PimBuffer",
    "PimRuntime",
]
