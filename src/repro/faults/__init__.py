"""Deterministic fault injection and resilience campaigns.

The paper's fabric is buffer-less and statically scheduled, so its
failure modes are unusually sharp: a dead DPU makes a schedule
*infeasible* (there is no routing freedom to mask it), while a slow DPU
drags every bulk-synchronous phase behind it.  This package models both,
plus link degradation, bus stalls, and transient flit corruption, across
all three tiers — and does it reproducibly: every fault set is a pure
function of ``(seed, machine config, campaign spec)``.

Layers:

* :mod:`repro.faults.model` — seeded sampling of concrete fault sets,
  with common-random-numbers nesting so fault-rate sweeps are monotone;
* :mod:`repro.faults.engine` — closed-form degraded
  :class:`~repro.collectives.CollectiveResult` per trial;
* :mod:`repro.faults.inject` — lowering onto the cycle-level NoC
  simulator (outage windows, serialization factors, corruption coins)
  and static-schedule feasibility checks;
* :mod:`repro.faults.campaign` — many-trial campaigns with degradation
  statistics (completion rate, bandwidth, tail latencies).

With no faults configured, every hook is a strict no-op: fault-free
results stay byte-for-byte identical to a build without this package.
"""

from .campaign import (
    CAMPAIGN_PRESETS,
    CampaignResult,
    TrialOutcome,
    percentile,
    run_campaign,
    trial_seed,
)
from .engine import collective_under_faults
from .inject import (
    NocFaultPlan,
    apply_noc_faults,
    build_noc_fault_plan,
    check_degraded_schedule,
    clear_noc_faults,
)
from .model import (
    FaultEvent,
    FaultSet,
    bank_name,
    chip_name,
    component_rng,
    corruption_uniforms,
    sample_fault_set,
)

__all__ = [
    "CAMPAIGN_PRESETS",
    "CampaignResult",
    "TrialOutcome",
    "percentile",
    "run_campaign",
    "trial_seed",
    "collective_under_faults",
    "NocFaultPlan",
    "apply_noc_faults",
    "build_noc_fault_plan",
    "check_degraded_schedule",
    "clear_noc_faults",
    "FaultEvent",
    "FaultSet",
    "bank_name",
    "chip_name",
    "component_rng",
    "corruption_uniforms",
    "sample_fault_set",
]
