"""Lowering a :class:`FaultSet` onto the cycle-level NoC simulator.

The NoC hooks live in :mod:`repro.noc.links` (outage windows,
serialization factors, per-traversal corruption); this module translates
sampled fault events into per-link settings and applies/clears them on a
:class:`NocNetwork`.  Fail-stop faults are *not* lowered: PIMnet traffic
is statically scheduled, so a dead component does not slow the fabric
down — it makes the schedule infeasible, which
:func:`check_degraded_schedule` detects and the engine reports as an
abort.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config.faults import FaultModelConfig
from ..core.schedule import CommSchedule
from ..errors import FaultError
from ..noc.network import NocNetwork
from .model import FaultSet, bank_name, chip_name

#: One simulation cycle is one nanosecond (see repro.noc.network).
_CYCLE_S = 1e-9


@dataclass(frozen=True)
class NocFaultPlan:
    """Concrete per-link perturbations for one NoC run.

    ``link_factors`` multiplies a link's serialization interval
    (degraded DQ pins); ``link_outages`` are half-open ``[start, end)``
    cycle windows during which a link refuses traversals;
    ``bus_stall_windows`` are the same, applied to the shared DDR-bus
    medium; the corruption fields configure every link's deterministic
    per-traversal CRC-failure coin.
    """

    link_factors: dict[str, int] = field(default_factory=dict)
    link_outages: dict[str, tuple] = field(default_factory=dict)
    bus_stall_windows: tuple = ()
    corruption_rate: float = 0.0
    retry_penalty_flits: int = 0
    corruption_salt: int = 0

    def __bool__(self) -> bool:
        return bool(
            self.link_factors
            or self.link_outages
            or self.bus_stall_windows
            or self.corruption_rate > 0.0
        )


def build_noc_fault_plan(
    fault_set: FaultSet,
    model: FaultModelConfig,
    seed: int = 0,
) -> NocFaultPlan:
    """Translate sampled fault events into a :class:`NocFaultPlan`.

    Degraded chip links slow both DQ directions of the chip; each bus
    stall becomes a stall window on the shared medium, placed
    deterministically (window ``i`` covers
    ``[(2i+1) * stall, (2i+2) * stall)`` cycles) so the run is a pure
    function of the fault set.  Fatal events are rejected — the caller
    must check :attr:`FaultSet.fatal` first.
    """
    if fault_set.fatal:
        raise FaultError(
            "fail-stop faults cannot be lowered onto the NoC: statically "
            "scheduled traffic cannot route around a dead component; "
            "check FaultSet.fatal and abort at the engine level instead"
        )
    factors: dict[str, int] = {}
    for chip, severity in fault_set.degraded_chip_links.items():
        _, r, c = chip.split(":")
        factor = max(1, math.ceil(severity))
        factors[f"dq:{r}:{c}:up"] = factor
        factors[f"dq:{r}:{c}:down"] = factor
    stall_cycles = max(1, round(model.rank_bus_stall_s / _CYCLE_S))
    windows = tuple(
        ((2 * i + 1) * stall_cycles, (2 * i + 2) * stall_cycles)
        for i in range(fault_set.bus_stalls)
    )
    return NocFaultPlan(
        link_factors=factors,
        bus_stall_windows=windows,
        corruption_rate=model.flit_corruption_rate,
        retry_penalty_flits=model.retry_penalty_flits,
        corruption_salt=seed,
    )


def apply_noc_faults(network: NocNetwork, plan: NocFaultPlan) -> None:
    """Install ``plan`` on ``network``'s links and bus medium.

    Unknown link names are an error — a plan built for a different
    topology must fail loudly, not silently inject nothing.
    """
    for name in list(plan.link_factors) + list(plan.link_outages):
        if name not in network.links:
            raise FaultError(
                f"fault plan names link {name!r} which does not exist "
                "in this network topology"
            )
    for name, link in network.links.items():
        factor = plan.link_factors.get(name, 1)
        outages = plan.link_outages.get(name, ())
        rate = plan.corruption_rate
        if factor == 1 and not outages and rate == 0.0:
            link.clear_faults()
            continue
        link.configure_faults(
            outages=outages,
            fault_factor=factor,
            corruption_rate=rate,
            retry_cycles=plan.retry_penalty_flits * link.cycles_per_flit,
            corruption_salt=plan.corruption_salt,
        )
    network.bus_medium.stall_windows = plan.bus_stall_windows


def clear_noc_faults(network: NocNetwork) -> None:
    """Remove every fault setting; the network behaves as-built again."""
    for link in network.links.values():
        link.clear_faults()
    network.bus_medium.stall_windows = ()


def check_degraded_schedule(
    schedule: CommSchedule, fault_set: FaultSet
) -> tuple[str, ...]:
    """Why ``schedule`` is infeasible under ``fault_set``, if it is.

    A static schedule has no routing freedom: any transfer whose source
    or destination bank is dead, or that crosses the DQ pins of a chip
    whose link failed, can never happen.  Returns one human-readable
    violation per (component, phase) pair — empty means the schedule
    survives the fault set (possibly degraded, never wrong).
    """
    dead = set(fault_set.dead_banks)
    failed_chips = set(fault_set.failed_chip_links)
    if not dead and not failed_chips:
        return ()
    shape = schedule.shape
    violations: dict[str, None] = {}
    for phase in schedule.phases:
        for step in phase.steps:
            for t in step.transfers:
                r1, c1, b1 = shape.coords(t.src)
                r2, c2, b2 = shape.coords(t.dst)
                for r, c, b in ((r1, c1, b1), (r2, c2, b2)):
                    name = bank_name(r, c, b)
                    if name in dead:
                        violations[
                            f"{name} is fail-stopped but phase "
                            f"{phase.name!r} schedules a transfer on it"
                        ] = None
                crosses_chip = (r1, c1) != (r2, c2)
                if crosses_chip:
                    for r, c in ((r1, c1), (r2, c2)):
                        name = chip_name(r, c)
                        if name in failed_chips:
                            violations[
                                f"{name} lost its DQ link but phase "
                                f"{phase.name!r} schedules a transfer "
                                "across it"
                            ] = None
    return tuple(violations)
