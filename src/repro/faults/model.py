"""Deterministic fault sampling: (seed, machine, spec) -> FaultSet.

The sampler is built for *campaign sweeps*: uniform draws are made for
every component in a fixed topology order regardless of the configured
rates, and a component is faulty at rate ``r`` exactly when its draw
falls below ``r``.  Two consequences, both load-bearing:

* **Reproducibility** — the same ``(seed, machine shape, model)``
  always yields the same :class:`FaultSet`; no wall-clock state exists
  anywhere in the pipeline.
* **Nesting (common random numbers)** — raising a rate can only *add*
  faults, never swap them, so degradation curves produced by sweeping
  ``FaultModelConfig.scaled`` are monotone by construction rather than
  by statistical accident.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.faults import FAULT_KINDS, FaultModelConfig
from ..config.system import PimSystemConfig
from ..errors import FaultConfigError, FaultError

#: Sub-stream tags so different draw families never share RNG state.
_STREAM_COMPONENTS = 0x7A11
_STREAM_CORRUPTION = 0x7A12


@dataclass(frozen=True)
class FaultEvent:
    """One concrete injected fault.

    ``component`` uses the config-layer naming scheme
    (``bank:{r}:{c}:{b}``, ``chip:{r}:{c}``, ``rank:{r}``, ``bus``);
    ``severity`` is the kind-specific multiplier (straggler slowdown,
    link serialization factor) or duration scale (bus stalls).
    """

    kind: str
    component: str
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {FAULT_KINDS})"
            )
        if self.severity < 0:
            raise FaultConfigError("fault severity must be >= 0")


@dataclass(frozen=True)
class FaultSet:
    """The concrete faults of one trial, plus cheap accessors."""

    events: tuple[FaultEvent, ...]

    def __bool__(self) -> bool:
        return bool(self.events)

    def of_kind(self, kind: str) -> tuple[FaultEvent, ...]:
        if kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {kind!r}")
        return tuple(e for e in self.events if e.kind == kind)

    # -- tier views ---------------------------------------------------------
    @property
    def dead_banks(self) -> tuple[str, ...]:
        return tuple(
            e.component for e in self.of_kind("bank_fail_stop")
        )

    @property
    def failed_chip_links(self) -> tuple[str, ...]:
        return tuple(
            e.component for e in self.of_kind("chip_link_failed")
        )

    @property
    def straggler_multipliers(self) -> dict[str, float]:
        """bank component name -> slowdown multiplier (>= 1)."""
        return {
            e.component: e.severity
            for e in self.of_kind("bank_straggler")
        }

    @property
    def max_straggler_multiplier(self) -> float:
        return max(
            (e.severity for e in self.of_kind("bank_straggler")),
            default=1.0,
        )

    @property
    def degraded_chip_links(self) -> dict[str, float]:
        """chip component name -> serialization factor (>= 1)."""
        return {
            e.component: e.severity
            for e in self.of_kind("chip_link_degraded")
        }

    @property
    def bus_stalls(self) -> int:
        return len(self.of_kind("rank_bus_stall"))

    @property
    def fatal(self) -> bool:
        """Whether a statically scheduled collective cannot complete."""
        return bool(self.dead_banks or self.failed_chip_links)


def bank_name(r: int, c: int, b: int) -> str:
    return f"bank:{r}:{c}:{b}"


def chip_name(r: int, c: int) -> str:
    return f"chip:{r}:{c}"


def iter_banks(system: PimSystemConfig):
    """(r, c, b) triples in the fixed topology (draw) order."""
    for r in range(system.ranks_per_channel):
        for c in range(system.chips_per_rank):
            for b in range(system.banks_per_chip):
                yield r, c, b


def iter_chips(system: PimSystemConfig):
    for r in range(system.ranks_per_channel):
        for c in range(system.chips_per_rank):
            yield r, c


def component_rng(seed: int, stream: int = _STREAM_COMPONENTS):
    """The seeded generator for one draw family of one trial."""
    if seed < 0:
        raise FaultConfigError(f"seed must be >= 0, got {seed}")
    return np.random.default_rng((seed, stream))


def corruption_uniforms(seed: int, num_flits: int) -> np.ndarray:
    """Per-flit uniforms shared by every rate point of a sweep.

    The closed-form engine counts ``(u < rate)`` against these, so the
    corrupted-flit count is non-decreasing in the rate — the same
    nesting trick the component sampler uses.
    """
    if num_flits < 0:
        raise FaultError("flit count must be >= 0")
    return component_rng(seed, _STREAM_CORRUPTION).random(num_flits)


def sample_fault_set(
    model: FaultModelConfig,
    system: PimSystemConfig,
    seed: int,
    targets: tuple[str, ...] = (),
) -> FaultSet:
    """Sample the concrete faults of one trial.

    Draw order is fixed by the topology (banks first, then chips, then
    the bus) and every draw happens whether or not its rate is zero, so
    fault sets at different rates of the same seed are *nested*.
    ``targets`` adds forced faults on named components (a known-bad
    DIMM, a marginal link) on top of the sampled ones: banks and ranks
    fail-stop, chips lose their DQ link, and ``bus`` stalls.
    """
    rng = component_rng(seed)
    events: list[FaultEvent] = []

    for r, c, b in iter_banks(system):
        u_fail = rng.random()
        u_straggle = rng.random()
        v_severity = rng.random()
        if u_fail < model.bank_fail_stop_rate:
            events.append(
                FaultEvent("bank_fail_stop", bank_name(r, c, b))
            )
        if u_straggle < model.bank_straggler_rate:
            severity = 1.0 + (model.straggler_severity - 1.0) * (
                0.5 + 0.5 * v_severity
            )
            events.append(
                FaultEvent("bank_straggler", bank_name(r, c, b), severity)
            )

    for r, c in iter_chips(system):
        u_fail = rng.random()
        u_degrade = rng.random()
        if u_fail < model.chip_link_fail_rate:
            events.append(
                FaultEvent("chip_link_failed", chip_name(r, c))
            )
        elif u_degrade < model.chip_link_degrade_rate:
            events.append(
                FaultEvent(
                    "chip_link_degraded",
                    chip_name(r, c),
                    model.chip_link_degrade_factor,
                )
            )

    u_bus = rng.random()
    if u_bus < model.rank_bus_stall_rate:
        events.append(FaultEvent("rank_bus_stall", "bus"))

    events.extend(_forced_events(targets, system, model))
    # Deterministic presentation order, independent of draw order.
    events.sort(key=lambda e: (e.kind, e.component))
    return FaultSet(events=tuple(dict.fromkeys(events)))


def _forced_events(
    targets: tuple[str, ...],
    system: PimSystemConfig,
    model: FaultModelConfig,
) -> list[FaultEvent]:
    """Pinned faults for explicitly named components."""
    events: list[FaultEvent] = []
    for target in targets:
        kind = target.split(":")[0]
        if kind == "bank":
            events.append(FaultEvent("bank_fail_stop", target))
        elif kind == "chip":
            events.append(FaultEvent("chip_link_failed", target))
        elif kind == "rank":
            r = int(target.split(":")[1])
            for c in range(system.chips_per_rank):
                for b in range(system.banks_per_chip):
                    events.append(
                        FaultEvent("bank_fail_stop", bank_name(r, c, b))
                    )
        elif kind == "bus":
            events.append(FaultEvent("rank_bus_stall", "bus"))
        else:  # pragma: no cover - config layer validates first
            raise FaultConfigError(f"unknown target kind in {target!r}")
    return events
