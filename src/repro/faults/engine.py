"""The resilience engine: (machine, fault set) -> degraded CollectiveResult.

Closed-form counterpart of the NoC-level hooks in
:mod:`repro.faults.inject`: it starts from a backend's fault-free
:class:`CommBreakdown` and applies each fault family's cost model —

* **stragglers** stretch every transport tier by the slowest straggler's
  multiplier (bulk-synchronous phases wait for the last DPU);
* **degraded chip links** stretch the inter-chip tier by the worst
  serialization factor;
* **bus stalls** each add a fixed stall to the inter-rank tier;
* **flit corruption** charges detection + retransmission per corrupted
  flit, counted against the sweep-shared uniforms of
  :func:`repro.faults.model.corruption_uniforms` (so the count is
  non-decreasing in the rate);
* **fail-stop** faults make the static schedule infeasible: the
  controller burns ``max_retries + 1`` sync-timeout rounds detecting the
  silent node, then aborts.

Every cost is additive or a multiplier >= 1 on a *nested* fault set
(see :mod:`repro.faults.model`), so sweeping the fault rate up can never
make a collective faster — degradation curves are monotone by
construction, which the campaign tests assert.
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..collectives.backend import registry
from ..collectives.patterns import Collective, CollectiveRequest
from ..collectives.result import CollectiveResult, CommBreakdown
from ..config.faults import FaultModelConfig
from ..config.presets import MachineConfig
from ..core.sync import SyncTree
from ..observability import (
    metric_counter,
    metric_histogram,
    observability_active,
    trace_span,
)
from .model import FaultSet, corruption_uniforms, sample_fault_set

#: Flit size used to convert payload bytes into corruption trials; must
#: match the NoC default so both engines count the same flit population.
_FLIT_BYTES = 16


def collective_under_faults(
    machine: MachineConfig,
    model: FaultModelConfig,
    seed: int,
    payload_bytes: int,
    collective: str = "all_reduce",
    backend: str = "P",
    targets: tuple[str, ...] = (),
    fault_set: FaultSet | None = None,
) -> CollectiveResult:
    """Run one collective under one trial's faults (closed form).

    ``fault_set`` may be passed explicitly (campaign runners sample once
    and share the set across metrics); otherwise it is sampled from
    ``(model, machine, seed, targets)``.  With an empty fault set the
    result is byte-identical to the fault-free backend timing.
    """
    request = CollectiveRequest(Collective(collective), payload_bytes)
    bk = registry.create(backend, machine)
    base = bk.timing(request)
    if fault_set is None:
        fault_set = sample_fault_set(model, machine.system, seed, targets)
    # Corruption is per-flit, not per-component, so it degrades the run
    # even when no component-level fault was sampled.
    if not fault_set and model.flit_corruption_rate == 0.0:
        return CollectiveResult(breakdown=base, backend_name=bk.name)

    breakdown, retries = _degraded_breakdown(
        base, fault_set, model, machine, seed, payload_bytes
    )
    report = _sync_report(base, fault_set, model, machine)
    if fault_set.fatal:
        # Detection: the controller retries the READY round until it
        # gives up on the silent node.  The degraded transport time is
        # kept underneath so the abort cost still grows with the rate.
        abort_s = (model.max_retries + 1) * model.sync_timeout_s
        breakdown = replace(breakdown, sync_s=breakdown.sync_s + abort_s)
        status = "aborted"
        retries = max(retries, model.max_retries)
        dead = fault_set.dead_banks
        critical = dead[0] if dead else fault_set.failed_chip_links[0]
    else:
        fault_time = breakdown.total_s - base.total_s
        status = "degraded" if fault_time > 0 or retries else "completed"
        critical = report.critical_node

    fault_time = breakdown.total_s - base.total_s
    result = CollectiveResult(
        breakdown=breakdown,
        backend_name=bk.name,
        status=status,
        retries=retries,
        fault_time_s=fault_time,
        critical_node=critical,
    )
    _emit_fault_telemetry(fault_set, result, seed)
    return result


def _degraded_breakdown(
    base: CommBreakdown,
    fault_set: FaultSet,
    model: FaultModelConfig,
    machine: MachineConfig,
    seed: int,
    payload_bytes: int,
) -> tuple[CommBreakdown, int]:
    """Apply every non-fatal fault family's cost to ``base``."""
    bank_s = base.inter_bank_s
    chip_s = base.inter_chip_s
    rank_s = base.inter_rank_s
    retries = 0

    mult = fault_set.max_straggler_multiplier
    if mult > 1.0:
        bank_s *= mult
        chip_s *= mult
        rank_s *= mult

    degraded = fault_set.degraded_chip_links
    if degraded:
        chip_s *= max(degraded.values())

    stalls = fault_set.bus_stalls
    if stalls:
        rank_s += stalls * model.rank_bus_stall_s

    if model.flit_corruption_rate > 0.0 and payload_bytes > 0:
        num_flits = math.ceil(payload_bytes / _FLIT_BYTES)
        uniforms = corruption_uniforms(seed, num_flits)
        corrupted = int((uniforms < model.flit_corruption_rate).sum())
        if corrupted:
            retries = corrupted
            flit_s = _FLIT_BYTES / (
                machine.pimnet.inter_bank.link_bandwidth_bytes_per_s
            )
            bank_s += corrupted * model.retry_penalty_flits * flit_s

    return (
        replace(
            base,
            inter_bank_s=bank_s,
            inter_chip_s=chip_s,
            inter_rank_s=rank_s,
        ),
        retries,
    )


def _sync_report(
    base: CommBreakdown,
    fault_set: FaultSet,
    model: FaultModelConfig,
    machine: MachineConfig,
):
    """READY/START round trip under the trial's straggler delays.

    Each straggler's READY is late by its excess transport time; the
    report names the critical node (satellite of ``repro.core.sync``).
    """
    transport_s = base.inter_bank_s + base.inter_chip_s + base.inter_rank_s
    delays = {
        name: (severity - 1.0) * transport_s
        for name, severity in fault_set.straggler_multipliers.items()
    }
    tree = SyncTree(machine.system, machine.pimnet)
    return tree.round_trip_report(
        node_delays=delays, timeout_s=model.sync_timeout_s
    )


def _emit_fault_telemetry(
    fault_set: FaultSet, result: CollectiveResult, seed: int
) -> None:
    """``faults.*`` metrics and one span per injected fault event."""
    if not observability_active():
        return
    with trace_span(
        "faults/collective",
        category="faults",
        seed=seed,
        status=result.status,
        num_faults=len(fault_set.events),
        retries=result.retries,
        critical_node=result.critical_node,
    ) as span:
        span.set_sim_window(0.0, result.time_s)
        for event in fault_set.events:
            with trace_span(
                f"fault/{event.kind}",
                category="faults",
                component=event.component,
                severity=event.severity,
            ):
                pass
            metric_counter(f"faults.injected.{event.kind}").inc()
    metric_counter(f"faults.{result.status}").inc()
    metric_counter("faults.retries").inc(result.retries)
    metric_histogram("faults.fault_time_s").observe(result.fault_time_s)
