"""Resilience campaigns: many seeded trials -> degradation statistics.

A campaign is a pure function of ``(FaultCampaignConfig, MachineConfig)``
— trial seeds derive from the campaign seed and the trial index, so the
runner's content-addressed cache can treat every campaign (and every
sweep point built from one) as replayable.  Latency percentiles use the
nearest-rank method: deterministic, exact on small samples, and free of
interpolation-order surprises across numpy versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.faults import FaultCampaignConfig, FaultModelConfig
from ..config.presets import MachineConfig
from ..errors import FaultError
from ..observability import (
    LogBucketSketch,
    metric_counter,
    metric_histogram,
    observability_active,
    trace_span,
)
from .engine import collective_under_faults
from .model import sample_fault_set

#: Spreads campaign seeds so trial streams of nearby campaign seeds
#: never collide (trial indices stay far below this prime).
_TRIAL_SEED_STRIDE = 1_000_003

#: Ready-made campaigns for ``repro faults run <name>``; each isolates
#: one fault family so its cost model can be read off the output.
CAMPAIGN_PRESETS: dict[str, FaultCampaignConfig] = {
    "stragglers": FaultCampaignConfig(
        name="stragglers",
        model=FaultModelConfig(
            bank_straggler_rate=0.05, straggler_severity=4.0
        ),
        description="5% of banks up to 4x slow; tail-latency study",
    ),
    "degraded-links": FaultCampaignConfig(
        name="degraded-links",
        model=FaultModelConfig(
            chip_link_degrade_rate=0.1, chip_link_degrade_factor=2.0
        ),
        description="10% of DQ links at half bandwidth (marginal pins)",
    ),
    "bus-stalls": FaultCampaignConfig(
        name="bus-stalls",
        model=FaultModelConfig(
            rank_bus_stall_rate=0.5, rank_bus_stall_s=2e-6
        ),
        description="inter-rank DDR bus stalls 2us, half the trials",
    ),
    "corruption": FaultCampaignConfig(
        name="corruption",
        model=FaultModelConfig(
            flit_corruption_rate=0.001, retry_penalty_flits=2
        ),
        description="1e-3 transient flit corruption, detect + retry",
    ),
    "fail-stop": FaultCampaignConfig(
        name="fail-stop",
        model=FaultModelConfig(bank_fail_stop_rate=0.005),
        description="0.5% dead banks; schedule infeasibility and aborts",
    ),
    "mixed": FaultCampaignConfig(
        name="mixed",
        model=FaultModelConfig(
            bank_fail_stop_rate=0.001,
            bank_straggler_rate=0.02,
            straggler_severity=2.0,
            chip_link_degrade_rate=0.02,
            rank_bus_stall_rate=0.1,
            flit_corruption_rate=0.0005,
        ),
        description="all fault families at modest rates",
    ),
}


def trial_seed(campaign_seed: int, trial: int) -> int:
    """The engine seed of one campaign trial (pure arithmetic)."""
    if campaign_seed < 0 or trial < 0:
        raise FaultError("campaign seed and trial index must be >= 0")
    return campaign_seed * _TRIAL_SEED_STRIDE + trial


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in (0, 100]).

    Delegates to the shared :class:`LogBucketSketch`, the one percentile
    engine the repo uses (metric histograms, bench summaries, per-tenant
    latencies) — exact here, since campaign samples stay far below the
    sketch's exact-mode cap.
    """
    if not 0.0 < q <= 100.0:
        raise FaultError(f"percentile q must be in (0, 100], got {q}")
    if not values:
        return 0.0
    sketch = LogBucketSketch()
    for value in values:
        sketch.observe(value)
    result = sketch.quantile(q)
    assert result is not None
    return result


@dataclass(frozen=True)
class TrialOutcome:
    """One trial of a campaign, reduced to its reportable numbers."""

    trial: int
    seed: int
    status: str
    time_s: float
    bandwidth_bytes_per_s: float
    retries: int
    fault_time_s: float
    critical_node: str
    num_faults: int


@dataclass(frozen=True)
class CampaignResult:
    """All trials of one campaign plus derived degradation statistics."""

    name: str
    payload_bytes: int
    trials: tuple[TrialOutcome, ...]

    def _count(self, status: str) -> int:
        return sum(1 for t in self.trials if t.status == status)

    @property
    def completed(self) -> int:
        return self._count("completed")

    @property
    def degraded(self) -> int:
        return self._count("degraded")

    @property
    def aborted(self) -> int:
        return self._count("aborted")

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that delivered a result (late counts)."""
        if not self.trials:
            return 0.0
        return 1.0 - self.aborted / len(self.trials)

    @property
    def mean_bandwidth_bytes_per_s(self) -> float:
        """Mean over *all* trials; aborted trials contribute zero."""
        if not self.trials:
            return 0.0
        return sum(t.bandwidth_bytes_per_s for t in self.trials) / len(
            self.trials
        )

    @property
    def delivered_latencies_s(self) -> list[float]:
        return [t.time_s for t in self.trials if t.status != "aborted"]

    def latency_percentile_s(self, q: float) -> float:
        """Nearest-rank latency percentile over delivered trials.

        Zero when every trial aborted — there is no latency to report,
        and the completion rate already tells that story.
        """
        return percentile(self.delivered_latencies_s, q)

    def summary(self) -> dict:
        """Flat JSON-able digest (CLI ``--json`` and sweep points)."""
        return {
            "name": self.name,
            "trials": len(self.trials),
            "completed": self.completed,
            "degraded": self.degraded,
            "aborted": self.aborted,
            "completion_rate": self.completion_rate,
            "mean_bandwidth_bytes_per_s": self.mean_bandwidth_bytes_per_s,
            "p50_latency_s": self.latency_percentile_s(50.0),
            "p99_latency_s": self.latency_percentile_s(99.0),
            "p999_latency_s": self.latency_percentile_s(99.9),
            "mean_retries": (
                sum(t.retries for t in self.trials) / len(self.trials)
                if self.trials
                else 0.0
            ),
        }


def run_campaign(
    campaign: FaultCampaignConfig, machine: MachineConfig
) -> CampaignResult:
    """Execute every trial of ``campaign`` on ``machine``.

    Deterministic end to end: the i-th trial samples its fault set from
    :func:`trial_seed`, runs the closed-form engine, and nothing consults
    the clock or global RNG state.
    """
    campaign.validate_for(machine.system)
    span = (
        trace_span(
            f"faults/campaign/{campaign.name}",
            category="faults",
            trials=campaign.trials,
            seed=campaign.seed,
            payload_bytes=campaign.payload_bytes,
        )
        if observability_active()
        else None
    )
    outcomes: list[TrialOutcome] = []
    for trial in range(campaign.trials):
        seed = trial_seed(campaign.seed, trial)
        fault_set = sample_fault_set(
            campaign.model, machine.system, seed, campaign.targets
        )
        result = collective_under_faults(
            machine,
            campaign.model,
            seed,
            campaign.payload_bytes,
            collective=campaign.collective,
            backend=campaign.backend,
            fault_set=fault_set,
        )
        bandwidth = (
            campaign.payload_bytes / result.time_s
            if result.completed and result.time_s > 0
            else 0.0
        )
        outcomes.append(
            TrialOutcome(
                trial=trial,
                seed=seed,
                status=result.status,
                time_s=result.time_s,
                bandwidth_bytes_per_s=bandwidth,
                retries=result.retries,
                fault_time_s=result.fault_time_s,
                critical_node=result.critical_node,
                num_faults=len(fault_set.events),
            )
        )
    result = CampaignResult(
        name=campaign.name,
        payload_bytes=campaign.payload_bytes,
        trials=tuple(outcomes),
    )
    if span is not None:
        with span as s:
            s.set_attributes(**{
                k: v
                for k, v in result.summary().items()
                if isinstance(v, (int, float))
            })
        metric_counter("faults.campaigns").inc()
        metric_counter("faults.trials").inc(len(outcomes))
        labels = {"campaign": campaign.name}
        latency = metric_histogram("faults.latency_s", labels)
        for outcome in outcomes:
            metric_counter(
                f"faults.outcome.{outcome.status}", labels
            ).inc()
            if outcome.status != "aborted":
                latency.observe(outcome.time_s)
    return result
