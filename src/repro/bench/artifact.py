"""Schema-versioned bench artifacts: ``BENCH_<YYYYMMDD>_<tag>.json``.

An artifact is a self-describing record of one suite run: per-scenario
wall times and histogram summaries, plus a machine fingerprint (python
/ platform / CPU count / repro code hash) so a comparison across
artifacts can tell "the code got slower" apart from "this ran on a
different box".  The schema is versioned; :func:`load_artifact`
rejects files it cannot interpret instead of mis-reading them.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import BenchError
from ..observability.histo import LogBucketSketch

#: Bump on any incompatible change to the artifact layout.
BENCH_SCHEMA_VERSION = 1

#: Summary statistics recorded per scenario, in artifact order.
_SUMMARY_KEYS = ("count", "min", "max", "mean", "p50", "p90", "p99")


def machine_fingerprint() -> dict[str, Any]:
    """Where this artifact was produced: enough to judge comparability."""
    from ..runner.cache import code_fingerprint

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "code": code_fingerprint(),
    }


def summarize_times(wall_times_s: list[float]) -> dict[str, float]:
    """Histogram summary of one scenario's repeats, via the shared sketch."""
    sketch = LogBucketSketch()
    for value in wall_times_s:
        sketch.observe(value)
    snap = sketch.snapshot()
    return {key: snap[key] for key in _SUMMARY_KEYS if key in snap}


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's timing record inside an artifact."""

    name: str
    description: str
    warmup: int
    repeats: int
    wall_times_s: tuple[float, ...]
    summary: dict[str, float] = field(default_factory=dict)

    @property
    def median_s(self) -> float:
        return self.summary.get("p50", 0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "wall_times_s": list(self.wall_times_s),
            "summary": dict(self.summary),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioResult":
        _require(data, "scenario", ("name", "wall_times_s"))
        times = data["wall_times_s"]
        if not isinstance(times, list) or not times or not all(
            isinstance(t, (int, float)) and t >= 0 for t in times
        ):
            raise BenchError(
                f"scenario {data.get('name')!r}: wall_times_s must be a "
                "non-empty list of non-negative numbers"
            )
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            warmup=int(data.get("warmup", 0)),
            repeats=int(data.get("repeats", len(times))),
            wall_times_s=tuple(float(t) for t in times),
            summary=dict(data.get("summary") or summarize_times(times)),
        )


@dataclass(frozen=True)
class BenchArtifact:
    """One suite run: scenario results + provenance."""

    scenarios: tuple[ScenarioResult, ...]
    fingerprint: dict[str, Any]
    tag: str = "pr6"
    created_utc: str = ""
    schema_version: int = BENCH_SCHEMA_VERSION

    def scenario(self, name: str) -> ScenarioResult | None:
        for result in self.scenarios:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": "repro-bench-artifact",
            "tag": self.tag,
            "created_utc": self.created_utc,
            "fingerprint": dict(self.fingerprint),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchArtifact":
        if not isinstance(data, dict):
            raise BenchError("bench artifact must be a JSON object")
        version = data.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise BenchError(
                f"unsupported bench artifact schema {version!r} "
                f"(this build reads version {BENCH_SCHEMA_VERSION})"
            )
        _require(data, "artifact", ("fingerprint", "scenarios"))
        scenarios = data["scenarios"]
        if not isinstance(scenarios, list) or not scenarios:
            raise BenchError("artifact has no scenarios")
        results = tuple(ScenarioResult.from_dict(s) for s in scenarios)
        names = [r.name for r in results]
        if len(set(names)) != len(names):
            raise BenchError("artifact lists a scenario twice")
        return cls(
            scenarios=results,
            fingerprint=dict(data["fingerprint"]),
            tag=str(data.get("tag", "")),
            created_utc=str(data.get("created_utc", "")),
            schema_version=version,
        )

    def format(self) -> str:
        width = max(len(s.name) for s in self.scenarios)
        lines = [
            f"bench suite ({len(self.scenarios)} scenario(s), "
            f"tag {self.tag!r})"
        ]
        for s in self.scenarios:
            lines.append(
                f"  {s.name:{width}s}  median "
                f"{s.median_s * 1e3:9.3f} ms  "
                f"(min {s.summary.get('min', 0.0) * 1e3:.3f}, "
                f"max {s.summary.get('max', 0.0) * 1e3:.3f}; "
                f"{s.repeats} repeat(s))"
            )
        return "\n".join(lines)


def _require(data: dict, what: str, keys: tuple[str, ...]) -> None:
    for key in keys:
        if key not in data:
            raise BenchError(f"bench {what} is missing field {key!r}")


def default_artifact_name(tag: str = "pr6", when: _dt.date | None = None) -> str:
    """The conventional artifact filename, ``BENCH_<YYYYMMDD>_<tag>.json``."""
    when = when or _dt.datetime.now(_dt.timezone.utc).date()
    return f"BENCH_{when.strftime('%Y%m%d')}_{tag}.json"


def save_artifact(artifact: BenchArtifact, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact.to_dict(), indent=1) + "\n", encoding="utf-8"
    )
    return path


def load_artifact(path: str | Path) -> BenchArtifact:
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BenchError(f"cannot read bench artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchError(f"{path} is not valid JSON: {exc}") from exc
    return BenchArtifact.from_dict(data)


def utc_now_iso() -> str:
    return (
        _dt.datetime.now(_dt.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )
