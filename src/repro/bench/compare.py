"""Noise-aware comparison of two bench artifacts.

A scenario counts as **regressed** only when its median shift clears
two bars at once: the configured threshold (default 25%) *and* the
repeat spread observed in either artifact.  Wall-time medians on a
shared CI box routinely wobble by the spread of their own repeats;
requiring the shift to exceed that wobble keeps one noisy run from
failing the build, while a genuine slowdown — which moves the whole
distribution, not just one repeat — still trips the gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BenchError
from .artifact import BenchArtifact, ScenarioResult

#: Default regression gate: median shift beyond +25% fails.
DEFAULT_THRESHOLD = 0.25


def _rel_spread(result: ScenarioResult) -> float:
    """Repeat spread as a fraction of the median ((max-min)/median)."""
    median = result.median_s
    if median <= 0:
        return 0.0
    low = result.summary.get("min", median)
    high = result.summary.get("max", median)
    return max(0.0, (high - low) / median)


@dataclass(frozen=True)
class ScenarioDelta:
    """One scenario's old-vs-new verdict."""

    name: str
    old_median_s: float
    new_median_s: float
    #: Relative median shift; +0.30 means the new run is 30% slower.
    shift: float
    #: Noise floor: the larger relative repeat spread of the two runs.
    spread: float
    regressed: bool
    improved: bool

    @property
    def status(self) -> str:
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "ok"


@dataclass(frozen=True)
class CompareReport:
    """Every matched scenario's delta, plus the unmatched names."""

    deltas: tuple[ScenarioDelta, ...]
    only_old: tuple[str, ...]
    only_new: tuple[str, ...]
    threshold: float
    comparable: bool

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def regressions(self) -> tuple[ScenarioDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    def format(self) -> str:
        width = max(
            [len(d.name) for d in self.deltas] or [8]
        )
        lines = [
            f"{'scenario':{width}s}  {'old ms':>10s}  {'new ms':>10s}  "
            f"{'shift':>8s}  {'spread':>8s}  status"
        ]
        for d in self.deltas:
            lines.append(
                f"{d.name:{width}s}  {d.old_median_s * 1e3:10.3f}  "
                f"{d.new_median_s * 1e3:10.3f}  {d.shift * 100:+7.1f}%  "
                f"{d.spread * 100:7.1f}%  {d.status}"
            )
        for name in self.only_old:
            lines.append(f"{name:{width}s}  (missing from NEW — skipped)")
        for name in self.only_new:
            lines.append(f"{name:{width}s}  (new scenario — no baseline)")
        if not self.comparable:
            lines.append(
                "note: artifacts come from different machines/python; "
                "deltas may reflect the environment, not the code"
            )
        verdict = (
            "no regressions"
            if self.ok
            else "REGRESSION: "
            + ", ".join(d.name for d in self.regressions)
        )
        lines.append(
            f"gate: median shift > {self.threshold * 100:.0f}% and > "
            f"repeat spread — {verdict}"
        )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """The same table as GitHub-flavored markdown (CI step summary)."""
        lines = [
            "| scenario | old (ms) | new (ms) | shift | spread | status |",
            "| --- | ---: | ---: | ---: | ---: | --- |",
        ]
        for d in self.deltas:
            status = "❌ REGRESSED" if d.regressed else (
                "✅ improved" if d.improved else "✅ ok"
            )
            lines.append(
                f"| `{d.name}` | {d.old_median_s * 1e3:.3f} | "
                f"{d.new_median_s * 1e3:.3f} | {d.shift * 100:+.1f}% | "
                f"{d.spread * 100:.1f}% | {status} |"
            )
        for name in self.only_old:
            lines.append(f"| `{name}` | — | — | — | — | missing from NEW |")
        for name in self.only_new:
            lines.append(f"| `{name}` | — | — | — | — | no baseline |")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "threshold": self.threshold,
            "comparable": self.comparable,
            "deltas": [
                {
                    "name": d.name,
                    "old_median_s": d.old_median_s,
                    "new_median_s": d.new_median_s,
                    "shift": d.shift,
                    "spread": d.spread,
                    "status": d.status,
                }
                for d in self.deltas
            ],
            "only_old": list(self.only_old),
            "only_new": list(self.only_new),
        }


def compare_artifacts(
    old: BenchArtifact,
    new: BenchArtifact,
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareReport:
    """Match scenarios by name and gate each on shift vs noise."""
    if threshold <= 0:
        raise BenchError(f"threshold must be > 0, got {threshold}")
    old_names = [s.name for s in old.scenarios]
    new_names = [s.name for s in new.scenarios]
    deltas: list[ScenarioDelta] = []
    for name in old_names:
        new_result = new.scenario(name)
        if new_result is None:
            continue
        old_result = old.scenario(name)
        old_median = old_result.median_s
        new_median = new_result.median_s
        if old_median <= 0:
            raise BenchError(
                f"scenario {name!r}: baseline median is zero — "
                "artifact is unusable as a comparison base"
            )
        shift = (new_median - old_median) / old_median
        spread = max(_rel_spread(old_result), _rel_spread(new_result))
        regressed = shift > threshold and shift > spread
        improved = (-shift) > threshold and (-shift) > spread
        deltas.append(
            ScenarioDelta(
                name=name,
                old_median_s=old_median,
                new_median_s=new_median,
                shift=shift,
                spread=spread,
                regressed=regressed,
                improved=improved,
            )
        )
    matched = {d.name for d in deltas}
    comparable = _same_environment(old, new)
    return CompareReport(
        deltas=tuple(deltas),
        only_old=tuple(n for n in old_names if n not in matched),
        only_new=tuple(n for n in new_names if n not in matched),
        threshold=threshold,
        comparable=comparable,
    )


def _same_environment(old: BenchArtifact, new: BenchArtifact) -> bool:
    keys = ("python", "implementation", "platform", "machine")
    return all(
        old.fingerprint.get(k) == new.fingerprint.get(k) for k in keys
    )
