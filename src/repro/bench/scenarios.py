"""The curated bench suite: small, timed, end-to-end scenarios.

Each scenario exercises one hot path of the reproduction — the NoC
simulator at its saturation point, the schedule compiler + functional
executor, the experiment runner against a cold and a warm cache, and a
warm conformance-matrix rerun.  A scenario's ``body`` is the timed
unit: it must be self-contained and repeatable (every call sees the
same starting state), so warmup + repeats produce comparable samples.
``setup`` runs once, untimed, and may return state the body needs;
``teardown`` releases it.

Scenarios are deliberately *seconds-scale or below*: the suite exists
to catch order-25% regressions in CI, not to be a microbenchmark rig.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import BenchError


@dataclass(frozen=True)
class BenchScenario:
    """One timed scenario: ``body(state)`` is the unit the harness times."""

    name: str
    description: str
    body: Callable[[Any], None]
    setup: Callable[[], Any] = field(default=lambda: None)
    teardown: Callable[[Any], None] = field(default=lambda state: None)


SCENARIOS: dict[str, BenchScenario] = {}


def register_scenario(scenario: BenchScenario) -> BenchScenario:
    if scenario.name in SCENARIOS:
        raise BenchError(f"duplicate bench scenario {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> BenchScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise BenchError(
            f"unknown bench scenario {name!r} "
            f"(available: {', '.join(sorted(SCENARIOS))})"
        ) from None


# --------------------------------------------------------------------------
# Scenario bodies.
# --------------------------------------------------------------------------

#: Experiment the runner scenarios sweep: analytic, a few sweep points,
#: ~100 ms serial — big enough to time, small enough for CI.
_RUNNER_EXPERIMENT = "fig11"


def _noc_saturation(_: Any) -> None:
    from ..experiments.noc_load_latency import high_load_workload
    from ..noc import NocSimulator

    network, messages = high_load_workload()
    NocSimulator(network, messages).run()


def _schedule_compile_execute(_: Any) -> None:
    import numpy as np

    from ..collectives.patterns import Collective
    from ..core.schedule import Shape, build_schedule, execute_schedule

    shape = Shape(banks=8, chips=4, ranks=2)
    schedule = build_schedule(Collective.ALL_REDUCE, shape, 8192)
    rng = np.random.default_rng(1234)
    inputs = [
        rng.standard_normal(8192) for _ in range(shape.num_dpus)
    ]
    execute_schedule(schedule, inputs)


def _runner_cold(_: Any) -> None:
    from ..config.runner import RunnerConfig
    from ..runner import run_experiment

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        run_experiment(
            _RUNNER_EXPERIMENT,
            runner=RunnerConfig(cache_dir=cache_dir),
        )


def _runner_warm_setup() -> str:
    from ..config.runner import RunnerConfig
    from ..runner import run_experiment

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-")
    run_experiment(
        _RUNNER_EXPERIMENT, runner=RunnerConfig(cache_dir=cache_dir)
    )
    return cache_dir


def _runner_warm(cache_dir: str) -> None:
    from ..config.runner import RunnerConfig
    from ..runner import run_experiment

    run_experiment(
        _RUNNER_EXPERIMENT, runner=RunnerConfig(cache_dir=cache_dir)
    )


def _conformance_config():
    from ..config.conformance import ConformanceConfig

    # A sub-matrix sized for timing: every collective family is present
    # but shapes/payloads are trimmed so a warm rerun stays well under a
    # second.
    return ConformanceConfig(
        collectives=("all_reduce", "all_to_all", "broadcast"),
        shapes=((2, 2, 1), (2, 2, 2), (4, 2, 2)),
        payload_bytes=(256, 4096),
    )


def _conformance_warm_setup() -> str:
    from ..conformance import run_matrix

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-")
    run_matrix(_conformance_config(), cache_dir=cache_dir)
    return cache_dir


def _conformance_warm(cache_dir: str) -> None:
    from ..conformance import run_matrix

    run_matrix(_conformance_config(), cache_dir=cache_dir)


#: Structure + payload sweep for the schedule-cache scenarios.  One
#: structure, several payloads: exactly the shape of a figure sweep,
#: where the cold path recompiles the schedule per payload and the
#: warm path replays one cached timing profile.
_SCHEDCACHE_PATTERN = ("all_reduce", 8, 4, 2)
_SCHEDCACHE_PAYLOADS = (8192, 16384, 32768, 65536)


def _schedcache_args():
    from ..collectives.patterns import Collective
    from ..config.network import PimnetNetworkConfig
    from ..core.schedule import Shape

    _, banks, chips, ranks = _SCHEDCACHE_PATTERN
    return (
        Collective.ALL_REDUCE,
        Shape(banks=banks, chips=chips, ranks=ranks),
        PimnetNetworkConfig(),
    )


def _schedcache_cold(_: Any) -> None:
    from ..core.schedule import build_schedule, schedule_timing

    collective, shape, network = _schedcache_args()
    for num_elements in _SCHEDCACHE_PAYLOADS:
        schedule = build_schedule(collective, shape, num_elements)
        schedule_timing(schedule, network)


def _schedcache_warm_setup() -> Any:
    from ..schedcache import ScheduleCache

    collective, shape, network = _schedcache_args()
    cache = ScheduleCache()
    cache.profile(collective, shape, network)
    return cache


def _schedcache_warm(cache: Any) -> None:
    collective, shape, network = _schedcache_args()
    for num_elements in _SCHEDCACHE_PAYLOADS:
        cache.timing(collective, shape, num_elements, network)


def _service_steady_state(_: Any) -> None:
    from ..experiments import tenant_service_load

    tenant_service_load.run(
        tenants=2, requests_per_tenant=24, concurrency=4, seed=5
    )


def _fleet_degraded(_: Any) -> None:
    from ..experiments import fleet_resilience

    fleet_resilience.run_trial(
        shards=3,
        tenants=3,
        requests_per_tenant=12,
        concurrency=4,
        seed=5,
        kill_after=8,
        outage_duration=12,
    )


def _rmtree(path: str) -> None:
    shutil.rmtree(path, ignore_errors=True)


register_scenario(
    BenchScenario(
        name="noc_saturation",
        description=(
            "event-driven NoC simulation of the saturating load point"
        ),
        body=_noc_saturation,
    )
)
register_scenario(
    BenchScenario(
        name="schedule_compile_execute",
        description=(
            "AllReduce schedule build + functional replay on a "
            "64-DPU shape"
        ),
        body=_schedule_compile_execute,
    )
)
register_scenario(
    BenchScenario(
        name="runner_sweep_cold",
        description=(
            f"'{_RUNNER_EXPERIMENT}' sweep against an empty result cache"
        ),
        body=_runner_cold,
    )
)
register_scenario(
    BenchScenario(
        name="runner_sweep_warm",
        description=(
            f"'{_RUNNER_EXPERIMENT}' sweep fully served from the cache"
        ),
        body=_runner_warm,
        setup=_runner_warm_setup,
        teardown=_rmtree,
    )
)
register_scenario(
    BenchScenario(
        name="schedcache_cold",
        description=(
            "AllReduce timing sweep over 4 payloads, fresh schedule "
            "compilation per payload (no cache)"
        ),
        body=_schedcache_cold,
    )
)
register_scenario(
    BenchScenario(
        name="schedcache_warm",
        description=(
            "the same payload sweep replayed from one cached timing "
            "profile (schedcache hit path)"
        ),
        body=_schedcache_warm,
        setup=_schedcache_warm_setup,
    )
)
register_scenario(
    BenchScenario(
        name="service_steady_state",
        description=(
            "two-tenant closed-loop drive of one collective service, "
            "no faults"
        ),
        body=_service_steady_state,
    )
)
register_scenario(
    BenchScenario(
        name="fleet_degraded",
        description=(
            "three-shard fleet drive with one shard killed and "
            "revived mid-run"
        ),
        body=_fleet_degraded,
    )
)
register_scenario(
    BenchScenario(
        name="conformance_warm",
        description="conformance sub-matrix rerun with every point cached",
        body=_conformance_warm,
        setup=_conformance_warm_setup,
        teardown=_rmtree,
    )
)
