"""Wall-clock bench harness with schema-versioned artifacts.

``repro bench run`` times a curated suite of end-to-end scenarios and
writes a ``BENCH_<YYYYMMDD>_<tag>.json`` artifact; ``repro bench
compare OLD NEW`` renders a noise-aware delta table and exits nonzero
on regression.  See ``docs/BENCH.md``.
"""

from .artifact import (
    BENCH_SCHEMA_VERSION,
    BenchArtifact,
    ScenarioResult,
    default_artifact_name,
    load_artifact,
    machine_fingerprint,
    save_artifact,
    summarize_times,
)
from .compare import (
    DEFAULT_THRESHOLD,
    CompareReport,
    ScenarioDelta,
    compare_artifacts,
)
from .harness import (
    DEFAULT_REPEATS,
    DEFAULT_WARMUP,
    run_scenario,
    run_suite,
)
from .scenarios import SCENARIOS, BenchScenario, get_scenario, register_scenario

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchArtifact",
    "BenchScenario",
    "CompareReport",
    "DEFAULT_REPEATS",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WARMUP",
    "SCENARIOS",
    "ScenarioDelta",
    "ScenarioResult",
    "compare_artifacts",
    "default_artifact_name",
    "get_scenario",
    "load_artifact",
    "machine_fingerprint",
    "register_scenario",
    "run_scenario",
    "run_suite",
    "save_artifact",
    "summarize_times",
]
