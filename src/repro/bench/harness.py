"""Run the bench suite: warmup + repeats per scenario, one artifact out.

Timing is plain ``perf_counter`` around the scenario body; the repeats
land in the shared :class:`~repro.observability.histo.LogBucketSketch`
(via :func:`~repro.bench.artifact.summarize_times`), so the artifact's
p50/p90/p99 use the exact same percentile engine as the fault
campaigns and the metrics registry.  When a metrics registry is
active, each scenario also records a
``bench.wall_s{scenario=...}`` histogram.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..errors import BenchError
from ..observability.metrics import metric_histogram, metrics_active
from .artifact import (
    BenchArtifact,
    ScenarioResult,
    machine_fingerprint,
    summarize_times,
    utc_now_iso,
)
from .scenarios import SCENARIOS, BenchScenario, get_scenario

#: CI-friendly defaults: enough repeats to estimate spread, not minutes.
DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 1


def run_scenario(
    scenario: BenchScenario,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
) -> ScenarioResult:
    """Time one scenario: setup, warmup (untimed), repeats, teardown."""
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise BenchError(f"warmup must be >= 0, got {warmup}")
    instrument = (
        metric_histogram("bench.wall_s", {"scenario": scenario.name})
        if metrics_active()
        else None
    )
    state = scenario.setup()
    try:
        for _ in range(warmup):
            scenario.body(state)
        wall_times: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            scenario.body(state)
            elapsed = time.perf_counter() - start
            wall_times.append(elapsed)
            if instrument is not None:
                instrument.observe(elapsed)
    finally:
        scenario.teardown(state)
    return ScenarioResult(
        name=scenario.name,
        description=scenario.description,
        warmup=warmup,
        repeats=repeats,
        wall_times_s=tuple(wall_times),
        summary=summarize_times(wall_times),
    )


def run_suite(
    names: Sequence[str] | None = None,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    tag: str = "pr6",
    progress=None,
) -> BenchArtifact:
    """Run the named scenarios (default: all, registry order).

    ``progress`` is an optional callable invoked with each scenario's
    :class:`ScenarioResult` as it completes (the CLI prints them live).
    """
    scenarios = (
        [get_scenario(name) for name in names]
        if names
        else list(SCENARIOS.values())
    )
    results: list[ScenarioResult] = []
    for scenario in scenarios:
        result = run_scenario(scenario, repeats=repeats, warmup=warmup)
        results.append(result)
        if progress is not None:
            progress(result)
    return BenchArtifact(
        scenarios=tuple(results),
        fingerprint=machine_fingerprint(),
        tag=tag,
        created_utc=utc_now_iso(),
    )
