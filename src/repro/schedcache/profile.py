"""Payload-scaling timing profiles: exact analytic replay without rebuilds.

:func:`~repro.core.schedule.schedule_timing` walks every transfer of
every step, accumulating link loads.  But within any one step of any
generated schedule all transfers carry the *same* length ``L``, and
``L`` is an exact integer divisor of the per-DPU element count ``E``
(the whole payload for broadcast/gather legs, ``E/banks`` for bank
segments, ``E/(banks*chips)`` for chip sub-segments, ``E/N`` for rank
subsub-segments and All-to-All chunks).  Every per-link load is
therefore ``count * L * itemsize`` for an *integer* ``count`` that
depends only on the schedule's structure, never on ``E``.

:func:`extract_profile` walks a schedule once and records, per step,
those integer counts (peak ring-link load multiplier, max hops, bus
unique-payload count, peak DQ-port multiplier).  :meth:`TimingProfile.
times` then reproduces ``schedule_timing`` for *any* payload by
replaying the identical float operations — ``count*L*itemsize`` divided
by the same bandwidths, the same hop-latency adds, accumulated in the
same step order.  Because IEEE-754 addition of equal integer-valued
floats below 2**53 is exact, the replay is **bit-identical** to the
fresh computation, not merely close; :meth:`TimingProfile.exact_for`
checks the 2**53 bound (and divisibility) so out-of-range payloads fall
back to the slow path instead of silently rounding.  The property test
``tests/test_schedcache_profile.py`` asserts ``==`` per tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.schedule import CommSchedule, Shape, Tier
from ..errors import SchedCacheError
from ..observability import metric_counter

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..config.network import PimnetNetworkConfig

#: Entry-format version; bump to invalidate persisted profiles.
PROFILE_VERSION = 1

#: Loads at or above 2**53 bytes lose float exactness; fall back.
MAX_EXACT_BYTES = 2**53


@dataclass(frozen=True)
class StepCost:
    """Structural (payload-independent) cost counts of one schedule step.

    ``divisor`` relates the step's uniform transfer length to the per-DPU
    element count: ``L = E // divisor``.  The remaining fields are the
    integer multipliers the tier formulas in ``schedule_timing`` reduce
    to when all transfers share one length:

    * bank ring — peak directed-link load is ``peak_units * L *
      itemsize``; ``hops`` is the step's max shorter-way hop count;
    * chip crossbar — peak per-(rank, chip) port load is ``peak_units *
      L * itemsize``;
    * rank bus — the bus serializes ``bus_units`` unique payloads while
      the busiest chip port moves ``port_units`` lengths; ``unicast``
      records whether the phase pays the bus-turnaround efficiency.
    """

    tier: str  # Tier.value; never LOCAL
    divisor: int
    num_transfers: int
    peak_units: int = 0
    hops: int = 0
    bus_units: int = 0
    port_units: int = 0
    unicast: bool = False

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "divisor": self.divisor,
            "num_transfers": self.num_transfers,
            "peak_units": self.peak_units,
            "hops": self.hops,
            "bus_units": self.bus_units,
            "port_units": self.port_units,
            "unicast": self.unicast,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StepCost":
        try:
            return cls(
                tier=str(data["tier"]),
                divisor=int(data["divisor"]),
                num_transfers=int(data["num_transfers"]),
                peak_units=int(data["peak_units"]),
                hops=int(data["hops"]),
                bus_units=int(data["bus_units"]),
                port_units=int(data["port_units"]),
                unicast=bool(data["unicast"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchedCacheError(f"malformed step cost entry: {exc}") from exc


@dataclass(frozen=True)
class TimingProfile:
    """Per-structure analytic step costs, replayable at any payload."""

    collective: str
    banks: int
    chips: int
    ranks: int
    root: int
    itemsize: int
    base_elements: int  # payload the profile was extracted at
    steps: tuple[StepCost, ...]

    def supports(self, num_elements: int) -> bool:
        """Whether every step's length divides ``num_elements`` evenly."""
        if num_elements < 1:
            return False
        return all(num_elements % s.divisor == 0 for s in self.steps)

    def exact_for(self, num_elements: int) -> bool:
        """Whether replay at ``num_elements`` is bit-exact (2**53 bound)."""
        if not self.supports(num_elements):
            return False
        for s in self.steps:
            unit = (num_elements // s.divisor) * self.itemsize
            peak = max(s.peak_units, s.port_units, s.bus_units) * unit
            if peak >= MAX_EXACT_BYTES:
                return False
        return True

    def times(
        self, num_elements: int, network: "PimnetNetworkConfig"
    ) -> dict[Tier, float]:
        """Replay ``schedule_timing`` analytically for ``num_elements``.

        Performs the identical float operations the slow path would —
        same peak bytes, same bandwidth divisions, same hop-latency
        additions, same per-tier accumulation order — so, within
        :meth:`exact_for`'s bound, the result is bit-identical.  Also
        mirrors the ``schedule.bytes.*`` counters so warm-path metrics
        match a cold run.
        """
        if not self.supports(num_elements):
            raise SchedCacheError(
                f"profile for {self.collective} cannot rescale to "
                f"{num_elements} elements (divisors "
                f"{sorted({s.divisor for s in self.steps})})"
            )
        times: dict[Tier, float] = {t: 0.0 for t in Tier}
        tier_bytes: dict[Tier, float] = {t: 0.0 for t in Tier}
        for s in self.steps:
            length = num_elements // s.divisor
            unit = length * self.itemsize  # exact int, like the slow path
            tier = Tier(s.tier)
            tier_bytes[tier] += s.num_transfers * unit
            times[tier] += self._step_time(s, unit, network)
        for tier in (Tier.BANK, Tier.CHIP, Tier.RANK):
            metric_counter(f"schedule.bytes.{tier.value}").inc(
                tier_bytes[tier]
            )
        return times

    @staticmethod
    def _step_time(
        s: StepCost, unit: int, network: "PimnetNetworkConfig"
    ) -> float:
        if s.tier == Tier.BANK.value:
            if not s.peak_units:  # all transfers zero-hop: no link loads
                return 0.0
            link = network.inter_bank
            return (
                (s.peak_units * unit) / link.link_bandwidth_bytes_per_s
                + s.hops * link.hop_latency_s
            )
        if s.tier == Tier.CHIP.value:
            if not s.peak_units:
                return 0.0
            link = network.inter_chip
            return (
                (s.peak_units * unit) / link.link_bandwidth_bytes_per_s
                + 2 * link.hop_latency_s
            )
        # Rank tier: bus serialization vs DQ port load.
        bus_bytes = s.bus_units * unit
        if bus_bytes == 0:
            return 0.0
        bus = network.inter_rank
        efficiency = (
            network.inter_rank_unicast_efficiency if s.unicast else 1.0
        )
        bus_time = bus_bytes / (bus.link_bandwidth_bytes_per_s * efficiency)
        port_time = (
            s.port_units * unit
        ) / network.inter_chip.link_bandwidth_bytes_per_s
        return max(bus_time, port_time) + 2 * bus.hop_latency_s

    def to_dict(self) -> dict:
        return {
            "profile_version": PROFILE_VERSION,
            "collective": self.collective,
            "banks": self.banks,
            "chips": self.chips,
            "ranks": self.ranks,
            "root": self.root,
            "itemsize": self.itemsize,
            "base_elements": self.base_elements,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingProfile":
        try:
            if data["profile_version"] != PROFILE_VERSION:
                raise SchedCacheError(
                    f"profile version {data['profile_version']!r} != "
                    f"{PROFILE_VERSION}"
                )
            return cls(
                collective=str(data["collective"]),
                banks=int(data["banks"]),
                chips=int(data["chips"]),
                ranks=int(data["ranks"]),
                root=int(data["root"]),
                itemsize=int(data["itemsize"]),
                base_elements=int(data["base_elements"]),
                steps=tuple(
                    StepCost.from_dict(s) for s in data["steps"]
                ),
            )
        except SchedCacheError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SchedCacheError(f"malformed timing profile: {exc}") from exc


def extract_profile(
    schedule: CommSchedule, itemsize: int = 8, root: int = 0
) -> TimingProfile:
    """Derive the payload-invariant step costs of ``schedule``.

    Raises :class:`SchedCacheError` for schedules outside the rescaling
    model — a step mixing transfer lengths, a length that does not
    divide the element count, or a rank-tier offset that is not a
    multiple of the length (bus uniqueness would then be
    payload-dependent).  Every generated Table V schedule satisfies all
    three; callers treat the error as "profile this structure fresh
    every time".
    """
    shape = schedule.shape
    base = schedule.num_elements
    steps: list[StepCost] = []
    for phase in schedule.phases:
        if phase.tier is Tier.LOCAL:
            continue
        for step in phase.steps:
            steps.append(
                _extract_step(shape, phase.tier, phase.algorithm, step, base)
            )
    return TimingProfile(
        collective=schedule.pattern.value,
        banks=shape.banks,
        chips=shape.chips,
        ranks=shape.ranks,
        root=root,
        itemsize=itemsize,
        base_elements=base,
        steps=tuple(steps),
    )


def _uniform_length(step, base_elements: int) -> int:
    lengths = {t.length for t in step.transfers}
    if len(lengths) != 1:
        raise SchedCacheError(
            f"step mixes transfer lengths {sorted(lengths)}; "
            "not payload-rescalable"
        )
    (length,) = lengths
    if base_elements % length:
        raise SchedCacheError(
            f"transfer length {length} does not divide the element "
            f"count {base_elements}; not payload-rescalable"
        )
    return length


def _extract_step(
    shape: Shape, tier: Tier, algorithm: str, step, base_elements: int
) -> StepCost:
    length = _uniform_length(step, base_elements)
    divisor = base_elements // length
    n = len(step.transfers)

    if tier is Tier.BANK:
        counts: dict[tuple[int, int, int, int, int], int] = {}
        max_hops = 0
        for t in step.transfers:
            r, c, b_src = shape.coords(t.src)
            _, _, b_dst = shape.coords(t.dst)
            east = (b_dst - b_src) % shape.banks
            west = shape.banks - east
            if east <= west:
                hops, direction, start = east, +1, b_src
            else:
                hops, direction, start = west, -1, b_src
            max_hops = max(max_hops, hops)
            for h in range(hops):
                position = (start + direction * h) % shape.banks
                key = (r, c, position, direction, 0)
                counts[key] = counts.get(key, 0) + 1
        peak = max(counts.values()) if counts else 0
        return StepCost(
            tier=tier.value,
            divisor=divisor,
            num_transfers=n,
            peak_units=peak,
            hops=max_hops,
        )

    if tier is Tier.CHIP:
        out_c: dict[tuple[int, int], int] = {}
        in_c: dict[tuple[int, int], int] = {}
        for t in step.transfers:
            r_src, c_src, _ = shape.coords(t.src)
            r_dst, c_dst, _ = shape.coords(t.dst)
            out_c[(r_src, c_src)] = out_c.get((r_src, c_src), 0) + 1
            in_c[(r_dst, c_dst)] = in_c.get((r_dst, c_dst), 0) + 1
        peak = max(
            max(out_c.values(), default=0), max(in_c.values(), default=0)
        )
        return StepCost(
            tier=tier.value,
            divisor=divisor,
            num_transfers=n,
            peak_units=peak,
        )

    # Rank tier: the bus counts each unique (src, offset, length,
    # read_output) payload once.  Offsets must be length-multiples so
    # the uniqueness structure is the same at every payload size.
    unique: set[tuple[int, int, int, bool]] = set()
    in_c = {}
    for t in step.transfers:
        if t.src_offset % length:
            raise SchedCacheError(
                f"rank-tier offset {t.src_offset} is not a multiple of "
                f"the transfer length {length}; bus uniqueness would be "
                "payload-dependent"
            )
        unique.add((t.src, t.src_offset, t.length, t.read_output))
        r_dst, c_dst, _ = shape.coords(t.dst)
        in_c[(r_dst, c_dst)] = in_c.get((r_dst, c_dst), 0) + 1
    out_c = {}
    for src, _offset, _length, _ro in unique:
        r_src, c_src, _ = shape.coords(src)
        out_c[(r_src, c_src)] = out_c.get((r_src, c_src), 0) + 1
    port_units = max(
        max(out_c.values(), default=0), max(in_c.values(), default=0)
    )
    return StepCost(
        tier=tier.value,
        divisor=divisor,
        num_transfers=n,
        bus_units=len(unique),
        port_units=port_units,
        unicast=algorithm == "unicast",
    )
