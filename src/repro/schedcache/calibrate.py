"""Optional flit-level NoC calibration of a cached structure.

The analytic profile rescales *exactly*; the cycle-level NoC simulator
does not — arbitration, per-hop pipelining, and flit quantization make
its cycle count a noisy affine-ish function of payload.  One calibration
run at the profile's base payload captures the empirical
``noc / analytic`` ratio; :meth:`NocCalibration.estimate_cycles` then
predicts the simulator's cycle count for other payloads as
``ratio * analytic_cycles``.

The estimate is only *served* while it stays inside the conformance
band PR 5 established (``min_ratio*analytic - slack <= noc <=
(1+rel_tol)*analytic + slack``, :class:`ConformanceConfig` defaults).
Outside the band the cache refuses to extrapolate and falls back to a
fresh flit-level simulation — the band is the contract that rescaling
is still trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..config.conformance import ConformanceConfig
from ..core.schedule import CommSchedule, schedule_timing
from ..errors import SchedCacheError

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..config.network import PimnetNetworkConfig

#: 1 simulator cycle = 1 ns (the NoC convention).
CYCLE_S = 1e-9


@dataclass(frozen=True)
class NocCalibration:
    """One structure's measured flit-sim/analytic cycle ratio."""

    base_elements: int
    base_analytic_cycles: float
    base_noc_cycles: int

    @property
    def ratio(self) -> float:
        """Measured noc/analytic ratio; 1.0 when analytic time is zero
        (single-DPU structures with no scheduled transfers)."""
        if self.base_analytic_cycles <= 0.0:
            return 1.0
        return self.base_noc_cycles / self.base_analytic_cycles

    def estimate_cycles(self, analytic_cycles: float) -> float:
        """Predicted flit-sim cycles at another payload's analytic time."""
        return self.ratio * analytic_cycles

    def band(
        self, analytic_cycles: float, config: ConformanceConfig
    ) -> tuple[float, float]:
        """The PR 5 conformance band around ``analytic_cycles``."""
        slack = config.latency_abs_slack_cycles
        lower = config.latency_min_ratio * analytic_cycles - slack
        upper = (1.0 + config.latency_rel_tol) * analytic_cycles + slack
        return lower, upper

    def in_band(
        self, analytic_cycles: float, config: ConformanceConfig
    ) -> bool:
        """Whether the rescaled estimate is inside the conformance band."""
        lower, upper = self.band(analytic_cycles, config)
        return lower <= self.estimate_cycles(analytic_cycles) <= upper

    def to_dict(self) -> dict:
        return {
            "base_elements": self.base_elements,
            "base_analytic_cycles": self.base_analytic_cycles,
            "base_noc_cycles": self.base_noc_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NocCalibration":
        try:
            return cls(
                base_elements=int(data["base_elements"]),
                base_analytic_cycles=float(data["base_analytic_cycles"]),
                base_noc_cycles=int(data["base_noc_cycles"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchedCacheError(
                f"malformed NoC calibration entry: {exc}"
            ) from exc


def simulate_noc_cycles(
    schedule: CommSchedule,
    network: "PimnetNetworkConfig",
    itemsize: int = 8,
) -> int:
    """One fresh flit-level run of ``schedule`` (scheduled mode)."""
    from ..noc.network import NocNetwork
    from ..noc.simulator import NocSimulator
    from ..noc.workload import messages_from_schedule

    net = NocNetwork(schedule.shape, network=network)
    messages, barriers = messages_from_schedule(
        schedule, net, "scheduled", itemsize=itemsize
    )
    if not messages:
        return 0
    sim = NocSimulator(net, messages)
    if barriers:
        sim.set_barriers(barriers)
    return sim.run().cycles


def calibrate_schedule(
    schedule: CommSchedule,
    network: "PimnetNetworkConfig",
    itemsize: int = 8,
) -> NocCalibration:
    """Measure the structure's noc/analytic ratio at the base payload."""
    analytic_s = sum(
        schedule_timing(schedule, network, itemsize=itemsize).values()
    )
    cycles = simulate_noc_cycles(schedule, network, itemsize=itemsize)
    return NocCalibration(
        base_elements=schedule.num_elements,
        base_analytic_cycles=analytic_s / CYCLE_S,
        base_noc_cycles=cycles,
    )
