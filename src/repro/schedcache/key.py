"""Structure keys for the schedule-compilation cache.

Two kinds of key, deliberately distinct:

* :class:`ScheduleKey` addresses one *compiled schedule* — it includes
  the payload (``num_elements``) because the transfer offsets/lengths of
  a :class:`~repro.core.schedule.CommSchedule` are payload-specific.
* :class:`StructureKey` addresses one *timing profile* — it excludes
  the payload on purpose: the analytic step costs scale exactly with
  payload bytes (see :mod:`repro.schedcache.profile`), so one profile
  serves every payload of the same (collective, shape, root, itemsize,
  network) structure.  Payload-only changes therefore *hit*; any change
  to the collective, a shape axis, the root, the element size, or any
  network parameter changes the key and misses.

The network enters the key as a SHA-256 over its canonical JSON (the
same encoder the runner cache uses), so every field of every tier link
— bandwidths, latencies, duplex flags, the unicast efficiency — is
key-sensitive, and a new config *class* invalidates like a new value.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..collectives.patterns import Collective

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..config.network import PimnetNetworkConfig
    from ..core.schedule import Shape

#: Per-process memo of network fingerprints.  PimnetNetworkConfig is a
#: frozen (hashable, by-value) dataclass, so equal configs — including
#: distinct-but-equal copies from ``replace()`` sweeps — share one
#: canonicalization pass.
_NETWORK_FINGERPRINTS: dict[object, str] = {}


def network_fingerprint(network: "PimnetNetworkConfig") -> str:
    """SHA-256 of the network config's canonical JSON, memoized."""
    cached = _NETWORK_FINGERPRINTS.get(network)
    if cached is None:
        from ..runner.canonical import canonical_json

        cached = hashlib.sha256(canonical_json(network).encode()).hexdigest()
        _NETWORK_FINGERPRINTS[network] = cached
    return cached


@dataclass(frozen=True)
class ScheduleKey:
    """Identity of one compiled :class:`CommSchedule` (payload included)."""

    collective: str
    banks: int
    chips: int
    ranks: int
    num_elements: int
    root: int

    @classmethod
    def for_build(
        cls,
        pattern: Collective,
        shape: "Shape",
        num_elements: int,
        root: int = 0,
    ) -> "ScheduleKey":
        return cls(
            collective=pattern.value,
            banks=shape.banks,
            chips=shape.chips,
            ranks=shape.ranks,
            num_elements=num_elements,
            root=root,
        )


@dataclass(frozen=True)
class StructureKey:
    """Identity of one timing profile (payload excluded by design)."""

    collective: str
    banks: int
    chips: int
    ranks: int
    root: int
    itemsize: int
    network: str  # SHA-256 fingerprint of the canonical network config

    @classmethod
    def for_structure(
        cls,
        pattern: Collective,
        shape: "Shape",
        network_config: "PimnetNetworkConfig",
        root: int = 0,
        itemsize: int = 8,
    ) -> "StructureKey":
        return cls(
            collective=pattern.value,
            banks=shape.banks,
            chips=shape.chips,
            ranks=shape.ranks,
            root=root,
            itemsize=itemsize,
            network=network_fingerprint(network_config),
        )

    def label(self) -> str:
        return (
            f"{self.collective}@{self.banks}x{self.chips}x{self.ranks}"
            f"/root{self.root}/i{self.itemsize}/net{self.network[:8]}"
        )

    def store_params(self) -> dict:
        """The structure fields as disk-store params (network excluded —
        the on-disk key hashes the full network config separately)."""
        return {
            "collective": self.collective,
            "banks": self.banks,
            "chips": self.chips,
            "ranks": self.ranks,
            "root": self.root,
            "itemsize": self.itemsize,
        }
