"""Schedule-compilation cache with payload-scaling replay.

Compiled schedules and analytic timing depend on (collective, machine
shape, network config) far more than on payload bytes.  This package
memoizes both behind structure keys and serves arbitrary payload sizes
by *exact* analytic rescaling of a cached per-structure profile — the
fast path is property-tested bit-identical to the slow path it
replaces.  See ``docs/SCHEDCACHE.md``.

Typical use::

    from repro.schedcache import cached_build_schedule, cached_schedule_timing

    schedule = cached_build_schedule(Collective.ALL_REDUCE, shape, 4096)
    times = cached_schedule_timing(
        Collective.ALL_REDUCE, shape, 8192, network
    )  # replayed from the cached profile; no rebuild
"""

from .cache import (
    DEFAULT_MAX_PROFILES,
    DEFAULT_MAX_SCHEDULES,
    STORE_NAMESPACE,
    SchedCacheCounters,
    ScheduleCache,
    active_schedule_cache,
    cached_build_schedule,
    cached_schedule_timing,
    reset_worker_cache,
    use_schedule_cache,
)
from .calibrate import (
    CYCLE_S,
    NocCalibration,
    calibrate_schedule,
    simulate_noc_cycles,
)
from .key import ScheduleKey, StructureKey, network_fingerprint
from .profile import (
    MAX_EXACT_BYTES,
    PROFILE_VERSION,
    StepCost,
    TimingProfile,
    extract_profile,
)

__all__ = [
    "CYCLE_S",
    "DEFAULT_MAX_PROFILES",
    "DEFAULT_MAX_SCHEDULES",
    "MAX_EXACT_BYTES",
    "NocCalibration",
    "PROFILE_VERSION",
    "STORE_NAMESPACE",
    "SchedCacheCounters",
    "ScheduleCache",
    "ScheduleKey",
    "StepCost",
    "StructureKey",
    "TimingProfile",
    "active_schedule_cache",
    "cached_build_schedule",
    "cached_schedule_timing",
    "calibrate_schedule",
    "extract_profile",
    "network_fingerprint",
    "reset_worker_cache",
    "simulate_noc_cycles",
    "use_schedule_cache",
]
