"""The schedule-compilation cache: compile once per structure, replay.

:class:`ScheduleCache` fronts :func:`~repro.core.schedule.build_schedule`
and :func:`~repro.core.schedule.schedule_timing` with two tiers of
memoization:

* **schedules** — an LRU of compiled :class:`CommSchedule` objects,
  keyed on (collective, shape, payload, root).  Schedules are frozen
  dataclass trees, so cached objects are safely shared.
* **timing profiles** — payload-invariant analytic step costs
  (:class:`~repro.schedcache.profile.TimingProfile`), keyed on
  (collective, shape, root, itemsize, network fingerprint).  A profile
  hit serves *any* payload by exact analytic replay — no schedule is
  built at all — falling back to fresh compilation when the payload
  does not divide the structure or exceeds the float-exactness bound.

Profiles optionally persist through the runner's content-addressed
:class:`~repro.runner.cache.ResultCache` (namespace ``schedcache``),
whose keys include the code fingerprint, so edits to the timing model
invalidate stored profiles exactly like runner results.

Process-pool safety: the cache records its owning PID and empties
itself on first touch after a ``fork`` — each worker gets a private
cache whose counters start at zero.  Counters are mirrored into
``schedcache.*`` metrics, so worker stats fold back into the parent
through the same registry merge the runner already does for worker
metrics.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Iterator

from ..collectives.patterns import Collective
from ..config.conformance import ConformanceConfig
from ..core.schedule import (
    CommSchedule,
    Shape,
    Tier,
    build_schedule,
    schedule_timing,
)
from ..errors import SchedCacheError
from ..observability import metric_counter, trace_span
from .calibrate import (
    CYCLE_S,
    NocCalibration,
    calibrate_schedule,
    simulate_noc_cycles,
)
from .key import ScheduleKey, StructureKey
from .profile import PROFILE_VERSION, TimingProfile, extract_profile

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..config.network import PimnetNetworkConfig
    from ..runner.cache import ResultCache

#: Compiled schedules kept in memory (large objects; LRU-evicted).
DEFAULT_MAX_SCHEDULES = 64
#: Timing profiles kept in memory (tiny; LRU-evicted far later).
DEFAULT_MAX_PROFILES = 1024

#: Disk-store namespace under the runner cache root.
STORE_NAMESPACE = "schedcache"


@dataclass
class SchedCacheCounters:
    """Per-instance event counts (mirrored into ``schedcache.*`` metrics)."""

    schedule_hits: int = 0
    schedule_misses: int = 0
    schedule_evictions: int = 0
    profile_hits: int = 0
    profile_misses: int = 0
    profile_disk_hits: int = 0
    profile_stores: int = 0
    profile_evictions: int = 0
    timing_replays: int = 0
    timing_fallbacks: int = 0
    noc_estimates: int = 0
    noc_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


def _count(counters: SchedCacheCounters, field: str) -> None:
    setattr(counters, field, getattr(counters, field) + 1)
    metric_counter(f"schedcache.{field.replace('_', '.', 1)}").inc()


class ScheduleCache:
    """Structure-keyed compilation cache (see module docstring)."""

    def __init__(
        self,
        max_schedules: int = DEFAULT_MAX_SCHEDULES,
        max_profiles: int = DEFAULT_MAX_PROFILES,
        store: "ResultCache | None" = None,
    ) -> None:
        if max_schedules < 1:
            raise SchedCacheError(
                f"max_schedules must be >= 1, got {max_schedules}"
            )
        if max_profiles < 1:
            raise SchedCacheError(
                f"max_profiles must be >= 1, got {max_profiles}"
            )
        self.max_schedules = max_schedules
        self.max_profiles = max_profiles
        self.store = store
        self.counters = SchedCacheCounters()
        self._schedules: OrderedDict[ScheduleKey, CommSchedule] = (
            OrderedDict()
        )
        self._profiles: OrderedDict[StructureKey, TimingProfile] = (
            OrderedDict()
        )
        self._calibrations: dict[StructureKey, NocCalibration] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()

    # -- process-pool safety ---------------------------------------------------
    def reset_if_forked(self) -> bool:
        """Empty the cache if this process is not the one that filled it.

        Fork-pool workers inherit the parent's cache by COW; serving from
        it would make worker hit counters double-report parent work and
        worker ``stats()`` lie about what *this* process did.  Returns
        whether a reset happened.
        """
        if os.getpid() == self._pid:
            return False
        with self._lock:
            if os.getpid() == self._pid:  # raced with another thread
                return False
            self._schedules.clear()
            self._profiles.clear()
            self._calibrations.clear()
            self.counters = SchedCacheCounters()
            self._pid = os.getpid()
        return True

    # -- compiled schedules ----------------------------------------------------
    def build(
        self,
        pattern: Collective,
        shape: Shape,
        num_elements: int,
        root: int = 0,
    ) -> CommSchedule:
        """``build_schedule`` through the LRU memo."""
        self.reset_if_forked()
        key = ScheduleKey.for_build(pattern, shape, num_elements, root)
        with self._lock:
            cached = self._schedules.get(key)
            if cached is not None:
                self._schedules.move_to_end(key)
                _count(self.counters, "schedule_hits")
                return cached
        # Compile outside the lock: builds can be slow and are
        # deterministic, so a racing duplicate build is merely wasted
        # work, never an inconsistency.
        _count(self.counters, "schedule_misses")
        with trace_span(
            "schedcache/build",
            category="schedcache",
            pattern=pattern.value,
            num_elements=num_elements,
        ):
            schedule = build_schedule(pattern, shape, num_elements, root)
        with self._lock:
            self._schedules[key] = schedule
            self._schedules.move_to_end(key)
            while len(self._schedules) > self.max_schedules:
                self._schedules.popitem(last=False)
                _count(self.counters, "schedule_evictions")
        return schedule

    # -- timing profiles -------------------------------------------------------
    def profile(
        self,
        pattern: Collective,
        shape: Shape,
        network: "PimnetNetworkConfig",
        root: int = 0,
        itemsize: int = 8,
        base_elements: int | None = None,
    ) -> TimingProfile:
        """Fetch (or compile) the structure's timing profile.

        On a miss the profile is extracted from a schedule built at
        ``base_elements`` (default: one element per DPU, the smallest
        payload every Table V pattern divides) and stored in memory and,
        when a disk store is attached, on disk.
        """
        self.reset_if_forked()
        key = StructureKey.for_structure(
            pattern, shape, network, root, itemsize
        )
        with self._lock:
            cached = self._profiles.get(key)
            if cached is not None:
                self._profiles.move_to_end(key)
                _count(self.counters, "profile_hits")
                return cached
        profile = self._load_stored_profile(key, network)
        if profile is None:
            _count(self.counters, "profile_misses")
            if base_elements is None:
                base_elements = shape.num_dpus
            with trace_span(
                "schedcache/profile",
                category="schedcache",
                structure=key.label(),
                base_elements=base_elements,
            ):
                schedule = self.build(pattern, shape, base_elements, root)
                profile = extract_profile(
                    schedule, itemsize=itemsize, root=root
                )
            self._store_profile(key, profile, network)
        self._remember_profile(key, profile)
        return profile

    def _remember_profile(
        self, key: StructureKey, profile: TimingProfile
    ) -> None:
        with self._lock:
            self._profiles[key] = profile
            self._profiles.move_to_end(key)
            while len(self._profiles) > self.max_profiles:
                evicted, _ = self._profiles.popitem(last=False)
                self._calibrations.pop(evicted, None)
                _count(self.counters, "profile_evictions")

    def _store_key(
        self, key: StructureKey, network: "PimnetNetworkConfig"
    ) -> str:
        from ..runner.cache import cache_key

        return cache_key(
            STORE_NAMESPACE,
            network,
            {**key.store_params(), "profile_version": PROFILE_VERSION},
        )

    def _load_stored_profile(
        self, key: StructureKey, network: "PimnetNetworkConfig"
    ) -> TimingProfile | None:
        if self.store is None:
            return None
        hit, value = self.store.get(
            STORE_NAMESPACE, self._store_key(key, network)
        )
        if not hit:
            return None
        try:
            profile = TimingProfile.from_dict(value)
        except SchedCacheError:
            return None
        _count(self.counters, "profile_disk_hits")
        return profile

    def _store_profile(
        self,
        key: StructureKey,
        profile: TimingProfile,
        network: "PimnetNetworkConfig",
    ) -> None:
        if self.store is None:
            return
        self.store.put(
            STORE_NAMESPACE,
            self._store_key(key, network),
            profile.to_dict(),
            params=key.store_params(),
        )
        _count(self.counters, "profile_stores")

    # -- analytic timing -------------------------------------------------------
    def timing(
        self,
        pattern: Collective,
        shape: Shape,
        num_elements: int,
        network: "PimnetNetworkConfig",
        root: int = 0,
        itemsize: int = 8,
    ) -> dict[Tier, float]:
        """Per-tier analytic times, replayed from the cached profile.

        Bit-identical to ``schedule_timing(build_schedule(...))`` —
        replayed when the profile covers ``num_elements`` exactly,
        computed fresh (and the first request compiles the profile at
        this payload, making later payloads pure replays) otherwise.
        """
        self.reset_if_forked()
        key = StructureKey.for_structure(
            pattern, shape, network, root, itemsize
        )
        with self._lock:
            profile = self._profiles.get(key)
            if profile is not None:
                self._profiles.move_to_end(key)
        if profile is None:
            profile = self._load_stored_profile(key, network)
            if profile is not None:
                self._remember_profile(key, profile)
        if profile is not None and profile.exact_for(num_elements):
            _count(self.counters, "timing_replays")
            with trace_span(
                "schedcache/replay",
                category="schedcache",
                structure=key.label(),
                num_elements=num_elements,
            ):
                return profile.times(num_elements, network)
        # Miss or out-of-model payload: compute fresh, and seed the
        # profile from this payload's schedule so the structure replays
        # from here on.
        if profile is None:
            _count(self.counters, "profile_misses")
        else:
            _count(self.counters, "timing_fallbacks")
        schedule = self.build(pattern, shape, num_elements, root)
        times = schedule_timing(schedule, network, itemsize=itemsize)
        if profile is None:
            try:
                fresh = extract_profile(
                    schedule, itemsize=itemsize, root=root
                )
            except SchedCacheError:
                fresh = None  # outside the rescaling model; stay slow
            if fresh is not None:
                self._store_profile(key, fresh, network)
                self._remember_profile(key, fresh)
        return times

    # -- calibrated NoC estimates ----------------------------------------------
    def calibration(
        self,
        pattern: Collective,
        shape: Shape,
        network: "PimnetNetworkConfig",
        root: int = 0,
        itemsize: int = 8,
        base_elements: int | None = None,
    ) -> NocCalibration:
        """The structure's flit-level calibration (one sim run, memoized)."""
        self.reset_if_forked()
        key = StructureKey.for_structure(
            pattern, shape, network, root, itemsize
        )
        with self._lock:
            cached = self._calibrations.get(key)
        if cached is not None:
            return cached
        if base_elements is None:
            base_elements = shape.num_dpus
        with trace_span(
            "schedcache/calibrate",
            category="schedcache",
            structure=key.label(),
            base_elements=base_elements,
        ):
            schedule = self.build(pattern, shape, base_elements, root)
            calibration = calibrate_schedule(
                schedule, network, itemsize=itemsize
            )
        with self._lock:
            self._calibrations[key] = calibration
        return calibration

    def noc_cycles(
        self,
        pattern: Collective,
        shape: Shape,
        num_elements: int,
        network: "PimnetNetworkConfig",
        config: ConformanceConfig | None = None,
        root: int = 0,
    ) -> tuple[float, bool]:
        """``(cycles, estimated)`` for the flit-level simulation.

        Serves ``calibration.ratio * analytic_cycles`` while the
        estimate stays inside the conformance band around the rescaled
        analytic time; outside the band (or when the analytic profile
        cannot rescale) it runs a fresh flit-level simulation —
        ``estimated`` distinguishes the two.
        """
        config = config or ConformanceConfig()
        itemsize = config.itemsize
        analytic_s = sum(
            self.timing(
                pattern, shape, num_elements, network,
                root=root, itemsize=itemsize,
            ).values()
        )
        analytic_cycles = analytic_s / CYCLE_S
        calibration = self.calibration(
            pattern, shape, network, root=root, itemsize=itemsize
        )
        if calibration.in_band(analytic_cycles, config):
            _count(self.counters, "noc_estimates")
            return calibration.estimate_cycles(analytic_cycles), True
        _count(self.counters, "noc_fallbacks")
        schedule = self.build(pattern, shape, num_elements, root)
        return (
            float(simulate_noc_cycles(schedule, network, itemsize=itemsize)),
            False,
        )

    # -- introspection ---------------------------------------------------------
    def clear(self) -> None:
        """Drop all in-memory entries and reset counters (disk untouched)."""
        with self._lock:
            self._schedules.clear()
            self._profiles.clear()
            self._calibrations.clear()
            self.counters = SchedCacheCounters()

    def stats(self) -> dict:
        """JSON-ready snapshot: sizes, counters, and per-profile shape."""
        with self._lock:
            profiles = [
                {
                    "structure": key.label(),
                    "base_elements": profile.base_elements,
                    "steps": len(profile.steps),
                }
                for key, profile in self._profiles.items()
            ]
            return {
                "pid": self._pid,
                "schedules": len(self._schedules),
                "max_schedules": self.max_schedules,
                "profiles": len(self._profiles),
                "max_profiles": self.max_profiles,
                "calibrations": len(self._calibrations),
                "counters": self.counters.as_dict(),
                "profile_entries": profiles,
            }


# --------------------------------------------------------------------------
# The process-default cache and its helpers.
# --------------------------------------------------------------------------

_DEFAULT_CACHE = ScheduleCache()
_ACTIVE: ScheduleCache | None = None


def active_schedule_cache() -> ScheduleCache:
    """The cache library code should use (override > process default)."""
    return _ACTIVE if _ACTIVE is not None else _DEFAULT_CACHE


@contextmanager
def use_schedule_cache(cache: ScheduleCache) -> Iterator[ScheduleCache]:
    """Temporarily route ``cached_*`` helpers through ``cache``."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous


def reset_worker_cache() -> bool:
    """Fork-safety hook for pool workers (no-op in the owning process)."""
    return active_schedule_cache().reset_if_forked()


def cached_build_schedule(
    pattern: Collective,
    shape: Shape,
    num_elements: int,
    root: int = 0,
) -> CommSchedule:
    """``build_schedule`` through the active cache."""
    return active_schedule_cache().build(pattern, shape, num_elements, root)


def cached_schedule_timing(
    pattern: Collective,
    shape: Shape,
    num_elements: int,
    network: "PimnetNetworkConfig",
    root: int = 0,
    itemsize: int = 8,
) -> dict[Tier, float]:
    """``schedule_timing`` through the active cache (exact replay on hit)."""
    return active_schedule_cache().timing(
        pattern, shape, num_elements, network, root=root, itemsize=itemsize
    )
