"""PIMnet reproduction: a domain-specific network for scalable PIM.

Reproduces Son et al., *PIMnet: A Domain-Specific Network for Efficient
Collective Communication in Scalable PIM* (HPCA 2025): an UPMEM-style
PIM system model, host-mediated and prior-work collective backends, the
PIMnet multi-tier statically scheduled interconnect, a cycle-level NoC
simulator for the flow-control study, the paper's eight workloads, and
drivers for every evaluation figure and table.

Quickstart::

    import numpy as np
    from repro import pimnet_all_reduce, pimnet_sim_system

    machine = pimnet_sim_system()
    rng = np.random.default_rng(0)
    buffers = [
        rng.integers(0, 100, 1024, dtype=np.int64)
        for _ in range(machine.system.banks_per_channel)
    ]
    result = pimnet_all_reduce(buffers, machine)
    print(result.time_s, result.breakdown.as_dict())
"""

from .collectives import (
    Collective,
    CollectiveRequest,
    CollectiveResult,
    CommBreakdown,
    ReduceOp,
    registry,
)
from .config import (
    MachineConfig,
    PimSystemConfig,
    PimnetNetworkConfig,
    pimnet_sim_system,
    small_test_system,
    upmem_server,
)
from .core import (
    PimnetBackend,
    Shape,
    pimnet_all_gather,
    pimnet_all_reduce,
    pimnet_all_to_all,
    pimnet_broadcast,
    pimnet_gather,
    pimnet_reduce,
    pimnet_reduce_scatter,
    pimnet_schedule_times,
    pimnet_service,
)
from .schedcache import ScheduleCache, use_schedule_cache
from .service import CollectiveService, ServiceResponse
from .fleet import FleetResponse, FleetRouter
from .config import TraceConfig
from .errors import ReproError
from .machine import PimMachine
from .observability import (
    Instrumentation,
    MetricsRegistry,
    Tracer,
    build_instrumentation,
)

__version__ = "1.0.0"

__all__ = [
    "Collective",
    "CollectiveRequest",
    "CollectiveResult",
    "CommBreakdown",
    "ReduceOp",
    "registry",
    "MachineConfig",
    "PimSystemConfig",
    "PimnetNetworkConfig",
    "pimnet_sim_system",
    "small_test_system",
    "upmem_server",
    "PimnetBackend",
    "Shape",
    "pimnet_all_gather",
    "pimnet_all_reduce",
    "pimnet_all_to_all",
    "pimnet_broadcast",
    "pimnet_gather",
    "pimnet_reduce",
    "pimnet_reduce_scatter",
    "pimnet_schedule_times",
    "pimnet_service",
    "ScheduleCache",
    "use_schedule_cache",
    "CollectiveService",
    "ServiceResponse",
    "FleetResponse",
    "FleetRouter",
    "PimMachine",
    "ReproError",
    "Instrumentation",
    "MetricsRegistry",
    "TraceConfig",
    "Tracer",
    "build_instrumentation",
    "__version__",
]
