"""Parallel experiment runner with content-addressed result caching.

Three pieces:

* :mod:`repro.runner.registry` — every figure/table driver registers an
  :class:`ExperimentSpec` describing its sweep as independent points
  (pure functions of a :class:`MachineConfig` plus JSON-able params);
* :mod:`repro.runner.executor` — runs the points serially or over a
  ``ProcessPoolExecutor`` (``RunnerConfig.jobs``), with per-point
  timeouts and deterministic index-ordered reassembly into
  :class:`ExperimentTable` tuples;
* :mod:`repro.runner.cache` — persists point results as JSON under
  ``.repro-cache/``, keyed on a stable hash of (experiment id,
  canonical machine config, params, code fingerprint).

Typical use::

    from repro.config.runner import RunnerConfig
    from repro.runner import run_experiment

    run = run_experiment("fig12", runner=RunnerConfig(jobs=4))
    print(run.format())

See ``docs/RUNNER.md`` for the design and the golden-test workflow.
"""

from ..config.runner import RunnerConfig
from .cache import (
    CACHE_VERSION,
    CacheCounters,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
    code_fingerprint,
)
from .canonical import canonical_json, canonicalize
from .executor import ExperimentRun, run_experiment, run_experiments
from .registry import (
    REGISTRY,
    RunnerRegistry,
    ensure_experiments_loaded,
    register_experiment,
    register_monolithic,
)
from .spec import (
    ExperimentSpec,
    SweepPoint,
    monolithic_spec,
    table_from_jsonable,
    table_to_jsonable,
    tables_from_jsonable,
    tables_to_jsonable,
)

__all__ = [
    "CACHE_VERSION",
    "CacheCounters",
    "DEFAULT_CACHE_DIR",
    "ExperimentRun",
    "ExperimentSpec",
    "REGISTRY",
    "ResultCache",
    "RunnerConfig",
    "RunnerRegistry",
    "SweepPoint",
    "cache_key",
    "canonical_json",
    "canonicalize",
    "code_fingerprint",
    "ensure_experiments_loaded",
    "monolithic_spec",
    "register_experiment",
    "register_monolithic",
    "run_experiment",
    "run_experiments",
    "table_from_jsonable",
    "table_to_jsonable",
    "tables_from_jsonable",
    "tables_to_jsonable",
]
