"""Declarative experiment specs: sweeps of independent, cacheable points.

An :class:`ExperimentSpec` wraps one figure/table driver as

* ``points(machine)`` — the declarative sweep: an ordered tuple of
  :class:`SweepPoint`, each a pure function of ``machine`` plus its
  JSON-able ``params``;
* ``point_fn(machine, **params)`` — computes one point and returns a
  JSON-serializable value (so results can live in the on-disk cache and
  cross process boundaries losslessly);
* ``assemble(machine, values)`` — deterministically reassembles the
  point values (ordered by ``SweepPoint.index``, *never* by completion
  order) into the experiment's :class:`ExperimentTable` tuple.

Experiments with no natural sweep decomposition register through
:func:`monolithic_spec`: a single point whose value is the serialized
tables themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..errors import RunnerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..config.presets import MachineConfig
    from ..experiments.common import ExperimentTable


@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of work inside an experiment's sweep.

    ``index`` is the point's slot in the reassembled result (0..n-1);
    ``params`` are the JSON-able keyword arguments for ``point_fn`` and
    one third of the cache key (with the machine config and the code
    fingerprint).
    """

    index: int
    params: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment the parallel runner knows how to execute."""

    experiment_id: str
    title: str
    points: Callable[["MachineConfig"], tuple[SweepPoint, ...]]
    point_fn: Callable[..., Any]
    assemble: Callable[
        ["MachineConfig", tuple[Any, ...]], tuple["ExperimentTable", ...]
    ]
    #: Module imported in worker processes before resolving the spec —
    #: only needed for specs registered outside ``repro.experiments``
    #: under a non-``fork`` multiprocessing start method.
    worker_import: str | None = None


_CELL_TYPES = (str, int, float, bool, type(None))


def table_to_jsonable(table: "ExperimentTable") -> dict[str, Any]:
    """A lossless plain-JSON rendering of one table."""
    for row in table.rows:
        for cell in row:
            if not isinstance(cell, _CELL_TYPES):
                raise RunnerError(
                    f"{table.experiment_id}: cell {cell!r} of type "
                    f"{type(cell).__name__} does not survive a JSON "
                    "round-trip"
                )
    return {
        "experiment_id": table.experiment_id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": table.notes,
    }


def table_from_jsonable(data: dict[str, Any]) -> "ExperimentTable":
    from ..experiments.common import ExperimentTable

    return ExperimentTable(
        experiment_id=data["experiment_id"],
        title=data["title"],
        columns=tuple(data["columns"]),
        rows=tuple(tuple(row) for row in data["rows"]),
        notes=data.get("notes", ""),
    )


def tables_to_jsonable(
    tables: tuple["ExperimentTable", ...],
) -> list[dict[str, Any]]:
    return [table_to_jsonable(t) for t in tables]


def tables_from_jsonable(data: list[dict[str, Any]]) -> tuple[
    "ExperimentTable", ...
]:
    return tuple(table_from_jsonable(d) for d in data)


def monolithic_spec(
    experiment_id: str,
    title: str,
    run_fn: Callable[["MachineConfig"], Any],
    build_tables: Callable[[Any], tuple["ExperimentTable", ...]],
) -> ExperimentSpec:
    """Wrap a driver with no natural sweep as a single whole-run point.

    The point value is the serialized tables, so the cache and the
    parallel executor treat monolithic and swept experiments uniformly.
    """

    def _points(machine: "MachineConfig") -> tuple[SweepPoint, ...]:
        return (SweepPoint(0),)

    def _point_fn(machine: "MachineConfig") -> list[dict[str, Any]]:
        return tables_to_jsonable(build_tables(run_fn(machine)))

    def _assemble(
        machine: "MachineConfig", values: tuple[Any, ...]
    ) -> tuple["ExperimentTable", ...]:
        return tables_from_jsonable(values[0])

    return ExperimentSpec(
        experiment_id=experiment_id,
        title=title,
        points=_points,
        point_fn=_point_fn,
        assemble=_assemble,
    )
