"""The global registry of runnable experiment specs.

Experiment modules under :mod:`repro.experiments` register their spec at
import time (``SPEC = register_experiment(...)`` at module bottom), so
importing the experiments package populates the registry as a side
effect — :func:`ensure_experiments_loaded` is the one hook worker
processes and lazy callers need.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import RunnerError
from .spec import ExperimentSpec, SweepPoint, monolithic_spec


class RunnerRegistry:
    """Maps experiment ids to :class:`ExperimentSpec` objects."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}

    def register(
        self, spec: ExperimentSpec, replace: bool = False
    ) -> ExperimentSpec:
        if spec.experiment_id in self._specs and not replace:
            raise RunnerError(
                f"experiment {spec.experiment_id!r} is already registered"
            )
        self._specs[spec.experiment_id] = spec
        return spec

    def unregister(self, experiment_id: str) -> None:
        if self._specs.pop(experiment_id, None) is None:
            raise RunnerError(
                f"experiment {experiment_id!r} is not registered"
            )

    def get(self, experiment_id: str) -> ExperimentSpec:
        if experiment_id not in self._specs:
            ensure_experiments_loaded()
        spec = self._specs.get(experiment_id)
        if spec is None:
            raise RunnerError(
                f"unknown experiment {experiment_id!r} "
                f"(registered: {', '.join(self.ids())})"
            )
        return spec

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._specs

    def ids(self) -> tuple[str, ...]:
        ensure_experiments_loaded()
        return tuple(sorted(self._specs))


#: The process-wide registry the executor and the CLI resolve against.
REGISTRY = RunnerRegistry()


def ensure_experiments_loaded() -> None:
    """Import the experiments package for its registration side effects."""
    import repro.experiments  # noqa: F401


def register_experiment(
    *,
    experiment_id: str,
    title: str,
    points: Callable[..., tuple[SweepPoint, ...]],
    point_fn: Callable[..., Any],
    assemble: Callable[..., tuple],
    worker_import: str | None = None,
) -> ExperimentSpec:
    """Build and register a swept experiment (idempotent on re-import)."""
    return REGISTRY.register(
        ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            points=points,
            point_fn=point_fn,
            assemble=assemble,
            worker_import=worker_import,
        ),
        replace=True,
    )


def register_monolithic(
    experiment_id: str,
    title: str,
    run_fn: Callable[..., Any],
    build_tables: Callable[..., tuple],
) -> ExperimentSpec:
    """Register a whole-run (single-point) experiment."""
    return REGISTRY.register(
        monolithic_spec(experiment_id, title, run_fn, build_tables),
        replace=True,
    )
