"""Serial/parallel execution of registered experiments, with caching.

The executor resolves an experiment's sweep points, satisfies what it
can from the content-addressed cache, computes the rest — serially, or
fanned out over a ``ProcessPoolExecutor`` when ``RunnerConfig.jobs > 1``
— and reassembles the values *by point index*, so the resulting tables
are bit-identical regardless of jobs count, submission order, or cache
state.

A failing or timed-out point surfaces as :class:`PointExecutionError`
carrying the point's params; the pool is cancelled and shut down before
the error propagates.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from ..config.runner import RunnerConfig
from ..errors import PointExecutionError, RunnerError
from ..observability.metrics import (
    MetricsRegistry,
    active_metrics,
    metric_counter,
    metrics_active,
    use_metrics,
)
from .cache import ResultCache, cache_key, code_fingerprint
from .registry import REGISTRY
from .spec import ExperimentSpec, SweepPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..config.presets import MachineConfig
    from ..experiments.common import ExperimentTable

#: Sentinel distinguishing "not computed yet" from a cached ``None``.
_UNSET = object()


@dataclass(frozen=True)
class ExperimentRun:
    """One executed experiment: its tables plus how they were obtained.

    ``seed`` records the global seed override the run was executed
    under (``repro run --seed``); ``None`` means every seeded point
    used its registered default.
    """

    experiment_id: str
    tables: tuple["ExperimentTable", ...]
    points: int
    cache_hits: int
    cache_misses: int
    elapsed_s: float
    seed: int | None = None

    def format(self) -> str:
        return "\n\n".join(table.format() for table in self.tables)


def run_experiment(
    experiment_id: str,
    machine: "MachineConfig | None" = None,
    runner: RunnerConfig | None = None,
    seed: int | None = None,
) -> ExperimentRun:
    """Execute one registered experiment under ``runner``'s policy.

    ``seed`` overrides the ``"seed"`` param of every sweep point that
    has one (experiments without a seeded point are unaffected).  The
    override flows through ``point.params`` into the cache key, so runs
    at different seeds never collide in the cache.
    """
    runner = runner or RunnerConfig()
    spec = REGISTRY.get(experiment_id)
    if machine is None:
        machine = _default_machine()
    start = time.perf_counter()
    points = _checked_points(spec, machine)
    if seed is not None:
        if seed < 0:
            raise RunnerError(f"seed must be >= 0, got {seed}")
        points = tuple(
            SweepPoint(p.index, {**p.params, "seed": seed})
            if "seed" in p.params
            else p
            for p in points
        )
    values: list[Any] = [_UNSET] * len(points)

    cache = ResultCache(runner.cache_dir) if runner.cache_enabled else None
    code = code_fingerprint() if cache is not None else None
    pending: list[tuple[SweepPoint, str | None]] = []
    hits = 0
    for point in points:
        key = None
        if cache is not None:
            key = cache_key(experiment_id, machine, point.params, code=code)
            hit, value = cache.get(experiment_id, key)
            if hit:
                values[point.index] = value
                hits += 1
                continue
        pending.append((point, key))

    if pending:
        todo = [point for point, _ in pending]
        if runner.jobs > 1 and len(todo) > 1:
            computed = _run_parallel(spec, machine, todo, runner)
        else:
            computed = [
                _run_serial_point(spec, machine, point, runner)
                for point in todo
            ]
        for (point, key), value in zip(pending, computed):
            values[point.index] = value
            if cache is not None:
                cache.put(experiment_id, key, value, params=point.params)

    tables = tuple(spec.assemble(machine, tuple(values)))
    metric_counter("runner.experiments").inc()
    metric_counter("runner.points").inc(len(points))
    return ExperimentRun(
        experiment_id=experiment_id,
        tables=tables,
        points=len(points),
        cache_hits=hits,
        cache_misses=len(pending),
        elapsed_s=time.perf_counter() - start,
        seed=seed,
    )


def run_experiments(
    experiment_ids: Sequence[str],
    machine: "MachineConfig | None" = None,
    runner: RunnerConfig | None = None,
    seed: int | None = None,
) -> tuple[ExperimentRun, ...]:
    """Execute several experiments in the given order, one shared machine."""
    if machine is None:
        machine = _default_machine()
    runner = runner or RunnerConfig()
    return tuple(
        run_experiment(experiment_id, machine, runner, seed=seed)
        for experiment_id in experiment_ids
    )


# --------------------------------------------------------------------------
# Internals.
# --------------------------------------------------------------------------


def _default_machine() -> "MachineConfig":
    from ..experiments.common import default_machine

    return default_machine()


def _checked_points(
    spec: ExperimentSpec, machine: "MachineConfig"
) -> tuple[SweepPoint, ...]:
    points = tuple(spec.points(machine))
    if sorted(point.index for point in points) != list(range(len(points))):
        raise RunnerError(
            f"{spec.experiment_id}: sweep point indices must be a "
            f"permutation of 0..{len(points) - 1}"
        )
    return points


def _execute_point(
    experiment_id: str,
    machine: "MachineConfig",
    params: dict[str, Any],
    worker_import: str | None = None,
    collect_metrics: bool = False,
) -> Any:
    """Worker-side entry: resolve the spec in this process and run it.

    With ``collect_metrics`` the point runs under a fresh registry and
    returns ``(value, registry.to_dict())`` so the parent can fold the
    worker's counters/histograms into its own registry — without it,
    metrics recorded in a forked worker would mutate the worker's copy
    of the global registry and silently vanish with the process.
    """
    # Fork-pool workers inherit the parent's schedule-compilation cache
    # (contents *and* counters) by copy-on-write; empty it on first
    # touch so each worker's stats describe only its own work.  The
    # worker's hit/miss counters still reach the parent: they are
    # mirrored into ``schedcache.*`` metrics, which the registry merge
    # below ships back.
    from ..schedcache import reset_worker_cache

    reset_worker_cache()
    if worker_import:
        importlib.import_module(worker_import)
    spec = REGISTRY.get(experiment_id)
    if not collect_metrics:
        return spec.point_fn(machine, **params)
    registry = MetricsRegistry()
    with use_metrics(registry):
        value = spec.point_fn(machine, **params)
    return value, registry.to_dict()


def _run_serial_point(
    spec: ExperimentSpec,
    machine: "MachineConfig",
    point: SweepPoint,
    runner: RunnerConfig,
) -> Any:
    try:
        return spec.point_fn(machine, **point.params)
    except Exception as exc:
        raise _point_error(spec, point, f"failed: {exc}") from exc


def _point_error(
    spec: ExperimentSpec, point: SweepPoint, reason: str
) -> PointExecutionError:
    return PointExecutionError(
        f"experiment {spec.experiment_id!r} point {point.params!r} {reason}",
        experiment_id=spec.experiment_id,
        params=point.params,
    )


def _mp_context():
    """Prefer ``fork``: workers inherit the registry (and imports) as-is."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _run_parallel(
    spec: ExperimentSpec,
    machine: "MachineConfig",
    points: list[SweepPoint],
    runner: RunnerConfig,
) -> list[Any]:
    pool = ProcessPoolExecutor(
        max_workers=min(runner.jobs, len(points)),
        mp_context=_mp_context(),
    )
    # Fork-pool workers mutate their own copy of the active registry, so
    # anything observed inside a point would vanish with the worker.
    # When the parent has metrics on, each worker instead records into a
    # fresh registry and ships it back alongside the value.
    collect_metrics = metrics_active()
    futures: list[Future] = []
    try:
        for point in points:
            futures.append(
                pool.submit(
                    _execute_point,
                    spec.experiment_id,
                    machine,
                    point.params,
                    spec.worker_import,
                    collect_metrics,
                )
            )
        values: list[Any] = []
        for point, future in zip(points, futures):
            try:
                result = future.result(timeout=runner.point_timeout_s)
                if collect_metrics:
                    value, worker_metrics = result
                    active_metrics().merge(worker_metrics)
                    values.append(value)
                else:
                    values.append(result)
            except FutureTimeoutError as exc:
                raise _point_error(
                    spec,
                    point,
                    f"timed out after {runner.point_timeout_s}s",
                ) from exc
            except PointExecutionError:
                raise
            except Exception as exc:
                raise _point_error(spec, point, f"failed: {exc}") from exc
    except BaseException:
        # Surface the first (in submission order) observed failure with
        # a clean pool: cancel what has not started, do not block on
        # what has.
        for future in futures:
            future.cancel()
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return values
