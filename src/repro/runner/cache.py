"""Content-addressed on-disk cache for sweep-point results.

Every point result is stored as JSON under ``<root>/<experiment>/
<key>.json`` where ``key`` is the SHA-256 of the canonical JSON of

* the experiment id and the point's params,
* the *entire* canonicalized :class:`MachineConfig`, and
* a fingerprint of the ``repro`` package's source code,

so any change to a config field, a sweep parameter, or the model code
yields a different key — stale entries are simply never addressed.
Corrupted or truncated entries are treated as misses (removed and
recomputed), never as errors.

Hit/miss/store/corrupt events are counted on the instance (for run
reports) and mirrored into :mod:`repro.observability.metrics` whenever a
registry is active (``runner.cache.hits`` etc.).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..observability.metrics import metric_counter
from .canonical import canonical_json

#: Bump when the entry schema changes; old entries become misses.
CACHE_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_FINGERPRINT: str | None = None


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Memoized per process: the sources cannot change under a running
    simulation, and hashing ~200 files per point would dominate cheap
    points.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None or refresh:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_key(
    experiment_id: str,
    machine: Any,
    params: dict[str, Any],
    code: str | None = None,
) -> str:
    """The content address of one sweep point's result."""
    payload = {
        "cache_version": CACHE_VERSION,
        "experiment": experiment_id,
        "machine": machine,
        "params": params,
        "code": code if code is not None else code_fingerprint(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass
class CacheCounters:
    """Per-instance event counts (mirrored into observability metrics)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0


class ResultCache:
    """JSON point results under ``root``, addressed by :func:`cache_key`."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.counters = CacheCounters()

    def path_for(self, experiment_id: str, key: str) -> Path:
        return self.root / experiment_id / f"{key}.json"

    def get(self, experiment_id: str, key: str) -> tuple[bool, Any]:
        """``(hit, value)``; corrupt entries are dropped and miss."""
        path = self.path_for(experiment_id, key)
        try:
            raw = path.read_text()
        except OSError:
            return False, self._miss()
        try:
            entry = json.loads(raw)
            if (
                entry["cache_version"] != CACHE_VERSION
                or entry["key"] != key
            ):
                raise KeyError("entry does not match its address")
            value = entry["value"]
        except (ValueError, KeyError, TypeError):
            self.counters.corrupt += 1
            metric_counter("runner.cache.corrupt").inc()
            try:
                path.unlink()
            except OSError:
                pass
            return False, self._miss()
        self.counters.hits += 1
        metric_counter("runner.cache.hits").inc()
        return True, value

    def put(
        self,
        experiment_id: str,
        key: str,
        value: Any,
        params: dict[str, Any] | None = None,
    ) -> Path:
        """Persist one point result atomically (write + rename)."""
        path = self.path_for(experiment_id, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_version": CACHE_VERSION,
            "experiment": experiment_id,
            "key": key,
            "params": params if params is not None else {},
            "value": value,
        }
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(entry, indent=1) + "\n")
        os.replace(tmp, path)
        self.counters.stores += 1
        metric_counter("runner.cache.stores").inc()
        return path

    def _miss(self) -> None:
        self.counters.misses += 1
        metric_counter("runner.cache.misses").inc()
        return None

    def clear(self) -> int:
        """Remove the whole cache tree; returns the entry count removed."""
        removed = sum(1 for _ in self.root.glob("*/*.json"))
        shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def stats(self) -> dict[str, Any]:
        """On-disk shape of the cache: entries and bytes per experiment."""
        experiments: dict[str, dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for exp_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
                entries = 0
                nbytes = 0
                for entry in exp_dir.glob("*.json"):
                    entries += 1
                    nbytes += entry.stat().st_size
                if entries:
                    experiments[exp_dir.name] = {
                        "entries": entries,
                        "bytes": nbytes,
                    }
                    total_entries += entries
                    total_bytes += nbytes
        return {
            "root": str(self.root),
            "experiments": experiments,
            "entries": total_entries,
            "bytes": total_bytes,
        }
