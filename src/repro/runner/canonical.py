"""Canonical JSON encoding of configs and sweep params for cache keys.

The content-addressed cache needs a *stable* byte representation of
"everything that determines a point's result": the experiment id, the
full ``MachineConfig`` (an arbitrarily nested tree of frozen
dataclasses), and the point's params dict.  :func:`canonicalize` lowers
that tree to plain JSON types deterministically — dataclasses become
mappings tagged with their qualified type name (so changing a config
*class* invalidates keys just like changing a value), enum keys/values
become their names, and dict ordering is erased by ``sort_keys`` in
:func:`canonical_json`.

Anything the encoder does not recognize raises :class:`RunnerError`
instead of being silently stringified: a lossy key is a wrong key.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any

import numpy as np

from ..errors import RunnerError


def canonicalize(value: Any) -> Any:
    """Lower ``value`` to JSON-representable types, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        lowered: dict[str, Any] = {
            "__dataclass__": (
                f"{type(value).__module__}.{type(value).__qualname__}"
            )
        }
        for f in dataclasses.fields(value):
            lowered[f.name] = canonicalize(getattr(value, f.name))
        return lowered
    if isinstance(value, Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, dict):
        out: dict[str, Any] = {}
        for key, item in value.items():
            lowered_key = key if isinstance(key, str) else canonicalize(key)
            if not isinstance(lowered_key, str):
                raise RunnerError(
                    f"cannot use {type(key).__name__} as a cache-key dict key"
                )
            if lowered_key in out:
                raise RunnerError(
                    f"duplicate canonical dict key {lowered_key!r}"
                )
            out[lowered_key] = canonicalize(item)
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.dtype):
        return f"dtype[{value.str}]"
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    raise RunnerError(
        f"cannot canonicalize {type(value).__name__} for a cache key"
    )


def canonical_json(value: Any) -> str:
    """The canonical (sorted, compact) JSON string for ``value``."""
    return json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":")
    )
