"""Collective communication: patterns, functional semantics, and backends.

Qualitative comparison (Table I of the paper) of where each backend
performs inter-PIM communication:

=================  ==========  ===========  ===========  ============
Backend            inter-bank  inter-chip   inter-rank   collective op
=================  ==========  ===========  ===========  ============
Baseline (B)       CPU         CPU          CPU          CPU
Software(Ideal)(S) CPU         CPU          CPU          CPU
DIMM-Link (D)      buffer chip buffer chip  ded. link    buffer chip
NDPBridge (N)      buffer chip buffer chip  CPU          n/a
PIMnet (P)         memory chip buffer chip  memory bus   PIM bank
=================  ==========  ===========  ===========  ============

The PIMnet backend itself lives in :mod:`repro.core`.
"""

from . import dimm_link, host_baseline, ideal_software, ndp_bridge  # noqa: F401
from .backend import BackendRegistry, CollectiveBackend, registry
from .dimm_link import DimmLinkBackend
from .functional import execute
from .host_baseline import HostBaselineBackend
from .host_path import HostMediatedBackend, HostPathRates, host_path_volumes
from .ideal_software import IdealSoftwareBackend, MaxDramBwBackend
from .ndp_bridge import NdpBridgeBackend
from .patterns import (
    Collective,
    CollectiveRequest,
    REDUCING_PATTERNS,
    ReduceOp,
)
from .result import (
    COLLECTIVE_STATUSES,
    CollectiveResult,
    CommBreakdown,
    CommStats,
)

__all__ = [
    "BackendRegistry",
    "CollectiveBackend",
    "registry",
    "DimmLinkBackend",
    "execute",
    "HostBaselineBackend",
    "HostMediatedBackend",
    "HostPathRates",
    "host_path_volumes",
    "IdealSoftwareBackend",
    "MaxDramBwBackend",
    "NdpBridgeBackend",
    "Collective",
    "CollectiveRequest",
    "REDUCING_PATTERNS",
    "ReduceOp",
    "COLLECTIVE_STATUSES",
    "CollectiveResult",
    "CommBreakdown",
    "CommStats",
]
